// SessionEngine: many concurrent Sessions fed from one event stream,
// sharded across the deterministic work-stealing scheduler
// (util/parallel.hpp). Sessions are independent by construction -- an event
// only ever touches its own session -- so a batch is processed by bucketing
// events per session and running each session's bucket in original order on
// whatever worker picks it up. The outcome (every query answer, and
// therefore report_json()) is byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minmach/svc/session.hpp"

namespace minmach::store {
class Corpus;
}  // namespace minmach::store

namespace minmach::svc {

// One event in a session stream.
struct Event {
  enum class Kind { kRelease, kComplete, kQuery };
  Kind kind = Kind::kQuery;
  std::uint64_t session = 0;
  std::int64_t job = 0;  // release / complete
  Job payload{};         // release only
};

struct EngineOptions {
  // Worker count for ingest(); <= 0 means all hardware threads.
  std::int64_t threads = -1;
  SessionOptions session{};
};

class SessionEngine {
 public:
  explicit SessionEngine(const EngineOptions& options = {});

  // Seeds one fresh session per corpus instance (store/corpus.hpp),
  // releasing every job with its column index as the external id; returns
  // the id of the first seeded session (ids are contiguous from there).
  // int64-grid instances seed straight from the mapped columns in SCALED
  // coordinates -- OPT is affine-invariant, so query answers equal the
  // original instance's, and no Instance is materialized (tallied as
  // store.corpus_zero_copy); rational instances seed exact reconstructed
  // jobs. Ingestion runs through ingest(), so determinism and latency
  // accounting are the batch path's.
  std::uint64_t seed_from_corpus(const store::Corpus& corpus);

  // Applies a batch of events. Sessions are created on first touch (ids
  // should be dense from 0 -- the engine's tables are indexed by id). One
  // session's events apply in batch order on a single worker; per-event
  // wall time records into the hist.event_ns latency histogram when
  // profiling is on. Event errors (duplicate release, unknown complete,
  // malformed job) propagate as std::invalid_argument -- the first in batch
  // order, regardless of thread count.
  void ingest(const std::vector<Event>& batch);

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] std::uint64_t events_ingested() const { return events_; }

  // Every answer session `id`'s queries produced so far, in stream order.
  [[nodiscard]] const std::vector<std::int64_t>& answers(
      std::uint64_t id) const;

  // Deterministic JSON of all sessions' query answers (schema
  // svc-report-v1). Byte-identical for a fixed stream at any thread count
  // -- the replay determinism check diffs these bytes directly.
  [[nodiscard]] std::string report_json() const;

 private:
  EngineOptions options_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::vector<std::int64_t>> answers_;
  std::uint64_t events_ = 0;
};

}  // namespace minmach::svc
