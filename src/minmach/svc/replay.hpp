// JSONL event replay for the session engine: one event object per line,
// exact-rational times as strings (Rat::to_string "a/b" form, so replay is
// lossless), e.g.
//
//   {"e":"release","s":0,"j":7,"r":"0","d":"5/2","p":"1"}
//   {"e":"complete","s":0,"j":7}
//   {"e":"query","s":0}
//
// parse_jsonl and to_jsonl are exact inverses on canonical streams, and
// replay_events drives a fresh SessionEngine over a stream and returns its
// deterministic report -- the replay determinism harness byte-compares the
// reports from runs at different thread counts.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "minmach/svc/engine.hpp"

namespace minmach::svc {

// Parses a JSONL event stream. Blank lines are skipped. Throws
// std::invalid_argument (with the 1-based line number) on malformed JSON, an
// unknown event tag, or a missing/mistyped field.
[[nodiscard]] std::vector<Event> parse_jsonl(std::string_view text);

// Serializes events to canonical JSONL (the format parse_jsonl reads).
[[nodiscard]] std::string to_jsonl(const std::vector<Event>& events);

// Replays a stream through a fresh SessionEngine (one ingest batch) and
// returns engine.report_json().
[[nodiscard]] std::string replay_events(const std::vector<Event>& events,
                                        const EngineOptions& options = {});

}  // namespace minmach::svc
