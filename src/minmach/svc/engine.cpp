#include "minmach/svc/engine.hpp"

#include <sstream>
#include <stdexcept>

#include "minmach/obs/histogram.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/store/corpus.hpp"
#include "minmach/util/parallel.hpp"

namespace minmach::svc {

SessionEngine::SessionEngine(const EngineOptions& options)
    : options_(options) {}

std::uint64_t SessionEngine::seed_from_corpus(const store::Corpus& corpus) {
  const std::uint64_t first = sessions_.size();
  std::vector<Event> batch;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const store::InstanceView view = corpus.view(i);
    const std::uint64_t sid = first + i;
    if (view.int64_grid()) {
      // Scaled integer coordinates straight off the mapping: the session's
      // oracle stays on the all-integer fast path and, by affine
      // invariance, answers the original instance's OPT.
      const std::int64_t* r = view.release();
      const std::int64_t* d = view.deadline();
      const std::int64_t* p = view.processing();
      for (std::size_t j = 0; j < view.size(); ++j)
        batch.push_back({Event::Kind::kRelease, sid,
                         static_cast<std::int64_t>(j),
                         Job{Rat(r[j]), Rat(d[j]), Rat(p[j])}});
      obs::Registry::global().counter("store.corpus_zero_copy").add();
    } else {
      // One materialize per instance: kBigText views parse their whole text
      // blob per job() call, so per-job reconstruction would be quadratic.
      const Instance inst = view.materialize();
      for (std::size_t j = 0; j < view.size(); ++j)
        batch.push_back({Event::Kind::kRelease, sid,
                         static_cast<std::int64_t>(j), inst.jobs()[j]});
    }
  }
  // Materialize the session slots even when the corpus is empty of jobs, so
  // ids from `first` are valid either way.
  if (sessions_.size() < first + corpus.size()) {
    sessions_.resize(first + corpus.size());
    answers_.resize(first + corpus.size());
  }
  ingest(batch);
  return first;
}

void SessionEngine::ingest(const std::vector<Event>& batch) {
  if (batch.empty()) return;
  std::uint64_t max_session = 0;
  for (const Event& event : batch)
    max_session = std::max(max_session, event.session);
  if (sessions_.size() <= max_session) {
    sessions_.resize(max_session + 1);
    answers_.resize(max_session + 1);
  }
  // Bucket event indices per session; batch order within a bucket is the
  // session's event order.
  std::vector<std::vector<std::uint32_t>> buckets(sessions_.size());
  for (std::uint32_t i = 0; i < batch.size(); ++i)
    buckets[batch[i].session].push_back(i);
  std::vector<std::uint64_t> touched;
  for (std::uint64_t s = 0; s < buckets.size(); ++s) {
    if (buckets[s].empty()) continue;
    touched.push_back(s);
    if (!sessions_[s]) sessions_[s] = std::make_unique<Session>(options_.session);
  }

  const std::size_t threads =
      util::resolve_threads(options_.threads, touched.size());
  // parallel_map's determinism contract carries the engine's: each task
  // touches only its own session + answer slot, and the first exception in
  // TASK order is rethrown, so errors too are thread-count invariant.
  util::parallel_map(touched.size(), threads, [&](std::size_t t) {
    const std::uint64_t s = touched[t];
    Session& session = *sessions_[s];
    for (std::uint32_t index : buckets[s]) {
      const Event& event = batch[index];
      obs::ScopedLatency latency("hist.event_ns");
      switch (event.kind) {
        case Event::Kind::kRelease:
          session.on_release(event.job, event.payload);
          break;
        case Event::Kind::kComplete:
          session.on_complete(event.job);
          break;
        case Event::Kind::kQuery:
          answers_[s].push_back(session.query_opt());
          break;
      }
    }
    return 0;
  });
  events_ += batch.size();
}

const std::vector<std::int64_t>& SessionEngine::answers(
    std::uint64_t id) const {
  if (id >= answers_.size())
    throw std::out_of_range("SessionEngine::answers: unknown session " +
                            std::to_string(id));
  return answers_[id];
}

std::string SessionEngine::report_json() const {
  std::ostringstream os;
  obs::JsonWriter json(os);
  json.begin_object();
  json.key("schema").value("svc-report-v1");
  json.key("sessions").value(static_cast<std::uint64_t>(sessions_.size()));
  json.key("events").value(events_);
  json.key("answers").begin_array();
  for (const std::vector<std::int64_t>& per_session : answers_) {
    json.begin_array();
    for (std::int64_t answer : per_session) json.value(answer);
    json.end_array();
  }
  json.end_array();
  json.end_object();
  os << "\n";
  return os.str();
}

}  // namespace minmach::svc
