#include "minmach/svc/engine.hpp"

#include <sstream>
#include <stdexcept>

#include "minmach/obs/histogram.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/util/parallel.hpp"

namespace minmach::svc {

SessionEngine::SessionEngine(const EngineOptions& options)
    : options_(options) {}

void SessionEngine::ingest(const std::vector<Event>& batch) {
  if (batch.empty()) return;
  std::uint64_t max_session = 0;
  for (const Event& event : batch)
    max_session = std::max(max_session, event.session);
  if (sessions_.size() <= max_session) {
    sessions_.resize(max_session + 1);
    answers_.resize(max_session + 1);
  }
  // Bucket event indices per session; batch order within a bucket is the
  // session's event order.
  std::vector<std::vector<std::uint32_t>> buckets(sessions_.size());
  for (std::uint32_t i = 0; i < batch.size(); ++i)
    buckets[batch[i].session].push_back(i);
  std::vector<std::uint64_t> touched;
  for (std::uint64_t s = 0; s < buckets.size(); ++s) {
    if (buckets[s].empty()) continue;
    touched.push_back(s);
    if (!sessions_[s]) sessions_[s] = std::make_unique<Session>(options_.session);
  }

  const std::size_t threads =
      util::resolve_threads(options_.threads, touched.size());
  // parallel_map's determinism contract carries the engine's: each task
  // touches only its own session + answer slot, and the first exception in
  // TASK order is rethrown, so errors too are thread-count invariant.
  util::parallel_map(touched.size(), threads, [&](std::size_t t) {
    const std::uint64_t s = touched[t];
    Session& session = *sessions_[s];
    for (std::uint32_t index : buckets[s]) {
      const Event& event = batch[index];
      obs::ScopedLatency latency("hist.event_ns");
      switch (event.kind) {
        case Event::Kind::kRelease:
          session.on_release(event.job, event.payload);
          break;
        case Event::Kind::kComplete:
          session.on_complete(event.job);
          break;
        case Event::Kind::kQuery:
          answers_[s].push_back(session.query_opt());
          break;
      }
    }
    return 0;
  });
  events_ += batch.size();
}

const std::vector<std::int64_t>& SessionEngine::answers(
    std::uint64_t id) const {
  if (id >= answers_.size())
    throw std::out_of_range("SessionEngine::answers: unknown session " +
                            std::to_string(id));
  return answers_[id];
}

std::string SessionEngine::report_json() const {
  std::ostringstream os;
  obs::JsonWriter json(os);
  json.begin_object();
  json.key("schema").value("svc-report-v1");
  json.key("sessions").value(static_cast<std::uint64_t>(sessions_.size()));
  json.key("events").value(events_);
  json.key("answers").begin_array();
  for (const std::vector<std::int64_t>& per_session : answers_) {
    json.begin_array();
    for (std::int64_t answer : per_session) json.value(answer);
    json.end_array();
  }
  json.end_array();
  json.end_object();
  os << "\n";
  return os.str();
}

}  // namespace minmach::svc
