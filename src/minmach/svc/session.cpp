#include "minmach/svc/session.hpp"

#include <stdexcept>

#include "minmach/core/instance.hpp"
#include "minmach/obs/metrics.hpp"

namespace minmach::svc {

// The svc.* counters are semantic event counts (not execution-class): they
// are functions of the ingested stream alone, identical at any thread count
// or oracle configuration, so they may appear in deterministic reports.

Session::Session(const SessionOptions& options)
    : oracle_(Instance{}, options.oracle) {}

void Session::on_release(std::int64_t job, const Job& payload) {
  if (jobs_.count(job) != 0)
    throw std::invalid_argument("Session::on_release: duplicate live job id " +
                                std::to_string(job));
  if (!payload.well_formed())
    throw std::invalid_argument("Session::on_release: malformed job " +
                                std::to_string(job));
  obs::Registry::global().counter("svc.releases").add();
  jobs_.emplace(job, Tracked{true, pending_inserts_.size()});
  pending_inserts_.push_back({job, payload, false});
  ++live_;
}

void Session::on_complete(std::int64_t job) {
  auto it = jobs_.find(job);
  if (it == jobs_.end())
    throw std::invalid_argument("Session::on_complete: unknown job id " +
                                std::to_string(job));
  obs::Registry::global().counter("svc.completes").add();
  if (it->second.pending) {
    // Released and completed between queries: cancel the queued insert, the
    // oracle never sees the job.
    pending_inserts_[it->second.index].cancelled = true;
    ++coalesced_;
    obs::Registry::global().counter("svc.coalesced").add();
  } else {
    pending_removes_.push_back(static_cast<JobId>(it->second.index));
  }
  jobs_.erase(it);
  --live_;
}

void Session::flush() {
  for (JobId id : pending_removes_) oracle_.remove_job(id);
  pending_removes_.clear();
  for (const PendingInsert& pending : pending_inserts_) {
    if (pending.cancelled) continue;
    const JobId id = oracle_.insert_job(pending.payload);
    jobs_[pending.job] = Tracked{false, static_cast<std::size_t>(id)};
  }
  pending_inserts_.clear();
}

std::int64_t Session::query_opt() {
  obs::Registry::global().counter("svc.queries").add();
  flush();
  return oracle_.optimal_machines();
}

}  // namespace minmach::svc
