// A Session is one evolving job set served by a fully-dynamic
// FeasibilityOracle (DESIGN.md §15): jobs arrive via on_release, retire via
// on_complete, and query_opt answers the exact migratory OPT of whatever is
// live right now. Edits are BATCHED -- they queue in the session and only
// reach the oracle when a query needs the answer -- so a release/complete
// pair that lands between two queries coalesces away entirely (the oracle
// never sees the job; counter svc.coalesced), and a burst of edits costs one
// splice pass instead of one per event.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "minmach/core/job.hpp"
#include "minmach/flow/feasibility.hpp"

namespace minmach::svc {

struct SessionOptions {
  // Oracle knobs for the session's backing oracle. options.dynamic off
  // turns every flush into a cold rebuild over the live set -- the
  // differential-test reference for the splice path.
  OracleOptions oracle{};
};

class Session {
 public:
  explicit Session(const SessionOptions& options = {});

  // Admits a job under a caller-chosen external id (the oracle's internal
  // JobIds are private to the session). Throws std::invalid_argument on a
  // duplicate live id or a malformed job.
  void on_release(std::int64_t job, const Job& payload);

  // Retires a live job by external id. A job that is still pending (released
  // since the last flush) is cancelled without ever touching the oracle.
  // Throws std::invalid_argument on an unknown id.
  void on_complete(std::int64_t job);

  // Exact migratory OPT of the live job set (0 when empty). Flushes pending
  // edits first.
  [[nodiscard]] std::int64_t query_opt();

  // Applies the queued edits to the oracle: removes first (freeing slots and
  // network capacity the inserts can recycle), then the surviving inserts.
  void flush();

  [[nodiscard]] std::int64_t live_jobs() const { return live_; }
  [[nodiscard]] std::uint64_t coalesced() const { return coalesced_; }

 private:
  struct PendingInsert {
    std::int64_t job = 0;
    Job payload{};
    bool cancelled = false;
  };
  // Where a live external id currently lives: still queued (index into
  // pending_inserts_) or admitted (the oracle's JobId).
  struct Tracked {
    bool pending = false;
    std::size_t index = 0;
  };

  FeasibilityOracle oracle_;
  std::unordered_map<std::int64_t, Tracked> jobs_;
  std::vector<PendingInsert> pending_inserts_;
  std::vector<JobId> pending_removes_;
  std::int64_t live_ = 0;
  std::uint64_t coalesced_ = 0;
};

}  // namespace minmach::svc
