#include "minmach/svc/replay.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "minmach/obs/json.hpp"

namespace minmach::svc {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("svc::parse_jsonl: line " + std::to_string(line) +
                              ": " + what);
}

std::int64_t int_field(const obs::JsonValue& object, const char* name,
                       std::size_t line) {
  const obs::JsonValue* field = object.find(name);
  if (field == nullptr || !field->is_number())
    fail(line, std::string("missing integer field \"") + name + "\"");
  return std::strtoll(field->literal.c_str(), nullptr, 10);
}

Rat rat_field(const obs::JsonValue& object, const char* name,
              std::size_t line) {
  const obs::JsonValue* field = object.find(name);
  if (field == nullptr || !field->is_string())
    fail(line, std::string("missing rational field \"") + name + "\"");
  try {
    return Rat::from_string(field->text);
  } catch (const std::exception&) {
    fail(line, std::string("bad rational in \"") + name + "\": " + field->text);
  }
}

}  // namespace

std::vector<Event> parse_jsonl(std::string_view text) {
  std::vector<Event> events;
  std::size_t line_number = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;

    obs::JsonValue object;
    try {
      object = obs::parse_json(line);
    } catch (const std::exception& error) {
      fail(line_number, error.what());
    }
    if (!object.is_object()) fail(line_number, "event is not a JSON object");
    const obs::JsonValue* tag = object.find("e");
    if (tag == nullptr || !tag->is_string())
      fail(line_number, "missing event tag \"e\"");

    Event event;
    event.session =
        static_cast<std::uint64_t>(int_field(object, "s", line_number));
    if (tag->text == "release") {
      event.kind = Event::Kind::kRelease;
      event.job = int_field(object, "j", line_number);
      event.payload.release = rat_field(object, "r", line_number);
      event.payload.deadline = rat_field(object, "d", line_number);
      event.payload.processing = rat_field(object, "p", line_number);
    } else if (tag->text == "complete") {
      event.kind = Event::Kind::kComplete;
      event.job = int_field(object, "j", line_number);
    } else if (tag->text == "query") {
      event.kind = Event::Kind::kQuery;
    } else {
      fail(line_number, "unknown event tag \"" + tag->text + "\"");
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::string to_jsonl(const std::vector<Event>& events) {
  std::ostringstream os;
  for (const Event& event : events) {
    switch (event.kind) {
      case Event::Kind::kRelease:
        os << "{\"e\":\"release\",\"s\":" << event.session
           << ",\"j\":" << event.job << ",\"r\":\""
           << event.payload.release.to_string() << "\",\"d\":\""
           << event.payload.deadline.to_string() << "\",\"p\":\""
           << event.payload.processing.to_string() << "\"}\n";
        break;
      case Event::Kind::kComplete:
        os << "{\"e\":\"complete\",\"s\":" << event.session
           << ",\"j\":" << event.job << "}\n";
        break;
      case Event::Kind::kQuery:
        os << "{\"e\":\"query\",\"s\":" << event.session << "}\n";
        break;
    }
  }
  return os.str();
}

std::string replay_events(const std::vector<Event>& events,
                          const EngineOptions& options) {
  SessionEngine engine(options);
  engine.ingest(events);
  return engine.report_json();
}

}  // namespace minmach::svc
