// The strong lower bound of Section 3 (Theorem 3 / Lemma 2) as an
// interactive game.
//
// For every non-migratory online algorithm A and every k, the adversary
// builds an instance I_k with O(2^k) jobs and a critical time t_0 such that
//   (i)  A has k unfinished critical jobs on k different machines at t_0,
//   (ii) I_k is feasible on THREE migratory machines (certified here a
//        posteriori by the max-flow substrate).
// Hence A uses Omega(log n) machines while the migratory optimum is 3.
//
// The construction is reactive: which job is released next, and with which
// exact rational parameters, depends on the opponent's observed schedule
// (which machine it committed each job to, and the remaining processing
// times at the critical times). This file implements the recursion
// verbatim:
//   base k = 2: a long job j_1 (p = alpha * scale) plus a stream of short
//     jobs (p = alpha*beta*scale in beta*scale windows) that cannot all
//     share j_1's machine (inequality (1): alpha > 1/2, and
//     floor((2 alpha - 1)/beta) * alpha * beta > 1 - alpha);
//   step k: run I_{k-1}; set eps' = min(eps, remaining work of the k-1
//     critical jobs at t_0); run a copy of I_{k-1} scaled into
//     [t_0, t_0 + eps'/2]; if the two critical-job sets occupy different
//     machine sets, merge them (Case 1); otherwise release one job j* that
//     provably cannot share a machine with any unfinished critical job of
//     the copy (Case 2), forcing machine k.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "minmach/algos/nonmig.hpp"
#include "minmach/algos/reservation.hpp"
#include "minmach/core/instance.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

struct StrongLbParams {
  // Must satisfy alpha in (1/2, 1), beta in (0, 1/2) and inequality (1):
  // floor((2*alpha - 1)/beta) * alpha * beta > 1 - alpha. The paper's
  // example values:
  Rat alpha = Rat(3, 4);
  Rat beta = Rat(1, 4);
  // Safety cap on short jobs per base gadget (theory: deviation is forced
  // after at most floor((2 alpha - 1)/beta) + 1 shorts).
  int max_short_jobs = 16;
};

// One recursive build(k, start, scale) call of the game, as the contiguous
// job range it released: the jobs of I_k, including every nested level.
// Recorded in post-order (children before their parent; the last slice is
// the whole instance). Each slice is itself a complete strong-lb
// sub-instance -- an affine copy of the other same-level builds -- which is
// what the query engine's canonical OPT cache collides on (bench/q01).
struct StrongLbLevelSlice {
  int level = 0;           // the k of this build call (2 = base gadget)
  std::size_t job_begin = 0;  // [job_begin, job_end) in release order
  std::size_t job_end = 0;
};

struct StrongLbResult {
  Instance instance;               // everything the adversary released
  std::vector<JobId> critical_jobs;  // k jobs, k distinct machines
  Rat critical_time;
  std::size_t machines_used = 0;   // machines opened by the opponent
  std::size_t jobs = 0;
  bool opponent_missed_deadline = false;
  std::vector<StrongLbLevelSlice> level_slices;  // post-order, see above
};

// The sub-instance a recorded slice released (jobs [job_begin, job_end) of
// result.instance, absolute times preserved).
[[nodiscard]] Instance slice_instance(const StrongLbResult& result,
                                      const StrongLbLevelSlice& slice);

// Plays the k-level game against the policy. Throws std::logic_error if an
// invariant of the construction fails against this opponent (which would
// falsify Lemma 2 for the policy -- it never does for exact-admission
// policies).
[[nodiscard]] StrongLbResult run_strong_lower_bound(
    NonMigratoryPolicy& policy, int levels,
    const StrongLbParams& params = {});

// Generalized entry point: any policy that commits each job to one machine
// and can report that commitment (e.g. the non-preemptive reservation
// policies). machine_of must return the commitment once the job's release
// has been delivered.
using MachineOfFn = std::function<std::optional<std::size_t>(JobId)>;
[[nodiscard]] StrongLbResult run_strong_lower_bound(
    OnlinePolicy& policy, const MachineOfFn& machine_of, int levels,
    const StrongLbParams& params = {});
[[nodiscard]] StrongLbResult run_strong_lower_bound(
    ReservationPolicy& policy, int levels,
    const StrongLbParams& params = {});

}  // namespace minmach
