#include "minmach/adversary/strong_lb.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "minmach/obs/metrics.hpp"
#include "minmach/obs/trace.hpp"
#include "minmach/sim/engine.hpp"

namespace minmach {

namespace {

class StrongLbGame {
 public:
  StrongLbGame(OnlinePolicy& policy, MachineOfFn machine_of,
               const StrongLbParams& params)
      : machine_of_fn_(std::move(machine_of)), params_(params), sim_(policy) {
    if (!(Rat(1, 2) < params_.alpha && params_.alpha < Rat(1)))
      throw std::invalid_argument("strong_lb: alpha must be in (1/2, 1)");
    if (!(Rat(0) < params_.beta && params_.beta < Rat(1, 2)))
      throw std::invalid_argument("strong_lb: beta must be in (0, 1/2)");
    // Inequality (1): floor((2a-1)/b) * a * b > 1 - a.
    Rat windows(((Rat(2) * params_.alpha - Rat(1)) / params_.beta).floor(),
                BigInt(1));
    if (!(windows * params_.alpha * params_.beta > Rat(1) - params_.alpha))
      throw std::invalid_argument("strong_lb: (alpha, beta) violate Eq. (1)");
  }

  struct Level {
    std::vector<JobId> critical;  // on distinct machines, unfinished at t0
    Rat t0;
    Rat eps;  // offline idle margin after t0 (Lemma 2 (ii))
  };

  // Builds I_k released into [start, start + scale); sim time must be
  // `start` on entry and is `result.t0` on exit. Records the contiguous job
  // range this call (including nested levels and Case 2's j*) released, so
  // consumers can extract every level's sub-instance (StrongLbLevelSlice).
  Level build(int k, const Rat& start, const Rat& scale) {
    const std::size_t job_begin = sim_.instance().size();
    Level out = build_inner(k, start, scale);
    slices_.push_back({k, job_begin, sim_.instance().size()});
    return out;
  }

  Level build_inner(int k, const Rat& start, const Rat& scale) {
    if (k < 2) throw std::invalid_argument("strong_lb: k >= 2 required");
    // Histograms (not gauges): commutative merges keep parallel sweeps
    // byte-deterministic. den_bits tracks how fast the rescaling blows up
    // the rationals' denominators per recursion level.
    obs::Registry& registry = obs::Registry::global();
    registry.histogram("adversary.level_depth").observe(k);
    registry.histogram("adversary.den_bits")
        .observe(static_cast<std::int64_t>(scale.den().bit_length()));
    if (k == 2) return base(start, scale);

    Level prev = build(k - 1, start, scale);

    // eps' = min(eps, remaining work of each critical job at t0), observed
    // from the opponent's actual schedule (Equation (2)).
    Rat eps_prime = prev.eps;
    for (JobId id : prev.critical) {
      check(!sim_.remaining(id).is_zero(),
            "critical job finished before its critical time");
      eps_prime = Rat::min(eps_prime, sim_.remaining(id));
    }

    // Scaled copy of I_{k-1} inside [t0, t0 + eps'/2].
    Level sub = build(k - 1, prev.t0, eps_prime / Rat(2));

    std::set<std::size_t> prev_machines = machines_of(prev.critical);
    std::set<std::size_t> sub_machines = machines_of(sub.critical);

    if (sub_machines != prev_machines) {
      // Case 1: some critical job of the copy sits on a fresh machine.
      for (JobId id : sub.critical) {
        std::size_t m = machine_of(id);
        if (!prev_machines.contains(m)) {
          obs::Registry::global().counter("adversary.case1").add();
          if (obs::trace_enabled())
            obs::trace_event("adversary", "level",
                             {{"k", k}, {"case", 1}, {"t0", sub.t0},
                              {"eps", sub.eps},
                              {"critical", prev.critical.size() + 1}});
          Level out;
          out.critical = prev.critical;
          out.critical.push_back(id);
          out.t0 = sub.t0;
          out.eps = sub.eps;
          check_distinct(out.critical);
          return out;
        }
      }
      check(false, "machine sets differ but no fresh machine found");
    }

    // Case 2: same machine set. Release j* that cannot share a machine
    // with any unfinished critical job of the copy.
    const Rat t0p = sub.t0;  // t'_0 == current sim time
    const Rat window = prev.t0 + eps_prime - t0p;  // W
    Rat min_rem;
    bool first = true;
    for (JobId id : sub.critical) {
      check(!sim_.remaining(id).is_zero(),
            "copy's critical job finished before t'_0");
      if (first || sim_.remaining(id) < min_rem) min_rem = sim_.remaining(id);
      first = false;
    }
    // p* in ( max(W - min_rem, W - eps'/2), W ): lower bounds forbid
    // sharing and finishing by t''_0; upper bound keeps positive laxity.
    Rat lower = Rat::max(window - min_rem, window - eps_prime / Rat(2));
    check(lower < window, "empty parameter interval for j*");
    Rat processing = (lower + window) / Rat(2);

    Job star;
    star.release = t0p;
    star.deadline = prev.t0 + eps_prime;
    star.processing = processing;
    JobId star_id = sim_.submit(star);
    const Rat t0pp = prev.t0 + eps_prime / Rat(2);  // t''_0
    sim_.run_until(t0pp);

    check(!prev_machines.contains(machine_of(star_id)),
          "opponent placed j* on a critical machine despite infeasibility");
    check(!sim_.remaining(star_id).is_zero(), "j* finished before t''_0");
    for (JobId id : prev.critical)
      check(!sim_.remaining(id).is_zero(), "old critical job finished early");

    obs::Registry::global().counter("adversary.case2").add();
    if (obs::trace_enabled())
      obs::trace_event("adversary", "level",
                       {{"k", k}, {"case", 2}, {"t0", t0pp},
                        {"eps", window - processing},
                        {"critical", prev.critical.size() + 1}});
    Level out;
    out.critical = prev.critical;
    out.critical.push_back(star_id);
    out.t0 = t0pp;
    out.eps = window - processing;  // laxity of j* = idle margin on machine 1
    check_distinct(out.critical);
    return out;
  }

  // Base gadget I_2 in [start, start + scale).
  Level base(const Rat& start, const Rat& scale) {
    obs::Registry::global().counter("adversary.base_gadgets").add();
    const Rat alpha = params_.alpha;
    const Rat beta = params_.beta;

    Job j1;
    j1.release = start;
    j1.deadline = start + scale;
    j1.processing = alpha * scale;
    JobId j1_id = sim_.submit(j1);

    const Rat a1 = j1.latest_start();   // r + (1-alpha) * scale
    const Rat short_len = beta * scale;
    sim_.run_until(a1);

    for (int i = 0; i < params_.max_short_jobs; ++i) {
      Job shortjob;
      shortjob.release = a1 + Rat(i) * short_len;
      shortjob.deadline = shortjob.release + short_len;
      shortjob.processing = alpha * short_len;
      sim_.run_until(shortjob.release);
      JobId short_id = sim_.submit(shortjob);
      // Policies commit at release; deliver the release event.
      sim_.run_until(shortjob.release);
      if (machine_of(short_id) != machine_of(j1_id)) {
        // j_2 found; critical time t_0 = a_{j2}.
        Level out;
        Rat t0 = shortjob.latest_start();
        sim_.run_until(t0);
        check(!sim_.remaining(j1_id).is_zero(), "j1 finished before t0");
        check(!sim_.remaining(short_id).is_zero(), "j2 finished before t0");
        out.critical = {j1_id, short_id};
        out.t0 = t0;
        // Offline: j2 idles [t0, t0 + (1-alpha)*beta*scale), j1 can absorb
        // up to its laxity (1-alpha)*scale; the former is smaller.
        out.eps = (Rat(1) - alpha) * short_len;
        check_distinct(out.critical);
        return out;
      }
    }
    check(false,
          "opponent kept every short job on j1's machine (infeasible by "
          "Eq. (1))");
    return {};  // unreachable
  }

  std::size_t machine_of(JobId id) const {
    auto m = machine_of_fn_(id);
    if (!m)
      throw std::logic_error("strong_lb: job has no committed machine");
    return *m;
  }

  std::set<std::size_t> machines_of(const std::vector<JobId>& ids) const {
    std::set<std::size_t> out;
    for (JobId id : ids) out.insert(machine_of(id));
    return out;
  }

  void check_distinct(const std::vector<JobId>& ids) const {
    check(machines_of(ids).size() == ids.size(),
          "critical jobs share a machine");
  }

  static void check(bool condition, const std::string& message) {
    if (!condition)
      throw std::logic_error("strong_lb invariant violated: " + message);
  }

  MachineOfFn machine_of_fn_;
  StrongLbParams params_;
  Simulator sim_;
  std::vector<StrongLbLevelSlice> slices_;
};

}  // namespace

StrongLbResult run_strong_lower_bound(OnlinePolicy& policy,
                                      const MachineOfFn& machine_of,
                                      int levels,
                                      const StrongLbParams& params) {
  if (levels < 2)
    throw std::invalid_argument("run_strong_lower_bound: levels >= 2");
  StrongLbGame game(policy, machine_of, params);
  StrongLbGame::Level top = game.build(levels, Rat(0), Rat(1));

  StrongLbResult result;
  result.critical_jobs = top.critical;
  result.critical_time = top.t0;

  // Let the opponent finish everything it can; then collect the record.
  game.sim_.run_to_completion();
  game.sim_.publish_metrics(policy.name());
  result.instance = game.sim_.instance();
  result.machines_used = game.sim_.machines_used();
  result.jobs = game.sim_.instance().size();
  result.opponent_missed_deadline = game.sim_.any_missed();
  result.level_slices = std::move(game.slices_);
  return result;
}

Instance slice_instance(const StrongLbResult& result,
                        const StrongLbLevelSlice& slice) {
  const std::vector<Job>& jobs = result.instance.jobs();
  auto begin = jobs.begin() + static_cast<std::ptrdiff_t>(slice.job_begin);
  auto end = jobs.begin() + static_cast<std::ptrdiff_t>(slice.job_end);
  return Instance(std::vector<Job>(begin, end));
}

StrongLbResult run_strong_lower_bound(NonMigratoryPolicy& policy, int levels,
                                      const StrongLbParams& params) {
  return run_strong_lower_bound(
      policy, [&policy](JobId id) { return policy.machine_of(id); }, levels,
      params);
}

StrongLbResult run_strong_lower_bound(ReservationPolicy& policy, int levels,
                                      const StrongLbParams& params) {
  return run_strong_lower_bound(
      policy, [&policy](JobId id) { return policy.machine_of(id); }, levels,
      params);
}

}  // namespace minmach
