// Instances separating EDF from LLF (the Phillips et al. baselines quoted
// in Section 1: LLF is O(log Delta)-competitive while EDF has an
// Omega(Delta) lower bound, Delta = max/min processing-time ratio).
//
// The separator is the Dhall-effect gadget: Delta "light" jobs
// (p = 1/Delta, d = 1) released together with one zero-ish-laxity "heavy"
// job (p = 1, d = 1 + 1/(2 Delta)). EDF serves the lights first (earlier
// deadline) on every machine it owns, so with any budget below ~Delta the
// heavy job starts too late and misses; the optimum runs the heavy alone
// and chains all lights on ONE other machine (their total work is 1), so
// OPT = 2 independent of Delta. LLF runs the heavy immediately (its laxity
// is the smallest) and is fine with O(1) machines. Experiment E12 measures
// the minimal surviving budget of both policies as Delta grows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "minmach/core/instance.hpp"
#include "minmach/sim/engine.hpp"

namespace minmach {

// One gadget per repeat, separated by `spacing` (>= 2 keeps gadgets
// disjoint in time so OPT stays 2; spacing < 2 overlaps the heavy tails).
[[nodiscard]] Instance gen_dhall(std::int64_t delta, int repeats = 1,
                                 const Rat& spacing = Rat(2));

// Smallest machine budget in [lo, hi] with which the policy finishes the
// instance without a deadline miss, or nullopt if none works. Scans
// linearly upward: EDF feasibility is NOT monotone in the budget in
// general (scheduling anomalies), so binary search would be unsound.
using PolicyFactory =
    std::function<std::unique_ptr<OnlinePolicy>(std::size_t budget)>;
[[nodiscard]] std::optional<std::size_t> min_feasible_budget(
    const PolicyFactory& factory, const Instance& instance, std::size_t lo,
    std::size_t hi);

}  // namespace minmach
