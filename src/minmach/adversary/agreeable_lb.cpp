#include "minmach/adversary/agreeable_lb.hpp"

#include <stdexcept>

#include "minmach/flow/feasibility.hpp"

namespace minmach {

namespace {

// Could ANY schedule on `budget` machines, starting from the opponent's
// current remaining workload, absorb `count` zero-laxity unit jobs due at
// now + 1? Exact max-flow test; if it says no, the opponent (whatever its
// policy) must miss once the threat is released.
bool can_absorb_threat(const Simulator& sim, std::int64_t budget,
                       std::int64_t count) {
  Instance snapshot;
  for (JobId id = 0; id < sim.job_count(); ++id) {
    if (!sim.released(id) || sim.finished(id) || sim.missed(id)) continue;
    if (sim.remaining(id).is_zero()) continue;
    snapshot.add_job({sim.now(), sim.job(id).deadline, sim.remaining(id)});
  }
  for (std::int64_t i = 0; i < count; ++i)
    snapshot.add_job({sim.now(), sim.now() + Rat(1), Rat(1)});
  return feasible_migratory(snapshot, budget);
}

}  // namespace

AgreeableLbResult run_agreeable_lower_bound(OnlinePolicy& policy,
                                            const AgreeableLbParams& params) {
  if (params.m <= 0)
    throw std::invalid_argument("agreeable_lb: m must be positive");
  Rat type2_count_rat = params.alpha * Rat(params.m);
  if (!type2_count_rat.is_integer())
    throw std::invalid_argument("agreeable_lb: alpha * m must be integral");
  const std::int64_t type2_count = type2_count_rat.floor().to_int64();
  const std::int64_t threat_count = params.m - type2_count;  // (1-alpha) m
  const Rat round_length = Rat(1) + params.alpha;

  Simulator sim(policy);
  AgreeableLbResult result;

  Rat t(0);
  for (int round = 0; round < params.max_rounds && !result.missed; ++round) {
    // Wave at t: m type-1 jobs (d = t+1+alpha) and alpha*m type-2 (d = t+2).
    for (std::int64_t i = 0; i < params.m; ++i) {
      Job j;
      j.release = t;
      j.deadline = t + round_length;
      j.processing = Rat(1);
      sim.submit(j);
    }
    for (std::int64_t i = 0; i < type2_count; ++i) {
      Job j;
      j.release = t;
      j.deadline = t + Rat(2);
      j.processing = Rat(1);
      sim.submit(j);
    }

    // The t+1 branch point: release the zero-laxity threat wave iff the
    // opponent can no longer absorb it on its budget.
    sim.run_until(t + Rat(1));
    if (sim.any_missed()) {
      result.missed = true;
      break;
    }
    if (!can_absorb_threat(sim, params.opponent_budget, threat_count)) {
      result.threat_released = true;
      for (std::int64_t i = 0; i < threat_count; ++i) {
        Job j;
        j.release = t + Rat(1);
        j.deadline = t + Rat(2);
        j.processing = Rat(1);
        sim.submit(j);
      }
      sim.run_until(t + Rat(2));
      result.missed = sim.any_missed();
      break;
    }

    t += round_length;
    sim.run_until(t);
    if (sim.any_missed()) {
      result.missed = true;
      break;
    }
    result.rounds_survived = round + 1;
    Rat backlog(0);
    for (JobId id = 0; id < sim.job_count(); ++id) {
      if (sim.released(id) && !sim.finished(id) && !sim.missed(id))
        backlog += sim.remaining(id);
    }
    result.backlog.push_back(backlog);
  }

  // Let the tail play out (type-2 deadlines extend past the last round).
  if (!result.missed) {
    sim.run_to_completion();
    if (sim.any_missed()) result.missed = true;
  }

  result.instance = sim.instance();
  result.jobs = sim.instance().size();
  return result;
}

}  // namespace minmach
