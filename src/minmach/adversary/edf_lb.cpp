#include "minmach/adversary/edf_lb.hpp"

#include <stdexcept>

namespace minmach {

Instance gen_dhall(std::int64_t delta, int repeats, const Rat& spacing) {
  if (delta < 2)
    throw std::invalid_argument("gen_dhall: delta must be >= 2");
  if (repeats < 1)
    throw std::invalid_argument("gen_dhall: repeats must be >= 1");

  Instance out;
  const Rat light_p(1, delta);
  const Rat heavy_margin(1, 2 * delta);
  for (int r = 0; r < repeats; ++r) {
    Rat t = spacing * Rat(r);
    Job heavy;
    heavy.release = t;
    heavy.processing = Rat(1);
    heavy.deadline = t + Rat(1) + heavy_margin;
    out.add_job(heavy);
    for (std::int64_t i = 0; i < delta; ++i) {
      Job light;
      light.release = t;
      light.processing = light_p;
      light.deadline = t + Rat(1);
      out.add_job(light);
    }
  }
  return out;
}

std::optional<std::size_t> min_feasible_budget(const PolicyFactory& factory,
                                               const Instance& instance,
                                               std::size_t lo,
                                               std::size_t hi) {
  for (std::size_t budget = lo; budget <= hi; ++budget) {
    auto policy = factory(budget);
    SimRun run = simulate(*policy, instance, Rat(1),
                          /*require_no_miss=*/false);
    if (!run.missed) return budget;
  }
  return std::nullopt;
}

}  // namespace minmach
