// The agreeable lower bound (Section 6.2, Lemma 9 / Theorem 15): no online
// algorithm -- even migratory -- can schedule all agreeable instances with
// identical processing times on fewer than (6 - 2*sqrt(6)) * m ~ 1.101 m
// machines.
//
// Lemma 9's wave: when the algorithm is "behind by w" at time t, release m
// type-1 jobs (p = 1, d = t + 1 + a) and a*m type-2 jobs (p = 1, d = t + 2).
// The proof's key device is a THREAT: "(1-a)m jobs with p = 1 and d = t + 2
// could be released at time t + 1 without violating feasibility". An online
// algorithm cannot distinguish the two branches before t + 1, so either it
// reserves (1-a)m machines' worth of capacity in [t+1, t+1+a] -- and then
// its type-1/type-2 progress falls behind by a fixed delta > 0 per wave
// whenever its budget is below (1 + beta) m with beta < 5 - 2*sqrt(6) --
// or the adversary actually releases the zero-laxity threat wave and the
// algorithm misses immediately.
//
// The driver realizes the branch adaptively: at each t + 1 it checks (by
// exact max-flow over the opponent's remaining workload) whether the
// opponent could still absorb the threat wave on its machine budget. If
// not, the threat is released -- no algorithm on that budget can survive it
// -- and the game is won. Otherwise the next wave starts at t' = t + 1 + a.
// Backlog accumulation makes the test fail eventually for any budget below
// the threshold; the experiment sweeps the budget across ~1.101 m.
#pragma once

#include <cstdint>
#include <vector>

#include "minmach/core/instance.hpp"
#include "minmach/sim/engine.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

struct AgreeableLbParams {
  std::int64_t m = 20;      // the optimum the adversary maintains
  Rat alpha = Rat(9, 40);   // ~ (sqrt(6)-2)/2 ~ 0.2247; alpha*m must be integer
  int max_rounds = 50;
  // Budget the kill test assumes the opponent has (the b in "could the
  // opponent still absorb the threat on b machines"). Must match the
  // policy's actual machine budget.
  std::int64_t opponent_budget = 20;
};

struct AgreeableLbResult {
  Instance instance;           // all waves (and possibly the threat) released
  std::vector<Rat> backlog;    // unfinished work at the end of each round
  bool missed = false;
  bool threat_released = false;  // the t+1 zero-laxity branch was taken
  int rounds_survived = 0;       // rounds completed without a miss
  std::size_t jobs = 0;
};

// Plays waves against the policy. Stops at the first deadline miss (either
// organic or forced by the threat branch) or after max_rounds.
[[nodiscard]] AgreeableLbResult run_agreeable_lower_bound(
    OnlinePolicy& policy, const AgreeableLbParams& params = {});

}  // namespace minmach
