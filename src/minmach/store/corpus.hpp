// Memory-mapped columnar instance corpus (DESIGN.md §16).
//
// A corpus freezes a set of instances into one immutable file laid out SoA:
// a 128-byte header, a directory of fixed-size instance records, then the
// int64 `r` / `d` / `p` columns, then the rational side-table (numerator /
// denominator columns) for instances that do not land on a small integer
// grid, then a text blob holding the io/serialize form of instances whose
// rationals exceed even int64 numerators/denominators (deep strong-lb
// slices) -- the writer is total: every well-formed Instance freezes.
// Opening is zero-copy: the header and directory are validated in
// O(1) (magic, format version, endianness guard, header checksum) and the
// columns are consumed straight out of the mapping -- the oracle's and the
// session engine's int64 fast paths read `JobColumns` pointers into the
// file with no `Instance` materialized.
//
// Integer encoding of rational grids: an instance whose denominator LCM is
// small is stored as its affine image t -> lcm * t, i.e. int64 columns plus
// a per-instance `scale`. OPT, feasibility(m), and the affine-canonical
// fingerprint are invariant under that map (DESIGN.md §11), so consumers
// that only need answers (the oracle, the cache) use the scaled columns
// directly; `InstanceView::job()` divides the scale back out for consumers
// that need original time coordinates.
//
// Torn-write posture: the writer builds the whole file in memory, writes a
// temporary sibling, and rename()s it into place, so a corpus path either
// holds a complete old version or a complete new one. The payload checksum
// covers everything after the header; verification is optional at open
// (`verify_payload`) because the O(1)-reopen guarantee is the point of the
// format, and explicit via `verify()`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "minmach/core/instance.hpp"
#include "minmach/store/mmap_file.hpp"

namespace minmach::store {

inline constexpr std::uint64_t kCorpusMagic = 0x315350524F434D4DULL;  // "MMCORPS1"
inline constexpr std::uint32_t kCorpusFormatVersion = 1;
inline constexpr std::uint32_t kEndianGuard = 0x01020304;

// On-disk header, 128 bytes, little-endian int fields. `header_checksum` is
// checksum64 over the preceding 120 bytes and is always verified at open;
// `payload_checksum` covers every byte after the header and is verified
// when asked (open option or verify()).
struct CorpusHeader {
  std::uint64_t magic = kCorpusMagic;
  std::uint32_t format_version = kCorpusFormatVersion;
  std::uint32_t endian_guard = kEndianGuard;
  std::uint64_t instance_count = 0;
  std::uint64_t i64_jobs = 0;    // total jobs across int64-grid instances
  std::uint64_t rat_jobs = 0;    // total jobs across rational instances
  std::uint64_t text_bytes = 0;  // big-rational text blob length
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
  std::uint64_t reserved[7] = {};
  std::uint64_t header_checksum = 0;
};
static_assert(sizeof(CorpusHeader) == 128);

// Directory entry, 32 bytes. `job_begin` indexes the column family selected
// by `kind`: int64 columns for kInt64Grid, the rational side-table for
// kRational, and a BYTE offset into the text blob for kBigText (whose
// `scale` field holds the blob length in bytes instead of a grid scale).
struct InstanceRecord {
  static constexpr std::uint32_t kInt64Grid = 0;
  static constexpr std::uint32_t kRational = 1;
  static constexpr std::uint32_t kBigText = 2;

  std::uint64_t job_begin = 0;
  std::uint64_t job_count = 0;
  std::int64_t scale = 1;  // denominator LCM the int64 columns are scaled by
  std::uint32_t kind = kInt64Grid;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(InstanceRecord) == 32);

class Corpus;

// Borrowed view of one instance inside an open corpus. Cheap to copy; valid
// while the corpus is open.
class InstanceView {
 public:
  [[nodiscard]] std::size_t size() const { return record_->job_count; }
  // True when the instance is stored as scaled int64 columns (the zero-copy
  // fast path); false for the rational side-table.
  [[nodiscard]] bool int64_grid() const {
    return record_->kind == InstanceRecord::kInt64Grid;
  }
  [[nodiscard]] std::int64_t scale() const { return record_->scale; }

  // int64-grid accessors; meaningless (null) for rational instances.
  [[nodiscard]] const std::int64_t* release() const { return release_; }
  [[nodiscard]] const std::int64_t* deadline() const { return deadline_; }
  [[nodiscard]] const std::int64_t* processing() const { return processing_; }
  [[nodiscard]] JobColumns columns() const {
    return {release_, deadline_, processing_, record_->job_count};
  }

  // The job in ORIGINAL time coordinates (scale divided back out on the
  // int64 path, exact rational reconstruction on the side-table path).
  // O(instance) per call for kBigText instances (the text blob is parsed
  // whole) -- batch consumers should materialize() those once instead.
  [[nodiscard]] Job job(std::size_t index) const;

  // Full Instance copy in original coordinates; round-trips byte-exactly
  // through io/serialize against the instance the writer was fed.
  [[nodiscard]] Instance materialize() const;

 private:
  friend class Corpus;
  const InstanceRecord* record_ = nullptr;
  const std::int64_t* release_ = nullptr;
  const std::int64_t* deadline_ = nullptr;
  const std::int64_t* processing_ = nullptr;
  // Rational side-table columns (numerator/denominator per field).
  const std::int64_t* rat_cols_[6] = {};
  const char* text_ = nullptr;  // kBigText: io/serialize blob start
};

// Accumulates instances and freezes them into a corpus file.
class CorpusWriter {
 public:
  // Total over well-formed instances: small denominator LCMs freeze as a
  // scaled int64 grid, int64-representable rationals as the side-table,
  // and anything bigger as an exact io/serialize text blob.
  void add(const Instance& instance);

  [[nodiscard]] std::size_t size() const { return records_.size(); }

  // Writes tmp + rename; throws std::runtime_error on IO failure. The
  // writer can keep accumulating and write again afterwards.
  void write(const std::string& path) const;

 private:
  std::vector<InstanceRecord> records_;
  std::vector<std::int64_t> i64_[3];      // r, d, p
  std::vector<std::int64_t> rat_[6];      // rn, rd, dn, dd, pn, pd
  std::string text_;                      // big-rational io/serialize blobs
};

struct CorpusOpenOptions {
  // Verify the payload checksum at open (one pass over the mapping). Off
  // for latency-sensitive reopens; the header checksum is checked always.
  bool verify_payload = true;
};

// Zero-copy reader. The constructor maps the file, validates the header
// (and optionally the payload), and wires the column base pointers; views
// then cost a few adds. Throws std::runtime_error with a diagnostic naming
// the failing guard (missing file, bad magic, version or endianness
// mismatch, checksum mismatch, truncation).
class Corpus {
 public:
  explicit Corpus(const std::string& path, CorpusOpenOptions options = {});

  [[nodiscard]] std::size_t size() const { return records_count_; }
  [[nodiscard]] InstanceView view(std::size_t index) const;
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t mapped_bytes() const { return file_.size(); }

  // Full payload checksum audit; throws std::runtime_error on mismatch.
  void verify() const;

 private:
  std::string path_;
  MappedFile file_;
  CorpusHeader header_;
  const InstanceRecord* records_ = nullptr;
  std::size_t records_count_ = 0;
  const std::int64_t* i64_cols_[3] = {};
  const std::int64_t* rat_cols_[6] = {};
  const char* text_ = nullptr;
};

}  // namespace minmach::store
