#include "minmach/store/corpus.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "minmach/io/serialize.hpp"
#include "minmach/obs/profile.hpp"
#include "minmach/util/bigint.hpp"

namespace minmach::store {

namespace {

constexpr std::size_t kHeaderChecksumOffset =
    sizeof(CorpusHeader) - sizeof(std::uint64_t);

// Largest denominator LCM we scale onto an int64 grid. 40 bits of scale
// leaves 22 bits of headroom before typical gen/ horizons push a scaled
// value past the 62-bit guard below.
constexpr std::size_t kMaxScaleBits = 40;
constexpr std::size_t kMaxScaledBits = 62;

// value * (lcm / value.den()) -- exact because lcm is a multiple of den.
bool scale_to_i64(const Rat& value, const BigInt& lcm, std::int64_t& out) {
  const BigInt scaled = value.num() * (lcm / value.den());
  if (scaled.bit_length() > kMaxScaledBits) return false;
  out = scaled.to_int64();
  return true;
}

bool fits_i64(const Rat& value, std::int64_t& num, std::int64_t& den) {
  if (!value.num().fits_int64() || !value.den().fits_int64()) return false;
  num = value.num().to_int64();
  den = value.den().to_int64();
  return true;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("store: corpus " + path + ": " + what);
}

}  // namespace

void CorpusWriter::add(const Instance& instance) {
  InstanceRecord rec;
  rec.job_count = instance.size();

  const BigInt lcm = instance.denominator_lcm();
  if (lcm.bit_length() <= kMaxScaleBits) {
    std::int64_t scaled[3];
    std::vector<std::int64_t> cols[3];
    bool fits = true;
    for (const Job& job : instance.jobs()) {
      fits = scale_to_i64(job.release, lcm, scaled[0]) &&
             scale_to_i64(job.deadline, lcm, scaled[1]) &&
             scale_to_i64(job.processing, lcm, scaled[2]);
      if (!fits) break;
      for (int c = 0; c < 3; ++c) cols[c].push_back(scaled[c]);
    }
    if (fits) {
      rec.kind = InstanceRecord::kInt64Grid;
      rec.scale = lcm.to_int64();
      rec.job_begin = i64_[0].size();
      for (int c = 0; c < 3; ++c)
        i64_[c].insert(i64_[c].end(), cols[c].begin(), cols[c].end());
      records_.push_back(rec);
      return;
    }
  }

  // Rational side-table: exact numerator/denominator columns.
  {
    std::vector<std::int64_t> cols[6];
    bool fits = true;
    for (const Job& job : instance.jobs()) {
      const Rat* fields[3] = {&job.release, &job.deadline, &job.processing};
      for (int f = 0; fits && f < 3; ++f) {
        std::int64_t num = 0;
        std::int64_t den = 1;
        fits = fits_i64(*fields[f], num, den);
        if (fits) {
          cols[2 * f].push_back(num);
          cols[2 * f + 1].push_back(den);
        }
      }
      if (!fits) break;
    }
    if (fits) {
      rec.kind = InstanceRecord::kRational;
      rec.scale = 1;
      rec.job_begin = rat_[0].size();
      for (int c = 0; c < 6; ++c)
        rat_[c].insert(rat_[c].end(), cols[c].begin(), cols[c].end());
      records_.push_back(rec);
      return;
    }
  }

  // Last resort, exact for ANY instance: the io/serialize text form (deep
  // strong-lb slices grow numerators past int64). job_begin/scale become
  // byte offset/length into the shared text blob.
  const std::string text = to_text(instance);
  rec.kind = InstanceRecord::kBigText;
  rec.job_begin = text_.size();
  rec.scale = static_cast<std::int64_t>(text.size());
  text_ += text;
  records_.push_back(rec);
}

void CorpusWriter::write(const std::string& path) const {
  CorpusHeader header;
  header.instance_count = records_.size();
  header.i64_jobs = i64_[0].size();
  header.rat_jobs = rat_[0].size();
  header.text_bytes = text_.size();

  std::vector<std::byte> payload;
  auto append = [&payload](const void* data, std::size_t bytes) {
    const auto* src = static_cast<const std::byte*>(data);
    payload.insert(payload.end(), src, src + bytes);
  };
  append(records_.data(), records_.size() * sizeof(InstanceRecord));
  for (const auto& col : i64_)
    append(col.data(), col.size() * sizeof(std::int64_t));
  for (const auto& col : rat_)
    append(col.data(), col.size() * sizeof(std::int64_t));
  append(text_.data(), text_.size());

  header.payload_bytes = payload.size();
  header.payload_checksum = checksum64(payload.data(), payload.size());
  header.header_checksum = checksum64(&header, kHeaderChecksumOffset);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("store: cannot write " + tmp);
    }
  }
  // rename() is atomic on POSIX: readers see the old complete file or the
  // new complete file, and open mappings keep the old inode.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("store: cannot rename " + tmp + " to " + path);
  }
}

Corpus::Corpus(const std::string& path, CorpusOpenOptions options)
    : path_(path), file_(path) {
  obs::ProfileSpan span("corpus_open");
  if (file_.size() < sizeof(CorpusHeader))
    fail(path_, "truncated (smaller than header)");
  std::memcpy(&header_, file_.data(), sizeof(header_));

  if (header_.magic != kCorpusMagic) fail(path_, "bad magic (not a corpus)");
  if (header_.endian_guard != kEndianGuard)
    fail(path_, "endianness mismatch (file written on an incompatible "
                "byte-order host)");
  if (header_.format_version != kCorpusFormatVersion)
    fail(path_, "format version " + std::to_string(header_.format_version) +
                " unsupported (expected " +
                std::to_string(kCorpusFormatVersion) + ")");
  if (checksum64(file_.data(), kHeaderChecksumOffset) !=
      header_.header_checksum)
    fail(path_, "header checksum mismatch");
  if (file_.size() != sizeof(CorpusHeader) + header_.payload_bytes)
    fail(path_, "payload size mismatch");

  const std::uint64_t records_bytes =
      header_.instance_count * sizeof(InstanceRecord);
  const std::uint64_t expected = records_bytes +
                                 3 * header_.i64_jobs * sizeof(std::int64_t) +
                                 6 * header_.rat_jobs * sizeof(std::int64_t) +
                                 header_.text_bytes;
  if (header_.payload_bytes != expected) fail(path_, "column layout mismatch");

  const std::byte* cursor = file_.data() + sizeof(CorpusHeader);
  records_ = reinterpret_cast<const InstanceRecord*>(cursor);
  records_count_ = header_.instance_count;
  cursor += records_bytes;
  for (auto& col : i64_cols_) {
    col = reinterpret_cast<const std::int64_t*>(cursor);
    cursor += header_.i64_jobs * sizeof(std::int64_t);
  }
  for (auto& col : rat_cols_) {
    col = reinterpret_cast<const std::int64_t*>(cursor);
    cursor += header_.rat_jobs * sizeof(std::int64_t);
  }
  text_ = reinterpret_cast<const char*>(cursor);

  for (std::size_t i = 0; i < records_count_; ++i) {
    const InstanceRecord& rec = records_[i];
    bool ok = rec.scale >= 1;
    if (rec.kind == InstanceRecord::kInt64Grid ||
        rec.kind == InstanceRecord::kRational) {
      // job_begin/job_count index the kind's column family.
      const std::uint64_t jobs = rec.kind == InstanceRecord::kInt64Grid
                                     ? header_.i64_jobs
                                     : header_.rat_jobs;
      ok = ok && rec.job_begin <= jobs && rec.job_count <= jobs - rec.job_begin;
    } else if (rec.kind == InstanceRecord::kBigText) {
      // job_begin/scale are a byte range into the text blob.
      const std::uint64_t len = static_cast<std::uint64_t>(rec.scale);
      ok = ok && rec.job_begin <= header_.text_bytes &&
           len <= header_.text_bytes - rec.job_begin;
    } else {
      ok = false;
    }
    if (!ok) fail(path_, "invalid instance record " + std::to_string(i));
  }

  if (options.verify_payload) verify();
}

void Corpus::verify() const {
  const std::byte* payload = file_.data() + sizeof(CorpusHeader);
  if (checksum64(payload, header_.payload_bytes) != header_.payload_checksum)
    fail(path_, "payload checksum mismatch");
}

InstanceView Corpus::view(std::size_t index) const {
  const InstanceRecord& rec = records_[index];
  InstanceView view;
  view.record_ = &rec;
  if (rec.kind == InstanceRecord::kInt64Grid) {
    view.release_ = i64_cols_[0] + rec.job_begin;
    view.deadline_ = i64_cols_[1] + rec.job_begin;
    view.processing_ = i64_cols_[2] + rec.job_begin;
  } else if (rec.kind == InstanceRecord::kRational) {
    for (int c = 0; c < 6; ++c)
      view.rat_cols_[c] = rat_cols_[c] + rec.job_begin;
  } else {
    view.text_ = text_ + rec.job_begin;
  }
  return view;
}

Job InstanceView::job(std::size_t index) const {
  if (int64_grid()) {
    const std::int64_t scale = record_->scale;
    return {Rat(release_[index], scale), Rat(deadline_[index], scale),
            Rat(processing_[index], scale)};
  }
  if (record_->kind == InstanceRecord::kRational)
    return {Rat(rat_cols_[0][index], rat_cols_[1][index]),
            Rat(rat_cols_[2][index], rat_cols_[3][index]),
            Rat(rat_cols_[4][index], rat_cols_[5][index])};
  return materialize().jobs()[index];  // kBigText: O(instance) per call
}

Instance InstanceView::materialize() const {
  if (record_->kind == InstanceRecord::kBigText)
    return instance_from_text(std::string_view(
        text_, static_cast<std::size_t>(record_->scale)));
  Instance out;
  for (std::size_t i = 0; i < size(); ++i) out.add_job(job(i));
  return out;
}

}  // namespace minmach::store
