// Persistent second tier for the affine-canonical OPT cache (DESIGN.md
// §16): an mmap'd sorted table plus a write-ahead log, implementing
// util::CacheStore so util/opt_cache.* falls through to disk on RAM misses
// and forwards changed inserts here. A fleet of workers pointed at the same
// --cache-file shares warmed verdicts, OPT values, and bounds across runs.
//
// On disk:
//  * `<path>`       -- 64-byte header + entries sorted by (fp.hi, fp.lo,
//                      key), binary-searched straight out of the mapping.
//                      Rewritten only by compaction (tmp + rename, so
//                      concurrent readers keep the old inode).
//  * `<path>.wal`   -- append-only 40-byte records (entry + per-record
//                      checksum), the only file written in place. Read with
//                      buffered IO, never mapped. Replay stops at the first
//                      record whose checksum fails or that is short: a torn
//                      tail is dropped, never trusted, and earlier records
//                      survive.
//
// Versioning: the header carries a format version (layout of these structs)
// and a schema version (meaning of the cached values). Either mismatching
// refuses the file with a diagnostic -- stale caches are invalidated by
// version bump, never migrated in place.
//
// Tallies (exec-class): store.hits_disk, store.wal_appends.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>

#include "minmach/store/corpus.hpp"  // kEndianGuard
#include "minmach/store/mmap_file.hpp"
#include "minmach/util/opt_cache.hpp"

namespace minmach::store {

inline constexpr std::uint64_t kCacheMagic = 0x45484341434F4D4DULL;  // "MMOCACHE"
inline constexpr std::uint32_t kCacheFormatVersion = 1;
// Bumped whenever the meaning of cached values changes (fingerprint
// algorithm, verdict encoding, bounds packing); old files are then refused.
inline constexpr std::uint32_t kCacheSchemaVersion = 1;

struct CacheHeader {
  std::uint64_t magic = kCacheMagic;
  std::uint32_t format_version = kCacheFormatVersion;
  std::uint32_t endian_guard = kEndianGuard;
  std::uint32_t schema_version = kCacheSchemaVersion;
  std::uint32_t reserved0 = 0;
  std::uint64_t entry_count = 0;
  std::uint64_t payload_checksum = 0;
  std::uint64_t reserved1 = 0;
  std::uint64_t reserved2 = 0;
  std::uint64_t header_checksum = 0;
};
static_assert(sizeof(CacheHeader) == 64);

// One cached value: the raw (fingerprint, machine-key) -> value triple of
// OptCache's entry table (key < 0 encodes OPT / bounds queries there).
struct CacheEntry {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::int64_t key = 0;
  std::int64_t value = 0;
};
static_assert(sizeof(CacheEntry) == 32);

class PersistentCache : public util::CacheStore {
 public:
  // Opens (or initializes, when `path` does not exist yet) the cache and
  // replays the WAL. Throws std::runtime_error when an existing file fails
  // validation -- a corrupt or version-mismatched cache is refused, never
  // silently rebuilt, so the caller decides whether to delete it.
  explicit PersistentCache(const std::string& path);
  // Best-effort flush() (exceptions swallowed: destructors must not throw;
  // an unflushed WAL replays next open anyway).
  ~PersistentCache() override;

  PersistentCache(const PersistentCache&) = delete;
  PersistentCache& operator=(const PersistentCache&) = delete;

  [[nodiscard]] std::optional<std::int64_t> load(const util::Digest128& fp,
                                                 std::int64_t key) override;
  void store(const util::Digest128& fp, std::int64_t key,
             std::int64_t value) override;

  // Compacts: merges the sorted table with the WAL overlay (overlay wins),
  // rewrites the table (tmp + rename), remaps, and deletes the WAL. Throws
  // std::runtime_error on IO failure.
  void flush();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t table_entries() const;
  [[nodiscard]] std::size_t overlay_entries() const;
  // Bytes of torn/partial WAL tail dropped by replay at open (0 on a clean
  // log).
  [[nodiscard]] std::size_t wal_dropped_bytes() const {
    return wal_dropped_bytes_;
  }

 private:
  using OverlayKey = std::tuple<std::uint64_t, std::uint64_t, std::int64_t>;

  void open_table();
  void replay_wal();
  [[nodiscard]] std::optional<std::int64_t> table_find(
      const util::Digest128& fp, std::int64_t key) const;

  std::string path_;
  std::string wal_path_;
  mutable std::mutex mutex_;
  MappedFile table_file_;
  CacheHeader header_;
  const CacheEntry* entries_ = nullptr;  // into table_file_
  // WAL replay + this process's unflushed inserts; last write wins.
  std::map<OverlayKey, std::int64_t> overlay_;
  std::ofstream wal_out_;  // opened lazily on first append
  std::size_t wal_dropped_bytes_ = 0;
};

}  // namespace minmach::store
