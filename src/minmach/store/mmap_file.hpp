// Zero-copy file access for the persistence layer (DESIGN.md §16): a
// read-only shared memory mapping plus the checksum primitive every on-disk
// format in store/ stamps its headers and payloads with.
//
// The mapping is immutable-by-contract: writers never modify a mapped file
// in place. The corpus writer and the cache compactor both write a
// temporary sibling and rename() it over the old file, so an open mapping
// keeps addressing the old inode (POSIX keeps it alive until the last
// mapping drops) and readers are never exposed to a half-written file. The
// append-only WAL is the one file written while readers may be looking; it
// is read with plain buffered IO, never mapped, exactly because a mapping
// could observe a page mid-write.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace minmach::store {

// Word-chained mix64 checksum over a byte range. Not cryptographic: the
// target is detecting torn writes, truncation, and byte flips in corpus and
// cache files, where any avalanche-quality 64-bit fold does the job. The
// trailing partial word is length-padded so "abc" and "abc\0" differ.
[[nodiscard]] std::uint64_t checksum64(const void* data, std::size_t size);

// Read-only shared mapping of a whole file. Move-only; unmaps on
// destruction. On platforms without mmap (or when mapping fails for an
// otherwise readable file) it degrades to a heap copy of the contents --
// callers see identical bytes either way, only "store.mmap_bytes" stops
// counting. Successful maps tally their size into "store.mmap_bytes".
class MappedFile {
 public:
  MappedFile() = default;
  // Throws std::runtime_error if the file cannot be opened, sized, or read.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  // True when the bytes come from an actual memory mapping (zero-copy), as
  // opposed to the heap-copy fallback.
  [[nodiscard]] bool mapped() const { return mapped_; }

  // Unmaps/frees and returns to the default-constructed state.
  void reset();

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace minmach::store
