#include "minmach/store/mmap_file.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "minmach/obs/metrics.hpp"
#include "minmach/util/hash.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define MINMACH_STORE_HAS_MMAP 1
#else
#define MINMACH_STORE_HAS_MMAP 0
#endif

namespace minmach::store {

std::uint64_t checksum64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t acc = 0x9e3779b97f4a7c15ULL ^ size;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes + i, 8);
    acc = util::mix64(acc ^ word);
  }
  std::uint64_t tail = 0;
  for (std::size_t k = 0; i + k < size; ++k)
    tail |= static_cast<std::uint64_t>(bytes[i + k]) << (8 * k);
  return util::mix64(acc ^ tail ^ (size << 56 | size));
}

namespace {

// Heap fallback shared by the no-mmap platform path and mmap failures on a
// readable file. Returns an owned buffer the MappedFile frees as byte[].
const std::byte* read_whole_file(const std::string& path, std::size_t size) {
  auto* buffer = new std::byte[size == 0 ? 1 : size];
  std::ifstream in(path, std::ios::binary);
  if (!in || !in.read(reinterpret_cast<char*>(buffer),
                      static_cast<std::streamsize>(size))) {
    delete[] buffer;
    throw std::runtime_error("store: cannot read " + path);
  }
  return buffer;
}

}  // namespace

MappedFile::MappedFile(const std::string& path) {
#if MINMACH_STORE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("store: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("store: cannot stat " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    return;  // empty file: valid, nothing to map
  }
  void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the inode
  if (addr != MAP_FAILED) {
    data_ = static_cast<const std::byte*>(addr);
    mapped_ = true;
    obs::Registry::global().counter("store.mmap_bytes").add(size_);
    return;
  }
  data_ = read_whole_file(path, size_);
#else
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  if (!probe) throw std::runtime_error("store: cannot open " + path);
  size_ = static_cast<std::size_t>(probe.tellg());
  probe.close();
  if (size_ == 0) return;
  data_ = read_whole_file(path, size_);
#endif
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

void MappedFile::reset() {
  if (data_ != nullptr) {
#if MINMACH_STORE_HAS_MMAP
    if (mapped_) {
      ::munmap(const_cast<std::byte*>(data_), size_);
    } else {
      delete[] data_;
    }
#else
    delete[] data_;
#endif
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

}  // namespace minmach::store
