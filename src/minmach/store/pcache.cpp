#include "minmach/store/pcache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <stdexcept>
#include <vector>

#include "minmach/obs/metrics.hpp"
#include "minmach/obs/profile.hpp"

namespace minmach::store {

namespace {

constexpr std::size_t kHeaderChecksumOffset =
    sizeof(CacheHeader) - sizeof(std::uint64_t);
constexpr std::size_t kWalRecordBytes =
    sizeof(CacheEntry) + sizeof(std::uint64_t);

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("store: cache " + path + ": " + what);
}

bool entry_less(const CacheEntry& a, const CacheEntry& b) {
  return std::tie(a.hi, a.lo, a.key) < std::tie(b.hi, b.lo, b.key);
}

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

}  // namespace

PersistentCache::PersistentCache(const std::string& path)
    : path_(path), wal_path_(path + ".wal") {
  open_table();
  replay_wal();
}

PersistentCache::~PersistentCache() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; the unflushed WAL replays at next open.
  }
}

void PersistentCache::open_table() {
  if (!file_exists(path_)) return;  // fresh cache: empty table, header defaults
  table_file_ = MappedFile(path_);
  if (table_file_.size() < sizeof(CacheHeader))
    fail(path_, "truncated (smaller than header)");
  std::memcpy(&header_, table_file_.data(), sizeof(header_));

  if (header_.magic != kCacheMagic) fail(path_, "bad magic (not a cache)");
  if (header_.endian_guard != kEndianGuard)
    fail(path_, "endianness mismatch (file written on an incompatible "
                "byte-order host)");
  if (header_.format_version != kCacheFormatVersion)
    fail(path_, "format version " + std::to_string(header_.format_version) +
                " unsupported (expected " +
                std::to_string(kCacheFormatVersion) + ")");
  if (header_.schema_version != kCacheSchemaVersion)
    fail(path_, "schema version " + std::to_string(header_.schema_version) +
                " incompatible (expected " +
                std::to_string(kCacheSchemaVersion) + ")");
  if (checksum64(table_file_.data(), kHeaderChecksumOffset) !=
      header_.header_checksum)
    fail(path_, "header checksum mismatch");
  if (table_file_.size() !=
      sizeof(CacheHeader) + header_.entry_count * sizeof(CacheEntry))
    fail(path_, "payload size mismatch");
  const std::byte* payload = table_file_.data() + sizeof(CacheHeader);
  if (checksum64(payload, header_.entry_count * sizeof(CacheEntry)) !=
      header_.payload_checksum)
    fail(path_, "payload checksum mismatch");
  entries_ = reinterpret_cast<const CacheEntry*>(payload);
}

void PersistentCache::replay_wal() {
  std::ifstream in(wal_path_, std::ios::binary);
  if (!in) return;  // no WAL: clean shutdown last time (or fresh cache)
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::size_t consumed = 0;
  while (bytes.size() - consumed >= kWalRecordBytes) {
    CacheEntry entry;
    std::uint64_t checksum;
    std::memcpy(&entry, bytes.data() + consumed, sizeof(entry));
    std::memcpy(&checksum, bytes.data() + consumed + sizeof(entry),
                sizeof(checksum));
    // A record that fails its checksum ends the trustworthy prefix: a torn
    // write can only be at the tail, and anything after it is garbage.
    if (checksum64(&entry, sizeof(entry)) != checksum) break;
    consumed += kWalRecordBytes;
    overlay_[OverlayKey{entry.hi, entry.lo, entry.key}] = entry.value;
  }
  wal_dropped_bytes_ = bytes.size() - consumed;
}

std::optional<std::int64_t> PersistentCache::table_find(
    const util::Digest128& fp, std::int64_t key) const {
  if (entries_ == nullptr) return std::nullopt;
  CacheEntry probe;
  probe.hi = fp.hi;
  probe.lo = fp.lo;
  probe.key = key;
  const CacheEntry* end = entries_ + header_.entry_count;
  const CacheEntry* it = std::lower_bound(entries_, end, probe, entry_less);
  if (it != end && it->hi == fp.hi && it->lo == fp.lo && it->key == key)
    return it->value;
  return std::nullopt;
}

std::optional<std::int64_t> PersistentCache::load(const util::Digest128& fp,
                                                  std::int64_t key) {
  std::optional<std::int64_t> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = overlay_.find(OverlayKey{fp.hi, fp.lo, key});
    if (it != overlay_.end()) {
      out = it->second;
    } else {
      out = table_find(fp, key);
    }
  }
  if (out) obs::Registry::global().counter("store.hits_disk").add();
  return out;
}

void PersistentCache::store(const util::Digest128& fp, std::int64_t key,
                            std::int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Dedup against what is already durable: without this, every warm run
  // would re-append its whole working set to the WAL.
  auto it = overlay_.find(OverlayKey{fp.hi, fp.lo, key});
  if (it != overlay_.end()) {
    if (it->second == value) return;
  } else if (table_find(fp, key) == value) {
    return;
  }
  overlay_[OverlayKey{fp.hi, fp.lo, key}] = value;

  if (!wal_out_.is_open())
    wal_out_.open(wal_path_, std::ios::binary | std::ios::app);
  CacheEntry entry{fp.hi, fp.lo, key, value};
  const std::uint64_t checksum = checksum64(&entry, sizeof(entry));
  wal_out_.write(reinterpret_cast<const char*>(&entry), sizeof(entry));
  wal_out_.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  wal_out_.flush();
  obs::Registry::global().counter("store.wal_appends").add();
}

void PersistentCache::flush() {
  obs::ProfileSpan span("cache_flush");
  std::lock_guard<std::mutex> lock(mutex_);
  if (overlay_.empty()) {
    // Nothing to compact; still retire a WAL that held only a torn tail.
    if (wal_dropped_bytes_ > 0 && !wal_out_.is_open()) {
      std::remove(wal_path_.c_str());
      wal_dropped_bytes_ = 0;
    }
    return;
  }

  // Merge: table entries not shadowed by the overlay, plus the overlay,
  // already sorted because the overlay map and the table share the key
  // order.
  std::vector<CacheEntry> merged;
  merged.reserve(header_.entry_count + overlay_.size());
  const CacheEntry* table = entries_;
  const std::size_t table_count = entries_ ? header_.entry_count : 0;
  std::size_t i = 0;
  auto it = overlay_.begin();
  while (i < table_count || it != overlay_.end()) {
    if (it == overlay_.end()) {
      merged.push_back(table[i++]);
      continue;
    }
    const CacheEntry from_overlay{std::get<0>(it->first),
                                  std::get<1>(it->first),
                                  std::get<2>(it->first), it->second};
    if (i >= table_count) {
      merged.push_back(from_overlay);
      ++it;
    } else if (entry_less(table[i], from_overlay)) {
      merged.push_back(table[i++]);
    } else {
      if (!entry_less(from_overlay, table[i])) ++i;  // shadowed table entry
      merged.push_back(from_overlay);
      ++it;
    }
  }

  CacheHeader header;
  header.entry_count = merged.size();
  header.payload_checksum =
      checksum64(merged.data(), merged.size() * sizeof(CacheEntry));
  header.header_checksum = checksum64(&header, kHeaderChecksumOffset);

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(merged.data()),
              static_cast<std::streamsize>(merged.size() * sizeof(CacheEntry)));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("store: cannot write " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("store: cannot rename " + tmp + " to " + path_);
  }

  // Remap the new inode, then retire the WAL: every record it held is now
  // durable in the table. Crash between rename and remove only means a
  // redundant (idempotent) replay next open.
  entries_ = nullptr;
  table_file_.reset();
  header_ = CacheHeader{};
  open_table();
  overlay_.clear();
  if (wal_out_.is_open()) wal_out_.close();
  std::remove(wal_path_.c_str());
  wal_dropped_bytes_ = 0;
}

std::size_t PersistentCache::table_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_ ? header_.entry_count : 0;
}

std::size_t PersistentCache::overlay_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overlay_.size();
}

}  // namespace minmach::store
