#include "minmach/core/transforms.hpp"

#include <stdexcept>

namespace minmach {

Instance inflate(const Instance& in, const Rat& s) {
  if (s < Rat(1)) throw std::invalid_argument("inflate: s must be >= 1");
  std::vector<Job> jobs;
  jobs.reserve(in.size());
  for (const auto& j : in.jobs()) {
    Job out = j;
    out.processing = j.processing * s;
    if (!out.well_formed())
      throw std::invalid_argument(
          "inflate: job becomes infeasible (p*s > window)");
    jobs.push_back(out);
  }
  return Instance(std::move(jobs));
}

Instance shrink_window_right(const Instance& in, const Rat& gamma) {
  if (gamma < Rat(0) || gamma >= Rat(1))
    throw std::invalid_argument("shrink_window_right: gamma must be in [0,1)");
  std::vector<Job> jobs;
  jobs.reserve(in.size());
  for (const auto& j : in.jobs()) {
    Job out = j;
    out.deadline = j.deadline - gamma * j.laxity();
    jobs.push_back(out);
  }
  return Instance(std::move(jobs));
}

Instance shrink_window_left(const Instance& in, const Rat& gamma) {
  if (gamma < Rat(0) || gamma >= Rat(1))
    throw std::invalid_argument("shrink_window_left: gamma must be in [0,1)");
  std::vector<Job> jobs;
  jobs.reserve(in.size());
  for (const auto& j : in.jobs()) {
    Job out = j;
    out.release = j.release + gamma * j.laxity();
    jobs.push_back(out);
  }
  return Instance(std::move(jobs));
}

std::vector<Instance> lemma4_split(const Instance& in, const Rat& s,
                                   const Rat& alpha) {
  if (s < Rat(1)) throw std::invalid_argument("lemma4_split: s must be >= 1");
  if (alpha * s >= Rat(1))
    throw std::invalid_argument("lemma4_split: requires alpha < 1/s");
  const BigInt ceil_s_big = s.ceil();
  const auto ceil_s = static_cast<std::size_t>(ceil_s_big.to_int64());
  const Rat ceil_s_rat(ceil_s_big, BigInt(1));

  std::vector<Instance> pieces(ceil_s);
  for (const auto& j : in.jobs()) {
    if (!j.is_loose(alpha))
      throw std::invalid_argument("lemma4_split: job is not alpha-loose");
    const Rat delta =
        (Rat(1) - alpha * s) / ceil_s_rat * j.window_length();
    const Rat stride = j.processing + delta;
    for (std::size_t i = 1; i <= ceil_s; ++i) {
      Job piece;
      const Rat i_rat(static_cast<std::int64_t>(i));
      piece.release = j.release + (i_rat - Rat(1)) * stride;
      if (i < ceil_s) {
        piece.deadline = j.release + i_rat * stride;
        piece.processing = j.processing;
      } else {
        piece.deadline = j.release + s * j.processing + ceil_s_rat * delta;
        piece.processing = (s - ceil_s_rat + Rat(1)) * j.processing;
      }
      pieces[i - 1].add_job(piece);
    }
  }
  return pieces;
}

Job affine(const Job& job, const Rat& offset, const Rat& scale) {
  Job out;
  out.release = offset + scale * job.release;
  out.deadline = offset + scale * job.deadline;
  out.processing = scale * job.processing;
  return out;
}

Instance affine(const Instance& in, const Rat& offset, const Rat& scale) {
  if (!scale.is_positive())
    throw std::invalid_argument("affine: scale must be positive");
  std::vector<Job> jobs;
  jobs.reserve(in.size());
  for (const auto& j : in.jobs()) jobs.push_back(affine(j, offset, scale));
  return Instance(std::move(jobs));
}

Instance concat(const Instance& a, const Instance& b) {
  std::vector<Job> jobs = a.jobs();
  jobs.insert(jobs.end(), b.jobs().begin(), b.jobs().end());
  return Instance(std::move(jobs));
}

Split split_by_looseness(const Instance& in, const Rat& alpha) {
  Split out;
  for (JobId id = 0; id < in.size(); ++id) {
    const Job& j = in.job(id);
    if (j.is_loose(alpha)) {
      out.loose.add_job(j);
      out.loose_ids.push_back(id);
    } else {
      out.tight.add_job(j);
      out.tight_ids.push_back(id);
    }
  }
  return out;
}

}  // namespace minmach
