// AVX2 policy for the int64 sweep kernel. Compiled with -mavx2 (see
// src/CMakeLists.txt); excluded under MINMACH_SIMD=scalar. Reached only
// via sweep_load_bound_i64 with use_avx2 = true, whose callers check
// util::simd::supported() first.
#include "minmach/core/load_sweep_kernel.hpp"

#if MINMACH_SIMD_COMPILE_AVX2

#include <immintrin.h>

#include <bit>

namespace minmach::detail {

namespace {

// Dword-pair permutation per 4-bit lane mask: lane k of a 64-bit compress
// maps to dwords 2k, 2k+1. Unused tail entries are zero; the store writes
// all 4 lanes but the driver only advances by popcount(mask), and every
// compress buffer carries 4 lanes of slack (SweepSoA::prepare).
alignas(32) constexpr std::int32_t kCompress[16][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0}, {0, 1, 0, 0, 0, 0, 0, 0},
    {2, 3, 0, 0, 0, 0, 0, 0}, {0, 1, 2, 3, 0, 0, 0, 0},
    {4, 5, 0, 0, 0, 0, 0, 0}, {0, 1, 4, 5, 0, 0, 0, 0},
    {2, 3, 4, 5, 0, 0, 0, 0}, {0, 1, 2, 3, 4, 5, 0, 0},
    {6, 7, 0, 0, 0, 0, 0, 0}, {0, 1, 6, 7, 0, 0, 0, 0},
    {2, 3, 6, 7, 0, 0, 0, 0}, {0, 1, 2, 3, 6, 7, 0, 0},
    {4, 5, 6, 7, 0, 0, 0, 0}, {0, 1, 4, 5, 6, 7, 0, 0},
    {2, 3, 4, 5, 6, 7, 0, 0}, {0, 1, 2, 3, 4, 5, 6, 7}};

inline __m256i load(const std::int64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void compress_store(std::int64_t* out, __m256i v, int mask) {
  const __m256i idx =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kCompress[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_permutevar8x32_epi32(v, idx));
}

inline int lane_mask(__m256i cmp) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(cmp));
}

struct SweepAvx2Ops {
  std::uint64_t lanes = 0;

  std::size_t compress_released(const std::int64_t* lax,
                                const std::int64_t* rel,
                                const std::int64_t* dl, std::size_t n,
                                std::int64_t a, std::int64_t* out) {
    const __m256i va = _mm256_set1_epi64x(a);
    std::size_t kept = 0, i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256i vlax = load(lax + i);
      const __m256i vrel = load(rel + i);
      const __m256i vdl = load(dl + i);
      const __m256i cross = _mm256_add_epi64(va, vlax);
      // keep: rel <= a  &&  a < dl  &&  cross < dl
      __m256i keep = _mm256_andnot_si256(_mm256_cmpgt_epi64(vrel, va),
                                         _mm256_cmpgt_epi64(vdl, va));
      keep = _mm256_and_si256(keep, _mm256_cmpgt_epi64(vdl, cross));
      const int mask = lane_mask(keep);
      compress_store(out + kept, cross, mask);
      kept += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mask)));
    }
    lanes += i;
    for (; i < n; ++i) {
      const std::int64_t cross = a + lax[i];
      if (rel[i] <= a && a < dl[i] && cross < dl[i]) out[kept++] = cross;
    }
    return kept;
  }

  std::size_t compress_future(const std::int64_t* onset,
                              const std::int64_t* rel, std::size_t n,
                              std::int64_t a, std::int64_t* out) {
    const __m256i va = _mm256_set1_epi64x(a);
    std::size_t kept = 0, i = 0;
    for (; i + 4 <= n; i += 4) {
      const int mask = lane_mask(_mm256_cmpgt_epi64(load(rel + i), va));
      compress_store(out + kept, load(onset + i), mask);
      kept += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mask)));
    }
    lanes += i;
    for (; i < n; ++i)
      if (rel[i] > a) out[kept++] = onset[i];
    return kept;
  }

  std::size_t compress_freeze(const std::int64_t* dl, const std::int64_t* rel,
                              const std::int64_t* lax, std::size_t n,
                              std::int64_t a, std::int64_t* out_dl,
                              std::int64_t* out_cross) {
    const __m256i va = _mm256_set1_epi64x(a);
    std::size_t kept = 0, i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256i vdl = load(dl + i);
      const __m256i vrel = load(rel + i);
      // cross = max(a, rel) + lax
      const __m256i vmax =
          _mm256_blendv_epi8(vrel, va, _mm256_cmpgt_epi64(va, vrel));
      const __m256i cross = _mm256_add_epi64(vmax, load(lax + i));
      const __m256i keep = _mm256_and_si256(_mm256_cmpgt_epi64(vdl, va),
                                            _mm256_cmpgt_epi64(vdl, cross));
      const int mask = lane_mask(keep);
      compress_store(out_dl + kept, vdl, mask);
      compress_store(out_cross + kept, cross, mask);
      kept += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mask)));
    }
    lanes += i;
    for (; i < n; ++i) {
      if (!(a < dl[i])) continue;
      const std::int64_t cross = (rel[i] < a ? a : rel[i]) + lax[i];
      if (!(cross < dl[i])) continue;
      out_dl[kept] = dl[i];
      out_cross[kept] = cross;
      ++kept;
    }
    return kept;
  }

  ScanHit scan(const std::int64_t* pts, std::size_t count, std::int64_t m,
               std::int64_t rhs, std::int64_t lim) {
    // The guard in load_sweep_simd.cpp keeps |m| and |pts[i]| inside
    // int32, so each 64-bit lane's value lives in its low dword and
    // _mm256_mul_epi32 forms m * b exactly.
    const __m256i vm = _mm256_set1_epi64x(m);
    const __m256i vrhs = _mm256_set1_epi64x(rhs);
    const __m256i vlim = _mm256_set1_epi64x(lim);
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      const __m256i p = load(pts + i);
      const int end_mask = lane_mask(_mm256_cmpgt_epi64(p, vlim));
      const int imp_mask =
          lane_mask(_mm256_cmpgt_epi64(_mm256_mul_epi32(p, vm), vrhs));
      const unsigned both = static_cast<unsigned>(end_mask | imp_mask);
      lanes += 4;
      if (both != 0) {
        const int k = std::countr_zero(both);
        // End-of-run wins a tie: the state is stale at that b until the
        // pending admissions/freezes are applied.
        return {i + static_cast<std::size_t>(k),
                ((end_mask >> k) & 1) != 0 ? ScanEvent::kEnd
                                           : ScanEvent::kImprove};
      }
    }
    for (; i < count; ++i) {
      if (pts[i] > lim) return {i, ScanEvent::kEnd};
      if (m * pts[i] > rhs) return {i, ScanEvent::kImprove};
    }
    return {0, ScanEvent::kNone};
  }
};

}  // namespace

SweepWitness sweep_kernel_i64_avx2(SweepSoA& soa, std::size_t left_stride,
                                   std::uint64_t* lanes_out) {
  return sweep_kernel_i64<SweepAvx2Ops>(soa, left_stride, lanes_out);
}

}  // namespace minmach::detail

#endif  // MINMACH_SIMD_COMPILE_AVX2
