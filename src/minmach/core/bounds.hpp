// Certified two-sided bounds on the migratory optimum -- the bound tier in
// front of the exact max-flow oracle (DESIGN.md §14).
//
// Lower side: the pigeonhole density bound ceil(total work / span) and the
// single-interval sweep load bound (Theorem 1's easy direction), evaluated
// by the same SIMD-dispatched kernel the oracle uses. Upper side: a
// constructive EDF/LLF packing witness (algos/pack_ub.hpp), audited by
// core/validate -- a schedule, not a heuristic. Together they sandwich
//   lo <= OPT <= hi;
// when the sandwich pinches (lo == hi) the exact oracle returns OPT without
// building a flow network at all, and otherwise the search starts from the
// pre-narrowed bracket [lo, hi).
#pragma once

#include <cstddef>
#include <cstdint>

#include "minmach/core/instance.hpp"

namespace minmach {

// Which constructive packing produced the upper-bound witness.
enum class PackWitness : std::uint8_t {
  kSingleton = 0,  // trivial n-machine certificate: one job per machine
  kEdf,            // earliest-deadline-first fluid packing
  kLlf,            // least-laxity-first fluid packing
};

// How each side of a sandwich was certified.
struct BoundCertificate {
  std::int64_t density_lb = 0;     // ceil(total work / span)
  std::int64_t load_lb = 0;        // max(density, sweep single-interval bound)
  std::int64_t pack_machines = 0;  // machine count of the packing witness
  PackWitness pack = PackWitness::kSingleton;
  bool cache_seeded = false;  // an OPT-cache bounds entry narrowed the bracket
};

// lo <= OPT <= hi with both sides certified: lo by the load argument, hi by
// a validator-audited schedule witness. The degenerate sandwich of an empty
// instance is {0, 0}.
struct BoundSandwich {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  BoundCertificate certificate;

  [[nodiscard]] bool pinched() const { return lo == hi; }
};

// The lower-bound side on its own (the oracle computes it from its already
// normalized grid; this standalone entry point serves the bound tier's
// tests, benches, and direct callers).
struct LowerBoundParts {
  std::int64_t machines = 0;  // max(density, sweep); >= 1 for non-empty input
  std::int64_t density = 0;
  std::int64_t sweep = 0;
};

// Certified lower bound on OPT. Dispatches the int64 SIMD sweep kernel
// (core/load_sweep_simd.hpp) when every job field is a small integer and
// util::simd::active(), and the generic exact-rational kernel otherwise --
// bit-identical results either way. `left_budget` caps the sweep at
// O(budget * (n + S)) by subsampling left endpoints; the result is then a
// max over a subset of intervals, so it stays certified (possibly below the
// exact single-interval bound). Returns all-zero for an empty or malformed
// instance (malformed input has no feasible schedule to bound).
[[nodiscard]] LowerBoundParts certified_lower_bound(
    const Instance& instance, std::size_t left_budget = 256);

// Sweep load bound for exact-rational grids via a double-precision
// prefilter -- the tier's approximate→exact philosophy applied to its own
// lower bound. One O(S * (n + S)) float sweep over ALL event-point pairs
// (no left-endpoint budget needed at float cost) collects the near-argmax
// intervals; only those few candidates are evaluated with exact Rat
// arithmetic, whose max is returned. Any subset max is a certified lower
// bound, so float rounding can only cost tightness, never soundness. The
// all-pairs Rat sweep this replaces compounds denominators in its running
// sums (each += promotes the accumulator toward multi-limb BigInts), which
// is what made rational-mode lower bounds dominate sandwich wall time.
// Falls back to the budgeted exact sweep when the values do not convert to
// finite doubles. Inputs are parallel job arrays plus the sorted distinct
// event points; returns 0 for empty input.
[[nodiscard]] std::int64_t prefiltered_sweep_bound(
    const std::vector<Rat>& release, const std::vector<Rat>& deadline,
    const std::vector<Rat>& processing, const std::vector<Rat>& points,
    std::size_t left_budget = 256);

// Process-wide runtime gate for the bound tier, ANDed with
// OracleOptions::bounds (mirroring how OracleOptions::simd is ANDed with
// util::simd::active()). Defaults to enabled; the bench drivers default it
// OFF via --bounds so the committed baselines and legacy-vs-fast ratio
// checks keep measuring the exact tier alone (bench/b01_bound_tier A/Bs
// the sandwich explicitly). Flip it from driver setup paths only -- it is
// not synchronized against in-flight oracles.
void set_bounds_tier_enabled(bool enabled);
[[nodiscard]] bool bounds_tier_enabled();

}  // namespace minmach
