// SIMD-dispatched evaluation of the single-interval sweep load bound on an
// int64 grid (DESIGN.md §12). Produces results bit-identical to
//
//   sweep_load_bound<__int128>(release, deadline, processing, points, ...)
//
// on the same values: the same witness indices, the same machine count, the
// same first-witness tie-breaking. Inputs outside the overflow-safe range
// (see the guard in load_sweep_simd.cpp) spill to the generic __int128
// kernel -- tallied as "simd.scalar_spills" -- so callers never need their
// own range analysis.
//
// `use_avx2` selects the vector policy explicitly (callers pass
// util::simd::active(), differential tests pin each path); passing true
// requires util::simd::supported(). Preconditions mirror the generic
// kernel: points sorted strictly ascending, instance well-formed (no
// negative laxities).
#pragma once

#include <cstdint>
#include <vector>

#include "minmach/core/load_sweep.hpp"

namespace minmach {

[[nodiscard]] SweepWitness sweep_load_bound_i64(
    const std::vector<std::int64_t>& release,
    const std::vector<std::int64_t>& deadline,
    const std::vector<std::int64_t>& processing,
    const std::vector<std::int64_t>& points, std::size_t left_stride,
    bool use_avx2);

}  // namespace minmach
