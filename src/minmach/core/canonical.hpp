// Affine-canonical normal form and structural fingerprint for instances
// (DESIGN.md §11).
//
// Machine minimization is invariant under the affine time maps t -> a*t + b
// (a > 0): translating every release/deadline by b and scaling every
// time parameter (including processing, on unit-speed machines) by a
// preserves feasibility on any machine count, and the job order never
// matters. The normal form quotients out exactly that symmetry group:
//
//   1. translate: subtract r_min from every release and deadline, so the
//      earliest release is 0 (kills b);
//   2. rescale: the translated values {r_j - r_min, d_j - r_min, p_j} are
//      non-negative rationals on a common ray {lambda * v : lambda > 0};
//      multiply by the LCM of their denominators, then divide by the GCD of
//      the resulting integers. That is the unique minimal integer
//      representative of the ray (kills a);
//   3. sort: order the integer triples (release, deadline, processing)
//      lexicographically (kills the permutation).
//
// Two instances related by an affine map plus a permutation therefore have
// EQUAL canonical forms, and the 128-bit fingerprint hashed over the form
// is the key of the global OPT cache (util/opt_cache.hpp): the strong
// lower bound's recursion levels are affine copies of each other by
// construction, so they collide on purpose.
#pragma once

#include <vector>

#include "minmach/core/instance.hpp"
#include "minmach/util/bigint.hpp"
#include "minmach/util/hash.hpp"

namespace minmach {

// One job of the normal form: non-negative integers with the instance-wide
// GCD divided out, compared lexicographically.
struct CanonicalJob {
  BigInt release;
  BigInt deadline;
  BigInt processing;

  friend bool operator==(const CanonicalJob&, const CanonicalJob&) = default;
  friend auto operator<=>(const CanonicalJob&, const CanonicalJob&) = default;
};

struct CanonicalInstance {
  std::vector<CanonicalJob> jobs;  // sorted lexicographically

  friend bool operator==(const CanonicalInstance&,
                         const CanonicalInstance&) = default;
};

// The normal form described above. Total on any instance (well-formedness
// not required); the empty instance maps to the empty form.
[[nodiscard]] CanonicalInstance canonicalize(const Instance& instance);

// 128-bit structural hash of a canonical form (job count + every integer
// triple through util::Hasher128).
[[nodiscard]] util::Digest128 fingerprint(const CanonicalInstance& canonical);

// fingerprint(canonicalize(instance)): equal across affine transforms and
// job permutations, (in practice) distinct otherwise.
[[nodiscard]] util::Digest128 canonical_fingerprint(const Instance& instance);

// Column overload: identical digest to canonical_fingerprint over the
// Instance with jobs {release[j], deadline[j], processing[j]}, computed
// without materializing Jobs or BigInts (the columns are already on an
// integer grid, so only the translate / gcd / sort steps remain). Because
// the form quotients out t -> a*t, columns scaled by a denominator LCM
// fingerprint identically to the rational original -- the property the
// mmap'd corpus relies on to share the OPT cache with in-memory instances.
[[nodiscard]] util::Digest128 canonical_fingerprint(const JobColumns& columns);

}  // namespace minmach
