#include "minmach/core/contribution.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "minmach/core/load_sweep.hpp"
#include "minmach/core/load_sweep_simd.hpp"
#include "minmach/util/simd.hpp"

namespace minmach {

Rat contribution(const Job& job, const IntervalSet& where) {
  Rat overlap = where.intersect(job.window()).length();
  Rat value = overlap - job.laxity();
  return value.is_positive() ? value : Rat(0);
}

Rat contribution(const Instance& instance, const IntervalSet& where) {
  Rat total(0);
  for (const auto& job : instance.jobs()) total += contribution(job, where);
  return total;
}

namespace {

// ceil(C(S,I)/|I|) for a non-empty I.
std::int64_t load_of(const Instance& instance, const IntervalSet& where) {
  Rat c = contribution(instance, where);
  Rat len = where.length();
  return (c / len).ceil().to_int64();
}

}  // namespace

LoadBound load_bound_single_interval(const Instance& instance) {
  // The sweep assumes non-negative laxities; malformed instances keep the
  // reference semantics (zero-overlap intervals can still "contribute").
  if (!instance.well_formed())
    return load_bound_single_interval_reference(instance);
  const std::vector<Rat> points = instance.event_points();
  const std::size_t n = instance.size();
  std::vector<Rat> release(n), deadline(n), processing(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Job& job = instance.job(j);
    release[j] = job.release;
    deadline[j] = job.deadline;
    processing[j] = job.processing;
  }
  SweepWitness sweep;
  std::vector<std::int64_t> ints(3 * n + points.size());
  // SIMD dispatch (DESIGN.md §12): an all-small-integer instance runs the
  // exact (stride-1) sweep on the int64 kernel; witness indices and the
  // machine count are bit-identical to the rational sweep below.
  const bool small =
      util::simd::active() &&
      rat_batch::to_i64(release.data(), n, ints.data(), INT64_MAX) &&
      rat_batch::to_i64(deadline.data(), n, ints.data() + n, INT64_MAX) &&
      rat_batch::to_i64(processing.data(), n, ints.data() + 2 * n,
                        INT64_MAX) &&
      rat_batch::to_i64(points.data(), points.size(), ints.data() + 3 * n,
                        INT64_MAX);
  if (small) {
    auto slice = [&](std::size_t lo, std::size_t count) {
      return std::vector<std::int64_t>(ints.begin() + lo,
                                       ints.begin() + lo + count);
    };
    sweep = sweep_load_bound_i64(slice(0, n), slice(n, n), slice(2 * n, n),
                                 slice(3 * n, points.size()),
                                 /*left_stride=*/1, /*use_avx2=*/true);
  } else {
    sweep = sweep_load_bound(
        release, deadline, processing, points,
        [](const Rat& c, const Rat& len) { return (c / len).ceil().to_int64(); });
  }
  LoadBound best;
  best.machines = sweep.machines;
  if (sweep.machines > 0)
    best.witness = IntervalSet{Interval{points[sweep.lo], points[sweep.hi]}};
  return best;
}

LoadBound load_bound_single_interval_reference(const Instance& instance) {
  LoadBound best;
  const std::vector<Rat> points = instance.event_points();
  for (std::size_t a = 0; a < points.size(); ++a) {
    for (std::size_t b = a + 1; b < points.size(); ++b) {
      IntervalSet candidate{Interval{points[a], points[b]}};
      std::int64_t load = load_of(instance, candidate);
      if (load > best.machines) {
        best.machines = load;
        best.witness = candidate;
      }
    }
  }
  return best;
}

std::optional<LoadBound> load_bound_exhaustive(const Instance& instance,
                                               std::size_t max_segments) {
  const std::vector<Rat> points = instance.event_points();
  if (points.size() < 2) return LoadBound{};
  const std::size_t segments = points.size() - 1;
  if (segments > max_segments) return std::nullopt;
  if (segments >= 63)
    throw std::invalid_argument("load_bound_exhaustive: too many segments");

  LoadBound best;
  for (std::uint64_t mask = 1; mask < (1ull << segments); ++mask) {
    IntervalSet candidate;
    for (std::size_t s = 0; s < segments; ++s) {
      if (mask & (1ull << s))
        candidate.add(Interval{points[s], points[s + 1]});
    }
    std::int64_t load = load_of(instance, candidate);
    if (load > best.machines) {
      best.machines = load;
      best.witness = candidate;
    }
  }
  return best;
}

}  // namespace minmach
