#include "minmach/core/schedule.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace minmach {

std::size_t Schedule::used_machine_count() const {
  std::size_t used = 0;
  for (const auto& m : machines_)
    if (!m.empty()) ++used;
  return used;
}

void Schedule::add_slot(std::size_t machine, Rat start, Rat end, JobId job) {
  if (end <= start) return;  // empty slots are silently dropped
  while (machine >= machines_.size()) {
    // Reuse a parked slot vector from clear() before allocating a new one.
    if (!spare_.empty()) {
      machines_.push_back(std::move(spare_.back()));
      spare_.pop_back();
    } else {
      machines_.emplace_back();
    }
  }
  machines_[machine].push_back({std::move(start), std::move(end), job});
}

void Schedule::canonicalize() {
  for (auto& machine : machines_) {
    std::sort(machine.begin(), machine.end(),
              [](const Slot& a, const Slot& b) { return a.start < b.start; });
    std::vector<Slot> merged;
    for (auto& slot : machine) {
      if (!merged.empty() && slot.start < merged.back().end)
        throw std::logic_error("Schedule: overlapping slots on one machine");
      if (!merged.empty() && merged.back().job == slot.job &&
          merged.back().end == slot.start) {
        merged.back().end = slot.end;
      } else {
        merged.push_back(std::move(slot));
      }
    }
    machine = std::move(merged);
  }
}

Rat Schedule::work_of(JobId job) const {
  Rat total(0);
  for (const auto& machine : machines_)
    for (const auto& slot : machine)
      if (slot.job == job) total += slot.length();
  return total;
}

Rat Schedule::work_of_before(JobId job, const Rat& t) const {
  Rat total(0);
  for (const auto& machine : machines_) {
    for (const auto& slot : machine) {
      if (slot.job != job) continue;
      Rat hi = Rat::min(slot.end, t);
      if (slot.start < hi) total += hi - slot.start;
    }
  }
  return total;
}

std::vector<std::size_t> Schedule::machines_of(JobId job) const {
  std::vector<std::size_t> out;
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    for (const auto& slot : machines_[m]) {
      if (slot.job == job) {
        out.push_back(m);
        break;
      }
    }
  }
  return out;
}

std::size_t Schedule::migration_count() const {
  std::set<JobId> jobs;
  for (const auto& machine : machines_)
    for (const auto& slot : machine) jobs.insert(slot.job);
  std::size_t count = 0;
  for (JobId job : jobs) count += machines_of(job).size() - 1;
  return count;
}

std::size_t Schedule::preemption_count() const {
  // Collect each job's slots in time order and count the gaps.
  std::map<JobId, std::vector<Slot>> by_job;
  for (const auto& machine : machines_)
    for (const auto& slot : machine) by_job[slot.job].push_back(slot);
  std::size_t count = 0;
  for (auto& [job, slots] : by_job) {
    std::sort(slots.begin(), slots.end(),
              [](const Slot& a, const Slot& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < slots.size(); ++i)
      if (slots[i].start > slots[i - 1].end) ++count;
  }
  return count;
}

void Schedule::remap_jobs(const std::vector<JobId>& new_id_of) {
  for (auto& machine : machines_) {
    for (auto& slot : machine) {
      if (slot.job >= new_id_of.size())
        throw std::out_of_range("Schedule::remap_jobs: id out of range");
      slot.job = new_id_of[slot.job];
    }
  }
}

void Schedule::append_machines(const Schedule& other) {
  for (std::size_t m = 0; m < other.machine_count(); ++m)
    machines_.push_back(other.machines_[m]);
}

std::size_t Schedule::total_slots() const {
  std::size_t count = 0;
  for (const auto& machine : machines_) count += machine.size();
  return count;
}

std::string Schedule::to_string() const {
  std::string out =
      "Schedule(" + std::to_string(machines_.size()) + " machines)\n";
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    out += "  M" + std::to_string(m) + ":";
    for (const auto& slot : machines_[m]) {
      out += " [" + slot.start.to_string() + "," + slot.end.to_string() +
             ")j" + std::to_string(slot.job);
    }
    out += "\n";
  }
  return out;
}

}  // namespace minmach
