// The job model of the paper (§2): release date r_j, deadline d_j,
// processing time p_j, all exact rationals. Derived quantities follow the
// paper's notation: laxity l_j = d_j - r_j - p_j, latest start a_j = r_j +
// l_j, earliest finish f_j = d_j - l_j, window I(j) = [r_j, d_j).
#pragma once

#include <cstdint>

#include "minmach/util/interval_set.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

using JobId = std::uint32_t;
inline constexpr JobId kInvalidJob = static_cast<JobId>(-1);

struct Job {
  Rat release;
  Rat deadline;
  Rat processing;

  [[nodiscard]] Interval window() const { return {release, deadline}; }
  [[nodiscard]] Rat window_length() const { return deadline - release; }
  [[nodiscard]] Rat laxity() const { return deadline - release - processing; }
  // Latest time the job must have started to still meet its deadline.
  [[nodiscard]] Rat latest_start() const { return release + laxity(); }
  // Earliest time the job can possibly be finished.
  [[nodiscard]] Rat earliest_finish() const { return deadline - laxity(); }

  // p_j <= alpha * (d_j - r_j)? (paper: alpha-loose; else alpha-tight)
  [[nodiscard]] bool is_loose(const Rat& alpha) const {
    return processing <= alpha * window_length();
  }

  // Well-formed: 0 < p_j <= d_j - r_j.
  [[nodiscard]] bool well_formed() const {
    return processing.is_positive() && processing <= window_length();
  }

  friend bool operator==(const Job&, const Job&) = default;
};

}  // namespace minmach
