// Exact feasibility audit of a schedule against an instance. Every
// algorithm in this library is required to produce validator-clean
// schedules; the property-test suites and every experiment driver run this
// after each scheduling call.
#pragma once

#include <string>
#include <vector>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"

namespace minmach {

struct ValidateOptions {
  // Each job must run on at most one machine.
  bool require_non_migratory = false;
  // Each job must run in one contiguous slot.
  bool require_non_preemptive = false;
  // Machine speed: a slot of wall length L completes speed*L units of
  // work. The paper's speed-augmentation results (Theorem 7) need s > 1.
  Rat speed = Rat(1);
  // If true, jobs may be incomplete (used to audit prefixes of online runs).
  bool allow_unfinished = false;
};

struct ValidationResult {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string message) {
    ok = false;
    errors.push_back(std::move(message));
  }
  [[nodiscard]] std::string summary() const;
};

// Checks: slot sanity (job id valid, start < end, slot inside the job's
// window), machine exclusivity (no overlapping slots per machine), no job
// runs on two machines at the same moment, every job receives exactly
// p_j / speed wall time (at least 0 and at most that if allow_unfinished),
// plus the non-migratory / non-preemptive structure when requested.
[[nodiscard]] ValidationResult validate(const Instance& instance,
                                        const Schedule& schedule,
                                        const ValidateOptions& options = {});

}  // namespace minmach
