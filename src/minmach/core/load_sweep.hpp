// Sweep evaluation of the single-interval load bound
//   max over event points a < b of ceil( C(S, [a,b)) / (b - a) ),
// the lower-bound side of Theorem 1 restricted to single intervals.
//
// The naive evaluation recomputes C(S, [a,b)) = sum_j max(0, |[a,b) cap
// I(j)| - l_j) from scratch for each of the O(S^2) endpoint pairs -- an
// O(n * S^2) scan. This kernel fixes the left endpoint a and sweeps b
// rightward across event points, maintaining the contribution sum
// incrementally: job j starts contributing once b exceeds
//   cross_j = max(r_j, a) + l_j
// (its contribution then grows linearly with b) and freezes at b = d_j
// (contribution caps at d_j - cross_j). Both thresholds are consumed from
// globally pre-sorted orders -- cross_j equals a + l_j for jobs released by
// a and d_j - p_j for later jobs, neither of which depends on a beyond the
// group split -- so each left endpoint costs O(n + S) and the whole bound
// costs O(S * (n + S)) = O(n^2) with O(1) amortized work per job event.
//
// Generic over the value type V so the feasibility oracle can run it on the
// __int128 integer grid while the public contribution API runs it on exact
// rationals. Requirements on V: totally ordered, closed under + - *, and
// constructible from std::int64_t. `ceil_div(c, len)` must return
// ceil(c / len) as int64 for c >= 0, len > 0. Precondition: the instance is
// well-formed (no negative laxities); the caller handles malformed input.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace minmach {

struct SweepWitness {
  std::int64_t machines = 0;
  // Indices into the event-point array: the witness interval is
  // [points[lo], points[hi]). Meaningful only when machines > 0.
  std::size_t lo = 0;
  std::size_t hi = 0;
};

// left_stride > 1 evaluates only every stride-th left endpoint. The result
// is still a certified lower bound (a max over a subset of intervals) but
// may be below the exact single-interval bound; the feasibility oracle
// uses this to cap the sweep at O(budget * (n + S)) and lets its warm
// ascending probes absorb the slack. Callers needing the exact bound (and
// reference witness parity) must pass 1.
template <typename V, typename CeilDiv>
SweepWitness sweep_load_bound(const std::vector<V>& release,
                              const std::vector<V>& deadline,
                              const std::vector<V>& processing,
                              const std::vector<V>& points,
                              CeilDiv ceil_div, std::size_t left_stride = 1) {
  SweepWitness best;
  const std::size_t n = release.size();
  if (n == 0 || points.size() < 2) return best;
  if (left_stride == 0) left_stride = 1;

  std::vector<V> laxity(n);
  for (std::size_t j = 0; j < n; ++j)
    laxity[j] = deadline[j] - release[j] - processing[j];

  // Global orders reused by every left endpoint: contribution onsets for
  // already-released jobs (cross = a + laxity) and for future releases
  // (cross = r + laxity = d - p), and contribution freezes (at d).
  std::vector<std::size_t> by_laxity(n), by_onset(n), by_deadline(n);
  std::iota(by_laxity.begin(), by_laxity.end(), 0);
  by_onset = by_laxity;
  by_deadline = by_laxity;
  std::sort(by_laxity.begin(), by_laxity.end(),
            [&](std::size_t x, std::size_t y) { return laxity[x] < laxity[y]; });
  std::sort(by_onset.begin(), by_onset.end(), [&](std::size_t x, std::size_t y) {
    return deadline[x] - processing[x] < deadline[y] - processing[y];
  });
  std::sort(by_deadline.begin(), by_deadline.end(),
            [&](std::size_t x, std::size_t y) {
              return deadline[x] < deadline[y];
            });

  const V zero(0);
  for (std::size_t ai = 0; ai + 1 < points.size(); ai += left_stride) {
    const V& a = points[ai];
    // Growing jobs contribute b - cross_j each; frozen jobs d_j - cross_j.
    std::int64_t growing = 0;
    V growing_cross_sum = zero;
    V frozen_sum = zero;
    std::size_t pa = 0, pb = 0, pd = 0;
    for (std::size_t bi = ai + 1; bi < points.size(); ++bi) {
      const V& b = points[bi];
      // Admit released jobs (r <= a) whose onset a + laxity fell below b.
      while (pa < n) {
        std::size_t j = by_laxity[pa];
        V cross = a + laxity[j];
        if (!(cross < b)) break;
        ++pa;
        if (a < release[j] || !(a < deadline[j])) continue;
        if (!(cross < deadline[j])) continue;  // window overlap never beats l_j
        ++growing;
        growing_cross_sum += cross;
      }
      // Admit future releases (r > a) whose onset d - p fell below b.
      while (pb < n) {
        std::size_t j = by_onset[pb];
        V cross = deadline[j] - processing[j];
        if (!(cross < b)) break;
        ++pb;
        if (!(a < release[j])) continue;
        ++growing;
        growing_cross_sum += cross;
      }
      // Freeze jobs whose deadline was reached: contribution caps.
      while (pd < n) {
        std::size_t j = by_deadline[pd];
        if (!(deadline[j] <= b)) break;
        ++pd;
        if (!(a < deadline[j])) continue;
        V cross = (release[j] < a ? a : release[j]) + laxity[j];
        if (!(cross < deadline[j])) continue;  // never contributed
        --growing;
        growing_cross_sum -= cross;
        frozen_sum += deadline[j] - cross;
      }
      V contribution = V(growing) * b - growing_cross_sum + frozen_sum;
      if (!(zero < contribution)) continue;
      V length = b - a;
      // Improvement test without a division: ceil(C/len) > best iff
      // C > best * len. Matches the reference scan's first-witness rule.
      if (V(best.machines) * length < contribution) {
        best.machines = ceil_div(contribution, length);
        best.lo = ai;
        best.hi = bi;
      }
    }
  }
  return best;
}

}  // namespace minmach
