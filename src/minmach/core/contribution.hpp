// Theorem 1's load characterization of the migratory optimum.
//
// The contribution of job j to a finite union of intervals I is
//   C(j, I) = max{0, |I cap I(j)| - l_j},
// the least processing j must receive inside I in any feasible schedule.
// Theorem 1: the minimum machine count m satisfies
//   m = max_I ceil( C(S, I) / |I| ),
// and the maximum is attained. The flow substrate (minmach/flow) computes m
// exactly from the primal side; this module computes the dual-side bound for
// cross-checking (experiment E2) and for the load arguments in the proofs of
// Lemma 3 and Lemma 8.
#pragma once

#include <cstddef>
#include <optional>

#include "minmach/core/instance.hpp"
#include "minmach/util/interval_set.hpp"

namespace minmach {

// C(j, I): least processing j receives during I in any feasible schedule.
[[nodiscard]] Rat contribution(const Job& job, const IntervalSet& where);

// C(S, I): sum over all jobs.
[[nodiscard]] Rat contribution(const Instance& instance,
                               const IntervalSet& where);

struct LoadBound {
  // ceil(C(S, I) / |I|) maximized over the searched family.
  std::int64_t machines = 0;
  // A witness I attaining the bound (empty when no interval has load).
  IntervalSet witness;
};

// Max over all single intervals [a, b) with a, b event points. This is a
// valid lower bound on m for every instance (not necessarily tight).
// Evaluated by the O(n^2) incremental sweep of core/load_sweep.hpp; the
// witness (first maximizing pair in (a, b) scan order) matches the
// reference scan exactly.
[[nodiscard]] LoadBound load_bound_single_interval(const Instance& instance);

// The pre-sweep O(n * S^2) evaluation of the same bound: recomputes
// C(S, [a,b)) from scratch for every event-point pair. Kept as the
// differential-test reference for the sweep; prefer
// load_bound_single_interval everywhere else.
[[nodiscard]] LoadBound load_bound_single_interval_reference(
    const Instance& instance);

// Exact Theorem 1 value: max over all unions of elementary segments between
// consecutive event points (2^k - 1 candidates). Returns std::nullopt when
// the instance has more than max_segments elementary segments.
[[nodiscard]] std::optional<LoadBound> load_bound_exhaustive(
    const Instance& instance, std::size_t max_segments = 18);

}  // namespace minmach
