// Detail header for the int64 sweep kernels (DESIGN.md §12). The driver
// below restates the generic sweep of load_sweep.hpp in a form where every
// per-left-endpoint pass is a flat array kernel:
//
//  * Phase 1 (compress): the three globally sorted job orders are filtered
//    against the left endpoint `a` into dense admission/freeze streams --
//    one predicated compaction pass per order over contiguous SoA
//    projections, the natural SIMD shape (compare + mask + compress-store).
//  * Phase 2 (scan): between two consecutive stream thresholds the sweep
//    state (growing count g, growing cross-sum, frozen sum) is constant,
//    so the improvement test over that run of right endpoints b reduces to
//    a fused first-index search: find the first b with b > lim (run ends;
//    re-admit) or m*b > rhs where m = g - best and rhs = cross_sum -
//    frozen - best*a (a new witness). Both conditions are lane-parallel
//    compares; the scalar state update runs only on the rare hits.
//
// The driver is templated on an Ops policy providing the two phases:
// SweepScalarOps here is the portable fallback, SweepAvx2Ops lives in
// load_sweep_avx2.cpp (the -mavx2 translation unit). Both produce results
// bit-identical to sweep_load_bound<__int128> -- the admission filters,
// first-witness rule, and ceil division are restatements, not
// re-derivations, and the int64 arithmetic cannot wrap under the guard
// enforced by sweep_load_bound_i64 (see load_sweep_simd.cpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "minmach/core/load_sweep.hpp"
#include "minmach/obs/profile.hpp"
#include "minmach/util/simd.hpp"

namespace minmach::detail {

// Pre-sorted SoA projections of one sweep instance plus per-endpoint
// scratch, built once per sweep_load_bound_i64 call. The compress outputs
// are sized n + 4: a 4-lane compress store may overhang the kept prefix.
struct SweepSoA {
  std::size_t n = 0;
  const std::int64_t* points = nullptr;
  std::size_t npts = 0;
  // by_laxity order -- stream A, jobs released by a (onset a + laxity).
  std::vector<std::int64_t> lax_a, rel_a, dl_a;
  // by_onset order -- stream B, future releases (onset d - p).
  std::vector<std::int64_t> onset_b, rel_b;
  // by_deadline order -- stream D, contribution freezes at d.
  std::vector<std::int64_t> dl_d, rel_d, lax_d;
  // Compacted per-endpoint streams.
  std::vector<std::int64_t> cross_a, cross_b, frz_dl, frz_cross;

  void prepare(std::size_t jobs, const std::int64_t* pts, std::size_t points_n) {
    n = jobs;
    points = pts;
    npts = points_n;
    for (auto* v : {&lax_a, &rel_a, &dl_a, &onset_b, &rel_b, &dl_d, &rel_d,
                    &lax_d, &cross_a, &cross_b, &frz_dl, &frz_cross})
      v->resize(jobs + 4);
  }
};

enum class ScanEvent { kNone, kEnd, kImprove };
struct ScanHit {
  std::size_t offset = 0;
  ScanEvent event = ScanEvent::kNone;
};

template <class Ops>
SweepWitness sweep_kernel_i64(SweepSoA& s, std::size_t left_stride,
                              std::uint64_t* lanes_out) {
  obs::ProfileSpan span("sweep_kernel");
  SweepWitness best;
  Ops ops;
  const std::int64_t* pts = s.points;
  const std::size_t npts = s.npts;
  for (std::size_t ai = 0; ai + 1 < npts; ai += left_stride) {
    const std::int64_t a = pts[ai];
    const std::size_t len_a = ops.compress_released(
        s.lax_a.data(), s.rel_a.data(), s.dl_a.data(), s.n, a, s.cross_a.data());
    const std::size_t len_b = ops.compress_future(
        s.onset_b.data(), s.rel_b.data(), s.n, a, s.cross_b.data());
    const std::size_t len_d =
        ops.compress_freeze(s.dl_d.data(), s.rel_d.data(), s.lax_d.data(), s.n,
                            a, s.frz_dl.data(), s.frz_cross.data());
    std::int64_t growing = 0, growing_cross = 0, frozen = 0;
    std::size_t pa = 0, pb = 0, pd = 0;
    std::size_t bi = ai + 1;
    while (bi < npts) {
      const std::int64_t b = pts[bi];
      while (pa < len_a && s.cross_a[pa] < b) {
        ++growing;
        growing_cross += s.cross_a[pa++];
      }
      while (pb < len_b && s.cross_b[pb] < b) {
        ++growing;
        growing_cross += s.cross_b[pb++];
      }
      while (pd < len_d && s.frz_dl[pd] <= b) {
        --growing;
        growing_cross -= s.frz_cross[pd];
        frozen += s.frz_dl[pd] - s.frz_cross[pd];
        ++pd;
      }
      // State is constant while b stays at or below every pending
      // admission threshold (admit when cross < b) and strictly below the
      // next freeze deadline (freeze when d <= b).
      std::int64_t lim = std::numeric_limits<std::int64_t>::max();
      if (pa < len_a) lim = std::min(lim, s.cross_a[pa]);
      if (pb < len_b) lim = std::min(lim, s.cross_b[pb]);
      if (pd < len_d) lim = std::min(lim, s.frz_dl[pd] - 1);
      // ceil(C / (b-a)) > best  <=>  C > best*(b-a)  <=>  m*b > rhs.
      // (C > 0 is implied: for best >= 1 it follows, for best == 0 it IS
      // the test.) Matches the generic kernel's first-witness rule.
      std::int64_t m = growing - best.machines;
      std::int64_t rhs = growing_cross - frozen - best.machines * a;
      std::size_t idx = bi;
      while (idx < npts) {
        const ScanHit hit = ops.scan(pts + idx, npts - idx, m, rhs, lim);
        if (hit.event == ScanEvent::kNone) {
          idx = npts;
          break;
        }
        idx += hit.offset;
        if (hit.event == ScanEvent::kEnd) break;
        const std::int64_t bb = pts[idx];
        const std::int64_t contribution = growing * bb - growing_cross + frozen;
        const std::int64_t length = bb - a;
        best.machines = (contribution + length - 1) / length;  // exact ceil
        best.lo = ai;
        best.hi = idx;
        m = growing - best.machines;
        rhs = growing_cross - frozen - best.machines * a;
        ++idx;
      }
      bi = idx;
    }
  }
  *lanes_out = ops.lanes;
  return best;
}

// Portable fallback policy: same restructured algorithm, element-at-a-time.
// This is what "--simd scalar" measures and what the AVX2 policy is
// differentially tested against.
struct SweepScalarOps {
  std::uint64_t lanes = 0;  // scalar policy does no vector work

  static std::size_t compress_released(const std::int64_t* lax,
                                       const std::int64_t* rel,
                                       const std::int64_t* dl, std::size_t n,
                                       std::int64_t a, std::int64_t* out) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t cross = a + lax[i];
      if (rel[i] <= a && a < dl[i] && cross < dl[i]) out[kept++] = cross;
    }
    return kept;
  }

  static std::size_t compress_future(const std::int64_t* onset,
                                     const std::int64_t* rel, std::size_t n,
                                     std::int64_t a, std::int64_t* out) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (rel[i] > a) out[kept++] = onset[i];
    return kept;
  }

  static std::size_t compress_freeze(const std::int64_t* dl,
                                     const std::int64_t* rel,
                                     const std::int64_t* lax, std::size_t n,
                                     std::int64_t a, std::int64_t* out_dl,
                                     std::int64_t* out_cross) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(a < dl[i])) continue;
      const std::int64_t cross = (rel[i] < a ? a : rel[i]) + lax[i];
      if (!(cross < dl[i])) continue;
      out_dl[kept] = dl[i];
      out_cross[kept] = cross;
      ++kept;
    }
    return kept;
  }

  static ScanHit scan(const std::int64_t* pts, std::size_t count,
                      std::int64_t m, std::int64_t rhs, std::int64_t lim) {
    for (std::size_t i = 0; i < count; ++i) {
      if (pts[i] > lim) return {i, ScanEvent::kEnd};
      if (m * pts[i] > rhs) return {i, ScanEvent::kImprove};
    }
    return {0, ScanEvent::kNone};
  }
};

#if MINMACH_SIMD_COMPILE_AVX2
// Instantiated in load_sweep_avx2.cpp with the AVX2 policy.
SweepWitness sweep_kernel_i64_avx2(SweepSoA& soa, std::size_t left_stride,
                                   std::uint64_t* lanes_out);
#endif

}  // namespace minmach::detail
