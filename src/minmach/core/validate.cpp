#include "minmach/core/validate.hpp"

#include <algorithm>
#include <map>

namespace minmach {

std::string ValidationResult::summary() const {
  if (ok) return "ok";
  std::string out;
  for (const auto& e : errors) {
    out += e;
    out += "\n";
  }
  return out;
}

ValidationResult validate(const Instance& instance, const Schedule& schedule,
                          const ValidateOptions& options) {
  ValidationResult result;

  // Per-machine slot sanity and exclusivity.
  std::map<JobId, std::vector<Slot>> by_job;
  for (std::size_t m = 0; m < schedule.machine_count(); ++m) {
    std::vector<Slot> slots = schedule.slots(m);
    std::sort(slots.begin(), slots.end(),
              [](const Slot& a, const Slot& b) { return a.start < b.start; });
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const Slot& slot = slots[i];
      if (slot.job >= instance.size()) {
        result.fail("machine " + std::to_string(m) + ": unknown job id " +
                    std::to_string(slot.job));
        continue;
      }
      if (slot.end <= slot.start)
        result.fail("machine " + std::to_string(m) + ": empty/negative slot");
      const Job& job = instance.job(slot.job);
      if (slot.start < job.release || slot.end > job.deadline)
        result.fail("job " + std::to_string(slot.job) +
                    " runs outside its window [" + job.release.to_string() +
                    "," + job.deadline.to_string() + "): slot [" +
                    slot.start.to_string() + "," + slot.end.to_string() + ")");
      if (i > 0 && slot.start < slots[i - 1].end)
        result.fail("machine " + std::to_string(m) +
                    ": overlapping slots at t=" + slot.start.to_string());
      by_job[slot.job].push_back(slot);
    }
  }

  // Per-job checks.
  for (JobId id = 0; id < instance.size(); ++id) {
    const Job& job = instance.job(id);
    auto it = by_job.find(id);
    const Rat required = job.processing / options.speed;

    if (it == by_job.end()) {
      if (!options.allow_unfinished)
        result.fail("job " + std::to_string(id) + " never scheduled");
      continue;
    }
    std::vector<Slot>& slots = it->second;
    std::sort(slots.begin(), slots.end(),
              [](const Slot& a, const Slot& b) { return a.start < b.start; });

    Rat wall(0);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      wall += slots[i].length();
      if (i > 0 && slots[i].start < slots[i - 1].end)
        result.fail("job " + std::to_string(id) +
                    " runs on two machines simultaneously at t=" +
                    slots[i].start.to_string());
    }
    if (options.allow_unfinished ? wall > required : wall != required)
      result.fail("job " + std::to_string(id) + " receives " +
                  wall.to_string() + " wall time, requires " +
                  required.to_string());

    if (options.require_non_migratory &&
        schedule.machines_of(id).size() > 1)
      result.fail("job " + std::to_string(id) +
                  " migrates between machines");
    if (options.require_non_preemptive) {
      for (std::size_t i = 1; i < slots.size(); ++i)
        if (slots[i].start != slots[i - 1].end) {
          result.fail("job " + std::to_string(id) + " is preempted");
          break;
        }
      if (schedule.machines_of(id).size() > 1)
        result.fail("job " + std::to_string(id) +
                    " is non-contiguous across machines");
    }
  }

  return result;
}

}  // namespace minmach
