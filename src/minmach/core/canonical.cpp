#include "minmach/core/canonical.hpp"

#include <algorithm>
#include <utility>

#include "minmach/obs/profile.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

namespace {

// value * (lcm / value.den()) -- exact because lcm is a multiple of den.
BigInt scale_to_grid(const Rat& value, const BigInt& lcm) {
  return value.num() * (lcm / value.den());
}

}  // namespace

CanonicalInstance canonicalize(const Instance& instance) {
  obs::ProfileSpan span("canonicalize");
  CanonicalInstance out;
  if (instance.empty()) return out;
  const std::vector<Job>& jobs = instance.jobs();

  Rat r_min = jobs[0].release;
  for (const Job& job : jobs) r_min = Rat::min(r_min, job.release);

  // Translated rationals and the LCM of their denominators in one pass.
  std::vector<std::pair<Rat, Rat>> windows;  // (r - r_min, d - r_min)
  windows.reserve(jobs.size());
  BigInt lcm(1);
  for (const Job& job : jobs) {
    windows.emplace_back(job.release - r_min, job.deadline - r_min);
    lcm = BigInt::lcm(lcm, windows.back().first.den());
    lcm = BigInt::lcm(lcm, windows.back().second.den());
    lcm = BigInt::lcm(lcm, job.processing.den());
  }

  out.jobs.reserve(jobs.size());
  BigInt gcd(0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    CanonicalJob canonical;
    canonical.release = scale_to_grid(windows[j].first, lcm);
    canonical.deadline = scale_to_grid(windows[j].second, lcm);
    canonical.processing = scale_to_grid(jobs[j].processing, lcm);
    gcd = BigInt::gcd(gcd, canonical.release);
    gcd = BigInt::gcd(gcd, canonical.deadline);
    gcd = BigInt::gcd(gcd, canonical.processing);
    out.jobs.push_back(std::move(canonical));
  }
  // gcd == 0 only if every value is zero (degenerate all-zero jobs); the
  // grid is already minimal then.
  if (gcd > BigInt(1)) {
    for (CanonicalJob& job : out.jobs) {
      job.release /= gcd;
      job.deadline /= gcd;
      job.processing /= gcd;
    }
  }
  std::sort(out.jobs.begin(), out.jobs.end());
  return out;
}

util::Digest128 fingerprint(const CanonicalInstance& canonical) {
  util::Hasher128 hasher;
  hasher.absorb(0x6d696e6d61636831ULL);  // domain tag: "minmach1"
  hasher.absorb(canonical.jobs.size());
  for (const CanonicalJob& job : canonical.jobs) {
    hash_append(hasher, job.release);
    hash_append(hasher, job.deadline);
    hash_append(hasher, job.processing);
  }
  return hasher.digest();
}

util::Digest128 canonical_fingerprint(const Instance& instance) {
  obs::ProfileSpan span("fingerprint");
  return fingerprint(canonicalize(instance));
}

namespace {

// Replicates hash_append(Hasher128&, BigInt) for a non-negative value that
// fits one u64 limb: (sign, limb count, magnitude limbs) with zero encoded
// as (0, 0). Keeping this in lockstep with hash.cpp is what makes the
// column digest equal the Instance digest.
void absorb_small(util::Hasher128& hasher, std::uint64_t value) {
  if (value == 0) {
    hasher.absorb(0);
    hasher.absorb(0);
  } else {
    hasher.absorb(1);  // sign
    hasher.absorb(1);  // limb count
    hasher.absorb(value);
  }
}

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

struct ColumnTriple {
  std::uint64_t r, d, p;
  friend bool operator<(const ColumnTriple& a, const ColumnTriple& b) {
    if (a.r != b.r) return a.r < b.r;
    if (a.d != b.d) return a.d < b.d;
    return a.p < b.p;
  }
};

}  // namespace

util::Digest128 canonical_fingerprint(const JobColumns& columns) {
  obs::ProfileSpan span("fingerprint");
  const std::size_t n = columns.count;
  if (n == 0) {
    CanonicalInstance empty;
    return fingerprint(empty);
  }

  std::int64_t r_min = columns.release[0];
  for (std::size_t j = 1; j < n; ++j)
    r_min = std::min(r_min, columns.release[j]);

  // Translate in u64 (wrap-defined; differences from the minimum are
  // non-negative for releases, and for deadlines of well-formed jobs). The
  // denominators are all 1, so the LCM step of canonicalize() is a no-op
  // and only the instance-wide GCD remains.
  std::vector<ColumnTriple> triples(n);
  std::uint64_t gcd = 0;
  const auto base = static_cast<std::uint64_t>(r_min);
  for (std::size_t j = 0; j < n; ++j) {
    ColumnTriple& t = triples[j];
    t.r = static_cast<std::uint64_t>(columns.release[j]) - base;
    t.d = static_cast<std::uint64_t>(columns.deadline[j]) - base;
    t.p = static_cast<std::uint64_t>(columns.processing[j]);
    gcd = gcd_u64(gcd_u64(gcd, t.r), gcd_u64(t.d, t.p));
  }
  if (gcd > 1) {
    for (ColumnTriple& t : triples) {
      t.r /= gcd;
      t.d /= gcd;
      t.p /= gcd;
    }
  }
  std::sort(triples.begin(), triples.end());

  util::Hasher128 hasher;
  hasher.absorb(0x6d696e6d61636831ULL);  // domain tag: "minmach1"
  hasher.absorb(n);
  for (const ColumnTriple& t : triples) {
    absorb_small(hasher, t.r);
    absorb_small(hasher, t.d);
    absorb_small(hasher, t.p);
  }
  return hasher.digest();
}

}  // namespace minmach
