#include "minmach/core/canonical.hpp"

#include <algorithm>
#include <utility>

#include "minmach/obs/profile.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

namespace {

// value * (lcm / value.den()) -- exact because lcm is a multiple of den.
BigInt scale_to_grid(const Rat& value, const BigInt& lcm) {
  return value.num() * (lcm / value.den());
}

}  // namespace

CanonicalInstance canonicalize(const Instance& instance) {
  obs::ProfileSpan span("canonicalize");
  CanonicalInstance out;
  if (instance.empty()) return out;
  const std::vector<Job>& jobs = instance.jobs();

  Rat r_min = jobs[0].release;
  for (const Job& job : jobs) r_min = Rat::min(r_min, job.release);

  // Translated rationals and the LCM of their denominators in one pass.
  std::vector<std::pair<Rat, Rat>> windows;  // (r - r_min, d - r_min)
  windows.reserve(jobs.size());
  BigInt lcm(1);
  for (const Job& job : jobs) {
    windows.emplace_back(job.release - r_min, job.deadline - r_min);
    lcm = BigInt::lcm(lcm, windows.back().first.den());
    lcm = BigInt::lcm(lcm, windows.back().second.den());
    lcm = BigInt::lcm(lcm, job.processing.den());
  }

  out.jobs.reserve(jobs.size());
  BigInt gcd(0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    CanonicalJob canonical;
    canonical.release = scale_to_grid(windows[j].first, lcm);
    canonical.deadline = scale_to_grid(windows[j].second, lcm);
    canonical.processing = scale_to_grid(jobs[j].processing, lcm);
    gcd = BigInt::gcd(gcd, canonical.release);
    gcd = BigInt::gcd(gcd, canonical.deadline);
    gcd = BigInt::gcd(gcd, canonical.processing);
    out.jobs.push_back(std::move(canonical));
  }
  // gcd == 0 only if every value is zero (degenerate all-zero jobs); the
  // grid is already minimal then.
  if (gcd > BigInt(1)) {
    for (CanonicalJob& job : out.jobs) {
      job.release /= gcd;
      job.deadline /= gcd;
      job.processing /= gcd;
    }
  }
  std::sort(out.jobs.begin(), out.jobs.end());
  return out;
}

util::Digest128 fingerprint(const CanonicalInstance& canonical) {
  util::Hasher128 hasher;
  hasher.absorb(0x6d696e6d61636831ULL);  // domain tag: "minmach1"
  hasher.absorb(canonical.jobs.size());
  for (const CanonicalJob& job : canonical.jobs) {
    hash_append(hasher, job.release);
    hash_append(hasher, job.deadline);
    hash_append(hasher, job.processing);
  }
  return hasher.digest();
}

util::Digest128 canonical_fingerprint(const Instance& instance) {
  obs::ProfileSpan span("fingerprint");
  return fingerprint(canonicalize(instance));
}

}  // namespace minmach
