// A concrete (possibly migratory) schedule: per machine, a list of slots
// [start, end) x job. Produced by the simulator, the offline flow scheduler,
// and the transforms; consumed by the validator and the experiment drivers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "minmach/core/job.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

struct Slot {
  Rat start;
  Rat end;
  JobId job = kInvalidJob;

  [[nodiscard]] Rat length() const { return end - start; }
  friend bool operator==(const Slot&, const Slot&) = default;
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t machines) : machines_(machines) {}
  // Copies carry the slots but not the spare-storage pool (the pool exists
  // so a cleared-and-refilled schedule, e.g. the pooled simulator's trace,
  // reuses its per-machine slot vectors; a copy starts cold).
  Schedule(const Schedule& other) : machines_(other.machines_) {}
  Schedule& operator=(const Schedule& other) {
    machines_ = other.machines_;
    return *this;
  }
  Schedule(Schedule&&) noexcept = default;
  Schedule& operator=(Schedule&&) noexcept = default;

  [[nodiscard]] std::size_t machine_count() const { return machines_.size(); }
  // Machines that actually process at least one slot. This is the number an
  // online algorithm is charged for.
  [[nodiscard]] std::size_t used_machine_count() const;

  // Appends a slot; grows the machine list as needed. Call canonicalize()
  // before querying once all slots are in.
  void add_slot(std::size_t machine, Rat start, Rat end, JobId job);

  // Drops all machines and slots, parking each machine's slot vector in a
  // spare pool that add_slot draws from, so a clear-and-refill cycle (the
  // pooled simulator's trace) reuses the per-machine storage.
  void clear() {
    for (std::vector<Slot>& machine : machines_) {
      machine.clear();
      spare_.push_back(std::move(machine));
    }
    machines_.clear();
  }

  [[nodiscard]] const std::vector<Slot>& slots(std::size_t machine) const {
    return machines_[machine];
  }

  // Sorts every machine's slots by start time and merges back-to-back slots
  // of the same job. Throws std::logic_error if two slots on one machine
  // overlap (that is a bug in the producer, not a validation question).
  void canonicalize();

  // Total time the job is processed (wall time across all machines).
  [[nodiscard]] Rat work_of(JobId job) const;
  // Wall time processed strictly before time t.
  [[nodiscard]] Rat work_of_before(JobId job, const Rat& t) const;

  // Machines that process the job at least once, ascending.
  [[nodiscard]] std::vector<std::size_t> machines_of(JobId job) const;

  // Sum over jobs of (number of machines touched - 1); zero iff the
  // schedule is non-migratory.
  [[nodiscard]] std::size_t migration_count() const;
  // Sum over jobs of (number of maximal contiguous processing intervals -
  // 1), where contiguity is in time regardless of machine.
  [[nodiscard]] std::size_t preemption_count() const;

  [[nodiscard]] std::size_t total_slots() const;

  // Rewrites every slot's job id through the map (used when a schedule of a
  // sub-instance is lifted back to the full instance's ids).
  void remap_jobs(const std::vector<JobId>& new_id_of);
  // Appends another schedule's machines after this one's (disjoint pools).
  void append_machines(const Schedule& other);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<Slot>> machines_;
  std::vector<std::vector<Slot>> spare_;  // cleared machines' storage, reused
};

}  // namespace minmach
