// Instance transforms used by Section 4's reduction machinery:
//  - inflate: J -> J^s   (processing times scaled by s; Theorem 6)
//  - shrink_window_left / _right: J -> J^{gamma}  (remove a gamma-fraction
//    of the laxity from one side of every window; Lemma 3)
//  - lemma4_split: the ceil(s) sub-instances J_1..J_{ceil(s)} from Lemma 4's
//    proof, each a translated copy of the job packed into consecutive
//    (p_j + delta_j)-sized sub-windows
//  - affine: t -> offset + scale * t (the adversary's rescaling primitive)
#pragma once

#include <vector>

#include "minmach/core/instance.hpp"

namespace minmach {

// Multiplies every processing time by s (s >= 1). Jobs whose inflated
// processing time would exceed their window make the result infeasible;
// throws std::invalid_argument in that case.
[[nodiscard]] Instance inflate(const Instance& in, const Rat& s);

// J^{0,gamma} of Lemma 3: window becomes [r_j, d_j - gamma*l_j).
[[nodiscard]] Instance shrink_window_right(const Instance& in,
                                           const Rat& gamma);
// J^{gamma} of Lemma 3: window becomes [r_j + gamma*l_j, d_j).
[[nodiscard]] Instance shrink_window_left(const Instance& in,
                                          const Rat& gamma);

// The Lemma 4 decomposition of J^s for instances of alpha-loose jobs with
// alpha < 1/s: returns ceil(s) instances J_1..J_{ceil(s)}; J_i holds, for
// each original job j, the piece with window
//   [r_j + (i-1)(p_j + delta_j), r_j + i(p_j + delta_j))
// and processing p_j (the last piece carries the remainder
// (s - ceil(s) + 1) p_j and stretches to r_j + s p_j + ceil(s) delta_j),
// where delta_j = (1 - alpha s)/ceil(s) * (d_j - r_j).
[[nodiscard]] std::vector<Instance> lemma4_split(const Instance& in,
                                                 const Rat& s,
                                                 const Rat& alpha);

// Affine time transform: r,d -> offset + scale * (r,d), p -> scale * p.
// Requires scale > 0.
[[nodiscard]] Instance affine(const Instance& in, const Rat& offset,
                              const Rat& scale);
[[nodiscard]] Job affine(const Job& job, const Rat& offset, const Rat& scale);

// Concatenates two instances (job order preserved: a's jobs then b's).
[[nodiscard]] Instance concat(const Instance& a, const Instance& b);

// The sub-instance of all alpha-loose (respectively alpha-tight) jobs,
// with the mapping back to original ids.
struct Split {
  Instance loose;
  Instance tight;
  std::vector<JobId> loose_ids;  // original id of loose.job(i)
  std::vector<JobId> tight_ids;
};
[[nodiscard]] Split split_by_looseness(const Instance& in, const Rat& alpha);

}  // namespace minmach
