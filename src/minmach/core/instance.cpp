#include "minmach/core/instance.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "minmach/util/simd.hpp"

namespace minmach {

JobId Instance::add_job(const Job& job) {
  jobs_.push_back(job);
  return static_cast<JobId>(jobs_.size() - 1);
}

bool Instance::well_formed() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const Job& j) { return j.well_formed(); });
}

Rat Instance::total_work() const {
  Rat total(0);
  for (const auto& j : jobs_) total += j.processing;
  return total;
}

std::vector<Rat> Instance::event_points() const {
  std::vector<Rat> points;
  points.reserve(2 * jobs_.size());
  for (const auto& j : jobs_) {
    points.push_back(j.release);
    points.push_back(j.deadline);
  }
  if (util::simd::active() && !points.empty()) {
    // Integer fast path (DESIGN.md §12): when every endpoint is a small
    // integer, sort/dedup int64 keys instead of Rats -- a compare there is
    // one instruction vs. a two-branch small-tier compare -- and rebuild
    // the canonical Rats (integers are canonical as v/1, so the result is
    // bit-identical to sorting the Rats directly).
    std::vector<std::int64_t> keys(points.size());
    if (rat_batch::to_i64(points.data(), points.size(), keys.data(),
                          INT64_MAX)) {
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      points.resize(keys.size());
      for (std::size_t i = 0; i < keys.size(); ++i) points[i] = Rat(keys[i]);
      return points;
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

bool Instance::is_agreeable() const {
  for (std::size_t a = 0; a < jobs_.size(); ++a) {
    for (std::size_t b = 0; b < jobs_.size(); ++b) {
      if (jobs_[a].release < jobs_[b].release &&
          jobs_[a].deadline > jobs_[b].deadline)
        return false;
    }
  }
  return true;
}

bool Instance::is_laminar() const {
  for (std::size_t a = 0; a < jobs_.size(); ++a) {
    for (std::size_t b = a + 1; b < jobs_.size(); ++b) {
      Interval cut = intersect(jobs_[a].window(), jobs_[b].window());
      if (cut.empty()) continue;
      bool a_in_b = jobs_[b].release <= jobs_[a].release &&
                    jobs_[a].deadline <= jobs_[b].deadline;
      bool b_in_a = jobs_[a].release <= jobs_[b].release &&
                    jobs_[b].deadline <= jobs_[a].deadline;
      if (!a_in_b && !b_in_a) return false;
    }
  }
  return true;
}

bool Instance::all_loose(const Rat& alpha) const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [&](const Job& j) { return j.is_loose(alpha); });
}

Rat Instance::processing_time_ratio() const {
  if (jobs_.empty()) return Rat(1);
  Rat lo = jobs_.front().processing;
  Rat hi = lo;
  for (const auto& j : jobs_) {
    lo = Rat::min(lo, j.processing);
    hi = Rat::max(hi, j.processing);
  }
  return hi / lo;
}

std::vector<JobId> Instance::sort_canonical() {
  std::vector<JobId> order(jobs_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    if (jobs_[a].release != jobs_[b].release)
      return jobs_[a].release < jobs_[b].release;
    return jobs_[a].deadline > jobs_[b].deadline;
  });
  std::vector<Job> sorted;
  sorted.reserve(jobs_.size());
  for (JobId id : order) sorted.push_back(jobs_[id]);
  jobs_ = std::move(sorted);
  return order;
}

BigInt Instance::denominator_lcm() const {
  BigInt lcm(1);
  for (const auto& j : jobs_) {
    lcm = BigInt::lcm(lcm, j.release.den());
    lcm = BigInt::lcm(lcm, j.deadline.den());
    lcm = BigInt::lcm(lcm, j.processing.den());
  }
  return lcm;
}

std::string Instance::to_string() const {
  std::string out = "Instance(" + std::to_string(jobs_.size()) + " jobs)\n";
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    out += "  j" + std::to_string(i) + ": r=" + jobs_[i].release.to_string() +
           " d=" + jobs_[i].deadline.to_string() +
           " p=" + jobs_[i].processing.to_string() + "\n";
  }
  return out;
}

}  // namespace minmach
