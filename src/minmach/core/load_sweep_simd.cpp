#include "minmach/core/load_sweep_simd.hpp"

#include <algorithm>
#include <numeric>

#include "minmach/core/load_sweep_kernel.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/util/simd.hpp"

namespace minmach {

namespace {

// Overflow guard for the int64 kernel. With n jobs, total work T = sum p_j,
// and P = max |point|, every intermediate the kernel forms is bounded by
//   |m| = |growing - best| <= n + T            (best <= T: each job
//                                               contributes <= p_j and the
//                                               integer grid makes every
//                                               witness length >= 1)
//   |m * b| <= (n + T) * P
//   |rhs|  <= 3*n*P + 2*n*P + T*P
// so n <= 2^29, T <= 2^29, P <= 2^30 keeps everything below 2^62 -- and
// keeps m and b inside int32, which the AVX2 scan's 32x32->64 multiply
// needs. Instances beyond the guard run the generic __int128 kernel
// (bit-identical by construction, just slower).
constexpr std::int64_t kMaxCount = std::int64_t{1} << 29;
constexpr std::int64_t kMaxPoint = std::int64_t{1} << 30;

bool kernel_in_range(const std::vector<std::int64_t>& release,
                     const std::vector<std::int64_t>& deadline,
                     const std::vector<std::int64_t>& processing,
                     const std::vector<std::int64_t>& points, std::size_t n) {
  if (static_cast<std::int64_t>(n) > kMaxCount) return false;
  // points sorted, so the extremes bound every grid value; releases and
  // deadlines are checked directly (callers usually pass the r/d event
  // grid, but the API does not require it).
  auto bounded = [](std::int64_t v) {
    return -kMaxPoint <= v && v <= kMaxPoint;
  };
  if (!bounded(points.front()) || !bounded(points.back())) return false;
  __int128 total = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (!bounded(release[j]) || !bounded(deadline[j])) return false;
    total += processing[j];
  }
  return total <= kMaxCount;
}

SweepWitness spill_to_generic(const std::vector<std::int64_t>& release,
                              const std::vector<std::int64_t>& deadline,
                              const std::vector<std::int64_t>& processing,
                              const std::vector<std::int64_t>& points,
                              std::size_t left_stride) {
  MINMACH_OBS_TALLY(simd_scalar_spills);
  auto widen = [](const std::vector<std::int64_t>& v) {
    return std::vector<__int128>(v.begin(), v.end());
  };
  return sweep_load_bound<__int128>(
      widen(release), widen(deadline), widen(processing), widen(points),
      [](const __int128& c, const __int128& len) {
        return static_cast<std::int64_t>((c + len - 1) / len);
      },
      left_stride);
}

thread_local detail::SweepSoA sweep_scratch;

}  // namespace

SweepWitness sweep_load_bound_i64(const std::vector<std::int64_t>& release,
                                  const std::vector<std::int64_t>& deadline,
                                  const std::vector<std::int64_t>& processing,
                                  const std::vector<std::int64_t>& points,
                                  std::size_t left_stride, bool use_avx2) {
  SweepWitness best;
  const std::size_t n = release.size();
  if (n == 0 || points.size() < 2) return best;
  if (left_stride == 0) left_stride = 1;
  if (!kernel_in_range(release, deadline, processing, points, n))
    return spill_to_generic(release, deadline, processing, points, left_stride);

  detail::SweepSoA& s = sweep_scratch;
  s.prepare(n, points.data(), points.size());

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Same three comparators as the generic kernel. Ties may land in either
  // order there (std::sort is unstable) and here; admissions between
  // consecutive grid points are aggregated before any state is read, so
  // every tie order yields the same sweep state and the same witness.
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return (deadline[x] - release[x] - processing[x]) <
           (deadline[y] - release[y] - processing[y]);
  });
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = order[i];
    s.lax_a[i] = deadline[j] - release[j] - processing[j];
    s.rel_a[i] = release[j];
    s.dl_a[i] = deadline[j];
  }
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return deadline[x] - processing[x] < deadline[y] - processing[y];
  });
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = order[i];
    s.onset_b[i] = deadline[j] - processing[j];
    s.rel_b[i] = release[j];
  }
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return deadline[x] < deadline[y];
  });
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = order[i];
    s.dl_d[i] = deadline[j];
    s.rel_d[i] = release[j];
    s.lax_d[i] = deadline[j] - release[j] - processing[j];
  }

  std::uint64_t lanes = 0;
#if MINMACH_SIMD_COMPILE_AVX2
  if (use_avx2) {
    best = detail::sweep_kernel_i64_avx2(s, left_stride, &lanes);
    MINMACH_OBS_TALLY_ADD(simd_lanes_used, lanes);
    return best;
  }
#else
  (void)use_avx2;
#endif
  best = detail::sweep_kernel_i64<detail::SweepScalarOps>(s, left_stride, &lanes);
  return best;
}

}  // namespace minmach
