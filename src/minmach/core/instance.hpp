// An Instance is an ordered set of jobs (order = index = the online release
// order tie-break used throughout the paper, cf. §5: indices sorted by
// release date, ties by non-increasing deadline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "minmach/core/job.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

// Borrowed SoA view of an integer-grid instance: parallel release /
// deadline / processing columns of `count` jobs, int64 on a common time
// grid. This is the zero-copy currency between the mmap'd corpus
// (store/corpus.hpp) and the oracle's integer fast path: the columns may be
// an affine image of the original rational instance (scaled by the
// denominator LCM), which is safe because OPT, feasibility, and the
// canonical fingerprint are all invariant under t -> a*t (DESIGN.md §11).
// The view does not own the columns; the backing storage (a mapping, a
// vector) must outlive it.
struct JobColumns {
  const std::int64_t* release = nullptr;
  const std::int64_t* deadline = nullptr;
  const std::int64_t* processing = nullptr;
  std::size_t count = 0;

  [[nodiscard]] bool empty() const { return count == 0; }
};

class Instance {
 public:
  Instance() = default;
  explicit Instance(std::vector<Job> jobs) : jobs_(std::move(jobs)) {}

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] const Job& job(JobId id) const { return jobs_[id]; }
  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }

  JobId add_job(const Job& job);

  // Removes all jobs but keeps the storage, so a pooled simulator can
  // resubmit a fresh instance without reallocating (DESIGN.md §10).
  void clear() { jobs_.clear(); }

  // All jobs well-formed (0 < p <= d - r)?
  [[nodiscard]] bool well_formed() const;

  // Sum of processing times.
  [[nodiscard]] Rat total_work() const;

  // Sorted unique release dates and deadlines; these are the only points at
  // which the optimal load characterization (Theorem 1) needs interval
  // endpoints, and the segment grid of the max-flow feasibility network.
  [[nodiscard]] std::vector<Rat> event_points() const;

  // r_j < r_j' implies d_j <= d_j' for all pairs (paper §6).
  [[nodiscard]] bool is_agreeable() const;

  // Intersecting windows are nested (paper §5).
  [[nodiscard]] bool is_laminar() const;

  // All jobs alpha-loose.
  [[nodiscard]] bool all_loose(const Rat& alpha) const;

  // Delta = max p_j / min p_j (the ratio in the O(log Delta) bounds).
  [[nodiscard]] Rat processing_time_ratio() const;

  // Re-index jobs into the canonical online order: release ascending, ties
  // by deadline descending (the order assumed in §5). Returns the mapping
  // new_index -> old_index.
  std::vector<JobId> sort_canonical();

  // Least common multiple of all parameter denominators. Multiplying all
  // times by this lands the instance on an integer grid (used by the flow
  // substrate's fast path).
  [[nodiscard]] BigInt denominator_lcm() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Job> jobs_;
};

}  // namespace minmach
