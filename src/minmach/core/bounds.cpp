#include "minmach/core/bounds.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "minmach/core/load_sweep.hpp"
#include "minmach/core/load_sweep_simd.hpp"
#include "minmach/obs/profile.hpp"
#include "minmach/util/simd.hpp"

namespace minmach {

namespace {

std::atomic<bool> g_bounds_tier_enabled{true};

// Left-endpoint stride implementing the sweep budget (same rule as the
// oracle's budgeted sweep: at most `budget` left endpoints are evaluated).
std::size_t sweep_stride(std::size_t point_count, std::size_t left_budget) {
  if (point_count <= 1) return 1;
  if (left_budget == 0) left_budget = 1;
  return std::max<std::size_t>(1, (point_count - 1) / left_budget);
}

// Small-integer extraction for the SIMD kernel: succeeds only when every
// field is an integer Rat in the int64 small tier (the kernel applies its
// own tighter overflow guard and spills internally if needed).
bool small_int_fields(const Instance& instance, std::vector<std::int64_t>& r,
                      std::vector<std::int64_t>& d,
                      std::vector<std::int64_t>& p) {
  const std::size_t n = instance.size();
  r.reserve(n);
  d.reserve(n);
  p.reserve(n);
  auto small_into = [](const Rat& value, std::vector<std::int64_t>& dst) {
    if (!value.is_integer() || !value.num().is_small()) return false;
    dst.push_back(value.num().small_value());
    return true;
  };
  for (const Job& job : instance.jobs()) {
    if (!small_into(job.release, r) || !small_into(job.deadline, d) ||
        !small_into(job.processing, p))
      return false;
  }
  return true;
}

// Near-argmax interval candidate from the double prefilter sweep.
struct SweepCand {
  std::size_t lo = 0;
  std::size_t hi = 0;
  double ratio = 0.0;
};

}  // namespace

std::int64_t prefiltered_sweep_bound(const std::vector<Rat>& release,
                                     const std::vector<Rat>& deadline,
                                     const std::vector<Rat>& processing,
                                     const std::vector<Rat>& points,
                                     std::size_t left_budget) {
  const std::size_t n = release.size();
  if (n == 0 || points.size() < 2) return 0;

  auto exact_fallback = [&]() {
    return sweep_load_bound(release, deadline, processing, points,
                            [](const Rat& c, const Rat& len) {
                              return (c / len).ceil().to_int64();
                            },
                            sweep_stride(points.size(), left_budget))
        .machines;
  };

  // One-time conversion; any overflow to non-finite doubles sends the whole
  // instance down the exact budgeted sweep instead.
  bool finite = true;
  auto conv = [&finite](const Rat& value) {
    const double x = value.to_double();
    if (!std::isfinite(x)) finite = false;
    return x;
  };
  std::vector<double> r(n), d(n), p(n), laxity(n);
  for (std::size_t j = 0; j < n; ++j) {
    r[j] = conv(release[j]);
    d[j] = conv(deadline[j]);
    p[j] = conv(processing[j]);
    laxity[j] = d[j] - r[j] - p[j];
  }
  std::vector<double> pts(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) pts[i] = conv(points[i]);
  if (!finite) return exact_fallback();

  // Float twin of core/load_sweep.hpp's incremental sweep, collecting every
  // interval within kSlack of the running maximum ratio instead of a single
  // argmax. Float cost affords a 16x more generous left-endpoint budget
  // than the exact sweep's.
  constexpr double kSlack = 1e-9;
  constexpr std::size_t kMaxCands = 256;
  std::vector<std::size_t> by_laxity(n), by_onset(n), by_deadline(n);
  std::iota(by_laxity.begin(), by_laxity.end(), 0);
  by_onset = by_laxity;
  by_deadline = by_laxity;
  std::sort(by_laxity.begin(), by_laxity.end(),
            [&](std::size_t x, std::size_t y) { return laxity[x] < laxity[y]; });
  std::sort(by_onset.begin(), by_onset.end(),
            [&](std::size_t x, std::size_t y) {
              return d[x] - p[x] < d[y] - p[y];
            });
  std::sort(by_deadline.begin(), by_deadline.end(),
            [&](std::size_t x, std::size_t y) { return d[x] < d[y]; });

  std::vector<SweepCand> cands;
  double best_ratio = 0.0;
  auto compact = [&]() {
    std::erase_if(cands, [&](const SweepCand& c) {
      return c.ratio < best_ratio * (1.0 - kSlack);
    });
    if (cands.size() > kMaxCands) {
      std::nth_element(cands.begin(),
                       cands.begin() + static_cast<std::ptrdiff_t>(kMaxCands / 2),
                       cands.end(), [](const SweepCand& a, const SweepCand& b) {
                         return a.ratio > b.ratio;
                       });
      cands.resize(kMaxCands / 2);
    }
  };

  const std::size_t stride = sweep_stride(points.size(), 16 * left_budget);
  for (std::size_t ai = 0; ai + 1 < points.size() && finite; ai += stride) {
    const double a = pts[ai];
    std::int64_t growing = 0;
    double growing_cross_sum = 0.0;
    double frozen_sum = 0.0;
    std::size_t pa = 0, pb = 0, pd = 0;
    for (std::size_t bi = ai + 1; bi < points.size(); ++bi) {
      const double b = pts[bi];
      while (pa < n) {
        const std::size_t j = by_laxity[pa];
        const double cross = a + laxity[j];
        if (!(cross < b)) break;
        ++pa;
        if (a < r[j] || !(a < d[j])) continue;
        if (!(cross < d[j])) continue;
        ++growing;
        growing_cross_sum += cross;
      }
      while (pb < n) {
        const std::size_t j = by_onset[pb];
        const double cross = d[j] - p[j];
        if (!(cross < b)) break;
        ++pb;
        if (!(a < r[j])) continue;
        ++growing;
        growing_cross_sum += cross;
      }
      while (pd < n) {
        const std::size_t j = by_deadline[pd];
        if (!(d[j] <= b)) break;
        ++pd;
        if (!(a < d[j])) continue;
        const double cross = (r[j] < a ? a : r[j]) + laxity[j];
        if (!(cross < d[j])) continue;
        --growing;
        growing_cross_sum -= cross;
        frozen_sum += d[j] - cross;
      }
      const double contribution =
          static_cast<double>(growing) * b - growing_cross_sum + frozen_sum;
      const double length = b - a;
      if (!(contribution > 0.0) || !(length > 0.0)) continue;
      const double ratio = contribution / length;
      if (!std::isfinite(ratio)) {
        finite = false;
        break;
      }
      if (ratio > best_ratio) best_ratio = ratio;
      if (ratio >= best_ratio * (1.0 - kSlack)) {
        cands.push_back({ai, bi, ratio});
        if (cands.size() > kMaxCands) compact();
      }
    }
  }
  if (!finite) return exact_fallback();
  if (cands.empty()) return 0;

  // Exact Rat evaluation of the shortlist, best float ratio first. Each
  // value is a certified bound on its own, so the max over however many we
  // evaluate is certified; the -0.5 cutoff stops once no remaining
  // candidate's ceil can exceed the incumbent.
  compact();
  std::sort(cands.begin(), cands.end(),
            [](const SweepCand& a, const SweepCand& b) {
              return a.ratio > b.ratio;
            });
  constexpr int kMaxExact = 12;
  std::int64_t best = 0;
  int evals = 0;
  for (const SweepCand& cand : cands) {
    if (evals >= kMaxExact) break;
    if (cand.ratio <= static_cast<double>(best) - 0.5) break;
    ++evals;
    const Rat& a = points[cand.lo];
    const Rat& b = points[cand.hi];
    Rat work(0);
    for (std::size_t j = 0; j < n; ++j) {
      const Rat& start = release[j] < a ? a : release[j];
      const Rat& end = b < deadline[j] ? b : deadline[j];
      if (!(start < end)) continue;
      Rat c = (end - start) - (deadline[j] - release[j] - processing[j]);
      if (c.is_positive()) work += c;
    }
    if (work.is_positive())
      best = std::max(best, (work / (b - a)).ceil().to_int64());
  }
  return best;
}

LowerBoundParts certified_lower_bound(const Instance& instance,
                                      std::size_t left_budget) {
  LowerBoundParts out;
  if (instance.empty() || !instance.well_formed()) return out;
  obs::ProfileSpan span("bound_lo");

  const std::vector<Rat> points = instance.event_points();
  const Rat span_length = points.back() - points.front();
  if (span_length.is_positive()) {
    const Rat density = instance.total_work() / span_length;
    out.density = std::max<std::int64_t>(1, density.ceil().to_int64());
  }

  const std::size_t stride = sweep_stride(points.size(), left_budget);
  std::vector<std::int64_t> r64, d64, p64;
  if (util::simd::active() && small_int_fields(instance, r64, d64, p64)) {
    std::vector<std::int64_t> pts64;
    pts64.reserve(points.size());
    for (const Rat& point : points)
      pts64.push_back(point.num().small_value());
    out.sweep = sweep_load_bound_i64(r64, d64, p64, pts64, stride,
                                     /*use_avx2=*/true)
                    .machines;
  } else {
    std::vector<Rat> release, deadline, processing;
    release.reserve(instance.size());
    deadline.reserve(instance.size());
    processing.reserve(instance.size());
    for (const Job& job : instance.jobs()) {
      release.push_back(job.release);
      deadline.push_back(job.deadline);
      processing.push_back(job.processing);
    }
    out.sweep = prefiltered_sweep_bound(release, deadline, processing, points,
                                        left_budget);
  }
  out.machines = std::max(out.density, out.sweep);
  return out;
}

void set_bounds_tier_enabled(bool enabled) {
  g_bounds_tier_enabled.store(enabled, std::memory_order_relaxed);
}

bool bounds_tier_enabled() {
  return g_bounds_tier_enabled.load(std::memory_order_relaxed);
}

}  // namespace minmach
