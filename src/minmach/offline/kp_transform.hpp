// Offline migratory -> non-migratory rewriting (the role of Theorem 2,
// Kalyanasundaram & Pruhs: every migratory schedule on m machines can be
// turned into a non-migratory one on 6m - 5 machines).
//
// The paper consumes the theorem purely as an existence result relating the
// two notions of competitiveness (Lemma 1) and the explicit constant in
// Theorem 4 (3 migratory machines -> 13 non-migratory). This module
// implements a concrete transform in the same spirit (DESIGN.md §5,
// substitution 2): jobs are bucketed into geometric laxity-ratio classes
// (KP's key structural idea: jobs of comparable tightness pack together)
// and assigned within each class by first fit under the exact
// single-machine EDF feasibility test, with full offline knowledge of
// release dates. Experiment E3 measures the achieved machine count against
// the 6m - 5 bound across instance families.
#pragma once

#include <cstdint>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"

namespace minmach {

struct KpResult {
  Schedule schedule;  // feasible, non-migratory
  std::size_t machines = 0;
};

// Builds a feasible non-migratory schedule for any well-formed instance
// (offline). `class_base` controls the geometric laxity-class bucketing
// (ratio (d-r)/p thresholds at powers of class_base); 2 is the default.
[[nodiscard]] KpResult migratory_to_nonmigratory(const Instance& instance,
                                                 std::int64_t class_base = 2);

}  // namespace minmach
