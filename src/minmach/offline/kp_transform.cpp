#include "minmach/offline/kp_transform.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "minmach/algos/single_machine.hpp"

namespace minmach {

namespace {

// Geometric class of the window-to-processing ratio: class k holds jobs
// with (d-r)/p in [base^k, base^(k+1)).
int laxity_class(const Job& job, std::int64_t base) {
  Rat ratio = job.window_length() / job.processing;  // >= 1
  int k = 0;
  Rat threshold(base);
  while (ratio >= threshold) {
    threshold *= Rat(base);
    ++k;
    if (k > 200) break;  // ratios beyond base^200 all land together
  }
  return k;
}

}  // namespace

KpResult migratory_to_nonmigratory(const Instance& instance,
                                   std::int64_t class_base) {
  if (class_base < 2)
    throw std::invalid_argument("migratory_to_nonmigratory: base >= 2");
  if (!instance.well_formed())
    throw std::invalid_argument("migratory_to_nonmigratory: malformed jobs");

  // Bucket by laxity class, then order inside a class by release date (the
  // packing order KP's analysis uses within a tightness band).
  std::map<int, std::vector<JobId>> classes;
  for (JobId id = 0; id < instance.size(); ++id)
    classes[laxity_class(instance.job(id), class_base)].push_back(id);

  std::vector<std::vector<JobId>> machines;
  for (auto& [cls, ids] : classes) {
    std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
      const Job& ja = instance.job(a);
      const Job& jb = instance.job(b);
      if (ja.release != jb.release) return ja.release < jb.release;
      if (ja.deadline != jb.deadline) return ja.deadline < jb.deadline;
      return a < b;
    });
    // First fit with full offline knowledge: the feasibility test sees
    // every already-assigned job's true release date. The class ordering
    // packs comparable-tightness jobs together (KP's structural idea), but
    // machines are shared across classes -- a later, looser class fills the
    // gaps earlier classes left.
    for (JobId id : ids) {
      const Job& job = instance.job(id);
      bool placed = false;
      for (std::size_t m = 0; m < machines.size(); ++m) {
        std::vector<MachineCommitment> commitments;
        commitments.reserve(machines[m].size() + 1);
        for (JobId other : machines[m]) {
          const Job& o = instance.job(other);
          commitments.push_back({o.release, o.deadline, o.processing});
        }
        commitments.push_back({job.release, job.deadline, job.processing});
        // start earlier than every release
        Rat start = job.release;
        for (const auto& c : commitments) start = Rat::min(start, c.available_from);
        if (edf_feasible_single_machine(std::move(commitments), start)) {
          machines[m].push_back(id);
          placed = true;
          break;
        }
      }
      if (!placed) machines.push_back({id});
    }
  }

  // Materialize per-machine EDF schedules.
  KpResult out;
  Schedule schedule(machines.size());
  for (std::size_t m = 0; m < machines.size(); ++m) {
    std::vector<LabeledCommitment> commitments;
    Rat start;
    bool first = true;
    for (JobId id : machines[m]) {
      const Job& job = instance.job(id);
      commitments.push_back({job.release, job.deadline, job.processing, id});
      if (first || job.release < start) start = job.release;
      first = false;
    }
    auto slots = edf_schedule_single_machine(std::move(commitments), start);
    if (!slots)
      throw std::logic_error(
          "migratory_to_nonmigratory: admission test accepted an infeasible "
          "set");
    for (const auto& slot : *slots)
      schedule.add_slot(m, slot.start, slot.end, slot.job);
  }
  schedule.canonicalize();
  out.machines = schedule.used_machine_count();
  out.schedule = std::move(schedule);
  return out;
}

}  // namespace minmach
