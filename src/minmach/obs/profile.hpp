// Hierarchical span profiler (DESIGN.md §13). Answers "where does OPT wall
// time go" across the pipeline phases -- canonicalize -> cache lookup ->
// oracle build -> sweep bound -> probe -> Dinic BFS/DFS -> speculation --
// with an overhead budget of one relaxed atomic load per would-be span when
// profiling is off (the default), so instrumented hot paths stay within the
// <= 2% bar the tallies layer set.
//
// Design:
//  * A span is a scoped RAII timer (`ProfileSpan`) named by a string
//    literal. Spans nest lexically; each thread keeps its own span TREE
//    (nodes keyed by name under their parent), so a span's cost is two
//    steady_clock reads plus a short child-list scan -- no allocation on
//    the steady state, no locks.
//  * Draining folds a thread's tree into the global Registry as two metric
//    families per node path (components joined with '/'):
//      - counter  "profile.<path>.calls"  -- deterministic span counts.
//        The profile. prefix is execution-class (obs::is_exec_metric), so
//        counts are exact and thread-count/comparison-stable but excluded
//        from the deterministic report sections by default.
//      - timing   "profile.<path>.ns"     -- wall time, summed inclusive of
//        children. Timing histograms land in Snapshot::timings, which the
//        deterministic serialization already excludes.
//    drain_hot_tallies() calls profile_drain_thread(), so every place that
//    already drains arithmetic tallies (parallel_map workers, speculation
//    lanes, Registry::snapshot) drains spans for free.
//  * Attribution (profile_attribution) and the Chrome exporter
//    (save_profile_chrome_trace) are pure functions of a Snapshot: the
//    span tree is reconstructed from the flat "profile.*" names, so any
//    consumer of a report can recompute phase shares.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace minmach::obs {

struct Snapshot;

// Process-wide enable flag. Off by default; bench::Run flips it for
// --profile on. Reading is a single relaxed atomic load.
void set_profiling(bool enabled) noexcept;
[[nodiscard]] bool profiling_enabled() noexcept;

namespace profile_detail {
// Opens a span named `name` under the calling thread's current span and
// returns its node index (the token ProfileSpan::~ProfileSpan passes back).
[[nodiscard]] std::int32_t enter(const char* name);
// Closes the span `token`, crediting `elapsed_ns` to its node.
void exit(std::int32_t token, std::int64_t elapsed_ns) noexcept;
}  // namespace profile_detail

// Folds the calling thread's span tree into the Registry and zeroes the
// recorded calls/durations (tree structure is kept, so steady-state drains
// allocate nothing). No-op when the thread recorded no spans.
void profile_drain_thread();

// Zeroes the calling thread's span tree without publishing it (test
// isolation; Registry::reset() calls this).
void profile_reset_thread() noexcept;

// Scoped span. When profiling is off the constructor is one relaxed load
// and the destructor one branch. Spans must be destroyed in LIFO order per
// thread (automatic with block scoping).
class ProfileSpan {
 public:
  explicit ProfileSpan(const char* name) noexcept {
    if (!profiling_enabled()) return;
    token_ = profile_detail::enter(name);
    start_ = std::chrono::steady_clock::now();
  }
  ~ProfileSpan() {
    if (token_ < 0) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    profile_detail::exit(
        token_,
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  std::int32_t token_ = -1;
  std::chrono::steady_clock::time_point start_{};
};

// One row of the perf-attribution table reconstructed from a snapshot.
struct ProfileSpanRow {
  std::string path;        // '/'-joined span names, e.g. "opt_search/probe"
  std::uint64_t calls = 0;
  std::int64_t total_ns = 0;  // inclusive of child spans
  double share = 0.0;         // total_ns / sum of root-span totals
};

// Extracts the span rows from a snapshot's "profile.<path>.calls" counters
// and "profile.<path>.ns" timings, sorted by path. Shares are relative to
// the sum over root-level spans (paths without '/'); zero when no root
// span recorded time.
[[nodiscard]] std::vector<ProfileSpanRow> profile_attribution(
    const Snapshot& snapshot);

// Writes the aggregated span tree as a Chrome trace_event JSON document of
// nested "X" duration events (a synthetic stacked timeline: children start
// at their parent's timestamp, siblings laid end to end), loadable in
// Perfetto / chrome://tracing next to the schedule exporter's output.
void write_profile_chrome_trace(std::ostream& os, const Snapshot& snapshot);
void save_profile_chrome_trace(const std::string& path,
                               const Snapshot& snapshot);

}  // namespace minmach::obs
