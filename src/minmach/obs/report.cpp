#include "minmach/obs/report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "minmach/obs/json.hpp"
#include "minmach/obs/profile.hpp"

namespace minmach::obs {

namespace {

// Fixed-precision decimal so derived ratios serialize byte-stably.
std::string ratio6(std::uint64_t numerator, std::uint64_t denominator) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f",
                static_cast<double>(numerator) / static_cast<double>(denominator));
  return buffer;
}

std::string share6(double share) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", share);
  return buffer;
}

void write_metrics(JsonWriter& writer, const Snapshot& metrics) {
  writer.key("counters").begin_object();
  for (const auto& [name, value] : metrics.counters) writer.key(name).value(value);
  writer.end_object();
  writer.key("gauges").begin_object();
  for (const auto& [name, value] : metrics.gauges) {
    writer.key(name).begin_object();
    writer.key("value").value(value);
    auto it = metrics.gauge_maxes.find(name);
    writer.key("max").value(it == metrics.gauge_maxes.end() ? value : it->second);
    writer.end_object();
  }
  writer.end_object();
  writer.key("histograms").begin_object();
  for (const auto& [name, data] : metrics.histograms) {
    writer.key(name).begin_object();
    writer.key("count").value(data.count);
    writer.key("sum").value(data.sum);
    writer.key("min").value(data.min);
    writer.key("max").value(data.max);
    writer.key("bins").begin_object();
    for (const auto& [bucket, n] : data.bins) {
      writer.key(std::to_string(bucket)).value(n);
    }
    writer.end_object();
    writer.end_object();
  }
  writer.end_object();
  // Derived ratios the acceptance criteria ask for directly.
  writer.key("derived").begin_object();
  auto fast = metrics.counters.find("rat.fast_ops");
  auto slow = metrics.counters.find("rat.slow_ops");
  std::uint64_t fast_n = fast == metrics.counters.end() ? 0 : fast->second;
  std::uint64_t slow_n = slow == metrics.counters.end() ? 0 : slow->second;
  if (fast_n + slow_n > 0) {
    writer.key("rat_fast_hit_rate").value(ratio6(fast_n, fast_n + slow_n));
  }
  writer.end_object();
}

}  // namespace

void RunReport::write_json(std::ostream& os) const {
  JsonWriter writer(os);
  writer.begin_object();
  writer.key("schema").value(kReportSchema);
  writer.key("experiment").value(experiment);
  writer.key("claim").value(claim);
  writer.key("config").begin_object();
  for (const auto& [key, value] : config) writer.key(key).value(value);
  writer.end_object();
  writer.key("tables").begin_array();
  for (const ReportTable& table : tables) {
    writer.begin_object();
    writer.key("title").value(table.title);
    writer.key("header").begin_array();
    for (const std::string& cell : table.header) writer.value(cell);
    writer.end_array();
    writer.key("rows").begin_array();
    for (const auto& row : table.rows) {
      writer.begin_array();
      for (const std::string& cell : row) writer.value(cell);
      writer.end_array();
    }
    writer.end_array();
    writer.end_object();
  }
  writer.end_array();
  writer.key("checks").begin_array();
  for (const ReportCheck& check : checks) {
    writer.begin_object();
    writer.key("name").value(check.name);
    writer.key("measured").value(check.measured);
    writer.key("bound").value(check.bound);
    writer.key("ok").value(check.ok);
    writer.end_object();
  }
  writer.end_array();
  writer.key("checks_ok").value(all_checks_ok());
  writer.key("metrics").begin_object();
  write_metrics(writer, metrics);
  writer.end_object();
  if (profiled) {
    // Perf-attribution sections (DESIGN.md §13): wall-clock data, present
    // only on --profile on runs so default reports stay byte-identical.
    writer.key("profile").begin_array();
    for (const ProfileSpanRow& row : profile_attribution(metrics)) {
      writer.begin_object();
      writer.key("path").value(row.path);
      writer.key("calls").value(row.calls);
      writer.key("total_ns").value(row.total_ns);
      writer.key("share").value(share6(row.share));
      writer.end_object();
    }
    writer.end_array();
    writer.key("latency").begin_object();
    for (const auto& [name, summary] : latencies) {
      writer.key(name).begin_object();
      writer.key("count").value(summary.count);
      writer.key("sum").value(summary.sum);
      writer.key("p50").value(summary.p50);
      writer.key("p90").value(summary.p90);
      writer.key("p99").value(summary.p99);
      writer.key("max").value(summary.max);
      writer.end_object();
    }
    writer.end_object();
  }
  writer.end_object();
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void save_report(const std::string& path, const RunReport& report) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_report: cannot open " + path);
  report.write_json(os);
  if (!os) throw std::runtime_error("save_report: write failed for " + path);
}

}  // namespace minmach::obs
