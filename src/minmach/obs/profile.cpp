#include "minmach/obs/profile.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"

namespace minmach::obs {

namespace {

std::atomic<bool> g_profiling{false};

// Thread-local span tree. Node 0 is the root sentinel (the "no open span"
// state); children are an intrusive singly-linked list so opening a span
// is a short scan over its parent's (few) children. Names are expected to
// be string literals, but nodes match by strcmp so the same span name used
// from two translation units still lands on one node.
struct SpanNode {
  const char* name = nullptr;
  std::int32_t parent = -1;
  std::int32_t first_child = -1;
  std::int32_t next_sibling = -1;
  std::uint64_t calls = 0;
  std::int64_t total_ns = 0;
};

struct SpanTree {
  std::vector<SpanNode> nodes;
  std::int32_t current = 0;
  bool dirty = false;

  SpanTree() { nodes.push_back(SpanNode{}); }
};

SpanTree& tree() {
  static thread_local SpanTree t;
  return t;
}

// Appends "profile.<path>.<calls|ns>" rows for `node` and its subtree into
// the registry; paths build up along the DFS.
void drain_node(SpanTree& t, std::int32_t id, std::string& path,
                Registry& registry) {
  SpanNode& node = t.nodes[static_cast<std::size_t>(id)];
  const std::size_t saved = path.size();
  if (id != 0) {
    if (!path.empty()) path += '/';
    path += node.name;
    if (node.calls != 0 || node.total_ns != 0) {
      registry.counter("profile." + path + ".calls").add(node.calls);
      registry.timing("profile." + path + ".ns").observe(node.total_ns);
      node.calls = 0;
      node.total_ns = 0;
    }
  }
  for (std::int32_t child = node.first_child; child != -1;
       child = t.nodes[static_cast<std::size_t>(child)].next_sibling) {
    drain_node(t, child, path, registry);
  }
  path.resize(saved);
}

}  // namespace

void set_profiling(bool enabled) noexcept {
  g_profiling.store(enabled, std::memory_order_relaxed);
}

bool profiling_enabled() noexcept {
  return g_profiling.load(std::memory_order_relaxed);
}

namespace profile_detail {

std::int32_t enter(const char* name) {
  SpanTree& t = tree();
  SpanNode& parent = t.nodes[static_cast<std::size_t>(t.current)];
  for (std::int32_t child = parent.first_child; child != -1;
       child = t.nodes[static_cast<std::size_t>(child)].next_sibling) {
    const SpanNode& node = t.nodes[static_cast<std::size_t>(child)];
    if (node.name == name || std::strcmp(node.name, name) == 0) {
      t.current = child;
      return child;
    }
  }
  const auto id = static_cast<std::int32_t>(t.nodes.size());
  SpanNode node;
  node.name = name;
  node.parent = t.current;
  node.next_sibling = parent.first_child;
  t.nodes.push_back(node);  // may invalidate `parent`
  t.nodes[static_cast<std::size_t>(node.parent)].first_child = id;
  t.current = id;
  return id;
}

void exit(std::int32_t token, std::int64_t elapsed_ns) noexcept {
  SpanTree& t = tree();
  SpanNode& node = t.nodes[static_cast<std::size_t>(token)];
  ++node.calls;
  node.total_ns += elapsed_ns < 0 ? 0 : elapsed_ns;
  t.current = node.parent;
  t.dirty = true;
}

}  // namespace profile_detail

void profile_drain_thread() {
  SpanTree& t = tree();
  if (!t.dirty) return;
  t.dirty = false;
  std::string path;
  path.reserve(64);
  drain_node(t, 0, path, Registry::global());
}

void profile_reset_thread() noexcept {
  SpanTree& t = tree();
  for (SpanNode& node : t.nodes) {
    node.calls = 0;
    node.total_ns = 0;
  }
  t.dirty = false;
}

// ---- snapshot-side reconstruction --------------------------------------

namespace {

constexpr std::string_view kCallsPrefix = "profile.";
constexpr std::string_view kCallsSuffix = ".calls";

// Maps "profile.<path>.calls" -> <path>; empty when the name is not a span
// counter.
std::string span_path_of(const std::string& name) {
  if (name.size() <= kCallsPrefix.size() + kCallsSuffix.size()) return {};
  if (name.compare(0, kCallsPrefix.size(), kCallsPrefix) != 0) return {};
  if (name.compare(name.size() - kCallsSuffix.size(), kCallsSuffix.size(),
                   kCallsSuffix) != 0)
    return {};
  return name.substr(kCallsPrefix.size(),
                     name.size() - kCallsPrefix.size() - kCallsSuffix.size());
}

}  // namespace

std::vector<ProfileSpanRow> profile_attribution(const Snapshot& snapshot) {
  std::vector<ProfileSpanRow> rows;
  std::int64_t root_total = 0;
  for (const auto& [name, calls] : snapshot.exec_counters) {
    std::string path = span_path_of(name);
    if (path.empty()) continue;
    ProfileSpanRow row;
    row.calls = calls;
    auto it = snapshot.timings.find("profile." + path + ".ns");
    if (it != snapshot.timings.end()) row.total_ns = it->second.sum;
    const bool is_root = path.find('/') == std::string::npos;
    if (is_root) root_total += row.total_ns;
    row.path = std::move(path);
    rows.push_back(std::move(row));
  }
  if (root_total > 0) {
    for (ProfileSpanRow& row : rows)
      row.share = static_cast<double>(row.total_ns) /
                  static_cast<double>(root_total);
  }
  // exec_counters is a std::map, so rows are already path-sorted.
  return rows;
}

// ---- Chrome exporter ---------------------------------------------------

namespace {

// Sparse tree rebuilt from the flat rows for timeline layout.
struct ChromeNode {
  std::string name;
  std::uint64_t calls = 0;
  std::int64_t total_ns = 0;
  std::map<std::string, ChromeNode> children;  // keyed by name, sorted
};

void emit_chrome(JsonWriter& writer, const ChromeNode& node,
                 std::int64_t start_us, const std::string& path) {
  // Synthetic stacked timeline: a node spans [start_us, start_us + dur);
  // its children are laid end to end from its own start. Durations round
  // up to 1us so every recorded span stays visible (and dur > 0, which the
  // schema checker requires).
  const std::int64_t dur_us = std::max<std::int64_t>(1, node.total_ns / 1000);
  writer.begin_object();
  writer.key("name").value(node.name);
  writer.key("cat").value("profile");
  writer.key("ph").value("X");
  writer.key("pid").value(std::int64_t{0});
  writer.key("tid").value(std::int64_t{0});
  writer.key("ts").value(start_us);
  writer.key("dur").value(dur_us);
  writer.key("args").begin_object();
  writer.key("start").value(std::to_string(start_us));
  writer.key("calls").value(node.calls);
  writer.key("path").value(path);
  writer.end_object();
  writer.end_object();
  std::int64_t cursor = start_us;
  for (const auto& [name, child] : node.children) {
    emit_chrome(writer, child, cursor, path + "/" + name);
    cursor += std::max<std::int64_t>(1, child.total_ns / 1000);
  }
}

}  // namespace

void write_profile_chrome_trace(std::ostream& os, const Snapshot& snapshot) {
  ChromeNode root;
  for (const ProfileSpanRow& row : profile_attribution(snapshot)) {
    ChromeNode* node = &root;
    std::size_t begin = 0;
    while (begin <= row.path.size()) {
      std::size_t end = row.path.find('/', begin);
      if (end == std::string::npos) end = row.path.size();
      std::string component = row.path.substr(begin, end - begin);
      ChromeNode& child = node->children[component];
      child.name = std::move(component);
      node = &child;
      begin = end + 1;
    }
    node->calls = row.calls;
    node->total_ns = row.total_ns;
  }
  JsonWriter writer(os);
  writer.begin_object();
  writer.key("traceEvents").begin_array();
  std::int64_t cursor = 0;
  for (const auto& [name, child] : root.children) {
    emit_chrome(writer, child, cursor, name);
    cursor += std::max<std::int64_t>(1, child.total_ns / 1000);
  }
  writer.end_array();
  writer.key("displayTimeUnit").value("ms");
  writer.end_object();
  os << "\n";
}

void save_profile_chrome_trace(const std::string& path,
                               const Snapshot& snapshot) {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("save_profile_chrome_trace: cannot open " + path);
  write_profile_chrome_trace(os, snapshot);
  if (!os)
    throw std::runtime_error("save_profile_chrome_trace: write failed for " +
                             path);
}

}  // namespace minmach::obs
