// Structured event tracing.
//
// `TraceSink` writes one JSON object per line (JSONL): a monotonically
// increasing "seq", a category ("sim", "oracle", "adversary", ...), an
// event name, and typed fields. Exact rational times are written as their
// canonical to_string() ("a/b" reduced, positive denominator, or a plain
// integer), so traces are diffable and replayable without float loss; the
// schema checker (tests/obs_schema_check.cpp) verifies canonical form by
// round-tripping through Rat::from_string.
//
// Instrumented components emit through the process-global sink when one is
// installed (bench drivers install it for --trace=FILE); with no sink the
// cost is one relaxed atomic pointer load per would-be event.
//
// `write_chrome_trace` exports a Schedule as a Chrome trace_event JSON
// file -- one complete ("X") event per slot, one track (tid) per machine --
// loadable in chrome://tracing or Perfetto. This turns Figure 1 (the
// 3-machine offline schedule of the adversarial instance) into an
// interactive timeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"
#include "minmach/util/rational.hpp"

namespace minmach::obs {

// A typed key/value pair for one trace event. Implicit constructors let
// call sites write {"job", id}, {"t", now}, {"feasible", true}.
struct TraceField {
  enum class Kind { kInt, kUint, kDouble, kBool, kString };

  TraceField(const char* key, std::int64_t value)
      : key(key), kind(Kind::kInt), int_value(value) {}
  TraceField(const char* key, int value)
      : TraceField(key, static_cast<std::int64_t>(value)) {}
  TraceField(const char* key, std::uint64_t value)
      : key(key), kind(Kind::kUint), uint_value(value) {}
  TraceField(const char* key, unsigned value)
      : TraceField(key, static_cast<std::uint64_t>(value)) {}
  TraceField(const char* key, double value)
      : key(key), kind(Kind::kDouble), double_value(value) {}
  TraceField(const char* key, bool value)
      : key(key), kind(Kind::kBool), bool_value(value) {}
  TraceField(const char* key, std::string value)
      : key(key), kind(Kind::kString), string_value(std::move(value)) {}
  TraceField(const char* key, std::string_view value)
      : TraceField(key, std::string(value)) {}
  TraceField(const char* key, const char* value)
      : TraceField(key, std::string(value)) {}
  TraceField(const char* key, const Rat& value)
      : TraceField(key, value.to_string()) {}

  const char* key;
  Kind kind;
  std::int64_t int_value = 0;
  std::uint64_t uint_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
  std::string string_value;
};

class TraceSink {
 public:
  // Throws std::runtime_error if the file cannot be opened.
  explicit TraceSink(const std::string& path);
  // Streams to a caller-owned ostream (tests).
  explicit TraceSink(std::ostream& os);
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Writes {"seq":N,"cat":...,"ev":...,<fields...>}. Thread-safe; seq is
  // assigned under the writer lock so lines are totally ordered.
  void event(std::string_view category, std::string_view name,
             std::initializer_list<TraceField> fields);

  [[nodiscard]] std::uint64_t events_written() const;

  // Process-global sink the instrumented components emit through. The
  // installer owns the sink and must clear the global before destroying it.
  static TraceSink* global() {
    return global_.load(std::memory_order_acquire);
  }
  static void set_global(TraceSink* sink) {
    global_.store(sink, std::memory_order_release);
  }

 private:
  static std::atomic<TraceSink*> global_;

  std::unique_ptr<std::ofstream> owned_;
  std::ostream& os_;
  std::mutex mutex_;
  std::uint64_t next_seq_ = 0;
};

// Emits through the global sink when installed; no-op otherwise. The
// fields list is only evaluated at the call site, so keep argument
// construction cheap or guard with trace_enabled().
[[nodiscard]] inline bool trace_enabled() {
  return TraceSink::global() != nullptr;
}
void trace_event(std::string_view category, std::string_view name,
                 std::initializer_list<TraceField> fields);

// Chrome trace_event export of a concrete schedule. Rational times are
// scaled by `microseconds_per_unit` into the ts/dur floats Chrome expects
// (exact values are preserved in each event's args). Slots are emitted in
// (machine, start) order, so output is deterministic.
void write_chrome_trace(std::ostream& os, const Instance& instance,
                        const Schedule& schedule, std::string_view name,
                        double microseconds_per_unit = 1e6);
void save_chrome_trace(const std::string& path, const Instance& instance,
                       const Schedule& schedule, std::string_view name,
                       double microseconds_per_unit = 1e6);

}  // namespace minmach::obs
