// HDR-style latency histograms (DESIGN.md §13): log2 major buckets, each
// split into 16 linear sub-buckets, so any non-negative int64 sample is
// bucketed in O(1) with a worst-case relative error under 1/16 (~6%) --
// tight enough for p50/p90/p99 extraction, small enough (960 buckets) to
// keep one histogram per latency name resident.
//
// All mutation is relaxed atomics and all aggregation is commutative
// (bucket-wise addition, min/max), so concurrent recording from probe
// lanes and parallel_map workers is deterministic in aggregate: the merged
// bucket counts depend only on the multiset of samples, never on thread
// interleaving. Sample values themselves are wall-clock and therefore
// execution-class; the derived report section only appears in profiled
// runs (bench::Run --profile on).
//
// The process-wide `LatencyRegistry` names histograms "hist.<what>_ns"
// ("hist." is an is_exec_metric prefix). `ScopedLatency` is the recording
// primitive: RAII, active only while profiling_enabled(), so default runs
// pay one relaxed load per instrumented site.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "minmach/obs/profile.hpp"

namespace minmach::obs {

// Plain-value mirror of a histogram for tests and merges-by-value.
struct LatencyData {
  std::uint64_t count = 0;
  std::int64_t sum = 0;  // saturates at INT64_MAX
  std::int64_t min = 0;  // meaningful only when count > 0
  std::int64_t max = 0;
  std::map<int, std::uint64_t> buckets;  // bucket index -> count

  friend bool operator==(const LatencyData&, const LatencyData&) = default;
};

// Percentile summary extracted from the buckets. Percentile values are the
// inclusive upper edge of the rank's bucket, clamped to the observed max,
// so p50 <= p90 <= p99 <= max always holds.
struct LatencySummary {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
  std::int64_t max = 0;

  friend bool operator==(const LatencySummary&, const LatencySummary&) =
      default;
};

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;  // linear sub-buckets per octave
  static constexpr int kBuckets = (64 - kSubBits) * kSub;  // 960

  // Bucket index of a sample; negative samples clamp to 0, INT64_MAX lands
  // in the last bucket (index kBuckets - 1). Values below kSub are exact
  // (bucket i holds exactly {i}).
  [[nodiscard]] static int bucket_index(std::int64_t sample) noexcept;
  // Inclusive upper edge of a bucket; bucket_upper(kBuckets - 1) is
  // INT64_MAX, so edges never overflow.
  [[nodiscard]] static std::int64_t bucket_upper(int index) noexcept;

  void record(std::int64_t sample) noexcept;
  // Adds `other`'s samples into this histogram. Commutative and
  // associative, so any merge order over per-thread histograms yields the
  // same buckets.
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] LatencyData data() const;
  [[nodiscard]] LatencySummary summary() const;
  // Smallest recorded-bucket upper edge covering at least ceil(q * count)
  // samples, clamped to the observed max; 0 when empty. q in (0, 1].
  [[nodiscard]] std::int64_t percentile(double q) const;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};  // sentinel until first sample
  std::atomic<std::int64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

// Process-wide named latency histograms, parallel to obs::Registry (kept
// separate because these are wall-clock data that must never enter the
// deterministic snapshot sections). Lookup creates on first use;
// references stay valid for the registry's lifetime.
class LatencyRegistry {
 public:
  static LatencyRegistry& global();

  LatencyHistogram& histogram(const std::string& name);
  // Summaries of every histogram with at least one sample, name-sorted.
  [[nodiscard]] std::map<std::string, LatencySummary> summaries() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

// Records the scope's wall time into LatencyRegistry::global() under
// `name` on destruction -- but only when profiling was enabled at
// construction, so un-profiled runs pay one relaxed load.
class ScopedLatency {
 public:
  explicit ScopedLatency(const char* name) noexcept : name_(name) {
    if (!profiling_enabled()) return;
    armed_ = true;
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatency();
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  const char* name_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace minmach::obs
