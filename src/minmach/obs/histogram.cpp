#include "minmach/obs/histogram.hpp"

#include <bit>
#include <cmath>

namespace minmach::obs {

namespace {

// Saturating add on an atomic int64 accumulator (latency sums over long
// runs must cap, not wrap).
void saturating_add(std::atomic<std::int64_t>& accumulator,
                    std::int64_t delta) {
  std::int64_t seen = accumulator.load(std::memory_order_relaxed);
  std::int64_t next;
  do {
    next = seen > INT64_MAX - delta ? INT64_MAX : seen + delta;
  } while (!accumulator.compare_exchange_weak(seen, next,
                                              std::memory_order_relaxed));
}

void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t candidate) {
  std::int64_t seen = slot.load(std::memory_order_relaxed);
  while (candidate < seen &&
         !slot.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t candidate) {
  std::int64_t seen = slot.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !slot.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

int LatencyHistogram::bucket_index(std::int64_t sample) noexcept {
  if (sample < 0) sample = 0;
  const auto v = static_cast<std::uint64_t>(sample);
  if (v < kSub) return static_cast<int>(v);
  // msb >= kSubBits here. The top kSubBits + 1 significant bits select the
  // bucket: one octave per msb, kSub linear sub-buckets inside it.
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBits;
  const int sub = static_cast<int>((v >> shift) - kSub);
  return (msb - kSubBits + 1) * kSub + sub;
}

std::int64_t LatencyHistogram::bucket_upper(int index) noexcept {
  if (index < kSub) return index;
  const int major = index / kSub;  // octaves above the linear range
  const int sub = index % kSub;
  const int shift = major - 1;
  // Bucket covers [(sub + kSub) << shift, ((sub + kSub + 1) << shift) - 1];
  // for the last bucket this is exactly INT64_MAX (the edge computation
  // runs unsigned because (kSub + kSub) << shift transiently hits 2^63).
  return static_cast<std::int64_t>(
      ((static_cast<std::uint64_t>(sub) + kSub + 1) << shift) - 1);
}

void LatencyHistogram::record(std::int64_t sample) noexcept {
  if (sample < 0) sample = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  saturating_add(sum_, sample);
  atomic_min(min_, sample);
  atomic_max(max_, sample);
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  const std::uint64_t other_count =
      other.count_.load(std::memory_order_relaxed);
  if (other_count == 0) return;
  count_.fetch_add(other_count, std::memory_order_relaxed);
  saturating_add(sum_, other.sum_.load(std::memory_order_relaxed));
  atomic_min(min_, other.min_.load(std::memory_order_relaxed));
  atomic_max(max_, other.max_.load(std::memory_order_relaxed));
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
}

LatencyData LatencyHistogram::data() const {
  LatencyData out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) out.buckets[b] = n;
  }
  return out;
}

std::int64_t LatencyHistogram::percentile(double q) const {
  const std::uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      const std::int64_t edge = bucket_upper(b);
      const std::int64_t observed_max = max_.load(std::memory_order_relaxed);
      return edge < observed_max ? edge : observed_max;
    }
  }
  return max_.load(std::memory_order_relaxed);
}

LatencySummary LatencyHistogram::summary() const {
  LatencySummary out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = out.count == 0 ? 0 : max_.load(std::memory_order_relaxed);
  out.p50 = percentile(0.50);
  out.p90 = percentile(0.90);
  out.p99 = percentile(0.99);
  return out;
}

void LatencyHistogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (int b = 0; b < kBuckets; ++b)
    buckets_[b].store(0, std::memory_order_relaxed);
}

LatencyRegistry& LatencyRegistry::global() {
  static LatencyRegistry instance;
  return instance;
}

LatencyHistogram& LatencyRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::map<std::string, LatencySummary> LatencyRegistry::summaries() const {
  std::map<std::string, LatencySummary> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, histogram] : histograms_) {
    LatencySummary summary = histogram->summary();
    if (summary.count != 0) out.emplace(name, summary);
  }
  return out;
}

void LatencyRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

ScopedLatency::~ScopedLatency() {
  if (!armed_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  LatencyRegistry::global().histogram(name_).record(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

}  // namespace minmach::obs
