#include "minmach/obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace minmach::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (stack_.empty()) return;
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": on the same line
  }
  Frame& top = stack_.back();
  if (top.has_members) os_ << ',';
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * indent_; ++i) os_ << ' ';
  top.has_members = true;
}

void JsonWriter::open(char bracket) {
  separate();
  os_ << bracket;
  stack_.push_back({bracket == '{', false});
}

void JsonWriter::close(char bracket) {
  bool had_members = stack_.back().has_members;
  stack_.pop_back();
  if (had_members) {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * indent_; ++i) os_ << ' ';
  }
  os_ << bracket;
  if (stack_.empty()) os_ << '\n';
}

JsonWriter& JsonWriter::begin_object() {
  open('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separate();
  os_ << '"' << json_escape(name) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  os_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separate();
  os_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  separate();
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  os_ << buffer;
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  os_ << "null";
  return *this;
}

// ---- parser ------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.text = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool flag) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = flag;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_whitespace();
      std::string name = parse_string();
      skip_whitespace();
      expect(':');
      v.members.emplace_back(std::move(name), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The writer only emits \u00XX for control bytes; decode those and
          // pass anything wider through as UTF-8 is out of scope here.
          if (code > 0xff) fail("\\u escape above U+00FF unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected digits");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("expected exponent digits");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.literal = std::string(text_.substr(start, pos_ - start));
    v.number = std::strtod(v.literal.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view name) const {
  for (const auto& [key, value] : members) {
    if (key == name) return &value;
  }
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace minmach::obs
