#include "minmach/obs/trace.hpp"

#include <cstdio>
#include <stdexcept>

#include "minmach/obs/json.hpp"

namespace minmach::obs {

std::atomic<TraceSink*> TraceSink::global_{nullptr};

TraceSink::TraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(*owned_) {
  if (!*owned_)
    throw std::runtime_error("TraceSink: cannot open " + path);
}

TraceSink::TraceSink(std::ostream& os) : os_(os) {}

TraceSink::~TraceSink() { os_.flush(); }

void TraceSink::event(std::string_view category, std::string_view name,
                      std::initializer_list<TraceField> fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  os_ << "{\"seq\":" << next_seq_++ << ",\"cat\":\"" << json_escape(category)
      << "\",\"ev\":\"" << json_escape(name) << '"';
  for (const TraceField& field : fields) {
    os_ << ",\"" << json_escape(field.key) << "\":";
    switch (field.kind) {
      case TraceField::Kind::kInt: os_ << field.int_value; break;
      case TraceField::Kind::kUint: os_ << field.uint_value; break;
      case TraceField::Kind::kDouble: {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.17g", field.double_value);
        os_ << buffer;
        break;
      }
      case TraceField::Kind::kBool:
        os_ << (field.bool_value ? "true" : "false");
        break;
      case TraceField::Kind::kString:
        os_ << '"' << json_escape(field.string_value) << '"';
        break;
    }
  }
  os_ << "}\n";
}

std::uint64_t TraceSink::events_written() const { return next_seq_; }

void trace_event(std::string_view category, std::string_view name,
                 std::initializer_list<TraceField> fields) {
  if (TraceSink* sink = TraceSink::global()) sink->event(category, name, fields);
}

// ---- Chrome trace_event export -----------------------------------------

void write_chrome_trace(std::ostream& os, const Instance& instance,
                        const Schedule& schedule, std::string_view name,
                        double microseconds_per_unit) {
  JsonWriter writer(os);
  writer.begin_object();
  writer.key("displayTimeUnit").value("ms");
  writer.key("otherData").begin_object();
  writer.key("name").value(name);
  writer.key("machines").value(static_cast<std::uint64_t>(schedule.machine_count()));
  writer.key("jobs").value(static_cast<std::uint64_t>(instance.size()));
  writer.end_object();
  writer.key("traceEvents").begin_array();
  // Track naming: pid 0 is the schedule, tid m is machine m.
  writer.begin_object();
  writer.key("name").value("process_name");
  writer.key("ph").value("M");
  writer.key("pid").value(0);
  writer.key("args").begin_object();
  writer.key("name").value(name);
  writer.end_object();
  writer.end_object();
  for (std::size_t m = 0; m < schedule.machine_count(); ++m) {
    writer.begin_object();
    writer.key("name").value("thread_name");
    writer.key("ph").value("M");
    writer.key("pid").value(0);
    writer.key("tid").value(static_cast<std::uint64_t>(m));
    writer.key("args").begin_object();
    writer.key("name").value("machine " + std::to_string(m));
    writer.end_object();
    writer.end_object();
  }
  for (std::size_t m = 0; m < schedule.machine_count(); ++m) {
    for (const Slot& slot : schedule.slots(m)) {
      writer.begin_object();
      writer.key("name").value("job " + std::to_string(slot.job));
      writer.key("cat").value("slot");
      writer.key("ph").value("X");
      writer.key("ts").value(slot.start.to_double() * microseconds_per_unit);
      writer.key("dur").value(slot.length().to_double() * microseconds_per_unit);
      writer.key("pid").value(0);
      writer.key("tid").value(static_cast<std::uint64_t>(m));
      writer.key("args").begin_object();
      writer.key("job").value(static_cast<std::uint64_t>(slot.job));
      writer.key("start").value(slot.start.to_string());
      writer.key("end").value(slot.end.to_string());
      if (slot.job < instance.size()) {
        const Job& job = instance.job(slot.job);
        writer.key("release").value(job.release.to_string());
        writer.key("deadline").value(job.deadline.to_string());
        writer.key("processing").value(job.processing.to_string());
      }
      writer.end_object();
      writer.end_object();
    }
  }
  writer.end_array();
  writer.end_object();
}

void save_chrome_trace(const std::string& path, const Instance& instance,
                       const Schedule& schedule, std::string_view name,
                       double microseconds_per_unit) {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("save_chrome_trace: cannot open " + path);
  write_chrome_trace(os, instance, schedule, name, microseconds_per_unit);
}

}  // namespace minmach::obs
