// Metrics registry for the minmach substrates, simulator, and experiment
// drivers.
//
// Two tiers, mirroring the two-tier arithmetic it instruments:
//
//  * Hot-path tallies (`HotTallies`): a plain thread-local POD of uint64
//    fields for the per-operation counters inside BigInt/Rat. An increment
//    of a thread-local word is the cheapest instrumentation possible; with
//    the CMake option MINMACH_OBS=OFF the MINMACH_OBS_TALLY macro compiles
//    to nothing, so the arithmetic kernels carry zero overhead.
//    `drain_hot_tallies()` folds the calling thread's tallies into the
//    registry; bench::parallel_map drains each worker before it exits, and
//    Registry::snapshot() drains the calling thread, so totals are complete
//    whenever a snapshot is taken from the main thread.
//
//  * Registered metrics (`Counter`, `Gauge`, `Histogram`, `ScopedTimer`):
//    named objects in a global `Registry`, updated with relaxed atomics at
//    event granularity (per oracle probe, per simulator event -- never per
//    arithmetic op). All aggregation is commutative (sums, min/max), so a
//    parallel sweep produces the same snapshot at any thread count; that
//    determinism is enforced by tests and by the --report byte-diff in
//    tests/check_driver_determinism.cmake.
//
// Snapshots separate wall-clock timing histograms (ScopedTimer) from the
// deterministic metrics: `Snapshot::to_json()` omits timings unless asked,
// so run reports stay byte-identical across runs and thread counts.
//
// Snapshots also separate EXECUTION-CLASS metrics (see is_exec_metric):
// counters that describe how the work was executed -- oracle probes, flow
// passes, cache hits, speculation rounds, arithmetic/memory tallies --
// rather than what was computed. With the global OPT cache (DESIGN.md §11)
// a hit skips a probe and all the arithmetic inside it, so these totals
// legitimately depend on cache state and probe interleaving; they live in
// `Snapshot::exec_counters` / `exec_histograms` and are excluded from
// to_json() by default, keeping run reports byte-identical with the cache
// on or off. Semantic metrics (adversary.*, sim.*, ...) remain in the
// deterministic sections and are still thread-count-invariant.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#ifndef MINMACH_OBS_ENABLED
#define MINMACH_OBS_ENABLED 1
#endif

namespace minmach::obs {

// ---- hot-path tallies --------------------------------------------------

// One field per hot counter; drain_hot_tallies() maps each field to the
// registry counter named in the comment.
struct HotTallies {
  std::uint64_t bigint_promotions = 0;  // "bigint.promotions": results left the small tier
  std::uint64_t bigint_slow_ops = 0;    // "bigint.slow_ops": limb-path arithmetic calls
  std::uint64_t rat_fast_ops = 0;       // "rat.fast_ops": int64 fast-path successes
  std::uint64_t rat_slow_ops = 0;       // "rat.slow_ops": BigInt fallback operations
  // Memory-substrate counters (DESIGN.md §10). All three count *logical*
  // per-value events, never physical arena chunk growth: chunk counts
  // depend on how tasks land on threads, while these are functions of the
  // workload alone, so merged reports stay byte-identical at any --threads.
  std::uint64_t bigint_spill = 0;  // "mem.bigint_spill": limb stores that outgrew the inline buffer
  std::uint64_t arena_bytes = 0;   // "mem.arena_bytes": bytes requested from arena scratch
  std::uint64_t heap_allocs = 0;   // "mem.heap_allocs": substrate heap allocations (spills + legacy-mode temporaries)
  // SIMD kernel layer (DESIGN.md §12). Execution-class like the rest:
  // dispatch mode moves them, results never.
  std::uint64_t simd_lanes_used = 0;     // "simd.lanes_used": elements processed by vector lanes
  std::uint64_t simd_scalar_spills = 0;  // "simd.scalar_spills": kernel calls that fell back (overflow guard / non-small input)
};

// Accessor for the calling thread's tallies. A function-local
// constant-initialized thread_local (rather than a namespace-scope extern
// one) deliberately: the extern form is reached through the compiler's TLS
// wrapper function, which GCC 12's UBSan flags as a possibly-null member
// access once the tally sites are inlined into other translation units
// (seen under the sanitize preset from util/arena.hpp). The inline
// accessor's local is a plain COMDAT TLS symbol -- no wrapper, one object
// program-wide.
inline HotTallies& hot_tallies() noexcept {
  static thread_local HotTallies tallies;
  return tallies;
}

// Adds the calling thread's tallies to the registry counters and zeroes
// them. Must run on every thread that did instrumented arithmetic before
// its numbers are expected in a snapshot (worker threads: before exit).
void drain_hot_tallies();

#if MINMACH_OBS_ENABLED
#define MINMACH_OBS_TALLY(field) (++::minmach::obs::hot_tallies().field)
#define MINMACH_OBS_TALLY_ADD(field, delta) \
  (::minmach::obs::hot_tallies().field += (delta))
#else
#define MINMACH_OBS_TALLY(field) ((void)0)
#define MINMACH_OBS_TALLY_ADD(field, delta) ((void)0)
#endif

// ---- registered metrics ------------------------------------------------

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-writer-wins level plus a monotone max. Use only from one logical
// writer at a time (e.g. the recursion depth of a single adversary game);
// concurrent set() calls would make the level nondeterministic.
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    update_max(value);
  }
  void add(std::int64_t delta) {
    update_max(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max_value() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_max(std::int64_t candidate) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

struct HistogramData {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // meaningful only when count > 0
  std::int64_t max = 0;
  // log2 bucket index (bit_width of the clamped-to->=0 sample) -> count.
  std::map<int, std::uint64_t> bins;

  friend bool operator==(const HistogramData&, const HistogramData&) = default;
};

// Log2-bucketed histogram of non-negative integer samples (negative samples
// clamp to 0). Buckets, count, and sum merge by addition; min/max by
// min/max -- all commutative, so parallel observation is deterministic.
class Histogram {
 public:
  // timing = true marks a wall-clock-duration histogram (ScopedTimer);
  // such histograms are segregated into the snapshot's `timings` section
  // and excluded from deterministic serialization.
  explicit Histogram(bool timing = false) : timing_(timing) {}

  void observe(std::int64_t sample);
  [[nodiscard]] bool is_timing() const { return timing_; }
  [[nodiscard]] HistogramData data() const;
  void reset();

 private:
  static constexpr int kBuckets = 65;  // bit_width of a uint64 sample: 0..64

  bool timing_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};  // sentinel until first sample
  std::atomic<std::int64_t> max_{0};
  std::atomic<std::uint64_t> bins_[kBuckets] = {};
};

// Records the elapsed wall time in nanoseconds into a timing histogram on
// destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_.observe(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& sink_;
  std::chrono::steady_clock::time_point start_;
};

// ---- snapshots ---------------------------------------------------------

// True for metrics describing HOW work was executed (probe counts, flow
// passes, cache traffic, speculation rounds, arithmetic and memory
// tallies, SIMD lane usage, profiler spans, latency histograms): name
// prefixes oracle. / flow. / cache. / speculate. / bigint. / rat. / mem. /
// simd. / profile. / hist. / bounds.. Snapshots segregate these (see file
// comment)
// because the OPT cache makes them dependent on cache state and
// interleaving.
// Classification is by name, not by a flag at registration, so a counter
// read via Registry::counter("mem.x") in a bench lands in the same class
// as one drained from hot tallies.
[[nodiscard]] bool is_exec_metric(std::string_view name);

struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;      // current value
  std::map<std::string, std::int64_t> gauge_maxes; // high-water marks
  std::map<std::string, HistogramData> histograms; // deterministic
  std::map<std::string, HistogramData> timings;    // wall clock, excluded by default
  // Execution-class metrics (is_exec_metric): exact but cache/interleaving
  // dependent, excluded from to_json() by default.
  std::map<std::string, std::uint64_t> exec_counters;
  std::map<std::string, HistogramData> exec_histograms;

  // Metric deltas since `baseline`: counters/histograms subtract, gauges
  // keep this snapshot's values. Missing-in-baseline entries pass through.
  [[nodiscard]] Snapshot diff(const Snapshot& baseline) const;

  // Deterministic serialization (std::map key order, integer values);
  // timings only when include_timings, execution-class sections only when
  // include_exec.
  [[nodiscard]] std::string to_json(bool include_timings = false,
                                    bool include_exec = false) const;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

class Registry {
 public:
  // Process-wide registry every instrumented component reports into.
  static Registry& global();

  // Named lookup; creates on first use. References stay valid for the
  // registry's lifetime (reset() zeroes values, it never deletes metrics).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Histogram& timing(const std::string& name);

  // Drains the calling thread's hot tallies, then copies every metric.
  [[nodiscard]] Snapshot snapshot();

  // Zeroes every registered metric and the calling thread's hot tallies
  // (for test isolation). Other threads' undrained tallies are untouched.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace minmach::obs
