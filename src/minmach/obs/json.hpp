// Minimal JSON support for the observability layer: a streaming writer with
// deterministic formatting (fixed indentation, caller-controlled key order,
// "%.17g" doubles) used by run reports and trace sinks, and a small
// recursive-descent parser used by the schema checker and the tests to
// validate what the writer produced. Deliberately not a general JSON
// library: no unicode escapes beyond \uXXXX pass-through, numbers keep
// their source text so validators can check canonical formatting.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace minmach::obs {

// Escapes control characters, '"' and '\\' per RFC 8259 (no forward-slash
// escaping). Returns the body only -- the caller adds the quotes.
[[nodiscard]] std::string json_escape(std::string_view text);

// Streaming writer. The caller opens/closes containers explicitly; the
// writer tracks nesting to place commas, newlines, and indentation, so the
// byte output of a fixed call sequence is fixed (the determinism diff in
// tests/check_driver_determinism.cmake byte-compares report files).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  // Must be called before each member value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool flag);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(double number);
  JsonWriter& null();

 private:
  void separate();  // comma + newline + indent as required
  void open(char bracket);
  void close(char bracket);

  struct Frame {
    bool is_object = false;
    bool has_members = false;
  };

  std::ostream& os_;
  int indent_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

// Parsed JSON value. Objects preserve member order (so tests can assert on
// writer ordering); numbers keep their literal text so canonical-format
// checks (integer seq, "a/b" rationals) do not round-trip through double.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string literal;  // numbers: raw token text
  std::string text;     // strings: unescaped content
  std::vector<std::pair<std::string, JsonValue>> members;  // objects
  std::vector<JsonValue> items;                            // arrays

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  // First member with the key, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view name) const;
};

// Parses exactly one JSON document (trailing whitespace allowed). Throws
// std::invalid_argument with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace minmach::obs
