#include "minmach/obs/metrics.hpp"

#include <bit>
#include <sstream>

#include "minmach/obs/json.hpp"
#include "minmach/obs/profile.hpp"

namespace minmach::obs {

void drain_hot_tallies() {
  // Piggyback the span-profiler drain on every tally drain point
  // (parallel_map workers, speculation lanes, Registry::snapshot), so a
  // profiled parallel run folds every thread's span tree exactly once.
  profile_drain_thread();
  HotTallies& t = hot_tallies();
  if (t.bigint_promotions == 0 && t.bigint_slow_ops == 0 &&
      t.rat_fast_ops == 0 && t.rat_slow_ops == 0 && t.bigint_spill == 0 &&
      t.arena_bytes == 0 && t.heap_allocs == 0 && t.simd_lanes_used == 0 &&
      t.simd_scalar_spills == 0)
    return;
  Registry& registry = Registry::global();
  registry.counter("bigint.promotions").add(t.bigint_promotions);
  registry.counter("bigint.slow_ops").add(t.bigint_slow_ops);
  registry.counter("rat.fast_ops").add(t.rat_fast_ops);
  registry.counter("rat.slow_ops").add(t.rat_slow_ops);
  registry.counter("mem.bigint_spill").add(t.bigint_spill);
  registry.counter("mem.arena_bytes").add(t.arena_bytes);
  registry.counter("mem.heap_allocs").add(t.heap_allocs);
  registry.counter("simd.lanes_used").add(t.simd_lanes_used);
  registry.counter("simd.scalar_spills").add(t.simd_scalar_spills);
  t = HotTallies{};
}

void Histogram::observe(std::int64_t sample) {
  if (sample < 0) sample = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  // min_ starts at the INT64_MAX sentinel (see reset()), so a plain
  // monotone CAS loop is race-free for the first sample too.
  std::int64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen && !min_.compare_exchange_weak(
                              seen, sample, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen && !max_.compare_exchange_weak(
                              seen, sample, std::memory_order_relaxed)) {
  }
  int bucket = std::bit_width(static_cast<std::uint64_t>(sample));
  bins_[bucket].fetch_add(1, std::memory_order_relaxed);
}

HistogramData Histogram::data() const {
  HistogramData out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  for (int b = 0; b < kBuckets; ++b) {
    std::uint64_t n = bins_[b].load(std::memory_order_relaxed);
    if (n != 0) out.bins[b] = n;
  }
  return out;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (int b = 0; b < kBuckets; ++b) bins_[b].store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(/*timing=*/false);
  return *slot;
}

Histogram& Registry::timing(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(/*timing=*/true);
  return *slot;
}

bool is_exec_metric(std::string_view name) {
  static constexpr std::string_view kPrefixes[] = {
      "oracle.", "flow.", "cache.", "speculate.", "bigint.", "rat.", "mem.",
      "simd.", "profile.", "hist.", "bounds.", "dyn.", "store."};
  for (std::string_view prefix : kPrefixes) {
    if (name.substr(0, prefix.size()) == prefix) return true;
  }
  return false;
}

Snapshot Registry::snapshot() {
  drain_hot_tallies();
  Snapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    (is_exec_metric(name) ? out.exec_counters : out.counters)[name] =
        counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->value();
    out.gauge_maxes[name] = gauge->max_value();
  }
  for (const auto& [name, histogram] : histograms_) {
    auto& sink = histogram->is_timing()
                     ? out.timings
                     : (is_exec_metric(name) ? out.exec_histograms
                                             : out.histograms);
    sink[name] = histogram->data();
  }
  return out;
}

void Registry::reset() {
  hot_tallies() = HotTallies{};
  profile_reset_thread();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

namespace {

HistogramData diff_histogram(const HistogramData& current,
                             const HistogramData& baseline) {
  HistogramData out;
  out.count = current.count - baseline.count;
  out.sum = current.sum - baseline.sum;
  // min/max do not subtract; keep the current extrema (they still bound the
  // diffed samples when the baseline is a prefix of the same run).
  out.min = current.min;
  out.max = current.max;
  out.bins = current.bins;
  for (const auto& [bucket, n] : baseline.bins) {
    auto it = out.bins.find(bucket);
    if (it == out.bins.end()) continue;
    it->second -= n;
    if (it->second == 0) out.bins.erase(it);
  }
  return out;
}

void write_histograms(JsonWriter& writer,
                      const std::map<std::string, HistogramData>& histograms) {
  writer.begin_object();
  for (const auto& [name, data] : histograms) {
    writer.key(name).begin_object();
    writer.key("count").value(data.count);
    writer.key("sum").value(data.sum);
    writer.key("min").value(data.min);
    writer.key("max").value(data.max);
    writer.key("bins").begin_object();
    for (const auto& [bucket, n] : data.bins) {
      writer.key(std::to_string(bucket)).value(n);
    }
    writer.end_object();
    writer.end_object();
  }
  writer.end_object();
}

}  // namespace

Snapshot Snapshot::diff(const Snapshot& baseline) const {
  Snapshot out = *this;
  for (auto& [name, value] : out.counters) {
    auto it = baseline.counters.find(name);
    if (it != baseline.counters.end()) value -= it->second;
  }
  for (auto& [name, value] : out.exec_counters) {
    auto it = baseline.exec_counters.find(name);
    if (it != baseline.exec_counters.end()) value -= it->second;
  }
  for (auto& [name, data] : out.histograms) {
    auto it = baseline.histograms.find(name);
    if (it != baseline.histograms.end()) data = diff_histogram(data, it->second);
  }
  for (auto& [name, data] : out.exec_histograms) {
    auto it = baseline.exec_histograms.find(name);
    if (it != baseline.exec_histograms.end())
      data = diff_histogram(data, it->second);
  }
  for (auto& [name, data] : out.timings) {
    auto it = baseline.timings.find(name);
    if (it != baseline.timings.end()) data = diff_histogram(data, it->second);
  }
  return out;
}

std::string Snapshot::to_json(bool include_timings, bool include_exec) const {
  std::ostringstream os;
  JsonWriter writer(os);
  writer.begin_object();
  writer.key("counters").begin_object();
  for (const auto& [name, value] : counters) writer.key(name).value(value);
  writer.end_object();
  writer.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) {
    writer.key(name).begin_object();
    writer.key("value").value(value);
    auto it = gauge_maxes.find(name);
    writer.key("max").value(it == gauge_maxes.end() ? value : it->second);
    writer.end_object();
  }
  writer.end_object();
  writer.key("histograms");
  write_histograms(writer, histograms);
  if (include_exec) {
    writer.key("exec_counters").begin_object();
    for (const auto& [name, value] : exec_counters)
      writer.key(name).value(value);
    writer.end_object();
    writer.key("exec_histograms");
    write_histograms(writer, exec_histograms);
  }
  if (include_timings) {
    writer.key("timings");
    write_histograms(writer, timings);
  }
  writer.end_object();
  return os.str();
}

}  // namespace minmach::obs
