// Machine-readable run reports for the bench drivers.
//
// A `RunReport` captures one driver run: the experiment name and claim, the
// configuration actually used (ordered key/value pairs, excluding
// reproducibility-neutral flags like --threads), every result table the
// driver printed, the measured-vs-bound checks it asserted, and a metrics
// snapshot from the global registry. `to_json()` is deterministic -- fixed
// key order, integer metrics, no wall-clock timings -- so a report is
// byte-identical across runs and thread counts; the determinism harness
// (tests/check_driver_determinism.cmake) diffs reports at --threads=1 vs 4.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "minmach/obs/histogram.hpp"
#include "minmach/obs/metrics.hpp"

namespace minmach::obs {

inline constexpr std::string_view kReportSchema = "minmach-report-v1";

// One measured-vs-bound assertion (e.g. "machines used <= e * OPT").
struct ReportCheck {
  std::string name;
  std::string measured;  // exact string (rational or integer)
  std::string bound;
  bool ok = false;
};

// One result table, as header + stringified rows (mirrors util::Table).
struct ReportTable {
  std::string title;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

struct RunReport {
  std::string experiment;  // e.g. "e05_migration_gap"
  std::string claim;       // the paper claim the experiment exercises
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<ReportTable> tables;
  std::vector<ReportCheck> checks;
  Snapshot metrics;
  // Perf-attribution sections (DESIGN.md §13). Emitted only when the run
  // was profiled (bench::Run --profile on): the "profile" section lists
  // span paths with call counts, inclusive wall ns, and the share of the
  // root-span total; the "latency" section carries p50/p90/p99 summaries
  // from the latency registry. Both sections hold wall-clock data, so
  // un-profiled reports (the determinism harness's inputs) omit them
  // entirely and stay byte-identical; a profiled report's OTHER sections
  // still match the un-profiled ones (obs_schema_check --baseline-report
  // enforces that equality).
  bool profiled = false;
  std::map<std::string, LatencySummary> latencies;

  [[nodiscard]] bool all_checks_ok() const {
    for (const ReportCheck& check : checks)
      if (!check.ok) return false;
    return true;
  }

  // Deterministic serialization; includes derived ratios (rat fast-path hit
  // rate) rounded to 6 decimal places so they are byte-stable.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;
};

// Writes the report to `path`; throws std::runtime_error on I/O failure.
void save_report(const std::string& path, const RunReport& report);

}  // namespace minmach::obs
