// Least Laxity First on a budget of m' machines (migratory).
//
// Runs the m' active jobs with the smallest current laxity
// l_j(t) = d_j - t - p_j(t). Between events a running job's laxity is
// constant while a waiting job's laxity falls at rate 1, so the policy asks
// the simulator for a wake-up at the earliest waiting/running laxity
// crossing. Ties at a crossing are resolved in favor of the waiting job; an
// optional quantum bounds how stale the comparison may get (true LLF
// degenerates to processor sharing at ties, which no discrete schedule can
// realize -- Phillips et al. analyze exactly this event-driven variant).
#pragma once

#include <cstddef>
#include <string>

#include "minmach/sim/engine.hpp"

namespace minmach {

class LlfPolicy : public OnlinePolicy {
 public:
  // quantum == 0 disables periodic re-dispatch (pure event/crossing driven).
  explicit LlfPolicy(std::size_t machine_budget, Rat quantum = Rat(0))
      : machine_budget_(machine_budget), quantum_(std::move(quantum)) {}

  void on_release(Simulator& sim, JobId job) override;
  void dispatch(Simulator& sim) override;
  std::optional<Rat> next_wakeup(const Simulator& sim) override;
  [[nodiscard]] std::string name() const override;

 private:
  [[nodiscard]] static Rat laxity(const Simulator& sim, JobId job);

  std::size_t machine_budget_;
  Rat quantum_;
};

}  // namespace minmach
