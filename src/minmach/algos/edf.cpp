#include "minmach/algos/edf.hpp"

#include <algorithm>

namespace minmach {

void EdfPolicy::on_release(Simulator&, JobId) {}

void EdfPolicy::dispatch(Simulator& sim) {
  std::vector<JobId> active = sim.active_jobs();
  std::sort(active.begin(), active.end(), [&](JobId a, JobId b) {
    const Job& ja = sim.job(a);
    const Job& jb = sim.job(b);
    if (ja.deadline != jb.deadline) return ja.deadline < jb.deadline;
    return a < b;
  });
  if (active.size() > machine_budget_) active.resize(machine_budget_);

  // Stable assignment: keep selected jobs on their current machine, place
  // the rest on freed machines (EDF may migrate, but not gratuitously).
  std::vector<bool> selected_running(active.size(), false);
  std::vector<std::size_t> free_machines;
  for (std::size_t m = 0; m < machine_budget_; ++m) {
    JobId current = sim.running_on(m);
    bool keep = false;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (active[i] == current) {
        selected_running[i] = true;
        keep = true;
        break;
      }
    }
    if (!keep) {
      sim.set_running(m, kInvalidJob);
      free_machines.push_back(m);
    }
  }
  std::size_t next_free = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (selected_running[i]) continue;
    sim.set_running(free_machines[next_free++], active[i]);
  }
}

std::string EdfPolicy::name() const {
  return "EDF(" + std::to_string(machine_budget_) + ")";
}

}  // namespace minmach
