#include "minmach/algos/reservation.hpp"

#include <algorithm>
#include <stdexcept>

namespace minmach {

void ReservationPolicy::on_release(Simulator& sim, JobId job) {
  Placement placement = place(sim, job);
  const Job& j = sim.job(job);
  Rat length = j.processing / sim.speed();
  Rat end = placement.start + length;
  if (placement.start < j.release || end > j.deadline)
    throw std::logic_error("ReservationPolicy: placement outside window");
  if (placement.machine >= books_.size())
    books_.resize(placement.machine + 1);

  auto& book = books_[placement.machine];
  Reservation res{placement.start, end, job};
  auto pos = std::lower_bound(
      book.begin(), book.end(), res,
      [](const Reservation& a, const Reservation& b) { return a.start < b.start; });
  if (pos != book.end() && pos->start < res.end)
    throw std::logic_error("ReservationPolicy: overlapping reservation");
  if (pos != book.begin() && std::prev(pos)->end > res.start)
    throw std::logic_error("ReservationPolicy: overlapping reservation");
  book.insert(pos, res);

  if (job >= machine_by_job_.size()) machine_by_job_.resize(job + 1);
  machine_by_job_[job] = placement.machine;
}

void ReservationPolicy::dispatch(Simulator& sim) {
  for (std::size_t m = 0; m < books_.size(); ++m) {
    JobId run = kInvalidJob;
    for (const auto& res : books_[m]) {
      if (res.start <= sim.now() && sim.now() < res.end &&
          !sim.finished(res.job) && !sim.missed(res.job)) {
        run = res.job;
        break;
      }
      if (res.start > sim.now()) break;
    }
    sim.set_running(m, run);
  }
}

std::optional<Rat> ReservationPolicy::next_wakeup(const Simulator& sim) {
  std::optional<Rat> wakeup;
  for (const auto& book : books_) {
    // First reservation starting strictly after now.
    auto pos = std::upper_bound(
        book.begin(), book.end(), sim.now(),
        [](const Rat& t, const Reservation& r) { return t < r.start; });
    if (pos != book.end() && (!wakeup || pos->start < *wakeup))
      wakeup = pos->start;
  }
  return wakeup;
}

std::optional<std::size_t> ReservationPolicy::machine_of(JobId job) const {
  if (job >= machine_by_job_.size()) return std::nullopt;
  return machine_by_job_[job];
}

std::size_t ReservationPolicy::peak_overlap() const {
  // Sweep over all reservation endpoints.
  std::vector<std::pair<Rat, int>> events;
  for (const auto& book : books_) {
    for (const auto& res : book) {
      events.emplace_back(res.start, +1);
      events.emplace_back(res.end, -1);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // ends before starts at a tie
            });
  std::size_t current = 0;
  std::size_t peak = 0;
  for (const auto& [time, delta] : events) {
    if (delta > 0) {
      ++current;
      peak = std::max(peak, current);
    } else {
      --current;
    }
  }
  return peak;
}

std::size_t ReservationPolicy::first_free_machine(const Rat& start,
                                                  const Rat& length) const {
  const Rat end = start + length;
  for (std::size_t m = 0; m < books_.size(); ++m) {
    bool clash = false;
    for (const auto& res : books_[m]) {
      if (res.start < end && start < res.end) {
        clash = true;
        break;
      }
      if (res.start >= end) break;
    }
    if (!clash) return m;
  }
  return books_.size();
}

Rat ReservationPolicy::earliest_fit(std::size_t machine,
                                    const Rat& lower_bound,
                                    const Rat& length) const {
  Rat start = lower_bound;
  if (machine >= books_.size()) return start;
  for (const auto& res : books_[machine]) {
    if (res.end <= start) continue;
    if (start + length <= res.start) break;  // fits in the gap before res
    start = res.end;
  }
  return start;
}

}  // namespace minmach
