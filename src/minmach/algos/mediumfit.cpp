#include "minmach/algos/mediumfit.hpp"

namespace minmach {

MediumFitPolicy::Placement MediumFitPolicy::place(Simulator& sim, JobId job) {
  const Job& j = sim.job(job);
  const Rat laxity = j.laxity();
  Rat start;
  switch (anchor_) {
    case MediumFitAnchor::kCenter:
      start = j.release + laxity / Rat(2);
      break;
    case MediumFitAnchor::kLatest:
      start = j.release + laxity;
      break;
    case MediumFitAnchor::kEarliest:
      start = j.release;
      break;
  }
  // The interval is fixed; only the machine is chosen (first fit).
  Rat wall = j.processing / sim.speed();
  return {first_free_machine(start, wall), start};
}

std::string MediumFitPolicy::name() const {
  switch (anchor_) {
    case MediumFitAnchor::kCenter:
      return "MediumFit";
    case MediumFitAnchor::kLatest:
      return "LatestFit";
    case MediumFitAnchor::kEarliest:
      return "EarliestFit";
  }
  return "MediumFit?";
}

}  // namespace minmach
