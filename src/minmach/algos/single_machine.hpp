// Exact single-machine preemptive EDF feasibility.
//
// EDF is optimal for preemptive feasibility on one machine, so "can this
// machine still meet all its commitments (plus possibly one more job)?" is
// decided exactly by simulating EDF over the event points. This test is the
// admission rule of every non-migratory fit policy and of the offline KP
// transform substitute.
#pragma once

#include <optional>
#include <vector>

#include "minmach/core/schedule.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

// A commitment on one machine: `remaining` units of work to be done within
// [available_from, deadline). available_from is max(r_j, now) for online
// use.
struct MachineCommitment {
  Rat available_from;
  Rat deadline;
  Rat remaining;
};

// True iff preemptive EDF at the given speed finishes every commitment by
// its deadline, starting at time `start` (commitments with available_from <
// start are treated as available at start).
[[nodiscard]] bool edf_feasible_single_machine(
    std::vector<MachineCommitment> commitments, const Rat& start,
    const Rat& speed = Rat(1));

// In-place variant for callers that reuse a commitment buffer across many
// admission tests (the fit policies probe every open machine at every
// release): the vector's contents are consumed (reordered and mutated), but
// its storage survives for the next fill. Same verdict as the by-value
// overload.
[[nodiscard]] bool edf_feasible_single_machine_inplace(
    std::vector<MachineCommitment>& commitments, const Rat& start,
    const Rat& speed = Rat(1));

// As above but with job identities, returning the concrete single-machine
// EDF slot list (or nullopt if some deadline is missed). Used by the
// offline migratory -> non-migratory transform to materialize per-machine
// schedules.
struct LabeledCommitment {
  Rat available_from;
  Rat deadline;
  Rat remaining;
  JobId job = kInvalidJob;
};
[[nodiscard]] std::optional<std::vector<Slot>> edf_schedule_single_machine(
    std::vector<LabeledCommitment> commitments, const Rat& start,
    const Rat& speed = Rat(1));

}  // namespace minmach
