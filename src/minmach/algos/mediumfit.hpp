// MediumFit (Section 6.1): every job j runs exactly in
//   [r_j + l_j/2, d_j - l_j/2),
// independently of all other jobs; machines are interval-colored first-fit.
// Lemma 8: on agreeable instances of alpha-tight jobs this opens at most
// 16 m / alpha machines. The paper notes the two obvious alternatives
// (running in [r_j + l_j, d_j) or [r_j, d_j - l_j)) do NOT give O(m);
// experiment E9 demonstrates that too, via the `anchor` knob.
#pragma once

#include <string>

#include "minmach/algos/reservation.hpp"

namespace minmach {

enum class MediumFitAnchor {
  kCenter,  // the paper's rule: [r + l/2, d - l/2)
  kLatest,  // counterexample rule: [r + l, d)
  kEarliest // counterexample rule: [r, d - l)
};

class MediumFitPolicy : public ReservationPolicy {
 public:
  explicit MediumFitPolicy(MediumFitAnchor anchor = MediumFitAnchor::kCenter)
      : anchor_(anchor) {}

  [[nodiscard]] std::string name() const override;

 protected:
  Placement place(Simulator& sim, JobId job) override;

 private:
  MediumFitAnchor anchor_;
};

}  // namespace minmach
