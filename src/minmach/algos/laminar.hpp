// The O(m log m)-machine non-migratory algorithm for laminar instances
// (Section 5 / Theorem 9).
//
// Tight jobs are assigned at release by the budget scheme of §5.1:
//  - if some machine has no previously assigned job whose window intersects
//    I(j), take any such machine;
//  - otherwise, on each machine the intersecting assigned jobs all dominate
//    j and are linearly ordered by domination; the innermost one is that
//    machine's "currently responsible" job. The responsible jobs across
//    machines form a chain c_1(j) < c_2(j) < ... (innermost first);
//    c_i(j) is the i-th candidate.
//  - each job's laxity is split into m' equal sub-budgets; assigning j to
//    the machine of c_i(j) charges |I(j)| to the i-th sub-budget of c_i(j).
//    Pick the smallest i whose budget can still pay (inequality (6)).
//  - if no budget can pay, the assignment FAILS; Theorem 9 proves failure
//    is impossible once m' = O(m log m). The implementation records the
//    failure and opens an overflow machine so runs complete; experiments
//    report the failure count (always 0 at the theorem's budget).
//
// Dispatch per machine is earliest-deadline (Lemma 5 shows deadlines of
// unfinished jobs on one machine are distinct, so this is unambiguous).
//
// Loose jobs go to a separate pool via the Section 4 pipeline; the
// convenience driver schedule_laminar() performs the split and merges the
// two schedules.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "minmach/algos/nonmig.hpp"
#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"
#include "minmach/util/interval_set.hpp"

namespace minmach {

// The witness set of §5.2: when the assignment of some job fails, the
// analysis extracts levels F_1..F_{m'} (candidate jobs whose sub-budgets
// were exhausted) plus F_0 (the innermost users), and T = union of F_0's
// windows. Lemma 7: (F, T) is an (m', 1/m')-critical pair in the sense of
// Definition 1, which by Theorem 10 lower-bounds the offline optimum --
// i.e. a failure at budget m' certifies m = Omega(m'/log m').
struct WitnessSet {
  std::vector<std::vector<Job>> levels;  // levels[0] = F_0, ..., F_{m'}
  IntervalSet T;
};

// Definition 1, measured exactly: `coverage` is the minimum over t in T of
// the number of distinct witness jobs whose window covers t; `beta` is the
// minimum over witness jobs of |T cap I(j)| / l_j.
struct CriticalPairStats {
  std::size_t coverage = 0;
  Rat beta = Rat(0);
};
[[nodiscard]] CriticalPairStats evaluate_critical_pair(
    const WitnessSet& witness);

// The §5.1 assignment core, reusable across the fixed-budget policy and the
// doubling wrapper: candidate chains, m'-way sub-budgets, |I(j)| charging,
// witness extraction. Machine indices are local to the assigner (a block of
// `budget` machines); callers add their own offset.
class LaminarAssigner {
 public:
  explicit LaminarAssigner(std::size_t budget);

  // Local machine index in [0, budget), or std::nullopt when every
  // candidate's budget is exhausted (the Theorem 9 failure event).
  [[nodiscard]] std::optional<std::size_t> try_assign(const Simulator& sim,
                                                      JobId job);

  [[nodiscard]] std::size_t budget() const { return budget_; }
  // Witness for the most recent try_assign failure.
  [[nodiscard]] const std::optional<WitnessSet>& witness() const {
    return witness_;
  }

 private:
  [[nodiscard]] static bool dominates(const Job& outer, JobId outer_id,
                                      const Job& inner, JobId inner_id);
  void build_witness(const Simulator& sim, JobId failing,
                     const std::vector<JobId>& failing_chain);

  std::size_t budget_;
  std::vector<std::vector<JobId>> history_;
  std::map<JobId, std::vector<Rat>> charged_;
  std::map<JobId, std::vector<std::vector<JobId>>> users_;
  std::map<JobId, std::vector<JobId>> chain_of_;
  std::optional<WitnessSet> witness_;
};

class LaminarPolicy : public NonMigratoryPolicy {
 public:
  // machine_budget = m' (the theorem uses m' = O(m log m)).
  explicit LaminarPolicy(std::size_t machine_budget);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t assignment_failures() const { return failures_; }

  // Witness of the first assignment failure (std::nullopt while none
  // occurred). See WitnessSet above.
  [[nodiscard]] const std::optional<WitnessSet>& failure_witness() const {
    return witness_;
  }

 protected:
  std::size_t choose_machine(Simulator& sim, JobId job) override;

 private:
  std::size_t machine_budget_;
  std::size_t failures_ = 0;
  std::size_t overflow_next_ = 0;  // next overflow machine index offset
  LaminarAssigner assigner_;
  std::optional<WitnessSet> witness_;  // first failure only
};

// The §2 remark made concrete: "the optimum may be assumed known at the
// loss of a constant factor" via guess-and-double. The adaptive policy
// starts with guess m^ = 1 and budget c * m^ * log2(m^ + 2); whenever the
// current block's assignment fails, the failure witness certifies (via
// Definition 1 + Theorem 10) that the offline optimum exceeds the guess,
// so the guess doubles and a FRESH block of machines is opened. Jobs
// already committed stay on their old block (non-migratory), and the total
// machine count telescopes to O(budget(final guess)).
class AdaptiveLaminarPolicy : public NonMigratoryPolicy {
 public:
  // budget(m^) = ceil(budget_factor * m^ * log2(m^ + 2)).
  explicit AdaptiveLaminarPolicy(double budget_factor = 8.0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::int64_t current_guess() const { return guess_; }
  [[nodiscard]] std::size_t epochs() const { return blocks_.size(); }

 protected:
  std::size_t choose_machine(Simulator& sim, JobId job) override;

 private:
  [[nodiscard]] std::size_t budget_for(std::int64_t guess) const;
  void open_block();

  struct Block {
    std::size_t offset;
    LaminarAssigner assigner;
  };
  double budget_factor_;
  std::int64_t guess_ = 1;
  std::size_t next_offset_ = 0;
  std::vector<Block> blocks_;
};

// The balancing ablation (§5.1 discusses why it is needed): assign each job
// to the machine of its innermost candidate whose TOTAL remaining laxity
// budget can still pay for every window assigned below it plus |I(j)| --
// the "necessary criterion" without the m'-way sub-budget split. The paper
// notes this greedy rule fails on hard laminar instances [10, Thm 2.13];
// the ablation bench compares its failure onset with the balanced scheme's.
class GreedyLaminarPolicy : public NonMigratoryPolicy {
 public:
  explicit GreedyLaminarPolicy(std::size_t machine_budget);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t assignment_failures() const { return failures_; }

 protected:
  std::size_t choose_machine(Simulator& sim, JobId job) override;

 private:
  std::size_t machine_budget_;
  std::size_t failures_ = 0;
  std::size_t overflow_next_ = 0;
  std::vector<std::vector<JobId>> history_;
};

struct LaminarRun {
  Schedule schedule;           // merged (tight pool first, loose pool after)
  std::size_t machines_tight = 0;
  std::size_t machines_loose = 0;
  std::size_t machines_total = 0;
  std::size_t assignment_failures = 0;
};

// Complete Section 5 algorithm: alpha-tight jobs through LaminarPolicy with
// budget m', alpha-loose jobs through the Section 4 pipeline with speed s
// (requires alpha * s < 1). The instance must be laminar.
[[nodiscard]] LaminarRun schedule_laminar(const Instance& instance,
                                          std::size_t machine_budget,
                                          const Rat& alpha, const Rat& s);

}  // namespace minmach
