// Greedy non-preemptive first fit: at release, place the job at the
// earliest start on the lowest-indexed machine that lets it finish by its
// deadline, opening a machine when none fits. This is the natural member of
// the algorithm family Saha [11] analyzes for the non-preemptive problem
// (O(log Delta)-competitive there); here it serves as the non-preemptive
// baseline in the examples and the EDF-vs-LLF experiment.
#pragma once

#include <string>

#include "minmach/algos/reservation.hpp"

namespace minmach {

class NonPreemptiveGreedyPolicy : public ReservationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "NonPreemptiveFF"; }

 protected:
  Placement place(Simulator& sim, JobId job) override;
};

}  // namespace minmach
