// The non-preemptive O(m) algorithm for agreeable instances (Section 6.1,
// Theorem 12): split by looseness at alpha.
//  - alpha-loose jobs: EDF on ceil(m/(1-alpha)^2) machines (Theorem 13). On
//    agreeable instances EDF never preempts a started job -- later releases
//    have later deadlines -- so the pool's schedule is non-preemptive
//    (Corollary 1).
//  - alpha-tight jobs: MediumFit (Lemma 8: at most 16m/alpha machines).
// Total: m/(1-alpha)^2 + 16m/alpha machines, minimized at ~32.70*m around
// alpha ~ 0.63 (experiment E8 reproduces the sweep).
//
// Per §2 the online algorithm may assume the optimal machine count m is
// known (guessing costs O(1) more); the driver takes it as a parameter.
#pragma once

#include <cstdint>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

struct AgreeableRun {
  Schedule schedule;  // non-preemptive, non-migratory
  std::size_t machines_loose = 0;
  std::size_t machines_tight = 0;
  std::size_t machines_total = 0;
};

// Requires an agreeable instance feasible on m migratory machines and
// alpha in (0,1). Throws std::runtime_error if the EDF pool misses a
// deadline (cannot happen when m is a true upper bound on the optimum, per
// Theorem 13).
[[nodiscard]] AgreeableRun schedule_agreeable(const Instance& instance,
                                              std::int64_t m,
                                              const Rat& alpha);

// The paper's optimized constant: alpha ~ 0.63 -> ~32.70 m machines.
[[nodiscard]] AgreeableRun schedule_agreeable(const Instance& instance,
                                              std::int64_t m);

// ceil(m / (1-alpha)^2): the EDF pool budget of Theorem 13.
[[nodiscard]] std::int64_t edf_budget_for_loose(std::int64_t m,
                                                const Rat& alpha);

}  // namespace minmach
