// Scale-class non-preemptive online scheduling in the spirit of Saha [11]
// (the O(log Delta)-competitive algorithm for the non-preemptive problem
// quoted in Section 1): jobs are bucketed by processing time into geometric
// classes [2^k, 2^{k+1}); each class owns a private machine pool packed by
// earliest-fit. With log Delta classes and each class O(m)-packable, the
// total is O(m log Delta) machines -- the non-preemptive yardstick that the
// paper's preemptive lower bound (E1) is contrasted against.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "minmach/algos/reservation.hpp"

namespace minmach {

class ScaleClassPolicy : public ReservationPolicy {
 public:
  ScaleClassPolicy() = default;

  [[nodiscard]] std::string name() const override { return "ScaleClassNP"; }
  [[nodiscard]] std::size_t class_count() const { return pools_.size(); }

 protected:
  Placement place(Simulator& sim, JobId job) override;

 private:
  // Geometric class index of a processing time (floor(log2 p), offset so
  // sub-unit processing times get negative keys).
  [[nodiscard]] static int scale_class(const Rat& processing);

  std::map<int, std::vector<std::size_t>> pools_;  // class -> machine ids
  std::size_t next_machine_ = 0;
};

}  // namespace minmach
