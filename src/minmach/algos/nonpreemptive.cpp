#include "minmach/algos/nonpreemptive.hpp"

namespace minmach {

NonPreemptiveGreedyPolicy::Placement NonPreemptiveGreedyPolicy::place(
    Simulator& sim, JobId job) {
  const Job& j = sim.job(job);
  const Rat wall = j.processing / sim.speed();
  const Rat latest_start = j.deadline - wall;

  std::size_t best_machine = open_machines();  // fallback: open a machine
  Rat best_start = j.release;
  bool found = false;
  for (std::size_t m = 0; m < open_machines(); ++m) {
    Rat start = earliest_fit(m, j.release, wall);
    if (start <= latest_start && (!found || start < best_start)) {
      best_machine = m;
      best_start = start;
      found = true;
    }
  }
  return {best_machine, best_start};
}

}  // namespace minmach
