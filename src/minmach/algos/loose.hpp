// Theorem 6's reduction: scheduling alpha-loose jobs WITHOUT speed
// augmentation by simulating a speed-s non-migratory black box on the
// inflated instance J^s (every processing time multiplied by s) and
// replaying the resulting slots at unit speed.
//
// A job j^s with processing s*p_j occupies exactly p_j wall time on a
// speed-s machine, so the produced slot structure is, verbatim, a feasible
// unit-speed non-migratory schedule of the original instance. Lemma 4
// guarantees m(J^s) = O(m(J)) when alpha < 1/s, so a black box using
// f(m(J^s)) machines yields f(O(m(J))) machines overall -- Theorem 5's O(1)
// competitiveness (experiment E4).
//
// As the black box the paper plugs in Chan--Lam--To's algorithm (Theorem 7)
// purely as an existence result; this library substitutes non-migratory
// EDF-FirstFit with the exact per-machine admission test run at speed s
// (DESIGN.md section 5, substitution 1).
#pragma once

#include <cstddef>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

struct LooseRun {
  Schedule schedule;             // feasible, non-migratory, unit speed
  std::size_t machines_used = 0; // machines of the final schedule
};

// Requires: every job alpha-loose and alpha * s < 1 (throws otherwise).
// The online nature is preserved: the black box sees jobs at their release
// dates; the inflation only rewrites each job at its own release.
[[nodiscard]] LooseRun schedule_loose_jobs(const Instance& instance,
                                           const Rat& alpha, const Rat& s);

// The paper's concrete instantiation: given the speed guarantee of the
// Chan--Lam--To theorem, for a target epsilon pick s = (1+epsilon)^2.
// Convenience overload using s = 2 (i.e. valid for all alpha < 1/2).
[[nodiscard]] LooseRun schedule_loose_jobs(const Instance& instance,
                                           const Rat& alpha);

}  // namespace minmach
