#include "minmach/algos/pack_ub.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <numeric>
#include <utility>
#include <vector>

#include "minmach/core/schedule.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/obs/profile.hpp"

namespace minmach {

namespace {

// One fluid grant: job receives `amount` wall time inside segment k
// (amount <= segment length, so McNaughton realizes it on one machine
// without self-overlap).
struct Chunk {
  std::size_t job;
  std::size_t segment;
  Rat amount;
};

// int64 twin of Chunk for the integer fast path: grants stay raw integers
// through every pass and convert to Rat only if a schedule realization is
// actually requested for the winning attempt.
struct IChunk {
  std::size_t job;
  std::size_t segment;
  std::int64_t amount;
};

struct PackAttempt {
  bool feasible = false;
  // max over segments of ceil(granted / length): the machines the realized
  // schedule actually uses (<= the budget the pass ran under).
  std::int64_t machines_used = 0;
  std::vector<Chunk> chunks;    // exact-Rat passes
  std::vector<IChunk> ichunks;  // int64 passes (exactly one vector is used)
};

// One greedy fluid pass at machine budget m. Priority: deadline ascending
// (EDF) or `deadline - remaining` ascending (LLF -- the laxity
// d - t - remaining at segment start t, with the common -t dropped since it
// does not affect the order), ties by job index so passes are deterministic.
PackAttempt try_pack(const Instance& instance, const std::vector<Rat>& points,
                     std::int64_t budget, bool llf) {
  PackAttempt out;
  const std::size_t n = instance.size();
  std::vector<Rat> remaining(n);
  for (std::size_t j = 0; j < n; ++j)
    remaining[j] = instance.job(j).processing;

  std::vector<std::size_t> by_release(n);
  std::iota(by_release.begin(), by_release.end(), 0);
  std::sort(by_release.begin(), by_release.end(),
            [&](std::size_t x, std::size_t y) {
              const Rat& rx = instance.job(x).release;
              const Rat& ry = instance.job(y).release;
              return rx < ry || (rx == ry && x < y);
            });

  std::vector<std::size_t> active;   // released, unfinished, deadline ahead
  std::vector<std::size_t> order;    // active re-prioritized per segment
  std::vector<Rat> llf_key(llf ? n : 0);
  active.reserve(n);
  order.reserve(n);
  std::size_t next_release = 0;
  const Rat budget_rat(budget);

  for (std::size_t k = 0; k + 1 < points.size(); ++k) {
    const Rat& a = points[k];
    const Rat& b = points[k + 1];
    while (next_release < n &&
           !(a < instance.job(by_release[next_release]).release)) {
      active.push_back(by_release[next_release]);
      ++next_release;
    }
    if (active.empty()) continue;

    const Rat length = b - a;
    Rat cap = budget_rat * length;
    order.assign(active.begin(), active.end());
    if (llf) {
      for (std::size_t j : order)
        llf_key[j] = instance.job(j).deadline - remaining[j];
      std::sort(order.begin(), order.end(),
                [&](std::size_t x, std::size_t y) {
                  return llf_key[x] < llf_key[y] ||
                         (llf_key[x] == llf_key[y] && x < y);
                });
    } else {
      std::sort(order.begin(), order.end(),
                [&](std::size_t x, std::size_t y) {
                  const Rat& dx = instance.job(x).deadline;
                  const Rat& dy = instance.job(y).deadline;
                  return dx < dy || (dx == dy && x < y);
                });
    }

    Rat granted(0);
    for (std::size_t j : order) {
      if (!cap.is_positive()) break;
      Rat take = Rat::min(length, remaining[j]);
      take = Rat::min(take, cap);
      if (!take.is_positive()) continue;
      out.chunks.push_back({j, k, take});
      remaining[j] -= take;
      cap -= take;
      granted += take;
    }
    if (granted.is_positive()) {
      out.machines_used =
          std::max(out.machines_used, (granted / length).ceil().to_int64());
    }

    // Retire finished jobs; a job whose window ends here with work left
    // sinks the whole pass.
    std::size_t keep = 0;
    for (std::size_t j : active) {
      if (!remaining[j].is_positive()) continue;
      if (!(b < instance.job(j).deadline)) return out;  // missed deadline
      active[keep++] = j;
    }
    active.resize(keep);
  }
  out.feasible = active.empty();
  return out;
}

// Small-integer extraction mirroring the bound kernels: succeeds only when
// every field is an integer Rat in the int64 small tier. Oracle-materialized
// instances in integer mode always qualify, so the sandwich's packing runs
// on raw int64 instead of gcd-normalizing Rats.
bool small_int_fields(const Instance& instance, std::vector<std::int64_t>& r,
                      std::vector<std::int64_t>& d,
                      std::vector<std::int64_t>& p) {
  const std::size_t n = instance.size();
  r.reserve(n);
  d.reserve(n);
  p.reserve(n);
  auto small_into = [](const Rat& value, std::vector<std::int64_t>& dst) {
    if (!value.is_integer() || !value.num().is_small()) return false;
    dst.push_back(value.num().small_value());
    return true;
  };
  for (const Job& job : instance.jobs()) {
    if (!small_into(job.release, r) || !small_into(job.deadline, d) ||
        !small_into(job.processing, p))
      return false;
  }
  return true;
}

// int64 twin of try_pack: same priorities, same tie-breaks, same grant
// rule, with the per-segment cap held in __int128 so budget * length cannot
// overflow. Two structural savings over the Rat pass: the EDF priority
// (deadline, idx) is static, so the active list is KEPT in EDF order --
// newly released jobs merge in and the retirement filter preserves order --
// and no per-segment sort runs at all in EDF mode (LLF keys change with
// `remaining`, so LLF still re-sorts a scratch copy). Grants are recorded
// as raw IChunks; Rat conversion happens once, for the winning attempt, and
// only if a schedule realization is requested.
PackAttempt try_pack_i64(const std::vector<std::int64_t>& release,
                         const std::vector<std::int64_t>& deadline,
                         const std::vector<std::int64_t>& processing,
                         const std::vector<std::int64_t>& points,
                         std::int64_t budget, bool llf) {
  PackAttempt out;
  const std::size_t n = release.size();
  std::vector<std::int64_t> remaining = processing;

  std::vector<std::size_t> by_release(n);
  std::iota(by_release.begin(), by_release.end(), 0);
  std::sort(by_release.begin(), by_release.end(),
            [&](std::size_t x, std::size_t y) {
              return release[x] < release[y] ||
                     (release[x] == release[y] && x < y);
            });
  auto edf_before = [&](std::size_t x, std::size_t y) {
    return deadline[x] < deadline[y] || (deadline[x] == deadline[y] && x < y);
  };

  std::vector<std::size_t> active;    // EDF-ordered: released, unfinished
  std::vector<std::size_t> incoming;  // releases gathered this segment
  std::vector<std::size_t> order;     // LLF scratch
  std::vector<std::int64_t> llf_key(llf ? n : 0);
  active.reserve(n);
  incoming.reserve(n);
  order.reserve(llf ? n : 0);
  std::size_t next_release = 0;

  for (std::size_t k = 0; k + 1 < points.size(); ++k) {
    const std::int64_t a = points[k];
    const std::int64_t b = points[k + 1];
    incoming.clear();
    while (next_release < n && release[by_release[next_release]] <= a) {
      incoming.push_back(by_release[next_release]);
      ++next_release;
    }
    if (!incoming.empty()) {
      std::sort(incoming.begin(), incoming.end(), edf_before);
      const std::size_t old_size = active.size();
      active.insert(active.end(), incoming.begin(), incoming.end());
      std::inplace_merge(active.begin(),
                         active.begin() + static_cast<std::ptrdiff_t>(old_size),
                         active.end(), edf_before);
    }
    if (active.empty()) continue;

    const std::int64_t length = b - a;
    __int128 cap = static_cast<__int128>(budget) * length;
    const std::vector<std::size_t>* priority = &active;
    if (llf) {
      for (std::size_t j : active) llf_key[j] = deadline[j] - remaining[j];
      order.assign(active.begin(), active.end());
      std::sort(order.begin(), order.end(),
                [&](std::size_t x, std::size_t y) {
                  return llf_key[x] < llf_key[y] ||
                         (llf_key[x] == llf_key[y] && x < y);
                });
      priority = &order;
    }

    __int128 granted = 0;
    for (std::size_t j : *priority) {
      if (cap <= 0) break;
      std::int64_t take = std::min(length, remaining[j]);
      if (cap < take) take = static_cast<std::int64_t>(cap);
      if (take <= 0) continue;
      out.ichunks.push_back({j, k, take});
      remaining[j] -= take;
      cap -= take;
      granted += take;
    }
    if (granted > 0) {
      out.machines_used = std::max<std::int64_t>(
          out.machines_used,
          static_cast<std::int64_t>((granted + length - 1) / length));
    }

    // Retire finished jobs; a job whose window ends here with work left
    // sinks the whole pass. The filter is stable, so EDF order survives.
    std::size_t keep = 0;
    for (std::size_t j : active) {
      if (remaining[j] <= 0) continue;
      if (b >= deadline[j]) return out;  // missed deadline
      active[keep++] = j;
    }
    active.resize(keep);
  }
  out.feasible = active.empty();
  return out;
}

// Direct certificate audit of an int64 fluid attempt: verifies the
// McNaughton realizability conditions on the chunks themselves. When they
// hold, the wrap-around rule realizes the chunks as a feasible schedule on
// machines_used machines, and validate() on that schedule would re-derive
// exactly these facts -- so the audit is equivalent to realize+validate,
// minus the Rat schedule construction.
bool audit_chunks_i64(const std::vector<std::int64_t>& release,
                      const std::vector<std::int64_t>& deadline,
                      const std::vector<std::int64_t>& processing,
                      const std::vector<std::int64_t>& points,
                      const PackAttempt& attempt) {
  if (attempt.machines_used < 1) return false;
  std::vector<__int128> granted(release.size(), 0);
  std::size_t i = 0;
  while (i < attempt.ichunks.size()) {
    const std::size_t k = attempt.ichunks[i].segment;
    if (k + 1 >= points.size()) return false;
    const std::int64_t length = points[k + 1] - points[k];
    __int128 segment_total = 0;
    for (; i < attempt.ichunks.size() && attempt.ichunks[i].segment == k;
         ++i) {
      const IChunk& chunk = attempt.ichunks[i];
      if (chunk.job >= release.size()) return false;
      if (chunk.amount <= 0 || chunk.amount > length) return false;
      if (points[k] < release[chunk.job] ||
          points[k + 1] > deadline[chunk.job])
        return false;
      granted[chunk.job] += chunk.amount;
      segment_total += chunk.amount;
    }
    if (segment_total > static_cast<__int128>(attempt.machines_used) * length)
      return false;
  }
  for (std::size_t j = 0; j < release.size(); ++j)
    if (granted[j] != processing[j]) return false;
  return true;
}

// Realizes a successful fluid pass as a concrete schedule: McNaughton's
// wrap-around rule within each segment (each chunk is at most the segment
// length, so a chunk split at a machine boundary never overlaps itself).
Schedule realize(const std::vector<Rat>& points, const PackAttempt& attempt) {
  Schedule schedule(static_cast<std::size_t>(attempt.machines_used));
  std::size_t chunk = 0;
  while (chunk < attempt.chunks.size()) {
    const std::size_t k = attempt.chunks[chunk].segment;
    const Rat& seg_start = points[k];
    const Rat& seg_end = points[k + 1];
    std::size_t machine = 0;
    Rat cursor = seg_start;
    // chunks are appended in segment order, so each segment is one run.
    for (; chunk < attempt.chunks.size() && attempt.chunks[chunk].segment == k;
         ++chunk) {
      Rat left = attempt.chunks[chunk].amount;
      while (left.is_positive()) {
        Rat available = seg_end - cursor;
        if (!available.is_positive()) {
          ++machine;
          cursor = seg_start;
          available = seg_end - seg_start;
        }
        const Rat piece = Rat::min(left, available);
        schedule.add_slot(machine, cursor, cursor + piece,
                          static_cast<JobId>(attempt.chunks[chunk].job));
        cursor += piece;
        left -= piece;
      }
    }
  }
  schedule.canonicalize();
  return schedule;
}

}  // namespace

PackUbResult pack_upper_bound(const Instance& instance,
                              const PackUbOptions& options) {
  PackUbResult out;
  if (instance.empty()) return out;
  const std::int64_t n = static_cast<std::int64_t>(instance.size());
  out.machines = n;  // one job per machine: always feasible when well-formed
  if (!instance.well_formed()) return out;
  obs::ProfileSpan span("bound_ub_pack");

  const std::vector<Rat> points = instance.event_points();
  int budget = options.max_attempts > 0
                   ? options.max_attempts
                   : 2 * std::bit_width(static_cast<std::uint64_t>(n)) + 6;

  // Integer fast path: passes run on raw int64 when every field is a small
  // integer (always true for oracle-materialized integer-mode instances).
  // Both paths produce identical chunks, so the witness and the audit below
  // are path-independent.
  std::vector<std::int64_t> r64, d64, p64;
  std::vector<std::int64_t> pts64;
  const bool use_i64 = small_int_fields(instance, r64, d64, p64);
  if (use_i64) {
    pts64.reserve(points.size());
    for (const Rat& point : points) pts64.push_back(point.num().small_value());
  }

  std::int64_t best = n;
  PackWitness best_witness = PackWitness::kSingleton;
  PackAttempt best_attempt;
  auto attempt = [&](std::int64_t m, bool llf) {
    ++out.attempts;
    --budget;
    PackAttempt pass = use_i64 ? try_pack_i64(r64, d64, p64, pts64, m, llf)
                               : try_pack(instance, points, m, llf);
    if (pass.feasible && pass.machines_used < best) {
      best = std::max<std::int64_t>(1, pass.machines_used);
      best_witness = llf ? PackWitness::kLlf : PackWitness::kEdf;
      best_attempt = std::move(pass);
    }
    return pass.feasible;
  };

  // Gallop the budget up from `start` (EDF, with one LLF retry at the
  // opening budget) until a pass succeeds; n always does.
  const std::int64_t start = std::clamp<std::int64_t>(options.start, 1, n);
  std::int64_t m = start;
  bool success = false;
  while (budget > 0) {
    if (attempt(m, /*llf=*/false)) {
      success = true;
      break;
    }
    if (options.try_llf && m == start && budget > 0 &&
        attempt(m, /*llf=*/true)) {
      success = true;
      break;
    }
    if (m >= n) break;
    m = std::min(n, 2 * m);
  }

  // Binary-refine the witness toward `start` within the remaining budget.
  if (success) {
    std::int64_t floor = start;
    while (budget > 0 && floor < best) {
      const std::int64_t mid = floor + (best - floor) / 2;
      if (mid >= best) break;
      bool ok = attempt(mid, /*llf=*/false);
      if (!ok && options.try_llf && budget > 0) ok = attempt(mid, /*llf=*/true);
      if (!ok) floor = mid + 1;
      // on success `best` (and the witness) were updated inside attempt().
    }
  }

  if (best_witness != PackWitness::kSingleton) {
    // Audit the witness: the certificate is the audited schedule itself --
    // realized and run through core/validate, or (opt-in, int64 path only)
    // checked directly against the McNaughton conditions. An audit
    // rejection (impossible by construction, kept as defense in depth)
    // falls back to the trivial certificate instead of lying.
    obs::ProfileSpan audit_span("pack_audit");
    bool audited;
    if (use_i64 && !options.audit_schedule) {
      audited = audit_chunks_i64(r64, d64, p64, pts64, best_attempt);
    } else {
      if (use_i64) {
        best_attempt.chunks.reserve(best_attempt.ichunks.size());
        for (const IChunk& chunk : best_attempt.ichunks)
          best_attempt.chunks.push_back(
              {chunk.job, chunk.segment, Rat(chunk.amount)});
      }
      const Schedule witness_schedule = realize(points, best_attempt);
      audited = validate(instance, witness_schedule).ok;
    }
    if (audited) {
      out.machines = best;
      out.witness = best_witness;
      out.validated = true;
    }
  }
  obs::Registry::global().counter("bounds.pack_attempts").add(out.attempts);
  return out;
}

}  // namespace minmach
