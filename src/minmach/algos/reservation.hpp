// Base for policies that commit every job, at its release, to one fixed
// execution interval on one machine (non-preemptive, non-migratory by
// construction): MediumFit (Section 6.1) and the greedy non-preemptive
// baseline. The base keeps the per-machine reservation books, dispatches
// whichever reservation covers the current time, and wakes the simulator at
// upcoming reservation starts.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "minmach/sim/engine.hpp"

namespace minmach {

class ReservationPolicy : public OnlinePolicy {
 public:
  void on_release(Simulator& sim, JobId job) final;
  void dispatch(Simulator& sim) override;
  std::optional<Rat> next_wakeup(const Simulator& sim) override;

  [[nodiscard]] std::size_t open_machines() const { return books_.size(); }
  [[nodiscard]] std::optional<std::size_t> machine_of(JobId job) const;

  // Maximum number of reservations overlapping any single time point (the
  // quantity Lemma 8 bounds by 16m/alpha for MediumFit).
  [[nodiscard]] std::size_t peak_overlap() const;

 protected:
  struct Reservation {
    Rat start;
    Rat end;
    JobId job;
  };

  // Decide the machine and execution interval for the newly released job.
  // The returned interval must lie inside the job's window and have length
  // p_j / speed. Returning a machine index >= open_machines() opens one.
  struct Placement {
    std::size_t machine;
    Rat start;
  };
  virtual Placement place(Simulator& sim, JobId job) = 0;

  // First machine index whose book has no reservation overlapping
  // [start, start + length), or open_machines() if none.
  [[nodiscard]] std::size_t first_free_machine(const Rat& start,
                                               const Rat& length) const;
  // Earliest start >= lower_bound at which the given machine can host an
  // uninterrupted interval of the given length.
  [[nodiscard]] Rat earliest_fit(std::size_t machine, const Rat& lower_bound,
                                 const Rat& length) const;

  [[nodiscard]] const std::vector<std::vector<Reservation>>& books() const {
    return books_;
  }

 private:
  std::vector<std::vector<Reservation>> books_;  // kept sorted by start
  std::vector<std::optional<std::size_t>> machine_by_job_;
};

}  // namespace minmach
