// Non-migratory assign-at-release framework.
//
// Every non-migratory online algorithm in this library commits each job to
// one machine at its release (the natural model: a non-migratory algorithm
// gains nothing from delaying the commitment past a_j = r_j + l_j, and the
// lower-bound game of Section 3 observes commitments through processing).
// Per machine the dispatcher runs preemptive EDF over the assigned active
// jobs, which is optimal for a fixed assignment; the admission test
// (edf_feasible_single_machine) is therefore exact.
//
// Subclasses only choose the machine. The provided fit rules are the
// opponent suite for the strong lower bound (experiment E1): a lower bound
// quantifies over all algorithms, the game is played against each of these.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "minmach/algos/single_machine.hpp"
#include "minmach/sim/engine.hpp"
#include "minmach/util/rng.hpp"

namespace minmach {

class NonMigratoryPolicy : public OnlinePolicy {
 public:
  void on_release(Simulator& sim, JobId job) final;
  void on_complete(Simulator& sim, JobId job) override;
  void on_miss(Simulator& sim, JobId job) override;
  void dispatch(Simulator& sim) override;

  // Machine the job was committed to (set at its release).
  [[nodiscard]] std::optional<std::size_t> machine_of(JobId job) const;
  [[nodiscard]] std::size_t open_machines() const { return assigned_.size(); }

 protected:
  // Decide the machine for the newly released job. Returning open_machines()
  // (or any index beyond) opens new machines.
  virtual std::size_t choose_machine(Simulator& sim, JobId job) = 0;

  // Machines on which the job, added to the existing commitments, is
  // EDF-feasible from now on (exact test, ascending order).
  [[nodiscard]] std::vector<std::size_t> feasible_machines(const Simulator& sim,
                                                           JobId job) const;
  // As above, but into a pooled buffer: the returned reference is valid
  // until the next call on this policy (any thread). The per-release hot
  // path of every fit rule uses this; under util::substrate_legacy() it
  // still fills a fresh vector, matching the seed.
  [[nodiscard]] const std::vector<std::size_t>& feasible_machines_pooled(
      const Simulator& sim, JobId job) const;
  [[nodiscard]] bool machine_can_take(const Simulator& sim,
                                      std::size_t machine, JobId job) const;

  // Total remaining committed work on a machine.
  [[nodiscard]] Rat machine_load(const Simulator& sim,
                                 std::size_t machine) const;

  [[nodiscard]] const std::vector<JobId>& jobs_on(std::size_t machine) const {
    return assigned_[machine];
  }

 private:
  std::vector<std::vector<JobId>> assigned_;
  std::vector<std::optional<std::size_t>> machine_by_job_;
  // Admission-test scratch, reused across the per-release probe of every
  // open machine (mutable: the probes are logically const queries). Under
  // util::substrate_legacy() the probes build fresh vectors instead,
  // matching the seed.
  mutable std::vector<MachineCommitment> commit_scratch_;
  mutable std::vector<std::size_t> feasible_scratch_;
};

enum class FitRule {
  kFirstFit,    // lowest-index feasible machine
  kBestFit,     // feasible machine with the largest remaining load
  kWorstFit,    // feasible machine with the smallest remaining load
  kRandomFit,   // uniformly random feasible machine
  kNextFit,     // round-robin cursor over feasible machines
};

[[nodiscard]] const char* fit_rule_name(FitRule rule);

// Opens a new machine iff no existing machine passes the exact EDF
// admission test.
class FitPolicy : public NonMigratoryPolicy {
 public:
  explicit FitPolicy(FitRule rule, std::uint64_t seed = 1);

  [[nodiscard]] std::string name() const override;

 protected:
  std::size_t choose_machine(Simulator& sim, JobId job) override;

 private:
  FitRule rule_;
  Rng rng_;
  std::size_t cursor_ = 0;
};

}  // namespace minmach
