// Certified upper bound on the migratory optimum via constructive packing
// (the upper side of the bound tier, DESIGN.md §14).
//
// A greedy fluid packing walks the elementary segments between event points
// left to right; within each segment of length L it grants wall time
// min(L, remaining) to jobs in priority order -- earliest deadline first,
// or least laxity first -- until the m*L capacity is spent. Granting at
// most L per job per segment is exactly McNaughton's wrap-around condition,
// so a successful pass realizes as a concrete migratory schedule, which is
// then audited by core/validate. The certificate is therefore a feasible
// schedule, never a heuristic estimate: pack_upper_bound's machine count is
// a true upper bound on OPT for every input.
//
// The packing is not exact (greedy fluid EDF/LLF can miss feasible budgets
// the max flow certifies), so the driver gallops the machine budget up from
// `start` until a pass succeeds -- n machines always do: with cap n*L every
// released job runs at full rate through its whole window -- and then
// binary-searches the witness down within a fixed attempt budget. Spirit of
// the rounding schemes in Chen--Megow--Schewior and Im--Moseley--Pruhs--
// Stein (PAPERS.md): a cheap constructive packer whose witness bounds the
// optimum from above.
#pragma once

#include <cstdint>

#include "minmach/core/bounds.hpp"
#include "minmach/core/instance.hpp"

namespace minmach {

struct PackUbOptions {
  // First machine budget to try; pass a certified lower bound so a success
  // at `start` pinches the sandwich outright. Clamped into [1, n].
  std::int64_t start = 1;
  // Packing passes allowed across galloping + refinement; 0 means the
  // default budget 2 * ceil(log2 n) + 6.
  int max_attempts = 0;
  // Retry a failed budget with the least-laxity order before giving up on
  // it (LLF packs tight nested windows EDF starves, and vice versa).
  bool try_llf = true;
  // Audit mode for the winning pass. True: realize the McNaughton schedule
  // and run it through core/validate (the strongest audit; always used on
  // non-integer instances). False: on the int64 fast path, check the
  // McNaughton realizability conditions directly on the chunks -- every
  // chunk fits its segment and its job's window, every job receives exactly
  // its processing time, no segment exceeds machines_used * length. These
  // are precisely the facts validate() re-derives from the realized
  // schedule, so the certificate is equally binding, without the Rat
  // schedule construction; the oracle's sandwich uses this mode.
  bool audit_schedule = true;
};

struct PackUbResult {
  // Certified upper bound on OPT: a feasible schedule on this many machines
  // exists (n for the trivial one-job-per-machine certificate, 0 for the
  // empty instance).
  std::int64_t machines = 0;
  PackWitness witness = PackWitness::kSingleton;
  std::uint64_t attempts = 0;  // packing passes executed
  // The witness schedule passed core/validate. False only for the trivial
  // singleton certificate (vacuously feasible, nothing to audit) or a
  // malformed instance.
  bool validated = false;
};

// Certified upper bound on the migratory optimum of `instance`. Returns the
// trivial n-machine certificate for a malformed instance (which no packing
// can serve) and {0} for an empty one.
[[nodiscard]] PackUbResult pack_upper_bound(const Instance& instance,
                                            const PackUbOptions& options = {});

}  // namespace minmach
