#include "minmach/algos/nonmig.hpp"

#include <algorithm>
#include <stdexcept>

#include "minmach/util/arena.hpp"

namespace minmach {

void NonMigratoryPolicy::on_release(Simulator& sim, JobId job) {
  std::size_t machine = choose_machine(sim, job);
  if (machine >= assigned_.size()) assigned_.resize(machine + 1);
  assigned_[machine].push_back(job);
  if (job >= machine_by_job_.size()) machine_by_job_.resize(job + 1);
  machine_by_job_[job] = machine;
}

void NonMigratoryPolicy::on_complete(Simulator&, JobId) {}

void NonMigratoryPolicy::on_miss(Simulator&, JobId) {}

void NonMigratoryPolicy::dispatch(Simulator& sim) {
  for (std::size_t m = 0; m < assigned_.size(); ++m) {
    // Drop finished/missed jobs lazily.
    std::erase_if(assigned_[m], [&](JobId id) {
      return sim.finished(id) || sim.missed(id);
    });
    // Earliest deadline among this machine's active jobs.
    JobId best = kInvalidJob;
    for (JobId id : assigned_[m]) {
      if (best == kInvalidJob ||
          sim.job(id).deadline < sim.job(best).deadline ||
          (sim.job(id).deadline == sim.job(best).deadline && id < best))
        best = id;
    }
    sim.set_running(m, best);
  }
}

std::optional<std::size_t> NonMigratoryPolicy::machine_of(JobId job) const {
  if (job >= machine_by_job_.size()) return std::nullopt;
  return machine_by_job_[job];
}

bool NonMigratoryPolicy::machine_can_take(const Simulator& sim,
                                          std::size_t machine,
                                          JobId job) const {
  if (util::substrate_legacy()) [[unlikely]] {
    // Seed path: a fresh commitment vector per probe.
    std::vector<MachineCommitment> commitments;
    if (machine < assigned_.size()) {
      for (JobId id : assigned_[machine]) {
        if (sim.finished(id) || sim.missed(id)) continue;
        commitments.push_back({sim.job(id).release, sim.job(id).deadline,
                               sim.remaining(id)});
      }
    }
    commitments.push_back(
        {sim.job(job).release, sim.job(job).deadline, sim.remaining(job)});
    return edf_feasible_single_machine(std::move(commitments), sim.now(),
                                       sim.speed());
  }
  commit_scratch_.clear();
  if (machine < assigned_.size()) {
    for (JobId id : assigned_[machine]) {
      if (sim.finished(id) || sim.missed(id)) continue;
      commit_scratch_.push_back({sim.job(id).release, sim.job(id).deadline,
                                 sim.remaining(id)});
    }
  }
  commit_scratch_.push_back(
      {sim.job(job).release, sim.job(job).deadline, sim.remaining(job)});
  return edf_feasible_single_machine_inplace(commit_scratch_, sim.now(),
                                             sim.speed());
}

std::vector<std::size_t> NonMigratoryPolicy::feasible_machines(
    const Simulator& sim, JobId job) const {
  std::vector<std::size_t> out;
  for (std::size_t m = 0; m < assigned_.size(); ++m) {
    if (machine_can_take(sim, m, job)) out.push_back(m);
  }
  return out;
}

const std::vector<std::size_t>& NonMigratoryPolicy::feasible_machines_pooled(
    const Simulator& sim, JobId job) const {
  if (util::substrate_legacy()) [[unlikely]]
    feasible_scratch_ = feasible_machines(sim, job);  // seed: fresh vector
  else {
    feasible_scratch_.clear();
    for (std::size_t m = 0; m < assigned_.size(); ++m) {
      if (machine_can_take(sim, m, job)) feasible_scratch_.push_back(m);
    }
  }
  return feasible_scratch_;
}

Rat NonMigratoryPolicy::machine_load(const Simulator& sim,
                                     std::size_t machine) const {
  Rat load(0);
  if (machine < assigned_.size()) {
    for (JobId id : assigned_[machine]) {
      if (!sim.finished(id) && !sim.missed(id)) load += sim.remaining(id);
    }
  }
  return load;
}

const char* fit_rule_name(FitRule rule) {
  switch (rule) {
    case FitRule::kFirstFit:
      return "FirstFit";
    case FitRule::kBestFit:
      return "BestFit";
    case FitRule::kWorstFit:
      return "WorstFit";
    case FitRule::kRandomFit:
      return "RandomFit";
    case FitRule::kNextFit:
      return "NextFit";
  }
  return "?";
}

FitPolicy::FitPolicy(FitRule rule, std::uint64_t seed)
    : rule_(rule), rng_(seed) {}

std::size_t FitPolicy::choose_machine(Simulator& sim, JobId job) {
  const std::vector<std::size_t>& feasible = feasible_machines_pooled(sim, job);
  if (feasible.empty()) return open_machines();  // open a fresh machine

  switch (rule_) {
    case FitRule::kFirstFit:
      return feasible.front();
    case FitRule::kBestFit: {
      std::size_t best = feasible.front();
      for (std::size_t m : feasible)
        if (machine_load(sim, m) > machine_load(sim, best)) best = m;
      return best;
    }
    case FitRule::kWorstFit: {
      std::size_t best = feasible.front();
      for (std::size_t m : feasible)
        if (machine_load(sim, m) < machine_load(sim, best)) best = m;
      return best;
    }
    case FitRule::kRandomFit: {
      auto index = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(feasible.size()) - 1));
      return feasible[index];
    }
    case FitRule::kNextFit: {
      // First feasible machine at or after the cursor, wrapping.
      for (std::size_t m : feasible) {
        if (m >= cursor_) {
          cursor_ = m;
          return m;
        }
      }
      cursor_ = feasible.front();
      return feasible.front();
    }
  }
  throw std::logic_error("FitPolicy: unknown rule");
}

std::string FitPolicy::name() const {
  return std::string("NonMig-") + fit_rule_name(rule_);
}

}  // namespace minmach
