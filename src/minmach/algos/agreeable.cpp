#include "minmach/algos/agreeable.hpp"

#include <algorithm>
#include <stdexcept>

#include "minmach/algos/edf.hpp"
#include "minmach/algos/mediumfit.hpp"
#include "minmach/core/transforms.hpp"
#include "minmach/sim/engine.hpp"

namespace minmach {

std::int64_t edf_budget_for_loose(std::int64_t m, const Rat& alpha) {
  Rat one_minus = Rat(1) - alpha;
  Rat budget = Rat(m) / (one_minus * one_minus);
  return budget.ceil().to_int64();
}

AgreeableRun schedule_agreeable(const Instance& instance, std::int64_t m,
                                const Rat& alpha) {
  if (!instance.is_agreeable())
    throw std::invalid_argument("schedule_agreeable: instance not agreeable");
  if (!(Rat(0) < alpha && alpha < Rat(1)))
    throw std::invalid_argument("schedule_agreeable: alpha must be in (0,1)");
  if (m <= 0 && !instance.empty())
    throw std::invalid_argument("schedule_agreeable: m must be positive");

  // Canonical order: agreeable means (release, deadline) sort agree.
  Instance sorted;
  std::vector<JobId> ids;
  {
    std::vector<std::size_t> order(instance.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const Job& ja = instance.job(static_cast<JobId>(a));
                       const Job& jb = instance.job(static_cast<JobId>(b));
                       if (ja.release != jb.release)
                         return ja.release < jb.release;
                       return ja.deadline < jb.deadline;
                     });
    for (std::size_t pos : order) {
      sorted.add_job(instance.job(static_cast<JobId>(pos)));
      ids.push_back(static_cast<JobId>(pos));
    }
  }

  Split split = split_by_looseness(sorted, alpha);
  AgreeableRun out;
  Schedule merged;

  if (!split.loose.empty()) {
    EdfPolicy edf(static_cast<std::size_t>(edf_budget_for_loose(m, alpha)));
    SimRun run = simulate(edf, split.loose, Rat(1), /*require_no_miss=*/true);
    out.machines_loose = run.machines_used;
    // Lift sub-instance ids -> sorted ids -> original ids.
    std::vector<JobId> lift;
    lift.reserve(split.loose_ids.size());
    for (JobId id : split.loose_ids) lift.push_back(ids[id]);
    run.schedule.remap_jobs(lift);
    merged.append_machines(run.schedule);
  }

  if (!split.tight.empty()) {
    MediumFitPolicy medium;
    SimRun run = simulate(medium, split.tight, Rat(1),
                          /*require_no_miss=*/true);
    out.machines_tight = run.machines_used;
    std::vector<JobId> lift;
    lift.reserve(split.tight_ids.size());
    for (JobId id : split.tight_ids) lift.push_back(ids[id]);
    run.schedule.remap_jobs(lift);
    merged.append_machines(run.schedule);
  }

  merged.canonicalize();
  out.machines_total = merged.used_machine_count();
  out.schedule = std::move(merged);
  return out;
}

AgreeableRun schedule_agreeable(const Instance& instance, std::int64_t m) {
  // Minimizing 1/(1-a)^2 + 16/a over (0,1) lands near a = 0.6321...; the
  // paper reports the optimum ~32.70 m at alpha ~ 0.63.
  return schedule_agreeable(instance, m, Rat(63, 100));
}

}  // namespace minmach
