#include "minmach/algos/single_machine.hpp"

#include <algorithm>

#include "minmach/util/arena.hpp"

namespace minmach {

bool edf_feasible_single_machine(std::vector<MachineCommitment> commitments,
                                 const Rat& start, const Rat& speed) {
  return edf_feasible_single_machine_inplace(commitments, start, speed);
}

bool edf_feasible_single_machine_inplace(
    std::vector<MachineCommitment>& commitments, const Rat& start,
    const Rat& speed) {
  for (auto& c : commitments) {
    if (c.available_from < start) c.available_from = start;
    if (c.remaining.is_negative()) return false;
    if (c.available_from + c.remaining / speed > c.deadline &&
        c.remaining.is_positive())
      return false;  // cannot even run alone
  }
  std::erase_if(commitments,
                [](const MachineCommitment& c) { return c.remaining.is_zero(); });
  std::sort(commitments.begin(), commitments.end(),
            [](const MachineCommitment& a, const MachineCommitment& b) {
              return a.available_from < b.available_from;
            });

  // Event-driven EDF: at each step run the released commitment with the
  // earliest deadline until it finishes or the next release. The ready list
  // is pooled per thread (legacy keeps the seed's fresh vector); the test
  // never re-enters itself, so one slot suffices.
  Rat now = start;
  std::size_t next_release = 0;
  std::vector<std::size_t> ready_local;
  static thread_local std::vector<std::size_t> ready_pooled;
  std::vector<std::size_t>& ready =
      util::substrate_legacy() ? ready_local : ready_pooled;
  ready.clear();
  while (true) {
    while (next_release < commitments.size() &&
           commitments[next_release].available_from <= now) {
      ready.push_back(next_release);
      ++next_release;
    }
    if (ready.empty()) {
      if (next_release == commitments.size()) return true;
      now = commitments[next_release].available_from;
      continue;
    }
    // Pick earliest deadline among ready.
    std::size_t best = ready[0];
    std::size_t best_pos = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (commitments[ready[i]].deadline < commitments[best].deadline) {
        best = ready[i];
        best_pos = i;
      }
    }
    MachineCommitment& run = commitments[best];
    Rat finish = now + run.remaining / speed;
    Rat horizon = next_release < commitments.size()
                      ? Rat::min(finish, commitments[next_release].available_from)
                      : finish;
    if (run.deadline < horizon) return false;  // misses even before horizon
    run.remaining -= (horizon - now) * speed;
    now = horizon;
    if (run.remaining.is_zero()) {
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best_pos));
    } else if (run.deadline <= now) {
      return false;
    }
  }
}

std::optional<std::vector<Slot>> edf_schedule_single_machine(
    std::vector<LabeledCommitment> commitments, const Rat& start,
    const Rat& speed) {
  for (auto& c : commitments) {
    if (c.available_from < start) c.available_from = start;
    if (c.remaining.is_negative()) return std::nullopt;
  }
  std::erase_if(commitments,
                [](const LabeledCommitment& c) { return c.remaining.is_zero(); });
  std::sort(commitments.begin(), commitments.end(),
            [](const LabeledCommitment& a, const LabeledCommitment& b) {
              return a.available_from < b.available_from;
            });

  std::vector<Slot> slots;
  Rat now = start;
  std::size_t next_release = 0;
  std::vector<std::size_t> ready;
  while (true) {
    while (next_release < commitments.size() &&
           commitments[next_release].available_from <= now) {
      ready.push_back(next_release);
      ++next_release;
    }
    if (ready.empty()) {
      if (next_release == commitments.size()) return slots;
      now = commitments[next_release].available_from;
      continue;
    }
    std::size_t best = ready[0];
    std::size_t best_pos = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (commitments[ready[i]].deadline < commitments[best].deadline) {
        best = ready[i];
        best_pos = i;
      }
    }
    LabeledCommitment& run = commitments[best];
    Rat finish = now + run.remaining / speed;
    Rat horizon =
        next_release < commitments.size()
            ? Rat::min(finish, commitments[next_release].available_from)
            : finish;
    if (run.deadline < horizon) return std::nullopt;
    if (horizon > now) slots.push_back({now, horizon, run.job});
    run.remaining -= (horizon - now) * speed;
    now = horizon;
    if (run.remaining.is_zero()) {
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best_pos));
    } else if (run.deadline <= now) {
      return std::nullopt;
    }
  }
}

}  // namespace minmach
