// Earliest Deadline First on a budget of m' machines (migratory).
//
// The classic baseline from Phillips et al.: at any time, run the m'
// released unfinished jobs with the smallest deadlines. Theorem 13 (quoted
// from [4]) shows EDF is feasible on m/(1-alpha)^2 machines when every job
// is alpha-loose; experiment E11 reproduces that bound and E12 the Omega(Delta)
// failure mode on tight instances.
#pragma once

#include <cstddef>
#include <string>

#include "minmach/sim/engine.hpp"

namespace minmach {

class EdfPolicy : public OnlinePolicy {
 public:
  explicit EdfPolicy(std::size_t machine_budget)
      : machine_budget_(machine_budget) {}

  void on_release(Simulator& sim, JobId job) override;
  void dispatch(Simulator& sim) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t machine_budget_;
};

}  // namespace minmach
