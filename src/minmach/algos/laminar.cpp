#include "minmach/algos/laminar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "minmach/algos/loose.hpp"
#include "minmach/core/transforms.hpp"
#include "minmach/sim/engine.hpp"

namespace minmach {

// ---------------------------------------------------------------- assigner

LaminarAssigner::LaminarAssigner(std::size_t budget)
    : budget_(budget), history_(budget) {
  if (budget == 0)
    throw std::invalid_argument("LaminarAssigner: budget must be positive");
}

bool LaminarAssigner::dominates(const Job& outer, JobId outer_id,
                                const Job& inner, JobId inner_id) {
  return outer_id < inner_id && outer.release <= inner.release &&
         inner.deadline <= outer.deadline;
}

std::optional<std::size_t> LaminarAssigner::try_assign(const Simulator& sim,
                                                       JobId job) {
  const Job& j = sim.job(job);

  // The currently responsible job on each machine: the innermost job of the
  // assignment history whose window intersects I(j). By laminarity and the
  // canonical release order, all intersecting earlier jobs dominate j and
  // are chain-ordered, so "innermost" is well-defined.
  struct Candidate {
    JobId id;
    std::size_t machine;
  };
  std::vector<Candidate> candidates;
  for (std::size_t m = 0; m < budget_; ++m) {
    JobId responsible = kInvalidJob;
    for (JobId other : history_[m]) {
      const Job& o = sim.job(other);
      if (intersect(o.window(), j.window()).empty()) continue;
      if (responsible == kInvalidJob ||
          dominates(sim.job(responsible), responsible, o, other))
        responsible = other;
    }
    if (responsible == kInvalidJob) {
      // A machine with no conflicting job: take it.
      history_[m].push_back(job);
      return m;
    }
    candidates.push_back({responsible, m});
  }

  // Chain order c_1 < c_2 < ... : innermost window first; equal windows are
  // ordered with the dominated (larger-index) job first.
  std::sort(candidates.begin(), candidates.end(),
            [&](const Candidate& a, const Candidate& b) {
              const Job& ja = sim.job(a.id);
              const Job& jb = sim.job(b.id);
              if (ja.release != jb.release) return ja.release > jb.release;
              if (ja.deadline != jb.deadline) return ja.deadline < jb.deadline;
              return a.id > b.id;
            });

  const Rat price = j.window_length();  // the scheme charges |I(j)|, not p_j
  const Rat budget_unit(static_cast<std::int64_t>(budget_));
  std::vector<JobId> chain;
  chain.reserve(candidates.size());
  for (const Candidate& c : candidates) chain.push_back(c.id);

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const JobId c = candidates[i].id;
    auto& charges = charged_[c];
    if (charges.empty()) charges.assign(budget_, Rat(0));
    const Rat sub_budget = sim.job(c).laxity() / budget_unit;
    if (sub_budget - charges[i] >= price) {
      charges[i] += price;
      auto& user_lists = users_[c];
      if (user_lists.empty()) user_lists.resize(budget_);
      user_lists[i].push_back(job);
      chain_of_[job] = std::move(chain);
      history_[candidates[i].machine].push_back(job);
      return candidates[i].machine;
    }
  }

  // Theorem 9 failure: extract the §5.2 witness set.
  build_witness(sim, job, chain);
  return std::nullopt;
}

void LaminarAssigner::build_witness(const Simulator& sim, JobId failing,
                                    const std::vector<JobId>& failing_chain) {
  // The downward construction of §5.2: G starts as {j*}; level i takes the
  // <-maximal i-th candidates of G's members (all of whom were rejected by
  // an i-th budget) as F_i and folds those candidates' i-th users back into
  // G. F_0 is the set of maximal members of the final G, and T the union of
  // their windows (= union of all of G's windows).
  auto chain_of = [&](JobId id) -> const std::vector<JobId>& {
    if (id == failing) return failing_chain;
    return chain_of_.at(id);
  };
  auto maximal = [&](std::vector<JobId> ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    std::vector<JobId> out;
    for (JobId a : ids) {
      bool is_dominated = false;
      for (JobId b : ids) {
        if (b != a && dominates(sim.job(b), b, sim.job(a), a)) {
          is_dominated = true;
          break;
        }
      }
      if (!is_dominated) out.push_back(a);
    }
    return out;
  };

  std::vector<JobId> group{failing};
  std::vector<std::vector<JobId>> level_ids(budget_ + 1);
  std::vector<bool> in_group(sim.job_count(), false);
  in_group[failing] = true;

  for (std::size_t i = budget_; i-- > 0;) {
    std::vector<JobId> level_candidates;
    for (JobId id : group) {
      const auto& chain = chain_of(id);
      if (i < chain.size()) level_candidates.push_back(chain[i]);
    }
    level_ids[i + 1] = maximal(std::move(level_candidates));
    for (JobId f : level_ids[i + 1]) {
      auto it = users_.find(f);
      if (it == users_.end() || i >= it->second.size()) continue;
      for (JobId user : it->second[i]) {
        if (!in_group[user]) {
          in_group[user] = true;
          group.push_back(user);
        }
      }
    }
  }
  level_ids[0] = maximal(group);

  // Lemma 6 (ii): levels are pairwise disjoint; enforce it defensively so
  // the measured coverage counts distinct jobs.
  std::vector<bool> seen(sim.job_count(), false);
  WitnessSet witness;
  witness.levels.resize(level_ids.size());
  for (std::size_t level = level_ids.size(); level-- > 0;) {
    for (JobId id : level_ids[level]) {
      if (seen[id]) continue;
      seen[id] = true;
      witness.levels[level].push_back(sim.job(id));
    }
  }
  for (JobId id : group) witness.T.add(sim.job(id).window());
  witness_ = std::move(witness);
}

// ------------------------------------------------------ fixed-budget policy

LaminarPolicy::LaminarPolicy(std::size_t machine_budget)
    : machine_budget_(machine_budget), assigner_(machine_budget) {}

std::size_t LaminarPolicy::choose_machine(Simulator& sim, JobId job) {
  if (auto machine = assigner_.try_assign(sim, job)) return *machine;
  // Theorem 9: unreachable once machine_budget_ = O(m log m). Keep the
  // first witness and overflow so the run still completes.
  if (!witness_) witness_ = assigner_.witness();
  ++failures_;
  return machine_budget_ + overflow_next_++;
}

std::string LaminarPolicy::name() const {
  return "Laminar(" + std::to_string(machine_budget_) + ")";
}

// ---------------------------------------------------------- critical pairs

CriticalPairStats evaluate_critical_pair(const WitnessSet& witness) {
  CriticalPairStats stats;
  std::vector<Job> all;
  for (const auto& level : witness.levels)
    all.insert(all.end(), level.begin(), level.end());
  if (all.empty() || witness.T.empty()) return stats;

  // Coverage: sweep the elementary segments of T cut at all window
  // endpoints; a window covers a whole segment iff it contains it.
  std::vector<Rat> points;
  for (const auto& piece : witness.T.pieces()) {
    points.push_back(piece.lo);
    points.push_back(piece.hi);
  }
  for (const Job& j : all) {
    points.push_back(j.release);
    points.push_back(j.deadline);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  bool first_segment = true;
  for (std::size_t k = 0; k + 1 < points.size(); ++k) {
    Interval segment{points[k], points[k + 1]};
    if (!witness.T.contains(segment.lo)) continue;  // segment outside T
    std::size_t covering = 0;
    for (const Job& j : all) {
      if (j.release <= segment.lo && segment.hi <= j.deadline) ++covering;
    }
    if (first_segment || covering < stats.coverage) stats.coverage = covering;
    first_segment = false;
  }

  // beta: min over witness jobs of |T cap I(j)| / laxity.
  bool first_beta = true;
  for (const Job& j : all) {
    Rat laxity = j.laxity();
    if (!laxity.is_positive()) continue;
    Rat ratio = witness.T.intersect(j.window()).length() / laxity;
    if (first_beta || ratio < stats.beta) stats.beta = ratio;
    first_beta = false;
  }
  return stats;
}

// ------------------------------------------------------- adaptive doubling

AdaptiveLaminarPolicy::AdaptiveLaminarPolicy(double budget_factor)
    : budget_factor_(budget_factor) {
  if (budget_factor <= 0)
    throw std::invalid_argument(
        "AdaptiveLaminarPolicy: factor must be positive");
  open_block();
}

std::size_t AdaptiveLaminarPolicy::budget_for(std::int64_t guess) const {
  double budget = budget_factor_ * static_cast<double>(guess) *
                  std::log2(static_cast<double>(guess) + 2.0);
  return static_cast<std::size_t>(budget) + 1;
}

void AdaptiveLaminarPolicy::open_block() {
  std::size_t budget = budget_for(guess_);
  blocks_.push_back({next_offset_, LaminarAssigner(budget)});
  next_offset_ += budget;
}

std::size_t AdaptiveLaminarPolicy::choose_machine(Simulator& sim, JobId job) {
  while (true) {
    Block& block = blocks_.back();
    if (auto machine = block.assigner.try_assign(sim, job))
      return block.offset + *machine;
    // Failure witnesses (Definition 1 / Theorem 10) that the optimum
    // exceeds the guess: double and open a fresh block. Earlier jobs stay
    // where they are; the new block starts with an empty history, so the
    // retry can only fail if the new budget fails too (impossible after
    // finitely many doublings, as the block is initially conflict-free).
    guess_ *= 2;
    open_block();
  }
}

std::string AdaptiveLaminarPolicy::name() const {
  return "AdaptiveLaminar(factor=" + std::to_string(budget_factor_) + ")";
}

// ----------------------------------------------------------- greedy ablation

GreedyLaminarPolicy::GreedyLaminarPolicy(std::size_t machine_budget)
    : machine_budget_(machine_budget), history_(machine_budget) {
  if (machine_budget == 0)
    throw std::invalid_argument("GreedyLaminarPolicy: budget must be positive");
}

std::size_t GreedyLaminarPolicy::choose_machine(Simulator& sim, JobId job) {
  const Job& j = sim.job(job);
  struct Candidate {
    JobId id;
    std::size_t machine;
  };
  auto dominates = [&](JobId outer, JobId inner) {
    return outer < inner &&
           sim.job(outer).release <= sim.job(inner).release &&
           sim.job(inner).deadline <= sim.job(outer).deadline;
  };
  std::vector<Candidate> candidates;
  for (std::size_t m = 0; m < machine_budget_; ++m) {
    JobId responsible = kInvalidJob;
    for (JobId other : history_[m]) {
      const Job& o = sim.job(other);
      if (intersect(o.window(), j.window()).empty()) continue;
      if (responsible == kInvalidJob || dominates(responsible, other))
        responsible = other;
    }
    if (responsible == kInvalidJob) {
      history_[m].push_back(job);
      return m;
    }
    candidates.push_back({responsible, m});
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](const Candidate& a, const Candidate& b) {
              const Job& ja = sim.job(a.id);
              const Job& jb = sim.job(b.id);
              if (ja.release != jb.release) return ja.release > jb.release;
              if (ja.deadline != jb.deadline) return ja.deadline < jb.deadline;
              return a.id > b.id;
            });

  // The "necessary criterion" only: the candidate's FULL laxity must cover
  // every window already assigned to its machine inside I(c), plus |I(j)|.
  for (const Candidate& candidate : candidates) {
    const Job& c = sim.job(candidate.id);
    Rat used(0);
    for (JobId other : history_[candidate.machine]) {
      const Job& o = sim.job(other);
      if (c.release <= o.release && o.deadline <= c.deadline &&
          other != candidate.id)
        used += o.window_length();
    }
    if (c.laxity() - used >= j.window_length()) {
      history_[candidate.machine].push_back(job);
      return candidate.machine;
    }
  }
  ++failures_;
  return machine_budget_ + overflow_next_++;
}

std::string GreedyLaminarPolicy::name() const {
  return "GreedyLaminar(" + std::to_string(machine_budget_) + ")";
}

// ------------------------------------------------------------ full driver

LaminarRun schedule_laminar(const Instance& instance,
                            std::size_t machine_budget, const Rat& alpha,
                            const Rat& s) {
  if (!instance.is_laminar())
    throw std::invalid_argument("schedule_laminar: instance is not laminar");
  if (!(alpha * s < Rat(1)))
    throw std::invalid_argument("schedule_laminar: requires alpha*s < 1");

  Split split = split_by_looseness(instance, alpha);

  LaminarRun out;

  // Tight pool.
  Schedule merged;
  if (!split.tight.empty()) {
    // §5 assumes the canonical index order (release ascending, deadline
    // descending on ties); sort while tracking the original ids.
    Instance tight;
    std::vector<JobId> tight_ids = split.tight_ids;
    {
      std::vector<std::size_t> order(split.tight.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         const Job& ja = split.tight.job(static_cast<JobId>(a));
                         const Job& jb = split.tight.job(static_cast<JobId>(b));
                         if (ja.release != jb.release)
                           return ja.release < jb.release;
                         return ja.deadline > jb.deadline;
                       });
      std::vector<JobId> ids;
      for (std::size_t pos : order) {
        tight.add_job(split.tight.job(static_cast<JobId>(pos)));
        ids.push_back(split.tight_ids[pos]);
      }
      tight_ids = std::move(ids);
    }
    LaminarPolicy policy(machine_budget);
    SimRun run = simulate(policy, tight, Rat(1), /*require_no_miss=*/true);
    out.machines_tight = run.machines_used;
    out.assignment_failures = policy.assignment_failures();
    run.schedule.remap_jobs(tight_ids);
    merged.append_machines(run.schedule);
  }

  // Loose pool.
  if (!split.loose.empty()) {
    LooseRun loose = schedule_loose_jobs(split.loose, alpha, s);
    out.machines_loose = loose.machines_used;
    loose.schedule.remap_jobs(split.loose_ids);
    merged.append_machines(loose.schedule);
  }

  merged.canonicalize();
  out.machines_total = merged.used_machine_count();
  out.schedule = std::move(merged);
  return out;
}

}  // namespace minmach
