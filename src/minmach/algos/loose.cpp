#include "minmach/algos/loose.hpp"

#include <stdexcept>

#include "minmach/algos/nonmig.hpp"
#include "minmach/core/transforms.hpp"
#include "minmach/sim/engine.hpp"

namespace minmach {

LooseRun schedule_loose_jobs(const Instance& instance, const Rat& alpha,
                             const Rat& s) {
  if (!(alpha * s < Rat(1)))
    throw std::invalid_argument("schedule_loose_jobs: requires alpha*s < 1");
  if (!instance.all_loose(alpha))
    throw std::invalid_argument(
        "schedule_loose_jobs: instance contains a job that is not "
        "alpha-loose");

  // J -> J^s; windows unchanged, so release order and online information
  // are identical.
  Instance inflated = inflate(instance, s);

  // Speed-s black box (substitute for Chan--Lam--To, cf. header comment).
  FitPolicy black_box(FitRule::kFirstFit);
  SimRun run = simulate(black_box, inflated, /*speed=*/s,
                        /*require_no_miss=*/true);

  // Replaying at unit speed: slot [t, t') that processed j^s at speed s
  // processes j for the same wall time; total wall time equals
  // (s p_j) / s = p_j, and all slots already lie inside I(j).
  LooseRun out;
  out.schedule = std::move(run.schedule);
  out.machines_used = run.machines_used;
  return out;
}

LooseRun schedule_loose_jobs(const Instance& instance, const Rat& alpha) {
  return schedule_loose_jobs(instance, alpha, Rat(2));
}

}  // namespace minmach
