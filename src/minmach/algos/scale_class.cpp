#include "minmach/algos/scale_class.hpp"

namespace minmach {

int ScaleClassPolicy::scale_class(const Rat& processing) {
  // floor(log2 p) via exact doubling/halving -- p is an arbitrary positive
  // rational, so neither to_double() nor bit tricks are reliable.
  int k = 0;
  Rat value = processing;
  while (value >= Rat(2)) {
    value /= Rat(2);
    ++k;
  }
  while (value < Rat(1)) {
    value *= Rat(2);
    --k;
  }
  return k;
}

ScaleClassPolicy::Placement ScaleClassPolicy::place(Simulator& sim,
                                                    JobId job) {
  const Job& j = sim.job(job);
  const Rat wall = j.processing / sim.speed();
  const Rat latest_start = j.deadline - wall;

  auto& pool = pools_[scale_class(j.processing)];
  std::size_t best_machine = 0;
  Rat best_start = j.release;
  bool found = false;
  for (std::size_t machine : pool) {
    Rat start = earliest_fit(machine, j.release, wall);
    if (start <= latest_start && (!found || start < best_start)) {
      best_machine = machine;
      best_start = start;
      found = true;
    }
  }
  if (found) return {best_machine, best_start};

  // Open a fresh machine for this class.
  std::size_t machine = next_machine_++;
  pool.push_back(machine);
  return {machine, j.release};
}

}  // namespace minmach
