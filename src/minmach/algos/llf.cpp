#include "minmach/algos/llf.hpp"

#include <algorithm>

namespace minmach {

Rat LlfPolicy::laxity(const Simulator& sim, JobId job) {
  return sim.job(job).deadline - sim.now() - sim.remaining(job);
}

void LlfPolicy::on_release(Simulator&, JobId) {}

void LlfPolicy::dispatch(Simulator& sim) {
  std::vector<JobId> active = sim.active_jobs();
  std::vector<std::pair<Rat, JobId>> ranked;
  ranked.reserve(active.size());
  for (JobId id : active) ranked.emplace_back(laxity(sim, id), id);
  std::sort(ranked.begin(), ranked.end(), [&](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    // Tie-break: waiting jobs beat running jobs (realizes the swap at a
    // laxity crossing), then smaller deadline, then id.
    bool a_running = false;
    bool b_running = false;
    for (std::size_t m = 0; m < sim.machine_slots(); ++m) {
      if (sim.running_on(m) == a.second) a_running = true;
      if (sim.running_on(m) == b.second) b_running = true;
    }
    if (a_running != b_running) return b_running;
    const Job& ja = sim.job(a.second);
    const Job& jb = sim.job(b.second);
    if (ja.deadline != jb.deadline) return ja.deadline < jb.deadline;
    return a.second < b.second;
  });
  if (ranked.size() > machine_budget_) ranked.resize(machine_budget_);

  std::vector<bool> selected_running(ranked.size(), false);
  std::vector<std::size_t> free_machines;
  for (std::size_t m = 0; m < machine_budget_; ++m) {
    JobId current = sim.running_on(m);
    bool keep = false;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i].second == current) {
        selected_running[i] = true;
        keep = true;
        break;
      }
    }
    if (!keep) {
      sim.set_running(m, kInvalidJob);
      free_machines.push_back(m);
    }
  }
  std::size_t next_free = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (selected_running[i]) continue;
    sim.set_running(free_machines[next_free++], ranked[i].second);
  }
}

std::optional<Rat> LlfPolicy::next_wakeup(const Simulator& sim) {
  // Earliest crossing of a waiting job's (falling) laxity with a running
  // job's (constant) laxity.
  bool any_waiting = false;
  std::optional<Rat> min_waiting;
  std::optional<Rat> max_running;
  for (JobId id : sim.active_jobs()) {
    bool running = false;
    for (std::size_t m = 0; m < sim.machine_slots(); ++m)
      if (sim.running_on(m) == id) running = true;
    Rat lax = laxity(sim, id);
    if (running) {
      if (!max_running || *max_running < lax) max_running = lax;
    } else {
      any_waiting = true;
      if (!min_waiting || lax < *min_waiting) min_waiting = lax;
    }
  }
  std::optional<Rat> wakeup;
  if (min_waiting && max_running) {
    Rat delta = *min_waiting - *max_running;
    if (delta.is_positive()) wakeup = sim.now() + delta;
  }
  if (quantum_.is_positive() && any_waiting) {
    Rat periodic = sim.now() + quantum_;
    if (!wakeup || periodic < *wakeup) wakeup = periodic;
  }
  return wakeup;
}

std::string LlfPolicy::name() const {
  return "LLF(" + std::to_string(machine_budget_) + ")";
}

}  // namespace minmach
