#include "minmach/gen/generators.hpp"

#include <algorithm>
#include <functional>

namespace minmach {

namespace {

// Random processing time on the grid with numerator in [lo_num, hi_num]
// (clamped to at least 1).
Rat grid_rat(Rng& rng, std::int64_t lo_num, std::int64_t hi_num,
             std::int64_t den) {
  if (lo_num < 1) lo_num = 1;
  if (hi_num < lo_num) hi_num = lo_num;
  return {rng.uniform_int(lo_num, hi_num), den};
}

// p uniform with numerator in (alpha * len_num, len_num] -- alpha-tight.
Rat tight_processing(Rng& rng, const Rat& window, const Rat& alpha,
                     std::int64_t den) {
  Rat len_num = window * Rat(den);  // integer by construction
  std::int64_t hi = len_num.floor().to_int64();
  Rat lo_rat = alpha * len_num;
  std::int64_t lo = lo_rat.floor().to_int64() + 1;  // strictly above alpha*len
  if (lo > hi) lo = hi;
  return {rng.uniform_int(lo, hi), den};
}

// p uniform with numerator in [1, alpha * len_num] -- alpha-loose.
Rat loose_processing(Rng& rng, const Rat& window, const Rat& alpha,
                     std::int64_t den) {
  Rat len_num = window * Rat(den);
  Rat hi_rat = alpha * len_num;
  std::int64_t hi = hi_rat.floor().to_int64();
  if (hi < 1) hi = 1;  // degenerate grids: may slightly exceed alpha
  return {rng.uniform_int(1, hi), den};
}

Job random_window_job(Rng& rng, const GenConfig& c) {
  Job j;
  j.release = grid_rat(rng, 0, c.horizon * c.denominator, c.denominator);
  Rat window = grid_rat(rng, c.denominator, c.max_window * c.denominator,
                        c.denominator);
  j.deadline = j.release + window;
  j.processing =
      grid_rat(rng, 1, (window * Rat(c.denominator)).floor().to_int64(),
               c.denominator);
  return j;
}

}  // namespace

Instance gen_general(Rng& rng, const GenConfig& c) {
  Instance out;
  for (std::size_t i = 0; i < c.n; ++i) out.add_job(random_window_job(rng, c));
  out.sort_canonical();
  return out;
}

Instance gen_agreeable(Rng& rng, const GenConfig& c) {
  // Sorted releases; deadlines forced monotone non-decreasing.
  std::vector<Rat> releases;
  releases.reserve(c.n);
  for (std::size_t i = 0; i < c.n; ++i)
    releases.push_back(
        grid_rat(rng, 0, c.horizon * c.denominator, c.denominator));
  std::sort(releases.begin(), releases.end());

  Instance out;
  Rat last_deadline(0);
  for (std::size_t i = 0; i < c.n; ++i) {
    Job j;
    j.release = releases[i];
    Rat window = grid_rat(rng, c.denominator, c.max_window * c.denominator,
                          c.denominator);
    j.deadline = Rat::max(j.release + window, last_deadline);
    last_deadline = j.deadline;
    Rat true_window = j.deadline - j.release;
    j.processing = grid_rat(
        rng, 1, (true_window * Rat(c.denominator)).floor().to_int64(),
        c.denominator);
    out.add_job(j);
  }
  return out;
}

Instance gen_laminar(Rng& rng, const GenConfig& c) {
  Instance out;
  // Single laminar tree over the integer grid (numerators of
  // 1/denominator): a breadth-first queue of intervals; each popped
  // interval spawns one job with exactly that window and is partitioned
  // into disjoint child intervals. One tree means every pair of windows is
  // nested or disjoint by construction.
  std::int64_t grid_horizon = c.horizon * c.denominator;
  std::vector<std::pair<std::int64_t, std::int64_t>> queue{{0, grid_horizon}};
  std::size_t head = 0;
  while (head < queue.size() && out.size() < c.n) {
    auto [lo, hi] = queue[head++];
    Job j;
    j.release = Rat(lo, c.denominator);
    j.deadline = Rat(hi, c.denominator);
    j.processing = Rat(rng.uniform_int(1, hi - lo), c.denominator);
    out.add_job(j);
    // Partition [lo, hi) into 2-3 disjoint children with random gaps.
    std::int64_t pieces = rng.uniform_int(2, 3);
    std::int64_t cursor = lo;
    for (std::int64_t piece = 0; piece < pieces && cursor < hi; ++piece) {
      std::int64_t remaining = hi - cursor;
      std::int64_t width =
          rng.uniform_int(1, std::max<std::int64_t>(1, remaining / pieces));
      if (cursor + width > hi) width = hi - cursor;
      if (width >= 2) queue.emplace_back(cursor, cursor + width);
      cursor += width + rng.uniform_int(0, 2);  // optional gap
    }
  }
  out.sort_canonical();
  return out;
}

Instance gen_loose(Rng& rng, const GenConfig& c, const Rat& alpha) {
  Instance out;
  for (std::size_t i = 0; i < c.n; ++i) {
    Job j = random_window_job(rng, c);
    j.processing = loose_processing(rng, j.window_length(), alpha,
                                    c.denominator);
    out.add_job(j);
  }
  out.sort_canonical();
  return out;
}

Instance gen_tight(Rng& rng, const GenConfig& c, const Rat& alpha) {
  Instance out;
  for (std::size_t i = 0; i < c.n; ++i) {
    Job j = random_window_job(rng, c);
    j.processing = tight_processing(rng, j.window_length(), alpha,
                                    c.denominator);
    out.add_job(j);
  }
  out.sort_canonical();
  return out;
}

Instance gen_agreeable_tight(Rng& rng, const GenConfig& c, const Rat& alpha) {
  Instance base = gen_agreeable(rng, c);
  Instance out;
  for (const Job& j : base.jobs()) {
    Job t = j;
    t.processing = tight_processing(rng, j.window_length(), alpha,
                                    c.denominator);
    out.add_job(t);
  }
  return out;
}

Instance gen_laminar_tight(Rng& rng, const GenConfig& c, const Rat& alpha) {
  Instance base = gen_laminar(rng, c);
  Instance out;
  for (const Job& j : base.jobs()) {
    Job t = j;
    t.processing = tight_processing(rng, j.window_length(), alpha,
                                    c.denominator);
    out.add_job(t);
  }
  out.sort_canonical();
  return out;
}

Instance gen_unit(Rng& rng, const GenConfig& c) {
  Instance out;
  for (std::size_t i = 0; i < c.n; ++i) {
    Job j;
    j.release = Rat(rng.uniform_int(0, c.horizon));
    j.deadline = j.release + Rat(rng.uniform_int(1, c.max_window));
    j.processing = Rat(1);
    out.add_job(j);
  }
  out.sort_canonical();
  return out;
}

}  // namespace minmach
