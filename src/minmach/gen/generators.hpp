// Seeded random instance families for the test and benchmark harnesses:
// general, agreeable (sorted windows), laminar (nested windows), all-loose,
// all-tight, and unit-processing-time jobs. All times land on the integer
// grid 1/denominator so flow certification stays fast; everything is
// reproducible from the seed.
#pragma once

#include <cstdint>

#include "minmach/core/instance.hpp"
#include "minmach/util/rng.hpp"

namespace minmach {

struct GenConfig {
  std::size_t n = 50;            // number of jobs (laminar: approximate)
  std::int64_t horizon = 200;    // releases fall in [0, horizon)
  std::int64_t max_window = 40;  // window lengths in [1, max_window]
  std::int64_t denominator = 4;  // time grid granularity
};

// Unconstrained windows; processing a uniform fraction of the window.
[[nodiscard]] Instance gen_general(Rng& rng, const GenConfig& config);

// Agreeable: r_i sorted ascending with deadlines forced monotone.
[[nodiscard]] Instance gen_agreeable(Rng& rng, const GenConfig& config);

// Laminar: recursive nesting; every pair of intersecting windows is nested.
[[nodiscard]] Instance gen_laminar(Rng& rng, const GenConfig& config);

// All jobs alpha-loose: p_j <= alpha * (d_j - r_j) (strictly positive).
[[nodiscard]] Instance gen_loose(Rng& rng, const GenConfig& config,
                                 const Rat& alpha);

// All jobs alpha-tight: p_j > alpha * (d_j - r_j).
[[nodiscard]] Instance gen_tight(Rng& rng, const GenConfig& config,
                                 const Rat& alpha);

// Agreeable + alpha-tight (the Lemma 8 regime).
[[nodiscard]] Instance gen_agreeable_tight(Rng& rng, const GenConfig& config,
                                           const Rat& alpha);

// Laminar + alpha-tight (the Theorem 9 regime).
[[nodiscard]] Instance gen_laminar_tight(Rng& rng, const GenConfig& config,
                                         const Rat& alpha);

// Unit processing times, integer releases, window lengths in
// [1, max_window].
[[nodiscard]] Instance gen_unit(Rng& rng, const GenConfig& config);

}  // namespace minmach
