#include "minmach/util/interval_set.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace minmach {

Interval intersect(const Interval& a, const Interval& b) {
  return {Rat::max(a.lo, b.lo), Rat::min(a.hi, b.hi)};
}

IntervalSet::IntervalSet(std::vector<Interval> ivs) {
  pieces_ = std::move(ivs);
  normalize();
}

void IntervalSet::normalize() {
  std::erase_if(pieces_, [](const Interval& iv) { return iv.empty(); });
  std::sort(pieces_.begin(), pieces_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  for (auto& iv : pieces_) {
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = Rat::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  pieces_ = std::move(merged);
}

void IntervalSet::add(const Interval& iv) {
  if (iv.empty()) return;
  pieces_.push_back(iv);
  normalize();
}

void IntervalSet::add(const IntervalSet& other) {
  pieces_.insert(pieces_.end(), other.pieces_.begin(), other.pieces_.end());
  normalize();
}

Rat IntervalSet::length() const {
  Rat total(0);
  for (const auto& iv : pieces_) total += iv.length();
  return total;
}

bool IntervalSet::contains(const Rat& t) const {
  for (const auto& iv : pieces_) {
    if (iv.contains(t)) return true;
    if (t < iv.lo) break;
  }
  return false;
}

IntervalSet IntervalSet::intersect(const Interval& iv) const {
  IntervalSet out;
  for (const auto& piece : pieces_) {
    Interval cut = minmach::intersect(piece, iv);
    if (!cut.empty()) out.pieces_.push_back(cut);
  }
  return out;  // pieces stay sorted/disjoint; no normalize needed
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet out;
  for (const auto& piece : other.pieces_) out.add(intersect(piece));
  return out;
}

const Rat& IntervalSet::min() const {
  if (pieces_.empty()) throw std::logic_error("IntervalSet::min on empty set");
  return pieces_.front().lo;
}

const Rat& IntervalSet::max() const {
  if (pieces_.empty()) throw std::logic_error("IntervalSet::max on empty set");
  return pieces_.back().hi;
}

std::string IntervalSet::to_string() const {
  std::string out;
  for (const auto& iv : pieces_) {
    if (!out.empty()) out += " u ";
    out += "[" + iv.lo.to_string() + "," + iv.hi.to_string() + ")";
  }
  return out.empty() ? "{}" : out;
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  return os << set.to_string();
}

}  // namespace minmach
