// Process-wide cache of exact feasibility verdicts and OPT values, keyed by
// the affine-canonical instance fingerprint (core/canonical.hpp). This is
// the storage half of the query engine (DESIGN.md §11): FeasibilityOracle
// consults it per probe, optimal_machines() and flow/query.hpp consult it
// per search.
//
// Design:
//  * Sharded: 16 shards, each guarded by its own mutex (striped locking);
//    the shard index comes from the high bits of the slot hash, so
//    concurrent probes of different instances almost never contend.
//  * Set-associative with cheap eviction: each shard is a flat array of
//    entries grouped into kWays-entry sets. A lookup scans one set (four
//    probes, one cache line-ish); an insert overwrites round-robin within
//    its set when full. No allocation happens after configure(), no global
//    LRU bookkeeping -- eviction cost is O(1) and bounded-size is
//    structural.
//  * Exact and order-independent: entries store exact verdicts keyed by
//    (fingerprint, m) and exact OPT values keyed by fingerprint (stored as
//    m = kOptQuery). Any interleaving of lookups and inserts returns either
//    "miss" or the one true value, so cached runs compute byte-identical
//    results at any thread count, with the cache on or off.
//
// Tallies (exec-class, see obs/metrics.hpp): cache.hits, cache.misses,
// cache.inserts, cache.evictions.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "minmach/util/hash.hpp"

namespace minmach::util {

// Second-tier backing store the in-RAM cache falls through to (DESIGN.md
// §16): a RAM miss consults load() and backfills the RAM set on a hit; a
// RAM insert that changed a value forwards to store(). Keys are the raw
// (fingerprint, machine-key) pairs of the entry table, so verdicts, OPT
// values, and packed bounds all persist through one interface. The concrete
// implementation lives in store/pcache.hpp; this interface exists so util/
// never depends on the persistence layer. Implementations must be safe to
// call from concurrent lookups.
class CacheStore {
 public:
  virtual ~CacheStore() = default;
  [[nodiscard]] virtual std::optional<std::int64_t> load(
      const Digest128& fp, std::int64_t key) = 0;
  virtual void store(const Digest128& fp, std::int64_t key,
                     std::int64_t value) = 0;
};

class OptCache {
 public:
  // The process-wide instance every oracle consults. Disabled until
  // configure(true, ...) runs (so library users and the A/B benches see
  // uncached behaviour by default).
  static OptCache& global();

  // Enables/disables the cache and (re)sizes it to hold about `capacity`
  // entries (rounded to the shard x way geometry, minimum one set per
  // shard). Always clears. Not thread-safe against concurrent lookups;
  // call it from the driver setup path, like Registry::reset().
  void configure(bool enabled, std::size_t capacity);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Drops every entry, keeping geometry and enabled state.
  void clear();

  // Entries currently resident (sums shard occupancy under the stripe
  // locks; intended for tests and reporting, not hot paths).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;

  // Feasibility verdicts keyed by (fingerprint, machines).
  [[nodiscard]] std::optional<bool> lookup_feasible(const Digest128& fp,
                                                    std::int64_t machines);
  void insert_feasible(const Digest128& fp, std::int64_t machines,
                       bool feasible);

  // Exact OPT values keyed by fingerprint alone.
  [[nodiscard]] std::optional<std::int64_t> lookup_opt(const Digest128& fp);
  void insert_opt(const Digest128& fp, std::int64_t machines);

  // Certified OPT brackets lo <= OPT <= hi from the bound tier
  // (core/bounds.hpp), keyed by fingerprint alone. Every producer's bracket
  // is certified, so a lookup can only narrow a caller's own sandwich --
  // never change a verdict -- and inserts may overwrite with a tighter
  // bracket. Brackets with lo < 0 or hi above 2^31 - 1 are not stored (the
  // two halves share one packed value slot).
  [[nodiscard]] std::optional<std::pair<std::int64_t, std::int64_t>>
  lookup_bounds(const Digest128& fp);
  void insert_bounds(const Digest128& fp, std::int64_t lo, std::int64_t hi);

  // Attaches (or, with nullptr, detaches) the persistent second tier. The
  // pointer is borrowed: the caller keeps the store alive while attached
  // and must detach before destroying it. Like configure(), intended for
  // driver setup paths, though the hot paths read it with one relaxed load.
  void attach_store(CacheStore* store) {
    store_.store(store, std::memory_order_release);
  }
  [[nodiscard]] CacheStore* attached_store() const {
    return store_.load(std::memory_order_acquire);
  }

 private:
  // OPT and bracket entries share the table with verdicts under reserved
  // machine keys (no valid feasibility query has machines < 0).
  static constexpr std::int64_t kOptQuery = -1;
  static constexpr std::int64_t kBoundsQuery = -2;
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kWays = 4;

  struct Entry {
    Digest128 fp;
    std::int64_t machines = 0;
    std::int64_t value = 0;
    bool used = false;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Entry> entries;  // sets_ * kWays slots
    std::size_t victim = 0;      // round-robin eviction cursor
  };

  [[nodiscard]] std::optional<std::int64_t> lookup(const Digest128& fp,
                                                   std::int64_t machines);
  void insert(const Digest128& fp, std::int64_t machines, std::int64_t value);
  // RAM-only insert (no store forwarding); returns whether the write
  // changed anything (false on an identical refresh). Used both by insert()
  // and by lookup()'s disk-hit backfill, which must not echo the entry
  // back to the store it came from.
  bool insert_local(const Digest128& fp, std::int64_t machines,
                    std::int64_t value);

  std::atomic<bool> enabled_{false};
  std::atomic<CacheStore*> store_{nullptr};
  std::size_t sets_ = 0;  // per shard
  std::array<Shard, kShards> shards_;
};

}  // namespace minmach::util
