// Tiny --key=value flag parser for the bench/example binaries. Unknown flags
// throw, so typos in experiment sweeps fail loudly rather than silently
// running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace minmach {

class Cli {
 public:
  Cli(int argc, char** argv);

  // Each getter registers the key as known; after all getters ran, call
  // check_unknown() to reject unrecognized flags.
  std::int64_t get_int(const std::string& key, std::int64_t default_value);
  double get_double(const std::string& key, double default_value);
  std::string get_string(const std::string& key, std::string default_value);
  bool get_bool(const std::string& key, bool default_value);

  // True iff the flag appeared on the command line (regardless of whether a
  // getter consumed it). Lets callers distinguish an explicit value that
  // happens to equal the default from the flag being absent.
  [[nodiscard]] bool was_given(const std::string& key) const;

  void check_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> seen_;
};

}  // namespace minmach
