// AVX2 implementations of the util/simd.hpp kernels. This translation unit
// is compiled with -mavx2 (see src/CMakeLists.txt) and excluded entirely
// under MINMACH_SIMD=scalar; callers reach it only through the dispatch
// wrappers in simd.cpp, which check util::simd::supported() (cpuid) first,
// so no AVX2 instruction can execute on a CPU without the feature.
#include "minmach/util/simd.hpp"

#if MINMACH_SIMD_COMPILE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

namespace minmach::util::simd::detail {

namespace {

// Horizontal min/max of a 4-lane int64 vector via two fold steps.
inline std::int64_t hmin_epi64(__m256i v) {
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return std::min(std::min(lanes[0], lanes[1]), std::min(lanes[2], lanes[3]));
}

inline std::int64_t hmax_epi64(__m256i v) {
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
}

inline __m256i min_epi64(__m256i a, __m256i b) {
  // AVX2 has no pminsq; blend on the 64-bit compare mask instead.
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

inline __m256i max_epi64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

}  // namespace

std::uint64_t minmax_i64_avx2(const std::int64_t* v, std::size_t n,
                              std::int64_t* min_out, std::int64_t* max_out) {
  std::int64_t mn = v[0], mx = v[0];
  std::size_t i = 0;
  std::uint64_t lanes = 0;
  if (n >= 4) {
    __m256i vmn = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
    __m256i vmx = vmn;
    for (i = 4; i + 4 <= n; i += 4) {
      __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
      vmn = min_epi64(vmn, x);
      vmx = max_epi64(vmx, x);
    }
    mn = hmin_epi64(vmn);
    mx = hmax_epi64(vmx);
    lanes = i;
  }
  for (; i < n; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
  }
  *min_out = mn;
  *max_out = mx;
  return lanes;
}

std::uint64_t sum_i64_avx2(const std::int64_t* v, std::size_t n,
                           std::int64_t* out) {
  // Caller (simd.cpp) guarantees n * max|v| < 2^62, so neither the lane
  // accumulators nor the final horizontal sum can wrap.
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  const std::uint64_t vector_lanes = i;
  for (; i < n; ++i) total += v[i];
  *out = total;
  return vector_lanes;
}

std::uint64_t rat31_less_avx2(const std::int64_t* an, const std::int64_t* ad,
                              const std::int64_t* bn, const std::int64_t* bd,
                              std::size_t n, unsigned char* out) {
  // |values| < 2^31 and dens > 0, so each 64-bit lane holds its value in
  // the low 32 bits (two's complement) and _mm256_mul_epi32 -- a signed
  // 32x32->64 multiply of the low dwords -- computes the cross-products
  // exactly.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i van = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(an + i));
    __m256i vad = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ad + i));
    __m256i vbn = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bn + i));
    __m256i vbd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bd + i));
    __m256i lhs = _mm256_mul_epi32(van, vbd);
    __m256i rhs = _mm256_mul_epi32(vbn, vad);
    __m256i lt = _mm256_cmpgt_epi64(rhs, lhs);  // lhs < rhs
    int mask = _mm256_movemask_pd(_mm256_castsi256_pd(lt));
    out[i + 0] = static_cast<unsigned char>(mask & 1);
    out[i + 1] = static_cast<unsigned char>((mask >> 1) & 1);
    out[i + 2] = static_cast<unsigned char>((mask >> 2) & 1);
    out[i + 3] = static_cast<unsigned char>((mask >> 3) & 1);
  }
  const std::uint64_t vector_lanes = i;
  for (; i < n; ++i)
    out[i] = static_cast<unsigned char>(an[i] * bd[i] < bn[i] * ad[i]);
  return vector_lanes;
}

}  // namespace minmach::util::simd::detail

#endif  // MINMACH_SIMD_COMPILE_AVX2
