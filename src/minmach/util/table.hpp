// Minimal fixed-width table printer for the experiment drivers. Each bench
// binary prints the paper-shaped table ("paper bound" vs "measured") through
// this so all experiment output is uniform and grep-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace minmach {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 3);

  void print(std::ostream& os) const;

  // Raw cells, so run reports can embed the table structurally.
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace minmach
