#include "minmach/util/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "minmach/obs/metrics.hpp"
#include "minmach/util/arena.hpp"

namespace minmach {

namespace {

using Limb = std::uint64_t;
using WideLimb = unsigned __int128;

constexpr WideLimb kLimbBase = static_cast<WideLimb>(1) << 64;

std::uint64_t magnitude_of(std::int64_t value) {
  // Negate in unsigned space so INT64_MIN does not overflow.
  return value < 0 ? ~static_cast<std::uint64_t>(value) + 1
                   : static_cast<std::uint64_t>(value);
}

std::size_t trim_mag(const Limb* mag, std::size_t n) {
  while (n > 0 && mag[n - 1] == 0) --n;
  return n;
}

int compare_mag(const Limb* a, std::size_t na, const Limb* b, std::size_t nb) {
  if (na != nb) return na < nb ? -1 : 1;
  for (std::size_t i = na; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// All magnitude kernels write into caller-provided scratch (arena memory)
// and return the trimmed limb count; none of them allocates.

// `out` must hold max(na, nb) + 1 limbs.
std::size_t add_mag(const Limb* a, std::size_t na, const Limb* b,
                    std::size_t nb, Limb* out) {
  if (na < nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  unsigned carry = 0;
  for (std::size_t i = 0; i < na; ++i) {
    Limb sum;
    unsigned c1 = __builtin_add_overflow(a[i], i < nb ? b[i] : 0, &sum);
    unsigned c2 = __builtin_add_overflow(sum, static_cast<Limb>(carry), &sum);
    carry = c1 | c2;
    out[i] = sum;
  }
  if (carry != 0) {
    out[na] = 1;
    return na + 1;
  }
  return na;
}

// Requires |a| >= |b|; `out` must hold na limbs.
std::size_t sub_mag(const Limb* a, std::size_t na, const Limb* b,
                    std::size_t nb, Limb* out) {
  unsigned borrow = 0;
  for (std::size_t i = 0; i < na; ++i) {
    Limb diff;
    unsigned b1 = __builtin_sub_overflow(a[i], i < nb ? b[i] : 0, &diff);
    unsigned b2 = __builtin_sub_overflow(diff, static_cast<Limb>(borrow),
                                         &diff);
    borrow = b1 | b2;
    out[i] = diff;
  }
  return trim_mag(out, na);
}

// `out` must hold na + nb limbs (zeroed here).
std::size_t mul_mag(const Limb* a, std::size_t na, const Limb* b,
                    std::size_t nb, Limb* out) {
  if (na == 0 || nb == 0) return 0;
  std::fill(out, out + na + nb, 0);
  for (std::size_t i = 0; i < na; ++i) {
    if (a[i] == 0) continue;
    Limb carry = 0;
    for (std::size_t j = 0; j < nb; ++j) {
      WideLimb cur = static_cast<WideLimb>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
    }
    std::size_t k = i + nb;
    while (carry != 0) {
      WideLimb cur = static_cast<WideLimb>(out[k]) + carry;
      out[k] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
      ++k;
    }
  }
  return trim_mag(out, na + nb);
}

// Writes n + 1 limbs to `out`: the input shifted left by s bits (s < 64).
void shift_left_mag(const Limb* p, std::size_t n, int s, Limb* out) {
  if (s == 0) {
    std::copy(p, p + n, out);
    out[n] = 0;
    return;
  }
  out[0] = p[0] << s;
  for (std::size_t i = 1; i < n; ++i)
    out[i] = (p[i] << s) | (p[i - 1] >> (64 - s));
  out[n] = p[n - 1] >> (64 - s);
}

struct MagSpan {
  const Limb* data = nullptr;
  std::size_t size = 0;
};

// Knuth TAOCP vol. 2 algorithm D, base 2^64. Quotient, remainder, and the
// normalization scratch all live in `scope`; the spans stay valid until the
// caller's scope closes.
void div_mod_mag(const Limb* dividend, std::size_t nd, const Limb* divisor,
                 std::size_t nv, minmach::util::ArenaScope& scope,
                 MagSpan& quotient, MagSpan& remainder) {
  if (nv == 0) throw std::domain_error("BigInt: division by zero");
  if (nd == 0) return;  // 0 / x

  // Fast path: single-limb divisor.
  if (nv == 1) {
    Limb d = divisor[0];
    Limb* q = scope.alloc<Limb>(nd);
    Limb rem = 0;
    for (std::size_t i = nd; i-- > 0;) {
      WideLimb cur = (static_cast<WideLimb>(rem) << 64) | dividend[i];
      q[i] = static_cast<Limb>(cur / d);
      rem = static_cast<Limb>(cur % d);
    }
    quotient = {q, trim_mag(q, nd)};
    if (rem != 0) {
      Limb* r = scope.alloc<Limb>(1);
      r[0] = rem;
      remainder = {r, 1};
    }
    return;
  }

  if (compare_mag(dividend, nd, divisor, nv) < 0) {
    remainder = {dividend, nd};
    return;
  }

  // D1: normalize so the top divisor limb has its high bit set. One arena
  // bump covers the normalized dividend, divisor, and quotient (m <= nd
  // because the trimmed divisor keeps at least two limbs). Legacy mode
  // makes the three requests separately, matching the seed's three
  // scratch vectors per division.
  const int shift = std::countl_zero(divisor[nv - 1]);
  Limb* u;
  Limb* v;
  if (minmach::util::substrate_legacy()) [[unlikely]] {
    u = scope.alloc<Limb>(nd + 1);
    v = scope.alloc<Limb>(nv + 1);
  } else {
    Limb* block = scope.alloc<Limb>(2 * nd + nv + 2);
    u = block;
    v = block + (nd + 1);
  }
  shift_left_mag(dividend, nd, shift, u);
  shift_left_mag(divisor, nv, shift, v);
  const std::size_t n = trim_mag(v, nv + 1);
  const std::size_t m = (nd + 1) - n;  // quotient has at most m limbs

  Limb* q = minmach::util::substrate_legacy() ? scope.alloc<Limb>(m)
                                              : v + (nv + 1);
  std::fill(q, q + m, 0);
  const WideLimb vn1 = v[n - 1];
  const WideLimb vn2 = v[n - 2];

  for (std::size_t j = m; j-- > 0;) {
    // D3: estimate q_hat from the top two dividend limbs, clamped to base-1
    // per Knuth so all intermediates below fit in 128 bits.
    WideLimb numerator = (static_cast<WideLimb>(u[j + n]) << 64) | u[j + n - 1];
    WideLimb q_hat = numerator / vn1;
    WideLimb r_hat = numerator % vn1;
    if (q_hat >= kLimbBase) {
      q_hat = kLimbBase - 1;
      r_hat = numerator - q_hat * vn1;
    }
    while (r_hat < kLimbBase &&
           q_hat * vn2 > ((r_hat << 64) | u[j + n - 2])) {
      --q_hat;
      r_hat += vn1;
    }
    // D4: multiply-subtract q_hat * v from u[j .. j+n].
    Limb mul_carry = 0;
    unsigned borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      WideLimb product =
          static_cast<WideLimb>(q_hat) * v[i] + mul_carry;
      Limb low = static_cast<Limb>(product);
      mul_carry = static_cast<Limb>(product >> 64);
      Limb diff;
      unsigned b1 = __builtin_sub_overflow(u[i + j], low, &diff);
      unsigned b2 =
          __builtin_sub_overflow(diff, static_cast<Limb>(borrow), &diff);
      borrow = b1 | b2;
      u[i + j] = diff;
    }
    Limb top;
    unsigned b1 = __builtin_sub_overflow(u[j + n], mul_carry, &top);
    unsigned b2 = __builtin_sub_overflow(top, static_cast<Limb>(borrow), &top);
    bool went_negative = (b1 | b2) != 0;
    u[j + n] = top;

    // D6: add back if the estimate was one too large.
    if (went_negative) {
      --q_hat;
      unsigned carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        Limb sum;
        unsigned c1 = __builtin_add_overflow(u[i + j], v[i], &sum);
        unsigned c2 =
            __builtin_add_overflow(sum, static_cast<Limb>(carry), &sum);
        carry = c1 | c2;
        u[i + j] = sum;
      }
      u[j + n] += carry;
    }
    q[j] = static_cast<Limb>(q_hat);
  }

  quotient = {q, trim_mag(q, m)};

  // D8: de-normalize the remainder in place on u.
  if (shift != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      u[i] >>= shift;
      if (i + 1 < n) u[i] |= u[i + 1] << (64 - shift);
    }
  }
  remainder = {u, trim_mag(u, n)};
}

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  int az = std::countr_zero(a);
  int bz = std::countr_zero(b);
  int shift = az < bz ? az : bz;
  a >>= az;
  // Binary gcd: both operands odd at the top of every iteration.
  while (b != 0) {
    b >>= std::countr_zero(b);
    if (a > b) std::swap(a, b);
    b -= a;
  }
  return a << shift;
}

}  // namespace

// ---- LimbStore ---------------------------------------------------------

void BigInt::LimbStore::spill(std::size_t needed, bool preserve) {
  MINMACH_OBS_TALLY(bigint_spill);
  MINMACH_OBS_TALLY(heap_allocs);
  std::size_t new_cap = std::max<std::size_t>(needed, std::size_t{cap_} * 2);
  Limb* block = static_cast<Limb*>(::operator new(new_cap * sizeof(Limb)));
  if (preserve) std::copy(data(), data() + size_, block);
  ::operator delete(heap_);
  heap_ = block;
  cap_ = static_cast<std::uint32_t>(new_cap);
}

void BigInt::LimbStore::assign(const Limb* src, std::size_t n) {
  // Legacy mode: never use the inline buffer, so every non-empty magnitude
  // costs a heap block exactly like the pre-substrate vector storage.
  if (n > cap_ ||
      (heap_ == nullptr && n != 0 && util::substrate_legacy())) [[unlikely]]
    spill(n, /*preserve=*/false);
  std::copy(src, src + n, data());
  size_ = static_cast<std::uint32_t>(n);
}

void BigInt::LimbStore::push_back(Limb limb) {
  if (size_ == cap_ || (heap_ == nullptr && util::substrate_legacy()))
      [[unlikely]]
    spill(std::size_t{size_} + 1, /*preserve=*/true);
  data()[size_++] = limb;
}

void BigInt::LimbStore::steal(LimbStore& other) noexcept {
  heap_ = other.heap_;
  size_ = other.size_;
  cap_ = other.cap_;
  if (heap_ == nullptr)
    std::copy(other.inline_, other.inline_ + kInlineLimbs, inline_);
  other.heap_ = nullptr;
  other.size_ = 0;
  other.cap_ = kInlineLimbs;
}

// ---- BigInt ------------------------------------------------------------

BigInt::MagView BigInt::mag_view(Limb& scratch) const {
  if (!small_) return {limbs_.data(), limbs_.size()};
  scratch = magnitude_of(value_);
  return {&scratch, scratch == 0 ? std::size_t{0} : std::size_t{1}};
}

void BigInt::assign_mag(const Limb* mag, std::size_t size, bool negative) {
  size = trim_mag(mag, size);
  if (size == 0) {
    small_ = true;
    value_ = 0;
    negative_ = false;
    limbs_.clear();
    return;
  }
  if (size == 1) {
    Limb m = mag[0];
    if (m < (1ull << 63)) {
      small_ = true;
      value_ = negative ? -static_cast<std::int64_t>(m)
                        : static_cast<std::int64_t>(m);
      negative_ = false;
      limbs_.clear();
      return;
    }
    if (negative && m == (1ull << 63)) {
      small_ = true;
      value_ = INT64_MIN_VALUE;
      negative_ = false;
      limbs_.clear();
      return;
    }
  }
  MINMACH_OBS_TALLY(bigint_promotions);
  small_ = false;
  value_ = 0;
  negative_ = negative;
  limbs_.assign(mag, size);
}

BigInt BigInt::from_mag(const Limb* mag, std::size_t size, bool negative) {
  BigInt out;
  out.assign_mag(mag, size, negative);
  return out;
}

void BigInt::debug_force_promote() {
  if (!small_) return;
  std::uint64_t magnitude = magnitude_of(value_);
  negative_ = value_ < 0;
  limbs_.clear();
  if (magnitude != 0) limbs_.push_back(magnitude);
  if (limbs_.empty()) negative_ = false;
  small_ = false;
  value_ = 0;
}

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) throw std::invalid_argument("BigInt: sign only");
  BigInt result;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9')
      throw std::invalid_argument("BigInt: non-digit character");
    result *= ten;
    result += BigInt(c - '0');
  }
  if (negative) return result.negated();
  return result;
}

BigInt BigInt::abs() const {
  if (small_) {
    if (value_ == INT64_MIN_VALUE) {
      Limb m = 1ull << 63;
      return from_mag(&m, 1, false);
    }
    return BigInt(value_ < 0 ? -value_ : value_);
  }
  // from_mag re-canonicalizes: |x| may fit int64 even when x did not.
  return from_mag(limbs_.data(), limbs_.size(), false);
}

BigInt BigInt::negated() const {
  if (small_) {
    // -INT64_MIN does not fit int64; promote to the limb tier.
    if (value_ == INT64_MIN_VALUE) {
      Limb m = 1ull << 63;
      return from_mag(&m, 1, false);
    }
    return BigInt(-value_);
  }
  // from_mag re-canonicalizes: -2^63 demotes back to small INT64_MIN.
  return from_mag(limbs_.data(), limbs_.size(), !negative_ && !is_zero());
}

int BigInt::compare_slow(const BigInt& lhs, const BigInt& rhs) {
  bool lneg = lhs.is_negative();
  bool rneg = rhs.is_negative();
  if (lneg != rneg) return lneg ? -1 : 1;
  Limb ls;
  Limb rs;
  MagView lv = lhs.mag_view(ls);
  MagView rv = rhs.mag_view(rs);
  int mag = compare_mag(lv.data, lv.size, rv.data, rv.size);
  return lneg ? -mag : mag;
}

BigInt& BigInt::add_sub_slow(const BigInt& rhs, bool negate_rhs) {
  MINMACH_OBS_TALLY(bigint_slow_ops);
  bool lneg = is_negative();
  bool rneg = rhs.is_negative() != negate_rhs;
  if (rhs.is_zero()) rneg = false;
  Limb ls;
  Limb rs;
  MagView lv = mag_view(ls);
  MagView rv = rhs.mag_view(rs);
  util::ArenaScope scope(util::thread_arena());
  Limb* out = scope.alloc<Limb>(std::max(lv.size, rv.size) + 1);
  if (lneg == rneg) {
    assign_mag(out, add_mag(lv.data, lv.size, rv.data, rv.size, out), lneg);
    return *this;
  }
  int cmp = compare_mag(lv.data, lv.size, rv.data, rv.size);
  if (cmp == 0) {
    assign_mag(nullptr, 0, false);
    return *this;
  }
  if (cmp > 0) {
    assign_mag(out, sub_mag(lv.data, lv.size, rv.data, rv.size, out), lneg);
  } else {
    assign_mag(out, sub_mag(rv.data, rv.size, lv.data, lv.size, out), rneg);
  }
  return *this;
}

BigInt& BigInt::mul_slow(const BigInt& rhs) {
  MINMACH_OBS_TALLY(bigint_slow_ops);
  bool negative = is_negative() != rhs.is_negative();
  Limb ls;
  Limb rs;
  MagView lv = mag_view(ls);
  MagView rv = rhs.mag_view(rs);
  util::ArenaScope scope(util::thread_arena());
  Limb* out = scope.alloc<Limb>(lv.size + rv.size);
  assign_mag(out, mul_mag(lv.data, lv.size, rv.data, rv.size, out), negative);
  return *this;
}

BigIntDivMod BigInt::div_mod(const BigInt& dividend, const BigInt& divisor) {
  if (dividend.small_ && divisor.small_ && divisor.value_ != 0 &&
      !(dividend.value_ == INT64_MIN_VALUE && divisor.value_ == -1)) {
    return {BigInt(dividend.value_ / divisor.value_),
            BigInt(dividend.value_ % divisor.value_)};
  }
  Limb ds;
  Limb vs;
  MagView dv = dividend.mag_view(ds);
  MagView vv = divisor.mag_view(vs);
  util::ArenaScope scope(util::thread_arena());
  MagSpan q;
  MagSpan r;
  div_mod_mag(dv.data, dv.size, vv.data, vv.size, scope, q, r);
  BigIntDivMod out;
  bool qneg = dividend.is_negative() != divisor.is_negative();
  out.quotient.assign_mag(q.data, q.size, qneg);
  out.remainder.assign_mag(r.data, r.size, dividend.is_negative());
  return out;
}

BigInt& BigInt::div_slow(const BigInt& rhs) {
  MINMACH_OBS_TALLY(bigint_slow_ops);
  *this = div_mod(*this, rhs).quotient;
  return *this;
}

BigInt& BigInt::mod_slow(const BigInt& rhs) {
  MINMACH_OBS_TALLY(bigint_slow_ops);
  *this = div_mod(*this, rhs).remainder;
  return *this;
}

BigInt BigInt::gcd(const BigInt& a_in, const BigInt& b_in) {
  if (a_in.small_ && b_in.small_) {
    std::uint64_t g =
        gcd_u64(magnitude_of(a_in.value_), magnitude_of(b_in.value_));
    return from_mag(&g, 1, false);
  }
  if (util::substrate_legacy()) [[unlikely]] {
    // Pre-substrate loop: materialize a canonical BigInt quotient/remainder
    // pair every step. Kept verbatim so the memory bench's baseline carries
    // the seed's per-step allocation and copy traffic, not just its
    // allocator policy.
    BigInt a = a_in.abs();
    BigInt b = b_in.abs();
    while (!b.is_zero()) {
      if (a.small_ && b.small_) {
        std::uint64_t g =
            gcd_u64(magnitude_of(a.value_), magnitude_of(b.value_));
        return from_mag(&g, 1, false);
      }
      BigInt r = div_mod(a, b).remainder;
      a = std::move(b);
      b = std::move(r);
    }
    return a;
  }
  // Euclid on raw magnitudes in one arena scope. This loop dominates Rat
  // normalization (~19 division steps per gcd on the deep adversary
  // instances), so it must not materialize a BigInt per step: the quotient
  // is never used, and the remainder rotates as a borrowed span until the
  // single from_mag at the end.
  util::ArenaScope scope(util::thread_arena());
  Limb as;
  Limb bs;
  MagView av = a_in.mag_view(as);
  MagView bv = b_in.mag_view(bs);
  // Copy both magnitudes into the scope: mag_view's small-tier scratch
  // lives on this stack frame, and div_mod_mag may return a borrowed span
  // of its dividend, so every span in the rotation must outlive the step.
  Limb* ac = scope.alloc<Limb>(av.size);
  std::copy(av.data, av.data + av.size, ac);
  Limb* bc = scope.alloc<Limb>(bv.size);
  std::copy(bv.data, bv.data + bv.size, bc);
  MagSpan u{ac, av.size};
  MagSpan v{bc, bv.size};
  while (v.size > 0) {
    // Down to single limbs: finish with binary gcd.
    if (u.size <= 1 && v.size <= 1) {
      std::uint64_t g = gcd_u64(u.size != 0 ? u.data[0] : 0, v.data[0]);
      return from_mag(&g, 1, false);
    }
    MagSpan q{nullptr, 0};
    MagSpan r{nullptr, 0};
    div_mod_mag(u.data, u.size, v.data, v.size, scope, q, r);
    u = v;
    v = r;
  }
  return from_mag(u.data, u.size, false);
}

BigInt BigInt::lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt(0);
  BigInt g = gcd(a, b);
  return (a / g * b).abs();
}

std::size_t BigInt::bit_length() const {
  if (small_) {
    std::uint64_t magnitude = magnitude_of(value_);
    return static_cast<std::size_t>(64 - std::countl_zero(magnitude)) *
           (magnitude != 0 ? 1 : 0);
  }
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * kLimbBits +
         static_cast<std::size_t>(64 - std::countl_zero(limbs_.back()));
}

bool BigInt::fits_int64() const {
  if (small_) return true;
  if (limbs_.empty()) return true;
  if (limbs_.size() > 1) return false;
  if (negative_) return limbs_[0] <= (1ull << 63);
  return limbs_[0] < (1ull << 63);
}

std::int64_t BigInt::to_int64() const {
  if (small_) return value_;
  if (!fits_int64()) throw std::overflow_error("BigInt: does not fit int64");
  std::uint64_t magnitude = limbs_.empty() ? 0 : limbs_[0];
  if (negative_) return static_cast<std::int64_t>(~magnitude + 1);
  return static_cast<std::int64_t>(magnitude);
}

double BigInt::to_double() const {
  if (small_) return static_cast<double>(value_);
  double result = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    result = result * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -result : result;
}

std::string BigInt::to_string() const {
  if (small_) return std::to_string(value_);
  if (limbs_.empty()) return "0";
  // Peel 19 decimal digits at a time via single-limb division by 1e19.
  util::ArenaScope scope(util::thread_arena());
  Limb* current = scope.alloc<Limb>(limbs_.size());
  std::copy(limbs_.data(), limbs_.data() + limbs_.size(), current);
  std::size_t len = limbs_.size();
  std::vector<std::uint64_t> chunks;
  constexpr Limb kChunk = 10000000000000000000ull;  // 1e19 < 2^64
  while (len != 0) {
    Limb rem = 0;
    for (std::size_t i = len; i-- > 0;) {
      WideLimb cur = (static_cast<WideLimb>(rem) << 64) | current[i];
      current[i] = static_cast<Limb>(cur / kChunk);
      rem = static_cast<Limb>(cur % kChunk);
    }
    len = trim_mag(current, len);
    chunks.push_back(rem);
  }
  std::string out;
  if (negative_) out.push_back('-');
  out += std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(19 - part.size(), '0');
    out += part;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_string();
}

}  // namespace minmach

