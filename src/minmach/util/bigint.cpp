#include "minmach/util/bigint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace minmach {

namespace {

constexpr std::uint64_t kLimbBase = 1ull << 32;

}  // namespace

BigInt::BigInt(std::int64_t value) {
  if (value == 0) return;
  negative_ = value < 0;
  // Avoid overflow on INT64_MIN by negating in unsigned space.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<Limb>(magnitude & 0xffffffffu));
    magnitude >>= 32;
  }
}

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) throw std::invalid_argument("BigInt: sign only");
  BigInt result;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9')
      throw std::invalid_argument("BigInt: non-digit character");
    result *= ten;
    result += BigInt(c - '0');
  }
  if (negative && !result.is_zero()) result.negative_ = true;
  return result;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

BigInt BigInt::negated() const {
  BigInt result = *this;
  if (!result.is_zero()) result.negative_ = !result.negative_;
  return result;
}

int BigInt::compare_magnitude(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.limbs_.size() != rhs.limbs_.size())
    return lhs.limbs_.size() < rhs.limbs_.size() ? -1 : 1;
  for (std::size_t i = lhs.limbs_.size(); i-- > 0;) {
    if (lhs.limbs_[i] != rhs.limbs_[i])
      return lhs.limbs_[i] < rhs.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.negative_ != rhs.negative_)
    return lhs.negative_ ? std::strong_ordering::less
                         : std::strong_ordering::greater;
  int mag = BigInt::compare_magnitude(lhs, rhs);
  if (lhs.negative_) mag = -mag;
  if (mag < 0) return std::strong_ordering::less;
  if (mag > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::vector<BigInt::Limb> BigInt::add_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  const std::vector<Limb>& longer = a.size() >= b.size() ? a : b;
  const std::vector<Limb>& shorter = a.size() >= b.size() ? b : a;
  std::vector<Limb> out;
  out.reserve(longer.size() + 1);
  WideLimb carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    WideLimb sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out.push_back(static_cast<Limb>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<Limb>(carry));
  return out;
}

std::vector<BigInt::Limb> BigInt::sub_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  std::vector<Limb> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<Limb>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<BigInt::Limb> BigInt::mul_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Limb> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    WideLimb carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      WideLimb cur = static_cast<WideLimb>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      WideLimb cur = out[k] + carry;
      out[k] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

// Knuth TAOCP vol. 2 algorithm D, base 2^32.
void BigInt::div_mod_magnitude(const std::vector<Limb>& dividend,
                               const std::vector<Limb>& divisor,
                               std::vector<Limb>& quotient,
                               std::vector<Limb>& remainder) {
  quotient.clear();
  remainder.clear();
  if (divisor.empty()) throw std::domain_error("BigInt: division by zero");

  // Fast path: single-limb divisor.
  if (divisor.size() == 1) {
    WideLimb d = divisor[0];
    quotient.assign(dividend.size(), 0);
    WideLimb rem = 0;
    for (std::size_t i = dividend.size(); i-- > 0;) {
      WideLimb cur = (rem << 32) | dividend[i];
      quotient[i] = static_cast<Limb>(cur / d);
      rem = cur % d;
    }
    while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
    if (rem != 0) remainder.push_back(static_cast<Limb>(rem));
    return;
  }

  if (dividend.size() < divisor.size()) {
    remainder = dividend;
    return;
  }

  // D1: normalize so the top divisor limb has its high bit set.
  int shift = 0;
  {
    Limb top = divisor.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shift_left = [](const std::vector<Limb>& v, int s) {
    std::vector<Limb> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= static_cast<Limb>((static_cast<WideLimb>(v[i]) << s) &
                                  0xffffffffu);
      if (s != 0)
        out[i + 1] = static_cast<Limb>(static_cast<WideLimb>(v[i]) >>
                                       (32 - s));
    }
    return out;
  };
  std::vector<Limb> u = shift_left(dividend, shift);  // size n+1 extra limb
  std::vector<Limb> v = shift_left(divisor, shift);
  while (!v.empty() && v.back() == 0) v.pop_back();
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n;  // quotient has at most m limbs

  quotient.assign(m, 0);
  const WideLimb vn1 = v[n - 1];
  const WideLimb vn2 = v[n - 2];

  for (std::size_t j = m; j-- > 0;) {
    // D3: estimate q_hat from the top two dividend limbs, clamped to base-1
    // per Knuth so all intermediates below fit in 64 bits.
    WideLimb numerator =
        (static_cast<WideLimb>(u[j + n]) << 32) | u[j + n - 1];
    WideLimb q_hat = numerator / vn1;
    WideLimb r_hat = numerator % vn1;
    if (q_hat >= kLimbBase) {
      q_hat = kLimbBase - 1;
      r_hat = numerator - q_hat * vn1;
    }
    while (r_hat < kLimbBase &&
           q_hat * vn2 > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += vn1;
    }
    // D4: multiply-subtract q_hat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    WideLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      WideLimb product = q_hat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(product & 0xffffffffu) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<Limb>(diff);
    }
    std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                        static_cast<std::int64_t>(carry) - borrow;
    bool went_negative = diff < 0;
    if (went_negative) diff += static_cast<std::int64_t>(kLimbBase);
    u[j + n] = static_cast<Limb>(diff);

    // D6: add back if the estimate was one too large.
    if (went_negative) {
      --q_hat;
      WideLimb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        WideLimb sum = static_cast<WideLimb>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<Limb>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<Limb>(u[j + n] + add_carry);
    }
    quotient[j] = static_cast<Limb>(q_hat);
  }

  while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();

  // D8: de-normalize the remainder.
  remainder.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift != 0) {
    for (std::size_t i = 0; i < remainder.size(); ++i) {
      remainder[i] >>= shift;
      if (i + 1 < n)
        remainder[i] |= static_cast<Limb>(
            (static_cast<WideLimb>(remainder.size() > i + 1 ? u[i + 1] : 0)
             << (32 - shift)) &
            0xffffffffu);
    }
  }
  while (!remainder.empty() && remainder.back() == 0) remainder.pop_back();
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    limbs_ = add_magnitude(limbs_, rhs.limbs_);
  } else {
    int cmp = compare_magnitude(*this, rhs);
    if (cmp == 0) {
      limbs_.clear();
      negative_ = false;
      return *this;
    }
    if (cmp > 0) {
      limbs_ = sub_magnitude(limbs_, rhs.limbs_);
    } else {
      limbs_ = sub_magnitude(rhs.limbs_, limbs_);
      negative_ = rhs.negative_;
    }
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) { return *this += rhs.negated(); }

BigInt& BigInt::operator*=(const BigInt& rhs) {
  bool negative = negative_ != rhs.negative_;
  limbs_ = mul_magnitude(limbs_, rhs.limbs_);
  negative_ = !limbs_.empty() && negative;
  return *this;
}

BigIntDivMod BigInt::div_mod(const BigInt& dividend, const BigInt& divisor) {
  BigIntDivMod out;
  div_mod_magnitude(dividend.limbs_, divisor.limbs_, out.quotient.limbs_,
                    out.remainder.limbs_);
  out.quotient.negative_ =
      !out.quotient.limbs_.empty() && (dividend.negative_ != divisor.negative_);
  out.remainder.negative_ =
      !out.remainder.limbs_.empty() && dividend.negative_;
  return out;
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  *this = div_mod(*this, rhs).quotient;
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  *this = div_mod(*this, rhs).remainder;
  return *this;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = div_mod(a, b).remainder;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt(0);
  BigInt g = gcd(a, b);
  return (a / g * b).abs();
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  Limb top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * kLimbBits;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::fits_int64() const {
  if (limbs_.size() < 2) return true;
  if (limbs_.size() > 2) return false;
  std::uint64_t magnitude =
      (static_cast<std::uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (negative_) return magnitude <= (1ull << 63);
  return magnitude < (1ull << 63);
}

std::int64_t BigInt::to_int64() const {
  if (!fits_int64()) throw std::overflow_error("BigInt: does not fit int64");
  std::uint64_t magnitude = 0;
  if (!limbs_.empty()) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<std::uint64_t>(limbs_[1])
                                       << 32;
  if (negative_) return static_cast<std::int64_t>(~magnitude + 1);
  return static_cast<std::int64_t>(magnitude);
}

double BigInt::to_double() const {
  double result = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    result = result * static_cast<double>(kLimbBase) +
             static_cast<double>(limbs_[i]);
  }
  return negative_ ? -result : result;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Peel 9 decimal digits at a time via single-limb division by 1e9.
  std::vector<Limb> current = limbs_;
  std::vector<std::uint32_t> chunks;
  constexpr WideLimb kChunk = 1000000000ull;
  while (!current.empty()) {
    WideLimb rem = 0;
    for (std::size_t i = current.size(); i-- > 0;) {
      WideLimb cur = (rem << 32) | current[i];
      current[i] = static_cast<Limb>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!current.empty() && current.back() == 0) current.pop_back();
    chunks.push_back(static_cast<std::uint32_t>(rem));
  }
  std::string out;
  if (negative_) out.push_back('-');
  out += std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(9 - part.size(), '0');
    out += part;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_string();
}

}  // namespace minmach
