#include "minmach/util/rng.hpp"

#include <cassert>

namespace minmach {

namespace {

// splitmix64, used to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  // Span computed in unsigned space: hi - lo may exceed INT64_MAX, and
  // unsigned wraparound is the defined way to get the same bit pattern.
  std::uint64_t range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = ~0ull - ~0ull % range;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   draw % range);
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rat Rng::uniform_rat(std::int64_t lo, std::int64_t hi,
                     std::int64_t denominator) {
  assert(denominator > 0);
  std::int64_t k = uniform_int(lo * denominator, hi * denominator);
  return {k, denominator};
}

bool Rng::bernoulli(double p) { return uniform_double() < p; }

}  // namespace minmach
