#include "minmach/util/cli.hpp"

#include <stdexcept>

namespace minmach {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("Cli: expected --key=value, got " + arg);
    auto eq = arg.find('=');
    std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    std::string value = eq == std::string::npos ? "1" : arg.substr(eq + 1);
    values_[key] = value;
    seen_[key] = false;
  }
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t default_value) {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  seen_[key] = true;
  return std::stoll(it->second);
}

double Cli::get_double(const std::string& key, double default_value) {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  seen_[key] = true;
  return std::stod(it->second);
}

std::string Cli::get_string(const std::string& key, std::string default_value) {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  seen_[key] = true;
  return it->second;
}

bool Cli::get_bool(const std::string& key, bool default_value) {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  seen_[key] = true;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

bool Cli::was_given(const std::string& key) const {
  return values_.find(key) != values_.end();
}

void Cli::check_unknown() const {
  for (const auto& [key, used] : seen_) {
    if (!used)
      throw std::invalid_argument("Cli: unknown flag --" + key);
  }
}

}  // namespace minmach
