#include "minmach/util/arena.hpp"

namespace minmach::util {

Arena& thread_arena() noexcept {
  thread_local Arena arena;
  return arena;
}

}  // namespace minmach::util
