// Exact rational numbers over BigInt. All job parameters and all time
// arithmetic in the library use Rat, so adversary constructions and schedule
// validation are exact (no epsilon comparisons anywhere).
//
// Because BigInt is two-tier (see bigint.hpp), a small rational is stored as
// int64/int64 with no heap allocation. The arithmetic operators exploit
// this: when all four components fit the small tier they run an int64 fast
// path (binary gcd on uint64, __int128 intermediates, Knuth 4.5.1
// cross-reduction so intermediates stay small before normalization) and fall
// back to the exact BigInt path only when a result would overflow.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "minmach/util/bigint.hpp"

namespace minmach {

class Rat;

// Batched small-Rat kernels (DESIGN.md §12): process 4 inline-int64
// rationals per step on the fast path, spilling to the element-wise
// BigInt/Rat path only for lanes (or batches) that leave the small tier.
// Results are bit-identical to the element-wise loops they replace; spills
// are tallied as "simd.scalar_spills". The `avx2` flag pins the dispatch
// (pass util::simd::active(); true requires util::simd::supported()).
namespace rat_batch {

// Writes values[i] as int64 when EVERY element is a small integer
// (denominator 1, |numerator| <= max_abs); returns false without touching
// `out` otherwise. The all-or-nothing contract is what the integer-grid
// fast paths need: one failed lane means the batch must stay rational.
[[nodiscard]] bool to_i64(const Rat* values, std::size_t n, std::int64_t* out,
                          std::int64_t max_abs);

// Exact sum, identical to `Rat acc; for (...) acc += values[i];`.
[[nodiscard]] Rat sum(const Rat* values, std::size_t n, bool avx2);

// out[i] = (a[i] < b[i]). Four cross-multiplied compares per step when all
// components fit int32; per-lane <=> spill otherwise.
void less_than(const Rat* a, const Rat* b, std::size_t n, unsigned char* out,
               bool avx2);

// out[i] = canonical Rat num[i]/den[i] (throws std::domain_error on a zero
// denominator, like the Rat constructor). A vector prescan proves the
// batch free of the awkward cases (zero/negative denominators, INT64_MIN
// magnitudes); the per-lane work is then a branchless sign fix + gcd.
void make(const std::int64_t* num, const std::int64_t* den, std::size_t n,
          Rat* out, bool avx2);

}  // namespace rat_batch

class Rat {
 public:
  Rat() : num_(0), den_(1) {}
  Rat(std::int64_t value) : num_(value), den_(1) {}  // NOLINT implicit by design
  Rat(int value) : num_(value), den_(1) {}           // NOLINT implicit by design
  Rat(long long value) : num_(value), den_(1) {}     // NOLINT implicit by design
  // Throws std::domain_error if denominator == 0.
  Rat(BigInt numerator, BigInt denominator);
  Rat(std::int64_t numerator, std::int64_t denominator)
      : Rat(BigInt(numerator), BigInt(denominator)) {}

  // Accepts "a", "-a/b", and decimal forms like "3.25" / "-0.5".
  static Rat from_string(std::string_view text);

  [[nodiscard]] const BigInt& num() const { return num_; }
  [[nodiscard]] const BigInt& den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_.is_zero(); }
  [[nodiscard]] bool is_negative() const { return num_.is_negative(); }
  [[nodiscard]] bool is_positive() const { return num_.signum() > 0; }
  [[nodiscard]] int signum() const { return num_.signum(); }
  [[nodiscard]] bool is_integer() const { return den_ == BigInt(1); }

  Rat& operator+=(const Rat& rhs);
  Rat& operator-=(const Rat& rhs);
  Rat& operator*=(const Rat& rhs);
  Rat& operator/=(const Rat& rhs);  // throws std::domain_error on /0

  friend Rat operator+(Rat lhs, const Rat& rhs) { return lhs += rhs; }
  friend Rat operator-(Rat lhs, const Rat& rhs) { return lhs -= rhs; }
  friend Rat operator*(Rat lhs, const Rat& rhs) { return lhs *= rhs; }
  friend Rat operator/(Rat lhs, const Rat& rhs) { return lhs /= rhs; }
  Rat operator-() const;

  friend bool operator==(const Rat& lhs, const Rat& rhs) {
    return lhs.num_ == rhs.num_ && lhs.den_ == rhs.den_;
  }
  friend std::strong_ordering operator<=>(const Rat& lhs, const Rat& rhs);

  [[nodiscard]] Rat abs() const;
  [[nodiscard]] BigInt floor() const;  // greatest integer <= *this
  [[nodiscard]] BigInt ceil() const;   // least integer >= *this

  [[nodiscard]] double to_double() const;
  // "a/b", or just "a" when the denominator is 1.
  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Rat& value);

  [[nodiscard]] static const Rat& min(const Rat& a, const Rat& b) {
    return b < a ? b : a;
  }
  [[nodiscard]] static const Rat& max(const Rat& a, const Rat& b) {
    return a < b ? b : a;
  }

 private:
  // rat_batch::make writes pre-canonicalized components directly.
  friend void rat_batch::make(const std::int64_t* num, const std::int64_t* den,
                              std::size_t n, Rat* out, bool avx2);

  void normalize();

  // int64 fast paths; return false when any input or result leaves the
  // small tier (the caller then runs the BigInt path).
  bool add_small(const Rat& rhs, bool negate_rhs);
  bool mul_small(const Rat& rhs);
  bool div_small(const Rat& rhs);
  Rat& add_slow(const Rat& rhs, bool negate_rhs);

  BigInt num_;
  BigInt den_;  // always > 0; gcd(|num_|, den_) == 1; zero is 0/1
};

}  // namespace minmach
