// Runtime-dispatched SIMD kernel layer (DESIGN.md §12).
//
// Two build flavours, selected at CMake configure time via MINMACH_SIMD:
//
//  * auto / avx2: the AVX2 kernels are compiled into dedicated translation
//    units (util/simd_avx2.cpp, core/load_sweep_avx2.cpp) built with -mavx2;
//    everything else is built with the portable baseline flags, so a binary
//    containing the kernels still RUNS on a non-AVX2 CPU -- the vector code
//    is only entered after __builtin_cpu_supports("avx2") says yes.
//  * scalar: the AVX2 translation units are excluded outright
//    (MINMACH_SIMD_COMPILE_AVX2=0) and every dispatch collapses to the
//    scalar fallback. This is the CI leg for runners without AVX2.
//
// On top of the compile-time gate sits a process-global runtime mode
// (set_mode), driven by the benches' --simd {auto,avx2,scalar} flag, so the
// same binary can A/B both dispatches for differential testing. All kernels
// are EXACT: a SIMD path either produces bit-identical results to its scalar
// fallback or refuses the input (returns false / spills), in which case the
// caller runs the fallback. Spills are tallied as "simd.scalar_spills",
// vector work as "simd.lanes_used" -- both execution-class metrics
// (obs::is_exec_metric), so run reports stay byte-identical across dispatch
// modes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

// CMake defines this PUBLIC on the minmach target; the fallback covers
// ad-hoc compiles of the headers outside the build system.
#ifndef MINMACH_SIMD_COMPILE_AVX2
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MINMACH_SIMD_COMPILE_AVX2 1
#else
#define MINMACH_SIMD_COMPILE_AVX2 0
#endif
#endif

namespace minmach::util::simd {

// Process-global dispatch mode. kAuto uses AVX2 whenever the build and the
// CPU support it; kScalar forces the fallback everywhere (including the
// bit-parallel non-intrinsic paths gated on active(), so "scalar" really
// means "the seed's code paths"); kAvx2 is kAuto plus the caller's promise
// that support was verified up front (bench::Run rejects --simd avx2 when
// supported() is false).
enum class Mode : int { kAuto = 0, kAvx2 = 1, kScalar = 2 };

[[nodiscard]] constexpr bool compiled_avx2() {
  return MINMACH_SIMD_COMPILE_AVX2 != 0;
}

// Cached __builtin_cpu_supports("avx2"); always false when the AVX2
// translation units were compiled out.
[[nodiscard]] bool supported();

[[nodiscard]] Mode mode();
void set_mode(Mode mode);

// True iff the accelerated paths should run: supported() and the global
// mode is not kScalar. Every call site re-reads this, so flipping the mode
// between measurements re-dispatches without rebuilding any state.
[[nodiscard]] bool active();

[[nodiscard]] const char* mode_name(Mode mode);
// Parses "auto" / "avx2" / "scalar"; returns false on anything else.
[[nodiscard]] bool parse_mode(std::string_view text, Mode* out);

// ---- int64 array kernels ----------------------------------------------
//
// Each kernel takes an explicit `avx2` flag instead of consulting the
// global mode so differential tests can pin either path; passing true
// requires supported(). Results are exact and identical across paths.

// Min and max of v[0..n). Precondition: n > 0.
void minmax_i64(const std::int64_t* v, std::size_t n, std::int64_t* min_out,
                std::int64_t* max_out, bool avx2);

// Exact sum of v[0..n) when it fits int64: returns true and writes *out.
// Returns false (no write) when the exact sum overflows int64 -- the
// caller keeps its wide-accumulator fallback. The AVX2 path pre-checks
// n * max|v| so its lane-wise adds provably cannot wrap.
[[nodiscard]] bool sum_i64(const std::int64_t* v, std::size_t n,
                           std::int64_t* out, bool avx2);

// Lane-wise a_i < b_i for rationals a_i = an[i]/ad[i], b_i = bn[i]/bd[i].
// Preconditions: denominators > 0 and every |value| < 2^31, so the
// cross-products an*bd / bn*ad are exact in int64 (the AVX2 path computes
// them with a 32x32->64 multiply). out[i] in {0,1}.
void rat31_less(const std::int64_t* an, const std::int64_t* ad,
                const std::int64_t* bn, const std::int64_t* bd, std::size_t n,
                unsigned char* out, bool avx2);

#if MINMACH_SIMD_COMPILE_AVX2
// Implemented in util/simd_avx2.cpp (the -mavx2 translation unit). Each
// returns the number of vector lanes it processed, which the dispatch
// wrappers fold into the "simd.lanes_used" tally.
namespace detail {
std::uint64_t minmax_i64_avx2(const std::int64_t* v, std::size_t n,
                              std::int64_t* min_out, std::int64_t* max_out);
std::uint64_t sum_i64_avx2(const std::int64_t* v, std::size_t n,
                           std::int64_t* out);
std::uint64_t rat31_less_avx2(const std::int64_t* an, const std::int64_t* ad,
                              const std::int64_t* bn, const std::int64_t* bd,
                              std::size_t n, unsigned char* out);
}  // namespace detail
#endif

}  // namespace minmach::util::simd
