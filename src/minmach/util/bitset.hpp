// Packed-64-bit-word dynamic bit set for the bit-parallel graph kernels
// (DESIGN.md §12): Dinic's level-graph BFS keeps its visited set and
// frontiers here instead of in per-node byte arrays, so membership tests
// touch 1/8th the memory, clearing is a word-fill over n/64 words, and
// frontier iteration scans word-at-a-time with countr_zero -- empty regions
// of the node space cost one load per 64 nodes. Modeled on the BitSet of
// ExpressionMatrix2 (chanzuckerberg/ExpressionMatrix2), adapted to pooled
// reuse: reset() keeps capacity, so a solver that rebuilds per probe never
// re-allocates in steady state.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace minmach::util {

class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t bits) { reset(bits); }

  // Resizes to `bits` bits, all clear. Keeps the existing allocation when
  // it is large enough (the pooled-reuse contract).
  void reset(std::size_t bits) {
    bits_ = bits;
    words_.assign(word_count(bits), 0);
  }

  void clear_all() { std::fill(words_.begin(), words_.end(), std::uint64_t{0}); }

  [[nodiscard]] std::size_t size() const { return bits_; }

  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void clear(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  [[nodiscard]] bool any() const {
    for (std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (std::uint64_t w : words_) total += std::popcount(w);
    return total;
  }

  // Calls fn(index) for every set bit in ascending order. fn returns void,
  // or bool where `true` stops the scan early (the BFS sink-abort path).
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const std::size_t bit = (wi << 6) + std::countr_zero(w);
        if constexpr (std::is_same_v<decltype(fn(bit)), bool>) {
          if (fn(bit)) return;
        } else {
          fn(bit);
        }
        w &= w - 1;
      }
    }
  }

  void swap(BitSet& other) noexcept {
    words_.swap(other.words_);
    std::swap(bits_, other.bits_);
  }

 private:
  static std::size_t word_count(std::size_t bits) { return (bits + 63) >> 6; }

  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

}  // namespace minmach::util
