#include "minmach/util/simd.hpp"

#include <algorithm>
#include <atomic>

#include "minmach/obs/metrics.hpp"

namespace minmach::util::simd {

namespace {

std::atomic<Mode>& global_mode() {
  static std::atomic<Mode> mode{Mode::kAuto};
  return mode;
}

bool detect_cpu_avx2() {
#if MINMACH_SIMD_COMPILE_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

bool supported() {
  static const bool cached = detect_cpu_avx2();
  return cached;
}

Mode mode() { return global_mode().load(std::memory_order_relaxed); }

void set_mode(Mode mode) {
  global_mode().store(mode, std::memory_order_relaxed);
}

bool active() { return supported() && mode() != Mode::kScalar; }

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kAuto:
      return "auto";
    case Mode::kAvx2:
      return "avx2";
    case Mode::kScalar:
      return "scalar";
  }
  return "?";
}

bool parse_mode(std::string_view text, Mode* out) {
  if (text == "auto") {
    *out = Mode::kAuto;
  } else if (text == "avx2") {
    *out = Mode::kAvx2;
  } else if (text == "scalar") {
    *out = Mode::kScalar;
  } else {
    return false;
  }
  return true;
}

void minmax_i64(const std::int64_t* v, std::size_t n, std::int64_t* min_out,
                std::int64_t* max_out, bool avx2) {
#if MINMACH_SIMD_COMPILE_AVX2
  if (avx2) {
    MINMACH_OBS_TALLY_ADD(simd_lanes_used,
                          detail::minmax_i64_avx2(v, n, min_out, max_out));
    return;
  }
#else
  (void)avx2;
#endif
  std::int64_t mn = v[0], mx = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
  }
  *min_out = mn;
  *max_out = mx;
}

bool sum_i64(const std::int64_t* v, std::size_t n, std::int64_t* out,
             bool avx2) {
  if (n == 0) {
    *out = 0;
    return true;
  }
#if MINMACH_SIMD_COMPILE_AVX2
  if (avx2) {
    // Lane-wise int64 adds are exact only when no intermediate wraps; a
    // cheap sufficient condition is n * max|v| < 2^62. When it fails,
    // spill to the wide-accumulator path below (same result when the sum
    // fits, same `false` when it does not).
    std::int64_t mn = 0, mx = 0;
    minmax_i64(v, n, &mn, &mx, /*avx2=*/true);
    const std::uint64_t bound =
        std::max<std::uint64_t>(mx < 0 ? 0 : static_cast<std::uint64_t>(mx),
                                mn == INT64_MIN
                                    ? static_cast<std::uint64_t>(INT64_MAX) + 1
                                    : static_cast<std::uint64_t>(mn < 0 ? -mn : 0));
    if (bound != 0 && n < (std::uint64_t{1} << 62) / bound) {
      MINMACH_OBS_TALLY_ADD(simd_lanes_used, detail::sum_i64_avx2(v, n, out));
      return true;
    }
    if (bound == 0) {  // all zero
      *out = 0;
      return true;
    }
    MINMACH_OBS_TALLY(simd_scalar_spills);
  }
#else
  (void)avx2;
#endif
  __int128 acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];
  if (acc > INT64_MAX || acc < INT64_MIN) return false;
  *out = static_cast<std::int64_t>(acc);
  return true;
}

void rat31_less(const std::int64_t* an, const std::int64_t* ad,
                const std::int64_t* bn, const std::int64_t* bd, std::size_t n,
                unsigned char* out, bool avx2) {
#if MINMACH_SIMD_COMPILE_AVX2
  if (avx2) {
    MINMACH_OBS_TALLY_ADD(simd_lanes_used,
                          detail::rat31_less_avx2(an, ad, bn, bd, n, out));
    return;
  }
#else
  (void)avx2;
#endif
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<unsigned char>(an[i] * bd[i] < bn[i] * ad[i]);
}

}  // namespace minmach::util::simd
