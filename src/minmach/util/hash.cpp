#include "minmach/util/hash.hpp"

#include <cstddef>

#include "minmach/util/bigint.hpp"
#include "minmach/util/rational.hpp"

namespace minmach {

void hash_append(util::Hasher128& hasher, const BigInt& value) {
  // Encode the value as (sign, limb count, magnitude limbs little-endian).
  // mag_view unifies the two storage tiers; trailing zero limbs are
  // stripped and the sign is re-derived from the stripped magnitude, so the
  // non-canonical stores debug_force_promote() can create (a lone zero
  // limb, possibly flagged negative) hash exactly like canonical zero.
  BigInt::Limb scratch = 0;
  BigInt::MagView view = value.mag_view(scratch);
  std::size_t size = view.size;
  while (size > 0 && view.data[size - 1] == 0) --size;
  const std::int64_t sign = size == 0 ? 0 : (value.is_negative() ? -1 : 1);
  hasher.absorb(static_cast<std::uint64_t>(sign));
  hasher.absorb(size);
  for (std::size_t i = 0; i < size; ++i) hasher.absorb(view.data[i]);
}

void hash_append(util::Hasher128& hasher, const Rat& value) {
  // Canonical by Rat's invariant: den > 0 and gcd(num, den) = 1, so equal
  // rationals have identical components regardless of how they were built.
  hash_append(hasher, value.num());
  hash_append(hasher, value.den());
}

std::uint64_t hash_value(const BigInt& value) {
  util::Hasher128 hasher;
  hash_append(hasher, value);
  util::Digest128 digest = hasher.digest();
  return digest.hi ^ (digest.lo * 0x9e3779b97f4a7c15ULL);
}

std::uint64_t hash_value(const Rat& value) {
  util::Hasher128 hasher;
  hash_append(hasher, value);
  util::Digest128 digest = hasher.digest();
  return digest.hi ^ (digest.lo * 0x9e3779b97f4a7c15ULL);
}

}  // namespace minmach
