// Deterministic work-stealing parallel map, shared by the sweep benches and
// the session engine (svc/). Extracted from bench_common.hpp so library
// code can shard work without depending on the driver scaffolding; the
// bench namespace keeps aliases for its existing call sites.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "minmach/obs/metrics.hpp"

namespace minmach::util {

// Resolves a requested worker count: <= 0 means "all cores", clamped at
// std::thread::hardware_concurrency() so the default never oversubscribes,
// and there is never a point in more workers than tasks. An explicit
// positive request is honoured as-is (the determinism harness deliberately
// oversubscribes small boxes to shake out ordering bugs).
inline std::size_t resolve_threads(std::int64_t requested,
                                   std::size_t task_count) {
  std::size_t threads = requested > 0
                            ? static_cast<std::size_t>(requested)
                            : std::max(1u, std::thread::hardware_concurrency());
  return std::min(threads, std::max<std::size_t>(1, task_count));
}

// How parallel_map_scheduled distributes tasks over workers.
enum class Chunking {
  // Contiguous per-worker ranges; an idle worker steals the back half of
  // the fullest remaining range. Default.
  kWorkStealing,
  // The same initial ranges with no stealing -- a worker that drains its
  // range exits. Kept as the imbalance baseline for the memory bench.
  kStatic,
};

// Per-worker execution statistics from one parallel_map_scheduled call.
// Diagnostic only: wall-clock and steal counts depend on OS scheduling and
// must never feed a run report (see bench::Run's determinism note).
struct WorkerLoad {
  std::uint64_t tasks = 0;   // tasks this worker executed
  std::uint64_t steals = 0;  // ranges it stole from a victim
  double busy_ms = 0.0;      // wall time spent inside task bodies
};
struct ScheduleStats {
  std::vector<WorkerLoad> workers;

  [[nodiscard]] std::uint64_t total_steals() const {
    std::uint64_t total = 0;
    for (const WorkerLoad& w : workers) total += w.steals;
    return total;
  }
  // Largest fraction of total busy time spent on one worker: 1/threads is
  // perfect balance, 1.0 is total skew (one worker did everything).
  [[nodiscard]] double max_busy_share() const {
    double total = 0.0, worst = 0.0;
    for (const WorkerLoad& w : workers) {
      total += w.busy_ms;
      worst = std::max(worst, w.busy_ms);
    }
    return total > 0.0 ? worst / total : 0.0;
  }
};

namespace detail {
// One worker's slice of the task index space. lo/hi are guarded by mutex;
// the owner pops from the front, thieves take from the back, so the two
// rarely collide on the same cache line's worth of indices.
struct StealRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::mutex mutex;
};
}  // namespace detail

// Runs fn(0), ..., fn(task_count - 1) on `threads` workers and returns the
// results ordered by task index. Determinism contract: each task must be
// self-contained (seed its own Rng, no shared mutable state), so the result
// vector -- and therefore any table printed from it in index order -- is
// byte-identical regardless of thread count or chunking mode. The scheduler
// only decides WHICH worker runs a task, never what the task computes, and
// every result is written to its original index; per-thread obs tallies are
// drained before each worker exits, so merged metric totals are identical
// too (DESIGN.md §10 has the full argument). Exceptions are captured per
// task and the first one (in task order) is rethrown on the caller's
// thread; a throwing task still counts as executed, and the remaining tasks
// still run. Tasks must not call require()/std::exit -- return the verdict
// and let the caller aggregate.
//
// Work stealing: each worker starts with a contiguous near-equal range and
// pops from its front. A worker whose range drains scans the others (under
// their locks, victim lock never held while taking its own) and moves the
// back half of the fullest range into its own; when every range is empty it
// exits. Skewed sweeps -- where one range holds all the expensive tasks --
// therefore spread across workers instead of serializing on one, which
// static chunking cannot do.
template <typename Fn>
auto parallel_map_scheduled(std::size_t task_count, std::size_t threads,
                            Fn&& fn, Chunking chunking,
                            ScheduleStats* stats = nullptr)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  using Clock = std::chrono::steady_clock;
  std::vector<Result> results(task_count);
  std::vector<std::exception_ptr> errors(task_count);
  threads = std::min(std::max<std::size_t>(1, threads),
                     std::max<std::size_t>(1, task_count));
  if (stats) stats->workers.assign(threads, WorkerLoad{});

  auto run_task = [&](std::size_t i, WorkerLoad* load) {
    Clock::time_point start;
    if (load) start = Clock::now();
    try {
      results[i] = fn(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
    if (load) {
      ++load->tasks;
      load->busy_ms +=
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
    }
  };

  if (threads <= 1) {
    WorkerLoad* load = stats ? stats->workers.data() : nullptr;
    for (std::size_t i = 0; i < task_count; ++i) run_task(i, load);
  } else {
    std::vector<detail::StealRange> ranges(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      ranges[w].lo = task_count * w / threads;
      ranges[w].hi = task_count * (w + 1) / threads;
    }
    auto worker = [&](std::size_t self) {
      WorkerLoad* load = stats ? &stats->workers[self] : nullptr;
      detail::StealRange& own = ranges[self];
      while (true) {
        std::size_t task = task_count;  // sentinel: nothing popped
        {
          std::lock_guard<std::mutex> lock(own.mutex);
          if (own.lo < own.hi) task = own.lo++;
        }
        if (task < task_count) {
          run_task(task, load);
          continue;
        }
        if (chunking == Chunking::kStatic) break;
        // Steal the back half of the first non-empty range in scan order.
        // Taking from the back leaves the victim popping undisturbed at the
        // front, and releasing the victim's lock before touching our own
        // range keeps the locking flat (never two locks held at once -> no
        // deadlock).
        std::size_t got_lo = 0, got_hi = 0, best = 0;
        for (std::size_t offset = 1; offset < threads; ++offset) {
          detail::StealRange& victim = ranges[(self + offset) % threads];
          std::lock_guard<std::mutex> lock(victim.mutex);
          if (victim.hi - victim.lo > best) {
            best = victim.hi - victim.lo;
            got_hi = victim.hi;
            got_lo = victim.hi - (best + 1) / 2;
            victim.hi = got_lo;
            break;  // good enough: first non-empty victim in scan order
          }
        }
        if (got_lo == got_hi) break;  // every range empty: drained
        {
          std::lock_guard<std::mutex> lock(own.mutex);
          own.lo = got_lo;
          own.hi = got_hi;
        }
        if (load) ++load->steals;
      }
      // Fold this worker's thread-local arithmetic tallies into the
      // registry before the thread dies, so a snapshot taken after
      // parallel_map_scheduled returns sees every operation exactly once.
      obs::drain_hot_tallies();
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

// Work-stealing scheduler, no stats -- the common entry point.
template <typename Fn>
auto parallel_map(std::size_t task_count, std::size_t threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  return parallel_map_scheduled(task_count, threads, std::forward<Fn>(fn),
                                Chunking::kWorkStealing, nullptr);
}

}  // namespace minmach::util
