#include "minmach/util/opt_cache.hpp"

#include <algorithm>

#include "minmach/obs/metrics.hpp"
#include "minmach/obs/profile.hpp"

namespace minmach::util {

namespace {

// Slot hash over (fingerprint, machine key): the fingerprint is already
// uniform, but mixing the machine key through mix64 keeps the verdict
// entries for one instance from landing in the same set.
std::uint64_t slot_hash(const Digest128& fp, std::int64_t machines) {
  return mix64(fp.lo ^ mix64(fp.hi + static_cast<std::uint64_t>(machines)));
}

}  // namespace

OptCache& OptCache::global() {
  static OptCache instance;
  return instance;
}

void OptCache::configure(bool enabled, std::size_t capacity) {
  capacity = std::max(capacity, kShards * kWays);
  sets_ = std::max<std::size_t>(1, capacity / (kShards * kWays));
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.assign(sets_ * kWays, Entry{});
    shard.victim = 0;
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

void OptCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (Entry& entry : shard.entries) entry.used = false;
  }
}

std::size_t OptCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Entry& entry : shard.entries) total += entry.used ? 1 : 0;
  }
  return total;
}

std::size_t OptCache::capacity() const { return sets_ * kWays * kShards; }

std::optional<std::int64_t> OptCache::lookup(const Digest128& fp,
                                             std::int64_t machines) {
  obs::ProfileSpan span("cache_lookup");
  if (sets_ == 0) return std::nullopt;
  const std::uint64_t hash = slot_hash(fp, machines);
  Shard& shard = shards_[hash >> 60];
  const std::size_t set = (hash & 0x0fffffffffffffffULL) % sets_;
  std::optional<std::int64_t> out;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    Entry* base = shard.entries.data() + set * kWays;
    for (std::size_t way = 0; way < kWays; ++way) {
      const Entry& entry = base[way];
      if (entry.used && entry.machines == machines && entry.fp == fp) {
        out = entry.value;
        break;
      }
    }
  }
  if (!out) {
    // RAM miss: fall through to the persistent tier and backfill the set on
    // a hit (insert_local, not insert -- the entry must not be echoed back
    // to the store it just came from).
    if (CacheStore* store = store_.load(std::memory_order_acquire)) {
      out = store->load(fp, machines);
      if (out) insert_local(fp, machines, *out);
    }
  }
  obs::Registry::global().counter(out ? "cache.hits" : "cache.misses").add();
  return out;
}

void OptCache::insert(const Digest128& fp, std::int64_t machines,
                      std::int64_t value) {
  const bool changed = insert_local(fp, machines, value);
  if (!changed) return;
  if (CacheStore* store = store_.load(std::memory_order_acquire))
    store->store(fp, machines, value);
}

bool OptCache::insert_local(const Digest128& fp, std::int64_t machines,
                            std::int64_t value) {
  if (sets_ == 0) return false;
  const std::uint64_t hash = slot_hash(fp, machines);
  Shard& shard = shards_[hash >> 60];
  const std::size_t set = (hash & 0x0fffffffffffffffULL) % sets_;
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    Entry* base = shard.entries.data() + set * kWays;
    Entry* slot = nullptr;
    for (std::size_t way = 0; way < kWays; ++way) {
      Entry& entry = base[way];
      if (entry.used && entry.machines == machines && entry.fp == fp) {
        // Verdict/OPT entries are exact (value identical, refresh is a
        // no-op); bracket entries may legitimately tighten, so the slot is
        // updated in place rather than duplicated.
        const bool changed = entry.value != value;
        entry.value = value;
        return changed;
      }
      if (!entry.used && slot == nullptr) slot = &entry;
    }
    if (slot == nullptr) {
      // Set full: overwrite round-robin. The cursor is shard-wide, which
      // is imprecise per set but O(1) and free of per-entry clocks.
      slot = base + (shard.victim++ % kWays);
      evicted = true;
    }
    slot->fp = fp;
    slot->machines = machines;
    slot->value = value;
    slot->used = true;
  }
  obs::Registry& registry = obs::Registry::global();
  registry.counter("cache.inserts").add();
  if (evicted) registry.counter("cache.evictions").add();
  return true;
}

std::optional<bool> OptCache::lookup_feasible(const Digest128& fp,
                                              std::int64_t machines) {
  std::optional<std::int64_t> raw = lookup(fp, machines);
  if (!raw) return std::nullopt;
  return *raw != 0;
}

void OptCache::insert_feasible(const Digest128& fp, std::int64_t machines,
                               bool feasible) {
  insert(fp, machines, feasible ? 1 : 0);
}

std::optional<std::int64_t> OptCache::lookup_opt(const Digest128& fp) {
  return lookup(fp, kOptQuery);
}

void OptCache::insert_opt(const Digest128& fp, std::int64_t machines) {
  insert(fp, kOptQuery, machines);
}

std::optional<std::pair<std::int64_t, std::int64_t>> OptCache::lookup_bounds(
    const Digest128& fp) {
  std::optional<std::int64_t> raw = lookup(fp, kBoundsQuery);
  if (!raw) return std::nullopt;
  return std::pair<std::int64_t, std::int64_t>{*raw >> 32, *raw & 0x7fffffff};
}

void OptCache::insert_bounds(const Digest128& fp, std::int64_t lo,
                             std::int64_t hi) {
  // Both halves must fit the packed slot; a bracket that does not is simply
  // not cached (correctness never depends on a bounds entry being present).
  if (lo < 0 || hi < lo || hi > 0x7fffffff) return;
  insert(fp, kBoundsQuery, (lo << 32) | hi);
}

}  // namespace minmach::util
