#include "minmach/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace minmach {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (std::size_t i = row[c].size(); i < widths[c]; ++i) os << ' ';
      os << " |";
    }
    os << "\n";
  };

  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace minmach
