#include "minmach/util/rational.hpp"

#include <ostream>
#include <stdexcept>
#include <utility>

namespace minmach {

Rat::Rat(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  if (den_.is_zero()) throw std::domain_error("Rat: zero denominator");
  normalize();
}

void Rat::normalize() {
  if (den_.is_negative()) {
    num_ = num_.negated();
    den_ = den_.negated();
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ /= g;
    den_ /= g;
  }
}

Rat Rat::from_string(std::string_view text) {
  auto slash = text.find('/');
  if (slash != std::string_view::npos) {
    return {BigInt::from_string(text.substr(0, slash)),
            BigInt::from_string(text.substr(slash + 1))};
  }
  auto dot = text.find('.');
  if (dot == std::string_view::npos) {
    return {BigInt::from_string(text), BigInt(1)};
  }
  std::string digits(text.substr(0, dot));
  std::string_view frac = text.substr(dot + 1);
  digits += frac;
  BigInt den(1);
  const BigInt ten(10);
  for (std::size_t i = 0; i < frac.size(); ++i) den *= ten;
  return {BigInt::from_string(digits), den};
}

Rat& Rat::operator+=(const Rat& rhs) {
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rat& Rat::operator-=(const Rat& rhs) {
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rat& Rat::operator*=(const Rat& rhs) {
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rat& Rat::operator/=(const Rat& rhs) {
  if (rhs.is_zero()) throw std::domain_error("Rat: division by zero");
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  normalize();
  return *this;
}

Rat Rat::operator-() const {
  Rat out = *this;
  out.num_ = out.num_.negated();
  return out;
}

std::strong_ordering operator<=>(const Rat& lhs, const Rat& rhs) {
  // Denominators are positive, so cross-multiplication preserves order.
  return lhs.num_ * rhs.den_ <=> rhs.num_ * lhs.den_;
}

Rat Rat::abs() const {
  Rat out = *this;
  out.num_ = out.num_.abs();
  return out;
}

BigInt Rat::floor() const {
  auto dm = BigInt::div_mod(num_, den_);
  if (num_.is_negative() && !dm.remainder.is_zero())
    dm.quotient -= BigInt(1);
  return dm.quotient;
}

BigInt Rat::ceil() const {
  auto dm = BigInt::div_mod(num_, den_);
  if (!num_.is_negative() && !dm.remainder.is_zero())
    dm.quotient += BigInt(1);
  return dm.quotient;
}

double Rat::to_double() const { return num_.to_double() / den_.to_double(); }

std::string Rat::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

std::ostream& operator<<(std::ostream& os, const Rat& value) {
  return os << value.to_string();
}

}  // namespace minmach
