#include "minmach/util/rational.hpp"

#include <bit>
#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "minmach/obs/metrics.hpp"
#include "minmach/util/simd.hpp"

namespace minmach {

namespace {

using I128 = __int128;
using U128 = unsigned __int128;

std::uint64_t mag64(std::int64_t value) {
  return value < 0 ? ~static_cast<std::uint64_t>(value) + 1
                   : static_cast<std::uint64_t>(value);
}

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  int az = std::countr_zero(a);
  int bz = std::countr_zero(b);
  int shift = az < bz ? az : bz;
  a >>= az;
  while (b != 0) {
    b >>= std::countr_zero(b);
    if (a > b) std::swap(a, b);
    b -= a;
  }
  return a << shift;
}

bool fits_i64(I128 value) {
  return value >= static_cast<I128>(INT64_MIN) &&
         value <= static_cast<I128>(INT64_MAX);
}

bool both_small(const BigInt& a, const BigInt& b) {
  return a.is_small() && b.is_small();
}

}  // namespace

Rat::Rat(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  if (den_.is_zero()) throw std::domain_error("Rat: zero denominator");
  normalize();
}

void Rat::normalize() {
  if (both_small(num_, den_)) {
    std::int64_t n = num_.small_value();
    std::int64_t d = den_.small_value();
    // INT64_MIN magnitudes negate/divide awkwardly in int64; let the BigInt
    // path canonicalize those (its results demote back automatically).
    if (n != INT64_MIN && d != INT64_MIN) {
      if (n == 0) {
        den_ = BigInt(1);
        return;
      }
      if (d < 0) {
        n = -n;
        d = -d;
      }
      std::uint64_t g = gcd_u64(mag64(n), static_cast<std::uint64_t>(d));
      if (g > 1) {
        n /= static_cast<std::int64_t>(g);
        d /= static_cast<std::int64_t>(g);
      }
      num_ = BigInt(n);
      den_ = BigInt(d);
      return;
    }
  }
  if (den_.is_negative()) {
    num_ = num_.negated();
    den_ = den_.negated();
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ /= g;
    den_ /= g;
  }
}

Rat Rat::from_string(std::string_view text) {
  auto slash = text.find('/');
  if (slash != std::string_view::npos) {
    return {BigInt::from_string(text.substr(0, slash)),
            BigInt::from_string(text.substr(slash + 1))};
  }
  auto dot = text.find('.');
  if (dot == std::string_view::npos) {
    return {BigInt::from_string(text), BigInt(1)};
  }
  std::string digits(text.substr(0, dot));
  std::string_view frac = text.substr(dot + 1);
  digits += frac;
  BigInt den(1);
  const BigInt ten(10);
  for (std::size_t i = 0; i < frac.size(); ++i) den *= ten;
  return {BigInt::from_string(digits), den};
}

// a/b + c/d with gcd(a,b) = gcd(c,d) = 1, b,d > 0: with g = gcd(b, d),
// t = a(d/g) +- c(b/g) and g2 = gcd(t, g), the result t/g2 over
// (b/g)(d/g2) is already in lowest terms (Knuth 4.5.1). All intermediates
// fit __int128 because every factor fits int64.
bool Rat::add_small(const Rat& rhs, bool negate_rhs) {
  const std::int64_t a = num_.small_value();
  const std::int64_t b = den_.small_value();
  const std::int64_t c = rhs.num_.small_value();
  const std::int64_t d = rhs.den_.small_value();
  const std::uint64_t g = gcd_u64(static_cast<std::uint64_t>(b),
                                  static_cast<std::uint64_t>(d));
  const std::int64_t b1 = b / static_cast<std::int64_t>(g);
  const std::int64_t d1 = d / static_cast<std::int64_t>(g);
  const I128 rhs_num = negate_rhs ? -static_cast<I128>(c)
                                  : static_cast<I128>(c);
  const I128 t = static_cast<I128>(a) * d1 + rhs_num * b1;
  if (t == 0) {
    num_ = BigInt(0);
    den_ = BigInt(1);
    return true;
  }
  std::uint64_t g2 = 1;
  if (g > 1) {
    const U128 t_mag = static_cast<U128>(t < 0 ? -t : t);
    g2 = gcd_u64(static_cast<std::uint64_t>(t_mag % g), g);
  }
  const I128 num = t / static_cast<std::int64_t>(g2);
  const I128 den =
      static_cast<I128>(b1) * (d / static_cast<std::int64_t>(g2));
  if (!fits_i64(num) || !fits_i64(den)) return false;
  num_ = BigInt(static_cast<std::int64_t>(num));
  den_ = BigInt(static_cast<std::int64_t>(den));
  return true;
}

bool Rat::mul_small(const Rat& rhs) {
  const std::int64_t a = num_.small_value();
  const std::int64_t b = den_.small_value();
  const std::int64_t c = rhs.num_.small_value();
  const std::int64_t d = rhs.den_.small_value();
  if (a == 0 || c == 0) {
    num_ = BigInt(0);
    den_ = BigInt(1);
    return true;
  }
  // Cross-reduce before multiplying: gcd(a,d) and gcd(c,b) carry all common
  // factors, so the products below are already in lowest terms.
  const std::int64_t g1 = static_cast<std::int64_t>(
      gcd_u64(mag64(a), static_cast<std::uint64_t>(d)));
  const std::int64_t g2 = static_cast<std::int64_t>(
      gcd_u64(mag64(c), static_cast<std::uint64_t>(b)));
  const I128 num = static_cast<I128>(a / g1) * (c / g2);
  const I128 den = static_cast<I128>(b / g2) * (d / g1);
  if (!fits_i64(num) || !fits_i64(den)) return false;
  num_ = BigInt(static_cast<std::int64_t>(num));
  den_ = BigInt(static_cast<std::int64_t>(den));
  return true;
}

bool Rat::div_small(const Rat& rhs) {
  const std::int64_t a = num_.small_value();
  const std::int64_t b = den_.small_value();
  const std::int64_t c = rhs.num_.small_value();
  const std::int64_t d = rhs.den_.small_value();
  if (a == 0) {
    den_ = BigInt(1);
    return true;
  }
  // gcd(|INT64_MIN|, |INT64_MIN|) = 2^63 does not fit int64.
  if (a == INT64_MIN && c == INT64_MIN) return false;
  const std::int64_t g1 =
      static_cast<std::int64_t>(gcd_u64(mag64(a), mag64(c)));
  const std::int64_t g2 = static_cast<std::int64_t>(
      gcd_u64(static_cast<std::uint64_t>(b), static_cast<std::uint64_t>(d)));
  I128 num = static_cast<I128>(a / g1) * (d / g2);
  I128 den = static_cast<I128>(b / g2) * (c / g1);
  if (den < 0) {
    num = -num;
    den = -den;
  }
  if (!fits_i64(num) || !fits_i64(den)) return false;
  num_ = BigInt(static_cast<std::int64_t>(num));
  den_ = BigInt(static_cast<std::int64_t>(den));
  return true;
}

Rat& Rat::add_slow(const Rat& rhs, bool negate_rhs) {
  const BigInt rhs_num = negate_rhs ? rhs.num_.negated() : rhs.num_;
  BigInt g = BigInt::gcd(den_, rhs.den_);
  if (g == BigInt(1)) {
    // Coprime denominators: the cross-sum is already in lowest terms.
    num_ = num_ * rhs.den_ + rhs_num * den_;
    den_ *= rhs.den_;
  } else {
    BigInt b1 = den_ / g;
    BigInt d1 = rhs.den_ / g;
    BigInt t = num_ * d1 + rhs_num * b1;
    BigInt g2 = BigInt::gcd(t, g);
    num_ = t / g2;
    den_ = b1 * (rhs.den_ / g2);
  }
  if (num_.is_zero()) den_ = BigInt(1);
  return *this;
}

Rat& Rat::operator+=(const Rat& rhs) {
  if (both_small(num_, den_) && both_small(rhs.num_, rhs.den_) &&
      add_small(rhs, /*negate_rhs=*/false)) [[likely]] {
    MINMACH_OBS_TALLY(rat_fast_ops);
    return *this;
  }
  MINMACH_OBS_TALLY(rat_slow_ops);
  return add_slow(rhs, /*negate_rhs=*/false);
}

Rat& Rat::operator-=(const Rat& rhs) {
  if (this == &rhs) {
    num_ = BigInt(0);
    den_ = BigInt(1);
    return *this;
  }
  if (both_small(num_, den_) && both_small(rhs.num_, rhs.den_) &&
      add_small(rhs, /*negate_rhs=*/true)) [[likely]] {
    MINMACH_OBS_TALLY(rat_fast_ops);
    return *this;
  }
  MINMACH_OBS_TALLY(rat_slow_ops);
  return add_slow(rhs, /*negate_rhs=*/true);
}

Rat& Rat::operator*=(const Rat& rhs) {
  if (both_small(num_, den_) && both_small(rhs.num_, rhs.den_) &&
      mul_small(rhs)) [[likely]] {
    MINMACH_OBS_TALLY(rat_fast_ops);
    return *this;
  }
  MINMACH_OBS_TALLY(rat_slow_ops);
  BigInt g1 = BigInt::gcd(num_, rhs.den_);
  BigInt g2 = BigInt::gcd(rhs.num_, den_);
  num_ = (num_ / g1) * (rhs.num_ / g2);
  den_ = (den_ / g2) * (rhs.den_ / g1);
  if (num_.is_zero()) den_ = BigInt(1);
  return *this;
}

Rat& Rat::operator/=(const Rat& rhs) {
  if (rhs.is_zero()) throw std::domain_error("Rat: division by zero");
  if (this == &rhs) {
    num_ = BigInt(1);
    den_ = BigInt(1);
    return *this;
  }
  if (both_small(num_, den_) && both_small(rhs.num_, rhs.den_) &&
      div_small(rhs)) [[likely]] {
    MINMACH_OBS_TALLY(rat_fast_ops);
    return *this;
  }
  MINMACH_OBS_TALLY(rat_slow_ops);
  BigInt g1 = BigInt::gcd(num_, rhs.num_);
  BigInt g2 = BigInt::gcd(den_, rhs.den_);
  num_ = (num_ / g1) * (rhs.den_ / g2);
  den_ = (den_ / g2) * (rhs.num_ / g1);
  if (den_.is_negative()) {
    num_ = num_.negated();
    den_ = den_.negated();
  }
  if (num_.is_zero()) den_ = BigInt(1);
  return *this;
}

Rat Rat::operator-() const {
  Rat out = *this;
  out.num_ = out.num_.negated();
  return out;
}

std::strong_ordering operator<=>(const Rat& lhs, const Rat& rhs) {
  // Denominators are positive, so cross-multiplication preserves order; for
  // small components the products fit __int128.
  if (both_small(lhs.num_, lhs.den_) && both_small(rhs.num_, rhs.den_))
      [[likely]] {
    const I128 left = static_cast<I128>(lhs.num_.small_value()) *
                      rhs.den_.small_value();
    const I128 right = static_cast<I128>(rhs.num_.small_value()) *
                       lhs.den_.small_value();
    if (left < right) return std::strong_ordering::less;
    if (left > right) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  return lhs.num_ * rhs.den_ <=> rhs.num_ * lhs.den_;
}

Rat Rat::abs() const {
  Rat out = *this;
  out.num_ = out.num_.abs();
  return out;
}

BigInt Rat::floor() const {
  auto dm = BigInt::div_mod(num_, den_);
  if (num_.is_negative() && !dm.remainder.is_zero())
    dm.quotient -= BigInt(1);
  return dm.quotient;
}

BigInt Rat::ceil() const {
  auto dm = BigInt::div_mod(num_, den_);
  if (!num_.is_negative() && !dm.remainder.is_zero())
    dm.quotient += BigInt(1);
  return dm.quotient;
}

double Rat::to_double() const { return num_.to_double() / den_.to_double(); }

std::string Rat::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

std::ostream& operator<<(std::ostream& os, const Rat& value) {
  return os << value.to_string();
}

// ---- rat_batch ---------------------------------------------------------

namespace rat_batch {

namespace {

// Scratch for the SoA extractions; thread_local so batch calls from the
// parallel sweep harness never contend or allocate in steady state.
struct BatchScratch {
  std::vector<std::int64_t> a_num, a_den, b_num, b_den;
};

BatchScratch& scratch() {
  static thread_local BatchScratch s;
  return s;
}

}  // namespace

bool to_i64(const Rat* values, std::size_t n, std::int64_t* out,
            std::int64_t max_abs) {
  for (std::size_t i = 0; i < n; ++i) {
    const Rat& v = values[i];
    if (!v.is_integer() || !v.num().is_small()) return false;
    const std::int64_t x = v.num().small_value();
    if (x < -max_abs || x > max_abs) return false;
    out[i] = x;
  }
  return true;
}

Rat sum(const Rat* values, std::size_t n, bool avx2) {
  auto& s = scratch();
  s.a_num.resize(n);
  // Integer fast path: the sum of int64 integers is associative and
  // exact, so lane-parallel accumulation matches sequential += bit for
  // bit. One non-integer lane (or an int64 overflow) spills the batch.
  if (to_i64(values, n, s.a_num.data(), INT64_MAX)) {
    std::int64_t total = 0;
    if (util::simd::sum_i64(s.a_num.data(), n, &total, avx2)) return Rat(total);
  }
  MINMACH_OBS_TALLY(simd_scalar_spills);
  Rat acc;
  for (std::size_t i = 0; i < n; ++i) acc += values[i];
  return acc;
}

void less_than(const Rat* a, const Rat* b, std::size_t n, unsigned char* out,
               bool avx2) {
  constexpr std::int64_t kMax31 = (std::int64_t{1} << 31) - 1;
  auto& s = scratch();
  s.a_num.resize(n);
  s.a_den.resize(n);
  s.b_num.resize(n);
  s.b_den.resize(n);
  bool small = true;
  for (std::size_t i = 0; i < n && small; ++i) {
    const BigInt &an = a[i].num(), &ad = a[i].den();
    const BigInt &bn = b[i].num(), &bd = b[i].den();
    small = an.is_small() && ad.is_small() && bn.is_small() && bd.is_small();
    if (!small) break;
    s.a_num[i] = an.small_value();
    s.a_den[i] = ad.small_value();
    s.b_num[i] = bn.small_value();
    s.b_den[i] = bd.small_value();
    small = s.a_num[i] >= -kMax31 && s.a_num[i] <= kMax31 &&
            s.b_num[i] >= -kMax31 && s.b_num[i] <= kMax31 &&
            s.a_den[i] <= kMax31 && s.b_den[i] <= kMax31;
  }
  if (small) {
    // a/b < c/d  <=>  a*d < c*b (denominators positive by Rat invariant);
    // all components < 2^31, so the cross-products are exact in int64.
    util::simd::rat31_less(s.a_num.data(), s.a_den.data(), s.b_num.data(),
                           s.b_den.data(), n, out, avx2);
    return;
  }
  MINMACH_OBS_TALLY(simd_scalar_spills);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<unsigned char>(a[i] < b[i]);
}

void make(const std::int64_t* num, const std::int64_t* den, std::size_t n,
          Rat* out, bool avx2) {
  if (n == 0) return;
  // One vector prescan replaces three per-lane validity branches: any
  // zero/negative denominator or INT64_MIN magnitude sends the whole
  // batch through the checked Rat constructor (which throws on den == 0
  // and canonicalizes INT64_MIN via BigInt, exactly as before).
  std::int64_t num_min = 0, num_max = 0, den_min = 0, den_max = 0;
  util::simd::minmax_i64(num, n, &num_min, &num_max, avx2);
  util::simd::minmax_i64(den, n, &den_min, &den_max, avx2);
  if (den_min <= 0 || num_min == INT64_MIN) {
    MINMACH_OBS_TALLY(simd_scalar_spills);
    for (std::size_t i = 0; i < n; ++i)
      out[i] = Rat(BigInt(num[i]), BigInt(den[i]));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t nv = num[i], dv = den[i];
    if (nv == 0) {
      out[i].num_ = BigInt(0);
      out[i].den_ = BigInt(1);
      continue;
    }
    const std::uint64_t g = gcd_u64(mag64(nv), static_cast<std::uint64_t>(dv));
    if (g > 1) {
      nv /= static_cast<std::int64_t>(g);
      dv /= static_cast<std::int64_t>(g);
    }
    out[i].num_ = BigInt(nv);
    out[i].den_ = BigInt(dv);
  }
}

}  // namespace rat_batch

}  // namespace minmach
