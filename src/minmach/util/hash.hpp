// Deterministic 128-bit structural hashing for the exact types.
//
// `Hasher128` is a streaming two-lane mixer over 64-bit words (splitmix64
// finalizers, length-stamped digest). It is NOT cryptographic; the target
// quality is "128-bit fingerprints of canonical instances do not collide in
// practice", which the affine-canonical OPT cache (DESIGN.md §11) relies on
// to treat digest equality as instance equality.
//
// Representation invariance: `hash_append` for BigInt hashes the VALUE --
// sign, limb count, magnitude limbs -- never the storage tier, so a
// small-tier int64, an SBO inline limb buffer, and a heap-spilled store
// holding the same integer produce identical digests (including the
// non-canonical representations `debug_force_promote()` creates: trailing
// zero limbs are stripped and a zero magnitude hashes as +0). Rat hashes
// numerator then denominator, which is canonical because Rat's invariant
// keeps den > 0 and gcd(num, den) = 1.
#pragma once

#include <cstdint>

namespace minmach {
class BigInt;
class Rat;
}  // namespace minmach

namespace minmach::util {

struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest128&, const Digest128&) = default;
  friend bool operator<(const Digest128& a, const Digest128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

// splitmix64 finalizer: a full-avalanche bijection on 64-bit words.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

class Hasher128 {
 public:
  void absorb(std::uint64_t word) {
    lo_ = mix64(lo_ ^ (word * 0x9e3779b97f4a7c15ULL));
    hi_ = mix64(hi_ + word) ^ (lo_ >> 1);
    ++words_;
  }

  // Word-count stamping keeps absorb(0) distinct from absorbing nothing,
  // so variable-length encodings (limb runs, job lists) stay prefix-free.
  [[nodiscard]] Digest128 digest() const {
    return {mix64(hi_ ^ (words_ * 0x9e3779b97f4a7c15ULL)),
            mix64(lo_ + words_)};
  }

 private:
  std::uint64_t hi_ = 0x6a09e667f3bcc908ULL;  // sqrt(2), sqrt(3) fractions
  std::uint64_t lo_ = 0xbb67ae8584caa73bULL;
  std::uint64_t words_ = 0;
};

}  // namespace minmach::util

namespace minmach {

// Value hashing (representation-independent; see header comment). The
// BigInt overload is a friend defined in hash.cpp so it can walk the limb
// store without copying.
void hash_append(util::Hasher128& hasher, const BigInt& value);
void hash_append(util::Hasher128& hasher, const Rat& value);

// Convenience single-value 64-bit hashes (digest lanes folded).
[[nodiscard]] std::uint64_t hash_value(const BigInt& value);
[[nodiscard]] std::uint64_t hash_value(const Rat& value);

}  // namespace minmach
