// Finite unions of disjoint half-open intervals [a, b) with exact rational
// endpoints. This is the `I` of Theorem 1's load characterization: the
// contribution machinery and Lemma 3's expansion argument operate on these.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "minmach/util/rational.hpp"

namespace minmach {

struct Interval {
  Rat lo;
  Rat hi;

  [[nodiscard]] bool empty() const { return hi <= lo; }
  [[nodiscard]] Rat length() const { return empty() ? Rat(0) : hi - lo; }
  [[nodiscard]] bool contains(const Rat& t) const { return lo <= t && t < hi; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

// Intersection of two intervals (possibly empty).
[[nodiscard]] Interval intersect(const Interval& a, const Interval& b);

class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(Interval iv) { add(iv); }
  explicit IntervalSet(std::vector<Interval> ivs);

  // Unions an interval into the set, merging overlapping/adjacent pieces.
  void add(const Interval& iv);
  void add(const IntervalSet& other);

  [[nodiscard]] bool empty() const { return pieces_.empty(); }
  [[nodiscard]] std::size_t piece_count() const { return pieces_.size(); }
  [[nodiscard]] const std::vector<Interval>& pieces() const { return pieces_; }

  // Total measure |I| = sum of piece lengths.
  [[nodiscard]] Rat length() const;
  [[nodiscard]] bool contains(const Rat& t) const;

  [[nodiscard]] IntervalSet intersect(const Interval& iv) const;
  [[nodiscard]] IntervalSet intersect(const IntervalSet& other) const;

  // Leftmost point of the set; requires non-empty.
  [[nodiscard]] const Rat& min() const;
  [[nodiscard]] const Rat& max() const;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;
  friend std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

 private:
  void normalize();

  // Sorted, pairwise disjoint, non-adjacent, all non-empty.
  std::vector<Interval> pieces_;
};

}  // namespace minmach
