// Arbitrary-precision signed integers with a two-tier representation.
//
// The library computes all time arithmetic exactly (see DESIGN.md §2): the
// strong-lower-bound adversary rescales instances by quantities derived from
// the opponent's own schedule, so denominators grow without bound and no
// fixed-width integer type suffices. Generators, however, deliberately emit
// small-denominator rationals, so in bulk simulation >99% of values fit a
// machine word. BigInt therefore keeps every value that fits `int64_t` in an
// inline field (no heap allocation, overflow-checked machine arithmetic) and
// promotes to sign-magnitude 64-bit limbs (little-endian, `__uint128_t`
// intermediates, Knuth algorithm D division) only when a result overflows.
//
// Promotion invariant: the representation is canonical — a BigInt is in the
// small tier if and only if its value fits `int64_t`. Every operation
// restores this invariant on its result, so equality can compare
// representations on the fast path. (`debug_force_promote()` deliberately
// breaks the invariant for differential testing; all operations still accept
// such non-canonical *inputs* and produce canonical outputs.)
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace minmach {

struct BigIntDivMod;

class BigInt {
 public:
  BigInt() = default;
  // NOLINTNEXTLINE(google-explicit-constructor) intentional: ints promote to BigInt
  BigInt(std::int64_t value) : value_(value) {}
  BigInt(int value) : BigInt(static_cast<std::int64_t>(value)) {}
  BigInt(long long value) : BigInt(static_cast<std::int64_t>(value)) {}
  BigInt(unsigned int value) : BigInt(static_cast<std::int64_t>(value)) {}

  // Parses an optional leading '-' followed by decimal digits. Throws
  // std::invalid_argument on malformed input.
  static BigInt from_string(std::string_view text);

  [[nodiscard]] bool is_zero() const {
    return small_ ? value_ == 0 : limbs_.empty();
  }
  [[nodiscard]] bool is_negative() const {
    return small_ ? value_ < 0 : negative_;
  }
  [[nodiscard]] int signum() const {
    if (small_) return value_ == 0 ? 0 : (value_ < 0 ? -1 : 1);
    return limbs_.empty() ? 0 : (negative_ ? -1 : 1);
  }

  // True iff the value is held in the inline int64 tier.
  [[nodiscard]] bool is_small() const { return small_; }
  // Valid only when is_small().
  [[nodiscard]] std::int64_t small_value() const { return value_; }
  // Test hook: switch to the limb representation without demoting, so the
  // differential suite can force the slow path. Breaks the canonical-form
  // invariant for *this* object; all operations still produce canonical
  // results from such inputs.
  void debug_force_promote();

  [[nodiscard]] BigInt abs() const;
  [[nodiscard]] BigInt negated() const;

  BigInt& operator+=(const BigInt& rhs) {
    if (small_ && rhs.small_) [[likely]] {
      std::int64_t sum;
      if (!__builtin_add_overflow(value_, rhs.value_, &sum)) [[likely]] {
        value_ = sum;
        return *this;
      }
    }
    return add_sub_slow(rhs, /*negate_rhs=*/false);
  }
  BigInt& operator-=(const BigInt& rhs) {
    if (small_ && rhs.small_) [[likely]] {
      std::int64_t diff;
      if (!__builtin_sub_overflow(value_, rhs.value_, &diff)) [[likely]] {
        value_ = diff;
        return *this;
      }
    }
    return add_sub_slow(rhs, /*negate_rhs=*/true);
  }
  BigInt& operator*=(const BigInt& rhs) {
    if (small_ && rhs.small_) [[likely]] {
      std::int64_t product;
      if (!__builtin_mul_overflow(value_, rhs.value_, &product)) [[likely]] {
        value_ = product;
        return *this;
      }
    }
    return mul_slow(rhs);
  }
  // Truncates toward zero. INT64_MIN / -1 is the one small/small quotient
  // that overflows; it promotes through the slow path.
  BigInt& operator/=(const BigInt& rhs) {
    if (small_ && rhs.small_ && rhs.value_ != 0 &&
        !(value_ == INT64_MIN_VALUE && rhs.value_ == -1)) [[likely]] {
      value_ /= rhs.value_;
      return *this;
    }
    return div_slow(rhs);
  }
  // Sign follows the dividend.
  BigInt& operator%=(const BigInt& rhs) {
    if (small_ && rhs.small_ && rhs.value_ != 0 &&
        !(value_ == INT64_MIN_VALUE && rhs.value_ == -1)) [[likely]] {
      value_ %= rhs.value_;
      return *this;
    }
    return mod_slow(rhs);
  }

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  BigInt operator-() const { return negated(); }

  // Quotient truncated toward zero and remainder with the dividend's sign,
  // computed in one pass. Throws std::domain_error on division by zero.
  [[nodiscard]] static BigIntDivMod div_mod(const BigInt& dividend,
                                            const BigInt& divisor);

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) {
    if (lhs.small_ && rhs.small_) [[likely]] return lhs.value_ == rhs.value_;
    return compare_slow(lhs, rhs) == 0;
  }
  friend std::strong_ordering operator<=>(const BigInt& lhs,
                                          const BigInt& rhs) {
    if (lhs.small_ && rhs.small_) [[likely]] return lhs.value_ <=> rhs.value_;
    int cmp = compare_slow(lhs, rhs);
    if (cmp < 0) return std::strong_ordering::less;
    if (cmp > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);  // non-negative result
  [[nodiscard]] static BigInt lcm(const BigInt& a, const BigInt& b);

  // Number of significant bits of |*this| (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  [[nodiscard]] bool fits_int64() const;
  // Throws std::overflow_error unless fits_int64().
  [[nodiscard]] std::int64_t to_int64() const;
  // Best-effort conversion; may lose precision or return +/-inf.
  [[nodiscard]] double to_double() const;

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

 private:
  using Limb = std::uint64_t;
  using WideLimb = unsigned __int128;
  static constexpr int kLimbBits = 64;
  static constexpr std::int64_t INT64_MIN_VALUE =
      (-0x7fffffffffffffffll - 1);

  // Small tier: small_ == true, value in value_, limbs_ empty, negative_
  // unused (false). Limb tier: small_ == false, |value| in limbs_
  // little-endian with no trailing zero limbs, sign in negative_.
  std::int64_t value_ = 0;
  std::vector<Limb> limbs_;
  bool small_ = true;
  bool negative_ = false;

  // Borrowed view of a magnitude; `scratch` backs the small tier.
  struct MagView {
    const Limb* data;
    std::size_t size;
  };
  [[nodiscard]] MagView mag_view(Limb& scratch) const;

  // Adopts a magnitude + sign and restores the canonical-form invariant
  // (demotes to the small tier whenever the value fits int64).
  void assign_mag(std::vector<Limb>&& mag, bool negative);
  static BigInt from_mag(std::vector<Limb>&& mag, bool negative);

  BigInt& add_sub_slow(const BigInt& rhs, bool negate_rhs);
  BigInt& mul_slow(const BigInt& rhs);
  BigInt& div_slow(const BigInt& rhs);
  BigInt& mod_slow(const BigInt& rhs);
  static int compare_slow(const BigInt& lhs, const BigInt& rhs);
};

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace minmach
