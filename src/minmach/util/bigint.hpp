// Arbitrary-precision signed integers with a two-tier representation.
//
// The library computes all time arithmetic exactly (see DESIGN.md §2): the
// strong-lower-bound adversary rescales instances by quantities derived from
// the opponent's own schedule, so denominators grow without bound and no
// fixed-width integer type suffices. Generators, however, deliberately emit
// small-denominator rationals, so in bulk simulation >99% of values fit a
// machine word. BigInt therefore keeps every value that fits `int64_t` in an
// inline field (no heap allocation, overflow-checked machine arithmetic) and
// promotes to sign-magnitude 64-bit limbs (little-endian, `__uint128_t`
// intermediates, Knuth algorithm D division) only when a result overflows.
//
// Promotion invariant: the representation is canonical — a BigInt is in the
// small tier if and only if its value fits `int64_t`. Every operation
// restores this invariant on its result, so equality can compare
// representations on the fast path. (`debug_force_promote()` deliberately
// breaks the invariant for differential testing; all operations still accept
// such non-canonical *inputs* and produce canonical outputs.)
//
// Memory substrate (DESIGN.md §10): promoted magnitudes live in a
// small-buffer-optimized limb store — up to two limbs (values below 2^128,
// which covers the bulk of the strong-lb recursion; measured mean
// denominator size is ~95 bits) sit inline in the BigInt itself, larger
// magnitudes spill to a heap block whose capacity is reused across
// assignments. Intermediate magnitudes never touch the store: the
// arithmetic kernels compute into thread-arena scratch (util/arena.hpp)
// and only the canonical result is copied in, so limb-tier arithmetic is
// allocation-free in the common case.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <new>
#include <string>
#include <string_view>

namespace minmach {

struct BigIntDivMod;

namespace util {
class Hasher128;
}  // namespace util

class BigInt {
 public:
  BigInt() = default;
  // NOLINTNEXTLINE(google-explicit-constructor) intentional: ints promote to BigInt
  BigInt(std::int64_t value) : value_(value) {}
  BigInt(int value) : BigInt(static_cast<std::int64_t>(value)) {}
  BigInt(long long value) : BigInt(static_cast<std::int64_t>(value)) {}
  BigInt(unsigned int value) : BigInt(static_cast<std::int64_t>(value)) {}

  // Parses an optional leading '-' followed by decimal digits. Throws
  // std::invalid_argument on malformed input.
  static BigInt from_string(std::string_view text);

  [[nodiscard]] bool is_zero() const {
    return small_ ? value_ == 0 : limbs_.empty();
  }
  [[nodiscard]] bool is_negative() const {
    return small_ ? value_ < 0 : negative_;
  }
  [[nodiscard]] int signum() const {
    if (small_) return value_ == 0 ? 0 : (value_ < 0 ? -1 : 1);
    return limbs_.empty() ? 0 : (negative_ ? -1 : 1);
  }

  // True iff the value is held in the inline int64 tier.
  [[nodiscard]] bool is_small() const { return small_; }
  // Valid only when is_small().
  [[nodiscard]] std::int64_t small_value() const { return value_; }
  // Test hook: switch to the limb representation without demoting, so the
  // differential suite can force the slow path. Breaks the canonical-form
  // invariant for *this* object; all operations still produce canonical
  // results from such inputs.
  void debug_force_promote();

  [[nodiscard]] BigInt abs() const;
  [[nodiscard]] BigInt negated() const;

  BigInt& operator+=(const BigInt& rhs) {
    if (small_ && rhs.small_) [[likely]] {
      std::int64_t sum;
      if (!__builtin_add_overflow(value_, rhs.value_, &sum)) [[likely]] {
        value_ = sum;
        return *this;
      }
    }
    return add_sub_slow(rhs, /*negate_rhs=*/false);
  }
  BigInt& operator-=(const BigInt& rhs) {
    if (small_ && rhs.small_) [[likely]] {
      std::int64_t diff;
      if (!__builtin_sub_overflow(value_, rhs.value_, &diff)) [[likely]] {
        value_ = diff;
        return *this;
      }
    }
    return add_sub_slow(rhs, /*negate_rhs=*/true);
  }
  BigInt& operator*=(const BigInt& rhs) {
    if (small_ && rhs.small_) [[likely]] {
      std::int64_t product;
      if (!__builtin_mul_overflow(value_, rhs.value_, &product)) [[likely]] {
        value_ = product;
        return *this;
      }
    }
    return mul_slow(rhs);
  }
  // Truncates toward zero. INT64_MIN / -1 is the one small/small quotient
  // that overflows; it promotes through the slow path.
  BigInt& operator/=(const BigInt& rhs) {
    if (small_ && rhs.small_ && rhs.value_ != 0 &&
        !(value_ == INT64_MIN_VALUE && rhs.value_ == -1)) [[likely]] {
      value_ /= rhs.value_;
      return *this;
    }
    return div_slow(rhs);
  }
  // Sign follows the dividend.
  BigInt& operator%=(const BigInt& rhs) {
    if (small_ && rhs.small_ && rhs.value_ != 0 &&
        !(value_ == INT64_MIN_VALUE && rhs.value_ == -1)) [[likely]] {
      value_ %= rhs.value_;
      return *this;
    }
    return mod_slow(rhs);
  }

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  BigInt operator-() const { return negated(); }

  // Quotient truncated toward zero and remainder with the dividend's sign,
  // computed in one pass. Throws std::domain_error on division by zero.
  [[nodiscard]] static BigIntDivMod div_mod(const BigInt& dividend,
                                            const BigInt& divisor);

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) {
    if (lhs.small_ && rhs.small_) [[likely]] return lhs.value_ == rhs.value_;
    return compare_slow(lhs, rhs) == 0;
  }
  friend std::strong_ordering operator<=>(const BigInt& lhs,
                                          const BigInt& rhs) {
    if (lhs.small_ && rhs.small_) [[likely]] return lhs.value_ <=> rhs.value_;
    int cmp = compare_slow(lhs, rhs);
    if (cmp < 0) return std::strong_ordering::less;
    if (cmp > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  // Non-negative result; magnitude-only Euclid on arena scratch.
  [[nodiscard]] static BigInt gcd(const BigInt& a, const BigInt& b);
  [[nodiscard]] static BigInt lcm(const BigInt& a, const BigInt& b);

  // Number of significant bits of |*this| (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  [[nodiscard]] bool fits_int64() const;
  // Throws std::overflow_error unless fits_int64().
  [[nodiscard]] std::int64_t to_int64() const;
  // Best-effort conversion; may lose precision or return +/-inf.
  [[nodiscard]] double to_double() const;

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

 private:
  using Limb = std::uint64_t;
  using WideLimb = unsigned __int128;
  static constexpr int kLimbBits = 64;
  static constexpr std::int64_t INT64_MIN_VALUE =
      (-0x7fffffffffffffffll - 1);
  // 4 limbs = 256 bits inline. The adversary families' denominators average
  // ~95 bits, so the inline buffer absorbs the bulk of slow-tier values
  // (the deep-recursion tail past 256 bits still spills). Wider buffers
  // were measured slower overall: every BigInt move/copy pays for the
  // inline bytes, and past 4 limbs that overtakes the mallocs saved.
  static constexpr std::size_t kInlineLimbs = 4;

  // Small-buffer-optimized magnitude storage. Magnitudes of at most
  // kInlineLimbs limbs live in `inline_`; larger ones spill to `heap_`,
  // whose capacity grows geometrically and is never released until the
  // store is destroyed or moved from — so a BigInt repeatedly assigned
  // large values allocates O(log max_size) times, not O(assignments).
  // Spills are the only heap traffic BigInt generates (tallied as
  // "mem.bigint_spill"); all intermediates use arena scratch. Under
  // util::substrate_legacy() the inline buffer is disabled (every non-empty
  // magnitude is heap-backed), reproducing the pre-substrate
  // std::vector<Limb> storage for the memory bench's baseline.
  class LimbStore {
   public:
    LimbStore() = default;
    LimbStore(const LimbStore& other) { assign(other.data(), other.size_); }
    LimbStore(LimbStore&& other) noexcept { steal(other); }
    LimbStore& operator=(const LimbStore& other) {
      if (this != &other) assign(other.data(), other.size_);
      return *this;
    }
    LimbStore& operator=(LimbStore&& other) noexcept {
      if (this != &other) {
        ::operator delete(heap_);
        steal(other);
      }
      return *this;
    }
    ~LimbStore() { ::operator delete(heap_); }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] const Limb* data() const {
      return heap_ != nullptr ? heap_ : inline_;
    }
    [[nodiscard]] Limb* data() { return heap_ != nullptr ? heap_ : inline_; }
    Limb operator[](std::size_t i) const { return data()[i]; }
    [[nodiscard]] Limb back() const { return data()[size_ - 1]; }
    void clear() { size_ = 0; }
    // Copies `n` limbs in; previous contents are discarded. `src` must not
    // alias this store's own buffer when a spill can occur (all call sites
    // copy out of arena scratch or a different BigInt).
    void assign(const Limb* src, std::size_t n);
    void push_back(Limb limb);

   private:
    void steal(LimbStore& other) noexcept;
    void spill(std::size_t needed, bool preserve);

    Limb inline_[kInlineLimbs] = {};
    Limb* heap_ = nullptr;
    std::uint32_t size_ = 0;
    std::uint32_t cap_ = kInlineLimbs;
  };

  // Small tier: small_ == true, value in value_, limbs_ empty, negative_
  // unused (false). Limb tier: small_ == false, |value| in limbs_
  // little-endian with no trailing zero limbs, sign in negative_.
  std::int64_t value_ = 0;
  LimbStore limbs_;
  bool small_ = true;
  bool negative_ = false;

  // Borrowed view of a magnitude; `scratch` backs the small tier.
  struct MagView {
    const Limb* data;
    std::size_t size;
  };
  [[nodiscard]] MagView mag_view(Limb& scratch) const;

  // Adopts a magnitude + sign and restores the canonical-form invariant
  // (demotes to the small tier whenever the value fits int64). The source
  // is borrowed (typically arena scratch) and copied into the limb store.
  void assign_mag(const Limb* mag, std::size_t size, bool negative);
  static BigInt from_mag(const Limb* mag, std::size_t size, bool negative);

  BigInt& add_sub_slow(const BigInt& rhs, bool negate_rhs);
  BigInt& mul_slow(const BigInt& rhs);
  BigInt& div_slow(const BigInt& rhs);
  BigInt& mod_slow(const BigInt& rhs);
  static int compare_slow(const BigInt& lhs, const BigInt& rhs);

  // Representation-independent value hashing (util/hash.hpp); walks the
  // magnitude through mag_view so both storage tiers hash identically.
  friend void hash_append(util::Hasher128& hasher, const BigInt& value);
};

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace minmach
