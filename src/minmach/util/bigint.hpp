// Arbitrary-precision signed integers.
//
// The library computes all time arithmetic exactly (see DESIGN.md §2): the
// strong-lower-bound adversary rescales instances by quantities derived from
// the opponent's own schedule, so denominators grow without bound and no
// fixed-width integer type suffices. BigInt is sign-magnitude over 32-bit
// limbs (little-endian) with 64-bit intermediates; division is Knuth
// algorithm D.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace minmach {

struct BigIntDivMod;

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor) intentional: ints promote to BigInt
  BigInt(int value) : BigInt(static_cast<std::int64_t>(value)) {}
  BigInt(long long value) : BigInt(static_cast<std::int64_t>(value)) {}
  BigInt(unsigned int value) : BigInt(static_cast<std::int64_t>(value)) {}

  // Parses an optional leading '-' followed by decimal digits. Throws
  // std::invalid_argument on malformed input.
  static BigInt from_string(std::string_view text);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] int signum() const {
    return is_zero() ? 0 : (negative_ ? -1 : 1);
  }

  [[nodiscard]] BigInt abs() const;
  [[nodiscard]] BigInt negated() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  BigInt& operator/=(const BigInt& rhs);  // truncates toward zero
  BigInt& operator%=(const BigInt& rhs);  // sign follows dividend

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  BigInt operator-() const { return negated(); }

  // Quotient truncated toward zero and remainder with the dividend's sign,
  // computed in one pass. Throws std::domain_error on division by zero.
  [[nodiscard]] static BigIntDivMod div_mod(const BigInt& dividend,
                                            const BigInt& divisor);

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) {
    return lhs.negative_ == rhs.negative_ && lhs.limbs_ == rhs.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& lhs,
                                          const BigInt& rhs);

  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);  // non-negative result
  [[nodiscard]] static BigInt lcm(const BigInt& a, const BigInt& b);

  // Number of significant bits of |*this| (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  [[nodiscard]] bool fits_int64() const;
  // Throws std::overflow_error unless fits_int64().
  [[nodiscard]] std::int64_t to_int64() const;
  // Best-effort conversion; may lose precision or return +/-inf.
  [[nodiscard]] double to_double() const;

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

 private:
  using Limb = std::uint32_t;
  using WideLimb = std::uint64_t;
  static constexpr int kLimbBits = 32;

  // |limbs_| little-endian, no trailing zero limbs; zero <=> limbs_.empty().
  std::vector<Limb> limbs_;
  bool negative_ = false;

  void trim();
  // Magnitude-only helpers; ignore signs of the operands.
  static int compare_magnitude(const BigInt& lhs, const BigInt& rhs);
  static std::vector<Limb> add_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  // Requires |a| >= |b|.
  static std::vector<Limb> sub_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  static std::vector<Limb> mul_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  static void div_mod_magnitude(const std::vector<Limb>& dividend,
                                const std::vector<Limb>& divisor,
                                std::vector<Limb>& quotient,
                                std::vector<Limb>& remainder);
};

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace minmach
