// Bump/arena allocator for the hot-path scratch of the exact-arithmetic
// kernels (DESIGN.md §10).
//
// The limb-tier BigInt kernels need short-lived magnitude buffers (an
// addition result, Knuth-D's normalized dividend/divisor, a quotient and
// remainder). The seed allocated a fresh std::vector for every one of
// them -- ~13M heap allocations in a single strong-lower-bound run. The
// arena replaces those with pointer bumps into thread-local chunks:
//
//   ArenaScope scope(thread_arena());
//   Limb* out = scope.alloc<Limb>(n);
//   ... compute into out, copy the canonical result out ...
//   // scope destructor rolls the arena back; nothing is freed.
//
// Lifetime rules:
//  * Arena memory is valid only while the allocating ArenaScope is alive.
//    Nothing that outlives the scope may point into it; callers copy the
//    final value into owned storage (BigInt's inline/spill limb store)
//    before the scope closes.
//  * Scopes nest like a stack (checkpoint/rollback of a bump pointer);
//    destroying an outer scope invalidates every inner allocation. The
//    BigInt kernels open at most one scope per operator call and recursion
//    (gcd -> div_mod -> kernels) nests naturally.
//  * Chunks are never returned to the OS until the Arena is destroyed
//    (thread exit for thread_arena()); rollback just rewinds the bump
//    pointer, so steady-state allocation cost is a pointer add.
//
// Legacy mode (set_substrate_legacy(true)) makes allocate() perform one
// real heap allocation per request, freed on rollback -- reproducing the
// seed's per-temporary allocation profile. bench/m01_memory_substrate.cpp
// uses it as the pre-PR baseline the acceptance thresholds are measured
// against (same precedent as OracleOptions::legacy() for the oracle). The
// flag also switches the simulator's run pooling and the flow layer's
// buffer reuse off; see the call sites in sim/engine.cpp and flow/dinic.hpp.
//
// Determinism: the "mem.arena_bytes" / "mem.heap_allocs" tallies count
// *requests* (a pure function of the workload). Physical chunk growth is
// thread-local warm-up state -- it depends on which tasks share a thread --
// so it is deliberately kept out of the drained tallies and only surfaces
// in Arena::stats() for local inspection.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "minmach/obs/metrics.hpp"

namespace minmach::util {

// Global switch: true restores the seed's allocation behaviour (fresh heap
// block per temporary, no simulator pooling, no flow buffer reuse). Only
// the memory bench flips it; it defaults to false everywhere else.
// Header-inline so the read compiles down to a single load on the hot path
// (the kernels consult it tens of millions of times per run). Relaxed is
// enough: the bench flips it only between single-threaded measurement
// phases, never concurrently with kernel work.
namespace detail {
inline std::atomic<bool> g_substrate_legacy{false};
}  // namespace detail

[[nodiscard]] inline bool substrate_legacy() noexcept {
  return detail::g_substrate_legacy.load(std::memory_order_relaxed);
}
inline void set_substrate_legacy(bool legacy) noexcept {
  detail::g_substrate_legacy.store(legacy, std::memory_order_relaxed);
}

class Arena {
 public:
  // Rollback token: a position in the chunk list plus the bump offset
  // there, and the legacy allocation stack depth.
  struct Marker {
    std::size_t chunk = 0;
    std::size_t offset = 0;
    std::size_t legacy_depth = 0;
  };

  struct Stats {
    std::uint64_t chunk_allocs = 0;   // physical chunk mallocs (lifetime)
    std::uint64_t bytes_reserved = 0; // sum of chunk sizes currently held
    std::uint64_t bytes_requested = 0;// logical bytes served via allocate()
  };

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() {
    for (Chunk& chunk : chunks_) ::operator delete(chunk.data);
    for (void* p : legacy_allocs_) ::operator delete(p);
  }

  // Returns `bytes` of uninitialized storage aligned for any limb/POD use
  // (16-byte granularity). Valid until the enclosing scope rolls back.
  void* allocate(std::size_t bytes) {
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    MINMACH_OBS_TALLY_ADD(arena_bytes, bytes);
    stats_.bytes_requested += bytes;
    if (substrate_legacy()) [[unlikely]] {
      MINMACH_OBS_TALLY(heap_allocs);
      void* p = ::operator new(bytes);
      // The seed's temporaries were value-initialized vectors; keep the
      // baseline faithful by zeroing like std::vector<Limb>(n) did.
      std::memset(p, 0, bytes);
      legacy_allocs_.push_back(p);
      return p;
    }
    if (active_ < chunks_.size()) [[likely]] {
      Chunk& chunk = chunks_[active_];
      if (chunk.used + bytes <= chunk.size) [[likely]] {
        void* p = chunk.data + chunk.used;
        chunk.used += bytes;
        return p;
      }
    }
    return allocate_slow(bytes);
  }

  // Typed convenience for trivially-destructible scratch arrays.
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      alignof(T) <= kAlign,
                  "arena scratch must not need destruction");
    return static_cast<T*>(allocate(count * sizeof(T)));
  }

  [[nodiscard]] Marker checkpoint() const {
    return {active_,
            active_ < chunks_.size() ? chunks_[active_].used : 0,
            legacy_allocs_.size()};
  }

  void rollback(const Marker& marker) {
    while (legacy_allocs_.size() > marker.legacy_depth) {
      ::operator delete(legacy_allocs_.back());
      legacy_allocs_.pop_back();
    }
    active_ = marker.chunk;
    if (active_ < chunks_.size()) chunks_[active_].used = marker.offset;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t kMinChunk = std::size_t{32} << 10;  // 32 KiB
  static constexpr std::size_t kMaxChunk = std::size_t{1} << 20;   // 1 MiB

  struct Chunk {
    std::byte* data = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* allocate_slow(std::size_t bytes) {
    // Advance through chunks retained from a previous high-water mark;
    // entering one resets its bump offset (its contents died at rollback).
    while (active_ + 1 < chunks_.size()) {
      Chunk& chunk = chunks_[++active_];
      chunk.used = 0;
      if (bytes <= chunk.size) {
        chunk.used = bytes;
        return chunk.data;
      }
    }
    std::size_t size = chunks_.empty()
                           ? kMinChunk
                           : std::min(kMaxChunk, chunks_.back().size * 2);
    if (size < bytes) size = bytes;
    Chunk chunk{static_cast<std::byte*>(::operator new(size)), size, bytes};
    chunks_.push_back(chunk);
    active_ = chunks_.size() - 1;
    ++stats_.chunk_allocs;
    stats_.bytes_reserved += size;
    return chunk.data;
  }

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::vector<void*> legacy_allocs_;
  Stats stats_;
};

// The per-thread arena every arithmetic kernel draws scratch from.
Arena& thread_arena() noexcept;

// RAII checkpoint/rollback over an arena. Everything allocated through the
// scope (or directly from the arena while the scope is the innermost one)
// is reclaimed when the scope dies.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena)
      : arena_(arena), marker_(arena.checkpoint()) {}
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { arena_.rollback(marker_); }

  template <typename T>
  T* alloc(std::size_t count) {
    return arena_.alloc<T>(count);
  }
  [[nodiscard]] Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Marker marker_;
};

}  // namespace minmach::util
