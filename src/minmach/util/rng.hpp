// Seeded, reproducible PRNG (xoshiro256**). Every generator and randomized
// experiment takes an explicit seed so that tables in EXPERIMENTS.md are
// exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "minmach/util/rational.hpp"

namespace minmach {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [lo, hi], inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double uniform_double();

  // Uniform rational k/denominator with k in [lo*denominator, hi*denominator].
  Rat uniform_rat(std::int64_t lo, std::int64_t hi, std::int64_t denominator);

  // True with probability p (0 <= p <= 1).
  bool bernoulli(double p);

  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace minmach
