// Query engine above the feasibility oracle (DESIGN.md §11).
//
// query_optimal_machines() answers "OPT of this instance" through two
// accelerators layered over FeasibilityOracle:
//
//  * the global affine-canonical OPT cache (util/opt_cache.hpp): a query
//    whose canonical fingerprint already has a cached OPT value returns it
//    without building a network at all;
//  * speculative parallel probing: on a miss, the galloping/binary OPT
//    search probes the 2-3 live candidate machine counts of each search
//    round concurrently (one pooled oracle network per lane), then retires
//    the probes whose verdicts monotonicity already implied. A round
//    shrinks the bracket at least as much as one sequential probe, so the
//    total executed probes stay within sequential galloping plus the
//    (live - 1) x rounds overhead bound -- enforced by bench/q01.
//
// Both accelerators are exact: the returned machine count is identical to
// FeasibilityOracle::optimal_machines() for every instance, every
// OracleOptions combination, with the cache on or off (differentially
// tested in tests/test_query.cpp).
#pragma once

#include <cstdint>

#include "minmach/core/instance.hpp"
#include "minmach/flow/feasibility.hpp"

namespace minmach {

struct QueryOptions {
  OracleOptions oracle{};
  // Consult the global OPT cache for the final OPT value (and publish the
  // result back). Per-probe verdict caching inside FeasibilityOracle is
  // governed by util::OptCache::global().enabled() alone; this knob only
  // gates the query-level lookup. No-op while the global cache is disabled.
  bool use_cache = true;
  // Live candidate machine counts probed concurrently per search round;
  // values <= 1 mean sequential (delegates to the oracle's own search),
  // values above 4 are clamped.
  int speculate = 0;
};

struct QueryStats {
  std::int64_t machines = 0;  // the answer: exact migratory OPT
  std::uint64_t probes = 0;   // network probes actually executed
  std::uint64_t rounds = 0;   // speculative rounds launched (0 sequential)
  std::uint64_t retired = 0;  // probes whose verdict monotonicity implied
  bool cache_hit = false;     // answered from the OPT cache outright
};

// Exact OPT with per-query statistics. Returns machines = 0 for the empty
// instance; throws std::invalid_argument on a malformed one.
[[nodiscard]] QueryStats query_optimal_machines_stats(
    const Instance& instance, const QueryOptions& options = {});

// Convenience wrapper returning just the machine count.
[[nodiscard]] std::int64_t query_optimal_machines(
    const Instance& instance, const QueryOptions& options = {});

}  // namespace minmach
