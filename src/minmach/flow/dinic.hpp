// Dinic's max-flow over an arbitrary ordered capacity type. The scheduling
// feasibility network (Horn 1974) uses exact rational capacities so that
// adversarially constructed instances (whose denominators are unbounded, see
// DESIGN.md §2) are certified exactly; unit tests also instantiate the
// template with long long.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "minmach/util/arena.hpp"

namespace minmach {

// Work counters for one Dinic instance, accumulated across max_flow calls.
// The feasibility oracle folds these into the metrics registry ("flow.*")
// after each probe.
struct DinicStats {
  std::uint64_t bfs_passes = 0;        // level graphs built
  std::uint64_t augmenting_paths = 0;  // successful source->sink pushes
  std::uint64_t edge_visits = 0;       // residual edges scanned (BFS + DFS)
};

template <typename Cap>
class Dinic {
 public:
  explicit Dinic(std::size_t node_count)
      : adjacency_(node_count), level_(node_count), next_edge_(node_count) {}

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }

  // Rebuilds to an empty network over `node_count` nodes, recycling the
  // surviving per-node adjacency vectors and the edge/level/iter storage
  // of the previous build (DESIGN.md §10): an oracle that reconstructs its
  // network keeps the old allocations instead of churning. Counters reset,
  // matching a freshly constructed Dinic.
  void reinit(std::size_t node_count) {
    const std::size_t keep = std::min(node_count, adjacency_.size());
    for (std::size_t i = 0; i < keep; ++i) adjacency_[i].clear();
    adjacency_.resize(node_count);
    edges_.clear();
    initial_.clear();
    level_.resize(node_count);
    next_edge_.resize(node_count);
    stats_ = DinicStats{};
  }

  // Returns a handle usable with flow_on() after max_flow().
  std::size_t add_edge(std::size_t from, std::size_t to, Cap capacity) {
    if (from >= node_count() || to >= node_count())
      throw std::out_of_range("Dinic: node out of range");
    std::size_t handle = edges_.size();
    edges_.push_back({to, capacity, false});
    edges_.push_back({from, Cap(0), true});
    initial_.push_back(std::move(capacity));
    initial_.push_back(Cap(0));
    adjacency_[from].push_back(handle);
    adjacency_[to].push_back(handle + 1);
    return handle;
  }

  // Discards all routed flow, restoring every edge to its initial capacity.
  // Together with set_capacity() this lets one network answer a whole
  // binary search (only capacities change between probes) instead of being
  // rebuilt per probe.
  void reset_flow() {
    for (std::size_t i = 0; i < edges_.size(); ++i)
      edges_[i].capacity = initial_[i];
  }

  // Replaces the capacity of the edge returned by add_edge. Any flow on the
  // edge is discarded, so call reset_flow() before re-running max_flow().
  void set_capacity(std::size_t handle, Cap capacity) {
    edges_[handle].capacity = capacity;
    edges_[handle + 1].capacity = Cap(0);
    initial_[handle] = std::move(capacity);
    initial_[handle + 1] = Cap(0);
  }

  // Grows the capacity of the edge returned by add_edge by `delta` (>= 0)
  // WITHOUT touching the flow already routed through it: the forward
  // residual widens, the reverse residual (= routed flow) is preserved.
  // This is the warm-start primitive: if every capacity change since the
  // last max_flow() was an increase, the routed flow is still feasible and
  // max_flow() resumes from it, so only the newly admitted flow costs work.
  void increase_capacity(std::size_t handle, const Cap& delta) {
    edges_[handle].capacity += delta;
    initial_[handle] += delta;
  }

  Cap max_flow(std::size_t source, std::size_t sink) {
    if (source == sink) throw std::invalid_argument("Dinic: source == sink");
    Cap total(0);
    while (build_levels(source, sink)) {
      next_edge_.assign(node_count(), 0);
      while (true) {
        Cap pushed = push(source, sink, Cap(-1));
        if (!(Cap(0) < pushed)) break;
        ++stats_.augmenting_paths;
        total += pushed;
      }
    }
    return total;
  }

  [[nodiscard]] const DinicStats& stats() const { return stats_; }

  // Flow routed through the edge returned by add_edge (reverse residual).
  [[nodiscard]] Cap flow_on(std::size_t handle) const {
    return edges_[handle + 1].capacity;
  }

 private:
  struct Edge {
    std::size_t to;
    Cap capacity;  // residual
    bool is_reverse;
  };

  bool build_levels(std::size_t source, std::size_t sink) {
    ++stats_.bfs_passes;
    level_.assign(node_count(), -1);
    level_[source] = 0;
    if (util::substrate_legacy()) [[unlikely]] {
      // Seed behaviour: a fresh std::queue (heap-backed deque) per pass.
      // Kept as the memory bench's pre-reuse baseline.
      std::queue<std::size_t> frontier;
      frontier.push(source);
      while (!frontier.empty()) {
        std::size_t node = frontier.front();
        frontier.pop();
        stats_.edge_visits += adjacency_[node].size();
        for (std::size_t handle : adjacency_[node]) {
          const Edge& edge = edges_[handle];
          if (level_[edge.to] == -1 && Cap(0) < edge.capacity) {
            level_[edge.to] = level_[node] + 1;
            frontier.push(edge.to);
          }
        }
      }
      return level_[sink] != -1;
    }
    // Pooled frontier: a BFS visits each node once, so the vector doubles
    // as the queue (scan head forward) and its storage survives across
    // passes and probes.
    bfs_queue_.clear();
    bfs_queue_.push_back(source);
    for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
      std::size_t node = bfs_queue_[head];
      stats_.edge_visits += adjacency_[node].size();
      for (std::size_t handle : adjacency_[node]) {
        const Edge& edge = edges_[handle];
        if (level_[edge.to] == -1 && Cap(0) < edge.capacity) {
          level_[edge.to] = level_[node] + 1;
          bfs_queue_.push_back(edge.to);
        }
      }
    }
    return level_[sink] != -1;
  }

  // limit < 0 means unbounded (only the source call uses that).
  Cap push(std::size_t node, std::size_t sink, Cap limit) {
    if (node == sink) return limit;
    for (std::size_t& i = next_edge_[node]; i < adjacency_[node].size(); ++i) {
      ++stats_.edge_visits;
      std::size_t handle = adjacency_[node][i];
      Edge& edge = edges_[handle];
      if (!(Cap(0) < edge.capacity) || level_[edge.to] != level_[node] + 1)
        continue;
      Cap sub_limit = edge.capacity;
      if (Cap(0) < limit && limit < sub_limit) sub_limit = limit;
      Cap pushed = push(edge.to, sink, sub_limit);
      if (Cap(0) < pushed) {
        edge.capacity -= pushed;
        edges_[handle ^ 1].capacity += pushed;
        return pushed;
      }
    }
    return Cap(0);
  }

  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<Edge> edges_;
  std::vector<Cap> initial_;  // capacity of each edge as added / last set
  std::vector<int> level_;
  std::vector<std::size_t> next_edge_;
  std::vector<std::size_t> bfs_queue_;  // pooled BFS frontier, see build_levels
  DinicStats stats_;
};

}  // namespace minmach
