// Dinic's max-flow over an arbitrary ordered capacity type. The scheduling
// feasibility network (Horn 1974) uses exact rational capacities so that
// adversarially constructed instances (whose denominators are unbounded, see
// DESIGN.md §2) are certified exactly; unit tests also instantiate the
// template with long long.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "minmach/obs/profile.hpp"
#include "minmach/util/arena.hpp"
#include "minmach/util/bitset.hpp"
#include "minmach/util/simd.hpp"

namespace minmach {

// Work counters for one Dinic instance, accumulated across max_flow calls.
// The feasibility oracle folds these into the metrics registry ("flow.*")
// after each probe.
struct DinicStats {
  std::uint64_t bfs_passes = 0;        // level graphs built
  std::uint64_t augmenting_paths = 0;  // successful source->sink pushes
  std::uint64_t edge_visits = 0;       // residual edges scanned (BFS + DFS)
};

template <typename Cap>
class Dinic {
 public:
  explicit Dinic(std::size_t node_count)
      : adjacency_(node_count), level_(node_count), next_edge_(node_count) {}

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }

  // Rebuilds to an empty network over `node_count` nodes, recycling the
  // surviving per-node adjacency vectors and the edge/level/iter storage
  // of the previous build (DESIGN.md §10): an oracle that reconstructs its
  // network keeps the old allocations instead of churning. Counters reset,
  // matching a freshly constructed Dinic.
  void reinit(std::size_t node_count) {
    const std::size_t keep = std::min(node_count, adjacency_.size());
    for (std::size_t i = 0; i < keep; ++i) adjacency_[i].clear();
    adjacency_.resize(node_count);
    edges_.clear();
    initial_.clear();
    level_.resize(node_count);
    next_edge_.resize(node_count);
    stats_ = DinicStats{};
    accel_mode_ = -1;
    csr_valid_ = false;
  }

  // Level-graph kernel selection: -1 follows the global SIMD dispatch
  // (util::simd::active(), re-read on every pass), 0 forces the scalar
  // queue, 1 forces the bit-parallel frontier. The feasibility oracle pins
  // this from OracleOptions::simd so its legacy baseline stays the seed
  // path; util::substrate_legacy() overrides everything (see build_levels).
  void set_level_kernel(int mode) { accel_mode_ = mode; }

  // Appends an isolated node and returns its id. Existing edges, routed
  // flow, and handles stay valid -- only the CSR mirror is invalidated --
  // so the dynamic oracle can grow the network between max_flow() calls
  // (new leaf after a segment split, new job node on insert).
  std::size_t add_node() {
    adjacency_.emplace_back();
    level_.push_back(-1);
    next_edge_.push_back(0);
    csr_valid_ = false;
    return adjacency_.size() - 1;
  }

  // Returns a handle usable with flow_on() after max_flow().
  std::size_t add_edge(std::size_t from, std::size_t to, Cap capacity) {
    if (from >= node_count() || to >= node_count())
      throw std::out_of_range("Dinic: node out of range");
    std::size_t handle = edges_.size();
    edges_.push_back({to, capacity});
    edges_.push_back({from, Cap(0)});
    initial_.push_back(std::move(capacity));
    initial_.push_back(Cap(0));
    adjacency_[from].push_back(handle);
    adjacency_[to].push_back(handle + 1);
    csr_valid_ = false;
    return handle;
  }

  // Discards all routed flow, restoring every edge to its initial capacity.
  // Together with set_capacity() this lets one network answer a whole
  // binary search (only capacities change between probes) instead of being
  // rebuilt per probe.
  void reset_flow() {
    for (std::size_t i = 0; i < edges_.size(); ++i)
      edges_[i].capacity = initial_[i];
  }

  // Replaces the capacity of the edge returned by add_edge. Any flow on the
  // edge is discarded, so call reset_flow() before re-running max_flow().
  void set_capacity(std::size_t handle, Cap capacity) {
    edges_[handle].capacity = capacity;
    edges_[handle + 1].capacity = Cap(0);
    initial_[handle] = std::move(capacity);
    initial_[handle + 1] = Cap(0);
  }

  // Grows the capacity of the edge returned by add_edge by `delta` (>= 0)
  // WITHOUT touching the flow already routed through it: the forward
  // residual widens, the reverse residual (= routed flow) is preserved.
  // This is the warm-start primitive: if every capacity change since the
  // last max_flow() was an increase, the routed flow is still feasible and
  // max_flow() resumes from it, so only the newly admitted flow costs work.
  void increase_capacity(std::size_t handle, const Cap& delta) {
    edges_[handle].capacity += delta;
    initial_[handle] += delta;
  }

  // Removes `amount` (>= 0, <= flow_on(handle)) of routed flow from the
  // edge returned by add_edge: the forward residual widens back, the
  // reverse residual (= routed flow) shrinks. Flow conservation at the
  // endpoints is the CALLER's contract -- the dynamic oracle drains whole
  // source->job->leaf->sink triples, cancelling the same amount on all
  // three edges of a path, so every intermediate node stays balanced and
  // the remaining flow is again a valid (smaller) flow that max_flow()
  // can resume from.
  void cancel_flow(std::size_t handle, const Cap& amount) {
    edges_[handle].capacity += amount;
    edges_[handle ^ 1].capacity -= amount;
  }

  // Head node of the edge returned by add_edge (handle ^ 1 gives the tail,
  // via the reverse twin). Lets callers that only kept handles recover the
  // topology, e.g. the dynamic oracle mapping a job->leaf edge back to the
  // leaf's position.
  [[nodiscard]] std::size_t edge_target(std::size_t handle) const {
    return edges_[handle].to;
  }

  Cap max_flow(std::size_t source, std::size_t sink) {
    if (source == sink) throw std::invalid_argument("Dinic: source == sink");
    obs::ProfileSpan span("max_flow");
    // Accel decision hoisted per call (DESIGN.md §12): the bit-parallel
    // level BFS plus the CSR adjacency mirror. Edge ORDER is identical
    // either way, so the routed flow is bit-identical; only locality and
    // BFS bookkeeping differ.
    use_accel_ = !util::substrate_legacy() &&
                 (accel_mode_ > 0 ||
                  (accel_mode_ < 0 && util::simd::active()));
    if (use_accel_) ensure_csr();
    Cap total(0);
    // Profiled as two child phases: "bfs" covers the level-graph builds,
    // "dfs" the blocking-flow augmentation between them. Span counts equal
    // the number of Dinic phases, which the determinism harness already
    // pins via flow.bfs_passes.
    while (true) {
      bool layered;
      {
        obs::ProfileSpan bfs_span("bfs");
        layered = build_levels(source, sink);
      }
      if (!layered) break;
      obs::ProfileSpan dfs_span("dfs");
      next_edge_.assign(node_count(), 0);
      while (true) {
        Cap pushed = push(source, sink, Cap(-1));
        if (!(Cap(0) < pushed)) break;
        ++stats_.augmenting_paths;
        total += pushed;
      }
    }
    return total;
  }

  [[nodiscard]] const DinicStats& stats() const { return stats_; }

  // Flow routed through the edge returned by add_edge (reverse residual).
  [[nodiscard]] Cap flow_on(std::size_t handle) const {
    return edges_[handle + 1].capacity;
  }

 private:
  // Deliberately lean: with Cap = __int128 the struct packs to 32 bytes
  // (two per cache line), and the blocking-flow DFS is bound by scanning
  // these. The reverse twin of a handle is handle ^ 1, so no flag needed.
  struct Edge {
    std::size_t to;
    Cap capacity;  // residual
  };

  bool build_levels(std::size_t source, std::size_t sink) {
    ++stats_.bfs_passes;
    level_.assign(node_count(), -1);
    level_[source] = 0;
    if (util::substrate_legacy()) [[unlikely]] {
      // Seed behaviour: a fresh std::queue (heap-backed deque) per pass.
      // Kept as the memory bench's pre-reuse baseline.
      std::queue<std::size_t> frontier;
      frontier.push(source);
      while (!frontier.empty()) {
        std::size_t node = frontier.front();
        frontier.pop();
        stats_.edge_visits += adjacency_[node].size();
        for (std::size_t handle : adjacency_[node]) {
          const Edge& edge = edges_[handle];
          if (level_[edge.to] == -1 && Cap(0) < edge.capacity) {
            level_[edge.to] = level_[node] + 1;
            frontier.push(edge.to);
          }
        }
      }
      return level_[sink] != -1;
    }
    if (use_accel_) return build_levels_bitmap(source, sink);
    // Pooled frontier: a BFS visits each node once, so the vector doubles
    // as the queue (scan head forward) and its storage survives across
    // passes and probes.
    bfs_queue_.clear();
    bfs_queue_.push_back(source);
    for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
      std::size_t node = bfs_queue_[head];
      stats_.edge_visits += adjacency_[node].size();
      for (std::size_t handle : adjacency_[node]) {
        const Edge& edge = edges_[handle];
        if (level_[edge.to] == -1 && Cap(0) < edge.capacity) {
          level_[edge.to] = level_[node] + 1;
          bfs_queue_.push_back(edge.to);
        }
      }
    }
    return level_[sink] != -1;
  }

  // Bit-parallel level build (DESIGN.md §12): visited/frontier live in
  // packed 64-bit words (util::BitSet), the BFS runs level-synchronous, and
  // the pass ABORTS as soon as the sink is labeled. The abort is safe: when
  // the sink is discovered at depth L+1, every node at depth <= L is
  // already labeled (whole frontiers are labeled before any expansion of
  // the next depth starts), and those are the only intermediate nodes a
  // shortest s->t path can use. A depth-L+1 node left unlabeled is exactly
  // a node from which the blocking-flow DFS would dead-end anyway (it
  // cannot reach the sink inside the level graph), so the DFS finds the
  // same augmenting paths in the same order and routes bit-identical flow;
  // only stats_.edge_visits (execution-class) shrinks.
  // Precondition (established by build_levels): level_ is all -1 except
  // level_[source] == 0.
  bool build_levels_bitmap(std::size_t source, std::size_t sink) {
    visited_.reset(node_count());
    frontier_.reset(node_count());
    next_frontier_.reset(node_count());
    visited_.set(source);
    frontier_.set(source);
    const std::size_t* handles = csr_handles_.data();
    const std::size_t* off = csr_off_.data();
    int depth = 0;
    while (frontier_.any()) {
      bool found_sink = false;
      frontier_.for_each_set([&](std::size_t node) -> bool {
        stats_.edge_visits += off[node + 1] - off[node];
        for (std::size_t i = off[node]; i < off[node + 1]; ++i) {
          const Edge& edge = edges_[handles[i]];
          if (visited_.test(edge.to) || !(Cap(0) < edge.capacity)) continue;
          visited_.set(edge.to);
          level_[edge.to] = depth + 1;
          if (edge.to == sink) {
            found_sink = true;
            return true;  // stop scanning: the level graph is usable
          }
          next_frontier_.set(edge.to);
        }
        return false;
      });
      if (found_sink) return true;
      frontier_.swap(next_frontier_);
      next_frontier_.clear_all();
      ++depth;
    }
    return false;
  }

  // Flattens adjacency_ into one contiguous handle array + offsets (CSR),
  // preserving per-node edge order exactly, so the accel-path BFS/DFS scan
  // one flat array instead of chasing per-node vector headers. Capacity
  // retunes (set_capacity / increase_capacity / reset_flow) never touch
  // adjacency, so a warm-started probe sequence builds this once.
  void ensure_csr() {
    if (csr_valid_) return;
    csr_off_.resize(node_count() + 1);
    std::size_t total = 0;
    for (std::size_t v = 0; v < node_count(); ++v) {
      csr_off_[v] = total;
      total += adjacency_[v].size();
    }
    csr_off_[node_count()] = total;
    csr_handles_.resize(total);
    std::size_t pos = 0;
    for (const std::vector<std::size_t>& adj : adjacency_)
      for (std::size_t handle : adj) csr_handles_[pos++] = handle;
    csr_valid_ = true;
  }

  // limit < 0 means unbounded (only the source call uses that).
  Cap push(std::size_t node, std::size_t sink, Cap limit) {
    if (node == sink) return limit;
    // Same handles in the same order from either layout (see ensure_csr),
    // so the two branches route bit-identical flow.
    const std::size_t* adj;
    std::size_t degree;
    if (use_accel_) {
      adj = csr_handles_.data() + csr_off_[node];
      degree = csr_off_[node + 1] - csr_off_[node];
    } else {
      adj = adjacency_[node].data();
      degree = adjacency_[node].size();
    }
    for (std::size_t& i = next_edge_[node]; i < degree; ++i) {
      ++stats_.edge_visits;
      std::size_t handle = adj[i];
      Edge& edge = edges_[handle];
      // Level test first: it is a plain int compare, while the capacity
      // test constructs a Cap(0) (a BigInt allocation-free but non-trivial
      // Rat in the exact oracle). Both tests are pure, so the order only
      // affects speed, never which edges descend.
      if (level_[edge.to] != level_[node] + 1 || !(Cap(0) < edge.capacity))
        continue;
      Cap sub_limit = edge.capacity;
      if (Cap(0) < limit && limit < sub_limit) sub_limit = limit;
      Cap pushed = push(edge.to, sink, sub_limit);
      if (Cap(0) < pushed) {
        edge.capacity -= pushed;
        edges_[handle ^ 1].capacity += pushed;
        return pushed;
      }
    }
    return Cap(0);
  }

  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<Edge> edges_;
  std::vector<Cap> initial_;  // capacity of each edge as added / last set
  std::vector<int> level_;
  std::vector<std::size_t> next_edge_;
  std::vector<std::size_t> bfs_queue_;  // pooled BFS frontier, see build_levels
  // Bit-parallel BFS state (build_levels_bitmap); pooled like bfs_queue_.
  util::BitSet frontier_, next_frontier_, visited_;
  // CSR mirror of adjacency_ for the accel path, see ensure_csr.
  std::vector<std::size_t> csr_handles_;
  std::vector<std::size_t> csr_off_;
  bool csr_valid_ = false;
  int accel_mode_ = -1;   // see set_level_kernel
  bool use_accel_ = false;  // hoisted per max_flow call
  DinicStats stats_;
};

}  // namespace minmach
