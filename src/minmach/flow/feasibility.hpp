// Exact migratory feasibility and OPT via max flow (Horn's network):
// source -> job j with capacity p_j; job -> segment [t_k, t_k+1) with
// capacity t_k+1 - t_k whenever the segment lies in I(j); segment -> sink
// with capacity m * (t_k+1 - t_k). The instance is feasible on m migratory
// machines iff the max flow saturates all source edges. This is the
// polynomial-time offline optimum the paper's introduction refers to ([6]),
// and the ground truth every competitive-ratio experiment divides by.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"

namespace minmach {

// Per-segment processing assignment: allocation[j][k] = wall time job j is
// processed during segment k (segments from Instance::event_points()).
struct FlowAllocation {
  std::vector<Rat> segment_starts;  // size k+1: the event points
  std::vector<std::vector<Rat>> per_job;
};

// True iff the instance admits a feasible preemptive migratory schedule on
// `machines` unit-speed machines.
[[nodiscard]] bool feasible_migratory(const Instance& instance,
                                      std::int64_t machines);

// As above, and on success returns the per-segment allocation.
[[nodiscard]] std::optional<FlowAllocation> solve_migratory(
    const Instance& instance, std::int64_t machines);

// Exact minimum machine count (binary search over feasible_migratory).
// Returns 0 for the empty instance.
[[nodiscard]] std::int64_t optimal_migratory_machines(const Instance& instance);

// Builds a concrete feasible migratory schedule on `machines` machines
// (McNaughton wrap-around within each segment). Throws std::invalid_argument
// if infeasible. Pass optimal_migratory_machines(..) for an OPT schedule.
[[nodiscard]] Schedule optimal_migratory_schedule(const Instance& instance,
                                                  std::int64_t machines);

}  // namespace minmach
