// Exact migratory feasibility and OPT via max flow (Horn's network):
// source -> job j with capacity p_j; job -> segment [t_k, t_k+1) with
// capacity t_k+1 - t_k whenever the segment lies in I(j); segment -> sink
// with capacity m * (t_k+1 - t_k). The instance is feasible on m migratory
// machines iff the max flow saturates all source edges. This is the
// polynomial-time offline optimum the paper's introduction refers to ([6]),
// and the ground truth every competitive-ratio experiment divides by.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"

namespace minmach {

// Per-segment processing assignment: allocation[j][k] = wall time job j is
// processed during segment k (segments from Instance::event_points()).
struct FlowAllocation {
  std::vector<Rat> segment_starts;  // size k+1: the event points
  std::vector<std::vector<Rat>> per_job;
};

// Reusable per-instance feasibility oracle. The Horn network depends on the
// machine count only through the segment->sink capacities machines*|segment|,
// so the oracle normalizes the instance (integer grid when denominators
// allow, exact rationals otherwise) and builds the network ONCE; each probe
// retunes the sink capacities and resets the flow instead of reconstructing
// the graph. Verdicts are memoized and feasible(m) is monotone in m, so a
// binary search over m costs one network build plus one max-flow per
// *informative* probe.
class FeasibilityOracle {
 public:
  explicit FeasibilityOracle(const Instance& instance);
  ~FeasibilityOracle();
  FeasibilityOracle(FeasibilityOracle&&) noexcept;
  FeasibilityOracle& operator=(FeasibilityOracle&&) noexcept;

  // True iff the instance is feasible on `machines` migratory machines.
  // Memoized; probes the network only for verdicts not implied by
  // monotonicity.
  [[nodiscard]] bool feasible(std::int64_t machines);

  // Exact migratory OPT: gallops up from load_lower_bound() to bracket the
  // optimum, then binary-searches the bracket. Returns 0 for the empty
  // instance; throws std::invalid_argument on a malformed one.
  [[nodiscard]] std::int64_t optimal_machines();

  // ceil(total work / time span): a valid lower bound on OPT (>= 1 for a
  // non-empty instance), and the galloping search's starting point.
  [[nodiscard]] std::int64_t load_lower_bound() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// True iff the instance admits a feasible preemptive migratory schedule on
// `machines` unit-speed machines. One-shot; for repeated probes of the same
// instance use FeasibilityOracle.
[[nodiscard]] bool feasible_migratory(const Instance& instance,
                                      std::int64_t machines);

// As above, and on success returns the per-segment allocation.
[[nodiscard]] std::optional<FlowAllocation> solve_migratory(
    const Instance& instance, std::int64_t machines);

// Exact minimum machine count (galloping + binary search through a shared
// FeasibilityOracle). Returns 0 for the empty instance.
[[nodiscard]] std::int64_t optimal_migratory_machines(const Instance& instance);

// Builds a concrete feasible migratory schedule on `machines` machines
// (McNaughton wrap-around within each segment). Throws std::invalid_argument
// if infeasible. Pass optimal_migratory_machines(..) for an OPT schedule.
[[nodiscard]] Schedule optimal_migratory_schedule(const Instance& instance,
                                                  std::int64_t machines);

}  // namespace minmach
