// Exact migratory feasibility and OPT via max flow (Horn's network):
// source -> job j with capacity p_j; job -> segment [t_k, t_k+1) with
// capacity t_k+1 - t_k whenever the segment lies in I(j); segment -> sink
// with capacity m * (t_k+1 - t_k). The instance is feasible on m migratory
// machines iff the max flow saturates all source edges. This is the
// polynomial-time offline optimum the paper's introduction refers to ([6]),
// and the ground truth every competitive-ratio experiment divides by.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "minmach/core/bounds.hpp"
#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"

namespace minmach {

// Per-segment processing assignment: allocation[j][k] = wall time job j is
// processed during segment k (segments from Instance::event_points()).
struct FlowAllocation {
  std::vector<Rat> segment_starts;  // size k+1: the event points
  std::vector<std::vector<Rat>> per_job;
};

// Tuning knobs for FeasibilityOracle. The defaults are the fast path; the
// all-off combination reproduces the pre-compression oracle exactly (dense
// per-segment edges, cold probes, density-only lower bound) and is kept as
// the differential-test reference and the bench baseline.
struct OracleOptions {
  // Segment-tree edge compression. A job's per-segment cap |segment| can
  // only bind on segments shorter than its processing time; the job gets
  // direct capped edges to those and O(log S) segment-tree edges covering
  // the rest (where the cap is vacuous), which is max-flow-equivalent to
  // the dense bipartite network (see DESIGN.md) but O(n log S + S) edges
  // when processing times dominate segment lengths.
  bool compress = true;
  // Keep the routed flow across probes with growing machine counts: sink
  // capacities only grow with m, so the flow stays feasible and the probe
  // augments the residual instead of re-solving from scratch. Descending
  // probes still reset (capacities shrink below the routed flow).
  bool warm_start = true;
  // Start the OPT search from the O(n^2) sweep single-interval load bound
  // (usually exact) instead of only ceil(total work / span).
  bool sweep_bound = true;
  // Dispatch the SIMD/bit-parallel kernel layer (DESIGN.md §12): the int64
  // sweep kernel, the bitmap Dinic level BFS, and the small-integer grid
  // fast path in the constructor. ANDed with the global runtime mode
  // (util::simd::active(), driven by the benches' --simd flag); verdicts,
  // OPT values, and witnesses are bit-identical either way -- only wall
  // clock and execution-class metrics move.
  bool simd = true;
  // Bound tier (DESIGN.md §14): before touching Dinic, compute a certified
  // sandwich lo <= OPT <= hi -- density + SIMD sweep from below
  // (core/bounds.hpp), a validator-audited packing witness from above
  // (algos/pack_ub.hpp). A pinched sandwich (lo == hi) answers OPT without
  // even building the flow network; otherwise the search starts from the
  // pre-narrowed bracket and out-of-bracket probes are answered for free.
  // ANDed with the global runtime gate bounds_tier_enabled() (the benches
  // default it off so baselines keep measuring the exact tier alone).
  // Verdicts and OPT values are bit-identical either way -- both sides are
  // certified -- only probe counts and wall clock move.
  bool bounds = true;
  // Fully-dynamic edits (DESIGN.md §15): insert_job()/remove_job() splice
  // the live Horn network in place -- patch job edges and sink caps for
  // only the affected event-point range, drain the removed flow, and let
  // the next probe re-augment warm from the residual -- instead of
  // rebuilding cold. Off, edits still work but mark the network stale, so
  // the next probe pays a full rebuild over the live job set (the
  // differential-test reference for the splice path). Never-edited oracles
  // are unaffected either way: the dynamic layout is only adopted on the
  // first edit.
  bool dynamic = true;

  [[nodiscard]] static OracleOptions legacy() {
    return {false, false, false, false, false, false};
  }
};

// Reusable per-instance feasibility oracle. The Horn network depends on the
// machine count only through the segment->sink capacities machines*|segment|,
// so the oracle normalizes the instance (integer grid when denominators
// allow, exact rationals otherwise) and builds the network ONCE; each probe
// retunes the sink capacities. With the default options the network is
// segment-tree-compressed, ascending probes warm-start from the previous
// flow, and the search opens at the sweep load lower bound -- so OPT
// typically costs one network build plus roughly one max-flow in total.
// Verdicts are memoized and feasible(m) is monotone in m.
//
// When the global OPT cache is enabled (util::OptCache::global(), see
// DESIGN.md §11), the constructor fingerprints the instance's affine
// canonical form and feasible()/optimal_machines() consult the cache before
// probing, publishing fresh verdicts back. Verdicts are exact properties of
// the instance (identical under every OracleOptions combination), so
// results are byte-identical with the cache on or off.
class FeasibilityOracle {
 public:
  explicit FeasibilityOracle(const Instance& instance,
                             const OracleOptions& options = {});
  // Zero-copy construction from int64 SoA columns (typically an mmap'd
  // corpus InstanceView, store/corpus.hpp): the columns are adopted as the
  // integer grid directly -- no Instance, no rational normalization. The
  // columns may be an affine image (t -> scale * t) of a rational
  // instance; feasibility and OPT are invariant under that map, so answers
  // equal the original's, but jobs passed to insert_job() later must be in
  // the same scaled coordinates. The columns are copied into the oracle's
  // arrays during construction and need not outlive the call. Values
  // outside the integer fast path's 62-bit guard fall back to the exact
  // path, reproducing the Instance constructor bit for bit.
  explicit FeasibilityOracle(const JobColumns& columns,
                             const OracleOptions& options = {});
  ~FeasibilityOracle();
  FeasibilityOracle(FeasibilityOracle&&) noexcept;
  FeasibilityOracle& operator=(FeasibilityOracle&&) noexcept;

  // True iff the instance is feasible on `machines` migratory machines.
  // Memoized; probes the network only for verdicts not implied by
  // monotonicity or by the certified load lower bound.
  [[nodiscard]] bool feasible(std::int64_t machines);

  // ---- dynamic edits (DESIGN.md §15) ----------------------------------
  //
  // The oracle's job set becomes mutable: insert_job admits a new job and
  // returns its stable id, remove_job retires one. Ids for jobs from the
  // constructor instance are their indices there; inserted jobs get the
  // next unused id. With options.dynamic (the default) an already-built
  // network is spliced in place and the routed flow repaired warm; with it
  // off the next probe rebuilds from scratch over the live set. Either
  // way every verdict afterwards is exactly the batch oracle's on the live
  // job set, and the monotone memo carries across the edit via the sound
  // shifts: an insert can only grow OPT, and by at most 1 (the new job
  // alone fits one extra machine); a remove can only shrink it, by at most
  // 1 (re-adding the removed job to a schedule needs at most one machine).
  //
  // insert_job throws std::invalid_argument on a malformed job or a
  // malformed-constructed oracle; remove_job on an unknown/retired id.
  JobId insert_job(const Job& job);
  void remove_job(JobId id);
  // Jobs currently admitted (constructor jobs plus inserts minus removes).
  [[nodiscard]] std::int64_t live_jobs() const;

  // Exact migratory OPT: ascends from load_lower_bound() with warm-started
  // probes (galloping when the bound is loose, then binary-searching the
  // bracket). Returns 0 for the empty instance; throws
  // std::invalid_argument on a malformed one.
  [[nodiscard]] std::int64_t optimal_machines();

  // A certified lower bound on OPT (>= 1 for a non-empty instance): the
  // density bound ceil(total work / span), sharpened by the sweep
  // single-interval load bound when options.sweep_bound is set (computed
  // lazily on first call). On instances with many event points the sweep
  // subsamples left endpoints (a budgeted, still-certified bound), so this
  // can be slightly below load_bound_single_interval().
  [[nodiscard]] std::int64_t load_lower_bound() const;

  // The certified sandwich lo <= OPT <= hi (computed lazily on first use
  // and folded into the verdict memo, so the oracle's own search also
  // starts from it). With the bound tier inactive (options.bounds false or
  // the global gate off) returns the degenerate bracket the pre-tier search
  // effectively used -- [max(load_lower_bound(), memo floor), min known
  // feasible] -- so callers can seed searches uniformly. Empty instance:
  // {0, 0}.
  [[nodiscard]] BoundSandwich bound_sandwich();

  // Network probes this oracle actually executed (memo hits, OPT-cache
  // hits, and bound-tier short-circuits excluded). Exposed for the query
  // engine's speculation-overhead accounting and the cache/bounds A/B
  // benches.
  [[nodiscard]] std::uint64_t probes_executed() const;

 private:
  struct Impl;
  // Oracles lease a per-thread pooled Impl when it is free (so a sweep that
  // constructs one oracle per instance recycles the probe network's
  // adjacency/edge/level storage call after call, see DESIGN.md §10) and
  // fall back to a fresh heap Impl when the pool is busy -- a nested oracle
  // -- or under util::substrate_legacy(). The deleter returns a leased Impl
  // to its pool instead of deleting it; an Impl released on a thread other
  // than its owner is simply retired from pooling (memory-safe, the slot
  // stays busy).
  struct ImplDeleter {
    void operator()(Impl* impl) const noexcept;
  };
  static std::unique_ptr<Impl, ImplDeleter> acquire_impl();
  std::unique_ptr<Impl, ImplDeleter> impl_;
};

// True iff the instance admits a feasible preemptive migratory schedule on
// `machines` unit-speed machines. One-shot; for repeated probes of the same
// instance use FeasibilityOracle.
[[nodiscard]] bool feasible_migratory(const Instance& instance,
                                      std::int64_t machines);

// As above, and on success returns the per-segment allocation.
[[nodiscard]] std::optional<FlowAllocation> solve_migratory(
    const Instance& instance, std::int64_t machines);

// Exact minimum machine count (galloping + binary search through a shared
// FeasibilityOracle). Returns 0 for the empty instance.
[[nodiscard]] std::int64_t optimal_migratory_machines(const Instance& instance);

// Builds a concrete feasible migratory schedule on `machines` machines
// (McNaughton wrap-around within each segment). Throws std::invalid_argument
// if infeasible. Pass optimal_migratory_machines(..) for an OPT schedule.
[[nodiscard]] Schedule optimal_migratory_schedule(const Instance& instance,
                                                  std::int64_t machines);

}  // namespace minmach
