#include "minmach/flow/query.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "minmach/core/canonical.hpp"
#include "minmach/obs/histogram.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/obs/profile.hpp"
#include "minmach/util/opt_cache.hpp"

namespace minmach {

namespace {

struct Candidate {
  std::int64_t m = 0;
  bool feasible = false;
};

// Probes candidates[i].m on lanes[i] concurrently (candidate 0 stays on the
// calling thread, so a one-candidate round spawns nothing). Each worker
// drains its hot tallies before exit, keeping snapshot totals complete; the
// first exception in candidate order is rethrown on the caller.
void probe_round(std::vector<FeasibilityOracle>& lanes,
                 std::vector<Candidate>& candidates) {
  const std::size_t count = candidates.size();
  std::vector<std::exception_ptr> errors(count);
  auto probe_one = [&](std::size_t i) {
    try {
      candidates[i].feasible = lanes[i].feasible(candidates[i].m);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };
  if (count == 1) {
    probe_one(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(count - 1);
    for (std::size_t i = 1; i < count; ++i) {
      workers.emplace_back([&probe_one, i] {
        probe_one(i);
        obs::drain_hot_tallies();
      });
    }
    probe_one(0);
    for (std::thread& worker : workers) worker.join();
  }
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace

QueryStats query_optimal_machines_stats(const Instance& instance,
                                        const QueryOptions& options) {
  QueryStats out;
  if (instance.empty()) return out;
  if (!instance.well_formed())
    throw std::invalid_argument("query_optimal_machines: malformed instance");
  obs::ProfileSpan span("query");
  obs::ScopedLatency latency("hist.query_ns");

  util::OptCache& cache = util::OptCache::global();
  const bool cached = options.use_cache && cache.enabled();
  util::Digest128 fp;
  if (cached) {
    fp = canonical_fingerprint(instance);
    if (std::optional<std::int64_t> hit = cache.lookup_opt(fp)) {
      out.machines = *hit;
      out.cache_hit = true;
      return out;
    }
  }

  const int live = std::min(options.speculate, 4);
  if (live <= 1) {
    // Sequential: the oracle's own galloping/binary search (which consults
    // the verdict cache per probe and publishes the OPT value itself).
    FeasibilityOracle oracle(instance, options.oracle);
    out.machines = oracle.optimal_machines();
    out.probes = oracle.probes_executed();
    return out;
  }

  // One oracle network per lane: concurrent probes need disjoint Dinic
  // graphs. Lane i always takes the i-th smallest candidate of a round, so
  // each lane sees (mostly) ascending machine counts and its warm-started
  // flow keeps paying off, like the sequential ascent.
  std::vector<FeasibilityOracle> lanes;
  lanes.reserve(static_cast<std::size_t>(live));
  lanes.emplace_back(instance, options.oracle);
  // Lanes 1+ never compute a sandwich of their own: lane 0's bracket below
  // seeds the shared search, so per-lane packing work would be pure
  // duplication. Their verdict memos still benefit through the bracket.
  OracleOptions lane_options = options.oracle;
  lane_options.bounds = false;
  for (int i = 1; i < live; ++i) lanes.emplace_back(instance, lane_options);

  // Bracket seed: with the bound tier active this is the certified sandwich
  // (a pinched one answers OPT before any round); with it off, the
  // degenerate bracket reproduces the pre-tier seeding exactly --
  // [load_lower_bound() - 1, n].
  const BoundSandwich sandwich = lanes[0].bound_sandwich();
  std::int64_t lo = sandwich.lo - 1;  // max certified infeasible
  std::int64_t hi = sandwich.hi;     // min known feasible
  std::int64_t step = 1;
  bool galloping = true;

  std::vector<Candidate> round;
  while (lo + 1 < hi) {
    round.clear();
    if (galloping) {
      // The sequential warm ascent's ladder (lb, lb+1, lb+3, lb+7, ...),
      // `live` rungs per round; the doubling step persists across rounds.
      std::int64_t m = lo + 1;
      for (int i = 0; i < live && m < hi; ++i) {
        round.push_back({m, false});
        m += step;
        step *= 2;
      }
    } else {
      // Bracket known: split (lo, hi) into live + 1 near-equal parts.
      for (int i = 1; i <= live; ++i) {
        std::int64_t m = lo + (hi - lo) * i / (live + 1);
        m = std::clamp<std::int64_t>(m, lo + 1, hi - 1);
        if (round.empty() || round.back().m != m) round.push_back({m, false});
      }
    }
    {
      obs::ProfileSpan round_span("speculate_round");
      probe_round(lanes, round);
    }
    ++out.rounds;

    // Fold every verdict into the bracket, then count the probes whose
    // verdict the round's own extremes already implied by monotonicity
    // (feasible above the smallest feasible, infeasible below the largest
    // infeasible): those are the speculation losers, retired after the
    // fact.
    std::int64_t round_hi = hi;
    std::int64_t round_lo = lo;
    for (const Candidate& c : round) {
      if (c.feasible)
        round_hi = std::min(round_hi, c.m);
      else
        round_lo = std::max(round_lo, c.m);
    }
    for (const Candidate& c : round) {
      if (c.feasible ? c.m > round_hi : c.m < round_lo) ++out.retired;
    }
    if (galloping && round_hi < hi) galloping = false;
    hi = round_hi;
    lo = round_lo;
  }

  out.machines = hi;
  for (const FeasibilityOracle& lane : lanes)
    out.probes += lane.probes_executed();
  obs::Registry& registry = obs::Registry::global();
  registry.counter("speculate.rounds").add(out.rounds);
  registry.counter("speculate.probes").add(out.probes);
  registry.counter("speculate.retired").add(out.retired);
  if (cached) cache.insert_opt(fp, out.machines);
  return out;
}

std::int64_t query_optimal_machines(const Instance& instance,
                                    const QueryOptions& options) {
  return query_optimal_machines_stats(instance, options).machines;
}

}  // namespace minmach
