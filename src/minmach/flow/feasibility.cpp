#include "minmach/flow/feasibility.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "minmach/algos/pack_ub.hpp"
#include "minmach/core/bounds.hpp"
#include "minmach/core/canonical.hpp"
#include "minmach/core/load_sweep.hpp"
#include "minmach/core/load_sweep_simd.hpp"
#include "minmach/flow/dinic.hpp"
#include "minmach/util/simd.hpp"
#include "minmach/obs/histogram.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/obs/profile.hpp"
#include "minmach/obs/trace.hpp"
#include "minmach/util/opt_cache.hpp"

namespace minmach {

namespace {

// ---- integer fast path -------------------------------------------------
//
// When every time parameter fits a common small grid (LCM of denominators
// times values fits in int64 with headroom for m * length sums), the Horn
// network runs over __int128 capacities instead of BigInt rationals --
// typically 50-100x faster. Adversarial instances with unbounded
// denominators fall back to the exact rational network.

struct IntegerGrid {
  bool usable = false;
  std::vector<std::int64_t> release;
  std::vector<std::int64_t> deadline;
  std::vector<std::int64_t> processing;
  // Multiplier taking original Rat values onto the grid (the denominator
  // lcm; 1 for the small-integer fast path). The dynamic oracle keeps it so
  // later insert_job() calls can scale new jobs onto the SAME grid -- or
  // detect that they do not fit and fall back to the rational network.
  Rat scale{1};
};

IntegerGrid try_integer_grid(const Instance& instance) {
  IntegerGrid grid;
  BigInt lcm = instance.denominator_lcm();
  // Guard: scaled values must fit comfortably (sums of m * length stay
  // within __int128 as long as individual values fit int64 / n).
  if (lcm.bit_length() > 40) return grid;
  const Rat scale(lcm, BigInt(1));
  grid.release.reserve(instance.size());
  grid.deadline.reserve(instance.size());
  grid.processing.reserve(instance.size());
  // Scales one field, or reports the grid unusable; each value is scaled
  // exactly once.
  auto scale_into = [&scale](const Rat& value, std::vector<std::int64_t>& out) {
    BigInt scaled = (value * scale).num();  // integral by construction
    if (scaled.bit_length() > 62) return false;
    out.push_back(scaled.to_int64());
    return true;
  };
  for (const Job& j : instance.jobs()) {
    if (!scale_into(j.release, grid.release) ||
        !scale_into(j.deadline, grid.deadline) ||
        !scale_into(j.processing, grid.processing))
      return grid;
  }
  grid.usable = true;
  grid.scale = scale;
  return grid;
}

// SIMD-mode shortcut for the common all-integer case (DESIGN.md §12):
// when every job field is already a small integer within the same 62-bit
// guard, the grid is the values themselves (denominator lcm is 1, scale is
// the identity), so the BigInt lcm computation and the 3n exact Rat
// multiplications of try_integer_grid can be skipped. Succeeds only on
// instances try_integer_grid would also accept, and produces the same
// grid, so integer_mode and every downstream verdict are unchanged; also
// reports total work so the caller can derive the density bound without
// rationals (declined if it overflows int64 -- the general path then
// reproduces the seed arithmetic exactly).
struct SmallGrid {
  IntegerGrid grid;
  std::int64_t total_work = 0;
};

SmallGrid try_small_integer_grid(const Instance& instance) {
  SmallGrid out;
  constexpr std::int64_t kMaxAbs = (std::int64_t{1} << 62) - 1;  // bit_length <= 62
  IntegerGrid& grid = out.grid;
  grid.release.reserve(instance.size());
  grid.deadline.reserve(instance.size());
  grid.processing.reserve(instance.size());
  auto small_into = [](const Rat& value, std::vector<std::int64_t>& dst) {
    if (!value.is_integer() || !value.num().is_small()) return false;
    const std::int64_t v = value.num().small_value();
    if (v < -kMaxAbs || v > kMaxAbs) return false;
    dst.push_back(v);
    return true;
  };
  __int128 total = 0;
  for (const Job& j : instance.jobs()) {
    if (!small_into(j.release, grid.release) ||
        !small_into(j.deadline, grid.deadline) ||
        !small_into(j.processing, grid.processing))
      return out;
    total += grid.processing.back();
  }
  if (total > INT64_MAX) return out;
  out.total_work = static_cast<std::int64_t>(total);
  grid.usable = true;
  return out;
}

// ---- allocation network (solve_migratory) ------------------------------

struct Network {
  Dinic<Rat> graph;
  std::vector<Rat> points;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
      job_segment_edges;  // per job: (segment index, edge handle)
  Rat total_work;
  std::size_t source;
  std::size_t sink;
};

// Dense per-segment network, kept for allocation extraction: reading off
// per-job per-segment processing needs one addressable edge per pair, so
// the tree compression does not apply here. Job ranges are binary-searched
// (both window endpoints are event points) instead of scanning all S
// segments per job.
Network build_network(const Instance& instance, std::int64_t machines) {
  std::vector<Rat> points = instance.event_points();
  const std::size_t n = instance.size();
  const std::size_t segments = points.empty() ? 0 : points.size() - 1;
  // Node layout: 0 = source, 1..n = jobs, n+1..n+segments = segments, last =
  // sink.
  Network net{Dinic<Rat>(n + segments + 2),
              points,
              std::vector<std::vector<std::pair<std::size_t, std::size_t>>>(n),
              Rat(0),
              0,
              n + segments + 1};

  const Rat m_rat(machines);
  for (std::size_t k = 0; k < segments; ++k) {
    Rat length = net.points[k + 1] - net.points[k];
    net.graph.add_edge(n + 1 + k, net.sink, m_rat * length);
  }
  for (std::size_t j = 0; j < n; ++j) {
    const Job& job = instance.job(j);
    net.total_work += job.processing;
    net.graph.add_edge(net.source, 1 + j, job.processing);
    const std::size_t lo = static_cast<std::size_t>(
        std::lower_bound(net.points.begin(), net.points.end(), job.release) -
        net.points.begin());
    const std::size_t hi = static_cast<std::size_t>(
        std::lower_bound(net.points.begin(), net.points.end(), job.deadline) -
        net.points.begin());
    for (std::size_t k = lo; k < hi; ++k) {
      Rat length = net.points[k + 1] - net.points[k];
      std::size_t handle = net.graph.add_edge(1 + j, n + 1 + k, length);
      net.job_segment_edges[j].emplace_back(k, handle);
    }
  }
  return net;
}

// ---- oracle network ----------------------------------------------------

struct BuildCounters {
  std::uint64_t tree_edges = 0;    // job -> canonical segment-tree node
  std::uint64_t direct_edges = 0;  // job -> capped leaf (|segment| < p_j)
  std::uint64_t dense_edges = 0;   // legacy job -> segment (compress off)
  std::size_t segments = 0;
};

// One probe network in a fixed capacity domain (__int128 on the integer
// grid, Rat otherwise). Instance data is kept in the same domain so the
// sweep lower bound reuses it.
template <typename Cap>
struct OracleNet {
  std::vector<Cap> release, deadline, processing;  // per job
  std::vector<Cap> points;                         // event points
  std::vector<Cap> seg_length;
  Dinic<Cap> graph{2};
  std::vector<std::size_t> sink_handle;
  Cap total_work{0};
  Cap routed{0};  // flow currently in the graph (accumulates across warm probes)
  std::int64_t flow_m = 0;  // machine count the routed flow was admitted under
  // OracleOptions::simd resolved at construction: build() may batch the
  // total-work sum, sweep_bound() may run the int64 SIMD kernel, and the
  // constructor pins the Dinic level kernel accordingly. Results are
  // identical either way.
  bool accel = false;
  std::size_t source = 0;
  std::size_t sink = 0;

  struct TreeNode {
    std::size_t lo, hi;       // covered segment range [lo, hi)
    std::size_t left, right;  // child node ids (npos for leaves)
    Cap length;               // sum of covered segment lengths
  };
  // Scratch for the segment-tree build, kept across builds (and across
  // pooled-Impl leases) so a rebuild only clears, never reallocates. Under
  // util::substrate_legacy() build() uses fresh locals instead, matching
  // the seed's per-build vectors.
  struct BuildScratch {
    std::vector<TreeNode> tree;
    std::vector<std::size_t> leaf_node;
    std::vector<std::size_t> jobs_by_processing;
    std::vector<std::size_t> leaves_by_length;
    std::vector<std::size_t> capped;  // sorted capped leaf positions
  };
  BuildScratch scratch;

  // ---- dynamic layout state (DESIGN.md §15) ----------------------------
  //
  // After the first splice the network switches to a FLAT layout: no
  // segment tree, every job keeps one direct edge per covered leaf with
  // cap min(p_j, |leaf|). That is max-flow-equivalent to the dense Horn
  // network (a job routes at most p_j anywhere, so the min() only
  // reproduces the binding per-segment cap), and unlike the tree cover it
  // survives leaf SPLITS locally: a cover edge's cap-free condition
  // (p_j <= every covered leaf length) can break when a new event point
  // halves a leaf, but a direct edge just re-caps to min(p_j, new length).
  struct DynIn {
    std::uint32_t slot;    // job slot the edge belongs to
    std::uint32_t gen;     // slot generation at insertion (stale if bumped)
    std::size_t handle;    // job -> leaf edge
  };
  struct DynState {
    bool active = false;
    std::vector<std::size_t> job_node;    // per slot (kNpos: none yet)
    std::vector<std::size_t> src_handle;  // per slot (kNpos: none yet)
    // Bumped when a slot retires: leaf_in entries with an older gen are
    // stale (their edges are zeroed) and get purged on the next split.
    std::vector<std::uint32_t> gen;
    std::vector<std::vector<std::size_t>> out;  // per slot: job->leaf edges
    std::vector<std::vector<DynIn>> leaf_in;    // per leaf POSITION
    std::vector<std::size_t> pos_of_node;       // graph node -> leaf position
    std::uint64_t live_edges = 0;
    std::uint64_t dead_edges = 0;  // zeroed by retires; triggers compaction

    void reset() {
      active = false;
      job_node.clear();
      src_handle.clear();
      gen.clear();
      out.clear();
      leaf_in.clear();
      pos_of_node.clear();
      live_edges = 0;
      dead_edges = 0;
    }
  };
  DynState dyn;

  void build(bool compress, BuildCounters& counters);
  // Returns the verdict; sets `warm` to whether the probe reused the
  // routed flow (capacities only grew) or reset it.
  bool probe(std::int64_t machines, bool allow_warm, bool& warm);
  [[nodiscard]] std::int64_t sweep_bound() const;

  // Dynamic layout (definitions below build()).
  void build_dynamic(BuildCounters& counters);
  void splice_insert(std::size_t slot);
  void splice_remove(std::size_t slot);
  void ensure_point(const Cap& x);
  void split_leaf(std::size_t k, const Cap& x);
  void recompute_points();
  [[nodiscard]] std::size_t leaf_node_at(std::size_t pos) const {
    // The reverse twin of the leaf->sink edge points back at the leaf.
    return graph.edge_target(sink_handle[pos] ^ 1);
  }
  std::size_t new_node() {
    const std::size_t id = graph.add_node();
    dyn.pos_of_node.push_back(static_cast<std::size_t>(-1));
    return id;
  }
  void refresh_positions(std::size_t from) {
    for (std::size_t pos = from; pos < seg_length.size(); ++pos)
      dyn.pos_of_node[leaf_node_at(pos)] = pos;
  }

  // Rewinds to the just-constructed logical state, keeping every
  // container's storage (the graph recycles via build()'s reinit). Used
  // when a pooled Impl is leased for a new instance.
  void reset_net() {
    release.clear();
    deadline.clear();
    processing.clear();
    points.clear();
    seg_length.clear();
    sink_handle.clear();
    total_work = Cap(0);
    routed = Cap(0);
    flow_m = 0;
    accel = false;
    source = 0;
    sink = 0;
    dyn.reset();
  }
};

template <typename Cap>
void OracleNet<Cap>::build(bool compress, BuildCounters& counters) {
  const std::size_t n = release.size();
  const std::size_t segments = points.empty() ? 0 : points.size() - 1;
  counters.segments = segments;
  seg_length.resize(segments);
  for (std::size_t k = 0; k < segments; ++k)
    seg_length[k] = points[k + 1] - points[k];
  total_work = Cap(0);
  if constexpr (std::is_same_v<Cap, Rat>) {
    if (accel) {
      total_work = rat_batch::sum(processing.data(), processing.size(),
                                  util::simd::active());
    } else {
      for (const Cap& p : processing) total_work += p;
    }
  } else {
    for (const Cap& p : processing) total_work += p;
  }
  source = 0;

  if (!compress) {
    // Legacy dense layout (the pre-compression oracle, kept bit-for-bit as
    // the differential baseline): 0 = source, 1..n = jobs, n+1..n+segments,
    // last = sink; containment scanned per (job, segment) pair.
    sink = n + segments + 1;
    if (util::substrate_legacy())
      graph = Dinic<Cap>(n + segments + 2);  // seed: fresh network per build
    else
      graph.reinit(n + segments + 2);
    sink_handle.clear();
    for (std::size_t k = 0; k < segments; ++k)
      sink_handle.push_back(graph.add_edge(n + 1 + k, sink, Cap(0)));
    for (std::size_t j = 0; j < n; ++j) {
      graph.add_edge(source, 1 + j, processing[j]);
      for (std::size_t k = 0; k < segments; ++k) {
        if (release[j] <= points[k] && points[k + 1] <= deadline[j]) {
          graph.add_edge(1 + j, n + 1 + k, seg_length[k]);
          ++counters.dense_edges;
        }
      }
    }
    return;
  }

  // Segment-tree layout. The per-(job, segment) capacity |segment| can
  // only bind where |segment| < p_j; those pairs keep direct capped edges.
  // Everywhere else the cap is vacuous (a job routes at most p_j anywhere),
  // so maximal cap-free runs of a job's range are covered by O(log S)
  // canonical tree nodes whose internal edges merely forward capacity down
  // to the leaves. DESIGN.md proves this network max-flow-equivalent to
  // the dense one.
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  const bool legacy = util::substrate_legacy();
  BuildScratch local;  // legacy baseline: fresh vectors every build
  BuildScratch& s = legacy ? local : scratch;
  std::vector<TreeNode>& tree = s.tree;
  tree.clear();
  std::vector<std::size_t>& leaf_node = s.leaf_node;
  leaf_node.assign(segments, 0);
  // Named struct instead of std::function: recursive without a per-call
  // heap allocation for the callable.
  struct BuildNode {
    std::vector<TreeNode>& tree;
    std::vector<std::size_t>& leaf_node;
    const std::vector<Cap>& seg_length;
    std::size_t operator()(std::size_t lo, std::size_t hi) {
      std::size_t id = tree.size();
      tree.push_back({lo, hi, npos, npos, Cap(0)});
      if (hi - lo == 1) {
        tree[id].length = seg_length[lo];
        leaf_node[lo] = id;
        return id;
      }
      std::size_t mid = lo + (hi - lo) / 2;
      std::size_t left = (*this)(lo, mid);
      std::size_t right = (*this)(mid, hi);
      tree[id].left = left;
      tree[id].right = right;
      tree[id].length = tree[left].length + tree[right].length;
      return id;
    }
  } build_node{tree, leaf_node, seg_length};
  if (segments > 0) build_node(0, segments);

  // Node layout: 0 = source, 1..n = jobs, n+1..n+|tree| = tree nodes
  // (leaves included), last = sink.
  sink = n + tree.size() + 1;
  if (util::substrate_legacy())
    graph = Dinic<Cap>(n + tree.size() + 2);  // seed: fresh network per build
  else
    graph.reinit(n + tree.size() + 2);
  auto tree_graph_node = [n](std::size_t id) { return n + 1 + id; };
  // Internal nodes forward capacity to their children. The edges carry
  // total_work, an upper bound on any source->sink flow, so they never
  // bind and stay valid across all probes (warm starts included).
  for (std::size_t t = 0; t < tree.size(); ++t) {
    if (tree[t].left == npos) continue;
    graph.add_edge(tree_graph_node(t), tree_graph_node(tree[t].left),
                   total_work);
    graph.add_edge(tree_graph_node(t), tree_graph_node(tree[t].right),
                   total_work);
  }
  sink_handle.clear();
  for (std::size_t k = 0; k < segments; ++k)
    sink_handle.push_back(
        graph.add_edge(tree_graph_node(leaf_node[k]), sink, Cap(0)));
  for (std::size_t j = 0; j < n; ++j)
    graph.add_edge(source, 1 + j, processing[j]);

  // Leaves a job must reach through a capped direct edge: processed in
  // ascending p_j so the capped-position set only ever grows.
  std::vector<std::size_t>& jobs_by_processing = s.jobs_by_processing;
  std::vector<std::size_t>& leaves_by_length = s.leaves_by_length;
  jobs_by_processing.resize(n);
  leaves_by_length.resize(segments);
  for (std::size_t j = 0; j < n; ++j) jobs_by_processing[j] = j;
  for (std::size_t k = 0; k < segments; ++k) leaves_by_length[k] = k;
  std::sort(jobs_by_processing.begin(), jobs_by_processing.end(),
            [&](std::size_t x, std::size_t y) {
              return processing[x] < processing[y] ||
                     (processing[x] == processing[y] && x < y);
            });
  std::sort(leaves_by_length.begin(), leaves_by_length.end(),
            [&](std::size_t x, std::size_t y) {
              return seg_length[x] < seg_length[y] ||
                     (seg_length[x] == seg_length[y] && x < y);
            });

  struct Cover {
    OracleNet<Cap>& net;
    const std::vector<TreeNode>& tree;
    BuildCounters& counters;
    std::size_t base;  // graph id of tree node 0
    void operator()(std::size_t node, std::size_t x, std::size_t y,
                    std::size_t job) {
      const TreeNode& v = tree[node];
      if (v.lo >= y || v.hi <= x) return;
      if (x <= v.lo && v.hi <= y) {
        Cap cap =
            net.processing[job] < v.length ? net.processing[job] : v.length;
        net.graph.add_edge(1 + job, base + node, cap);
        ++counters.tree_edges;
        return;
      }
      (*this)(v.left, x, y, job);
      (*this)(v.right, x, y, job);
    }
  } cover{*this, tree, counters, n + 1};

  // Leaf positions with |segment| < p_j so far, kept sorted by position.
  // The sorted-vector insert is O(|capped|) per element but |capped| <=
  // segments and the pooled storage makes the whole loop allocation-free;
  // legacy keeps the seed's node-per-insert std::set.
  std::set<std::size_t> capped_set;
  std::vector<std::size_t>& capped = s.capped;
  capped.clear();
  std::size_t next_leaf = 0;
  for (std::size_t j : jobs_by_processing) {
    while (next_leaf < segments &&
           seg_length[leaves_by_length[next_leaf]] < processing[j]) {
      const std::size_t pos = leaves_by_length[next_leaf++];
      if (legacy)
        capped_set.insert(pos);
      else
        capped.insert(std::lower_bound(capped.begin(), capped.end(), pos),
                      pos);
    }
    const std::size_t lo = static_cast<std::size_t>(
        std::lower_bound(points.begin(), points.end(), release[j]) -
        points.begin());
    const std::size_t hi = static_cast<std::size_t>(
        std::lower_bound(points.begin(), points.end(), deadline[j]) -
        points.begin());
    std::size_t run_start = lo;
    auto visit_capped = [&](std::size_t pos) {
      graph.add_edge(1 + j, tree_graph_node(leaf_node[pos]), seg_length[pos]);
      ++counters.direct_edges;
      if (run_start < pos) cover(0, run_start, pos, j);
      run_start = pos + 1;
    };
    if (legacy) {
      for (auto it = capped_set.lower_bound(lo);
           it != capped_set.end() && *it < hi; ++it)
        visit_capped(*it);
    } else {
      for (auto it = std::lower_bound(capped.begin(), capped.end(), lo);
           it != capped.end() && *it < hi; ++it)
        visit_capped(*it);
    }
    if (run_start < hi) cover(0, run_start, hi, j);
  }
}

template <typename Cap>
void OracleNet<Cap>::recompute_points() {
  points.clear();
  points.insert(points.end(), release.begin(), release.end());
  points.insert(points.end(), deadline.begin(), deadline.end());
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
}

// Builds the flat dynamic layout from the (compacted, all-live) job arrays.
// Node layout: 0 = source, 1 = sink -- the sink id must be STABLE, unlike
// the batch layouts, because splices append nodes -- then leaves in
// position order, then jobs in slot order. probe() works unchanged: the
// pos-aligned sink_handle/seg_length arrays are the only thing it touches.
template <typename Cap>
void OracleNet<Cap>::build_dynamic(BuildCounters& counters) {
  const std::size_t n = release.size();
  recompute_points();
  const std::size_t segments = points.empty() ? 0 : points.size() - 1;
  counters.segments = segments;
  seg_length.resize(segments);
  for (std::size_t k = 0; k < segments; ++k)
    seg_length[k] = points[k + 1] - points[k];
  total_work = Cap(0);
  for (const Cap& p : processing) total_work += p;
  source = 0;
  sink = 1;
  graph.reinit(2 + segments + n);
  dyn.reset();
  dyn.active = true;
  dyn.job_node.assign(n, static_cast<std::size_t>(-1));
  dyn.src_handle.assign(n, static_cast<std::size_t>(-1));
  dyn.gen.assign(n, 0);
  dyn.out.assign(n, {});
  dyn.leaf_in.assign(segments, {});
  dyn.pos_of_node.assign(2 + segments + n, static_cast<std::size_t>(-1));
  sink_handle.clear();
  for (std::size_t k = 0; k < segments; ++k) {
    dyn.pos_of_node[2 + k] = k;
    sink_handle.push_back(graph.add_edge(2 + k, sink, Cap(0)));
  }
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t node = 2 + segments + j;
    dyn.job_node[j] = node;
    dyn.src_handle[j] = graph.add_edge(source, node, processing[j]);
    const std::size_t lo = static_cast<std::size_t>(
        std::lower_bound(points.begin(), points.end(), release[j]) -
        points.begin());
    const std::size_t hi = static_cast<std::size_t>(
        std::lower_bound(points.begin(), points.end(), deadline[j]) -
        points.begin());
    for (std::size_t k = lo; k < hi; ++k) {
      const Cap cap =
          processing[j] < seg_length[k] ? processing[j] : seg_length[k];
      const std::size_t h = graph.add_edge(node, 2 + k, cap);
      dyn.out[j].push_back(h);
      dyn.leaf_in[k].push_back({static_cast<std::uint32_t>(j), 0, h});
      ++dyn.live_edges;
      ++counters.direct_edges;
    }
  }
  routed = Cap(0);
  flow_m = 0;
}

// Makes x an event point. Three cases: already one (no-op), outside the
// current horizon (a fresh boundary leaf appears, no flow touched), or
// strictly inside a leaf (split_leaf). New sink edges open at flow_m *
// length so the warm probe's uniform delta retune stays correct.
template <typename Cap>
void OracleNet<Cap>::ensure_point(const Cap& x) {
  auto it = std::lower_bound(points.begin(), points.end(), x);
  if (it != points.end() && *it == x) return;
  obs::Registry& registry = obs::Registry::global();
  const std::size_t pos = static_cast<std::size_t>(it - points.begin());
  if (pos == 0 || pos == points.size()) {
    const bool left = pos == 0;
    const Cap len = left ? points.front() - x : x - points.back();
    const std::size_t node = new_node();
    const std::size_t hb = graph.add_edge(node, sink, Cap(flow_m) * len);
    if (left) {
      points.insert(points.begin(), x);
      seg_length.insert(seg_length.begin(), len);
      sink_handle.insert(sink_handle.begin(), hb);
      // NB: emplace, not insert(it, {}) -- the empty braced list would
      // select the initializer_list overload and insert zero elements.
      dyn.leaf_in.emplace(dyn.leaf_in.begin());
      dyn.pos_of_node[node] = 0;
      refresh_positions(1);
    } else {
      dyn.pos_of_node[node] = seg_length.size();
      points.push_back(x);
      seg_length.push_back(len);
      sink_handle.push_back(hb);
      dyn.leaf_in.emplace_back();
    }
    registry.counter("dyn.edges_patched").add();
    return;
  }
  split_leaf(pos - 1, x);
}

// Splits leaf k = [t_k, t_k+1) at an interior point x. All flow crossing
// the leaf is drained first -- cancelled along its full source->job->leaf->
// sink triple, which keeps conservation at every node without any path
// walking, because this layout pins each flow unit to exactly one such
// triple. The old leaf node keeps the left half (handles stay valid); the
// right half gets a fresh node, and every surviving in-edge job -- whose
// window necessarily covers BOTH halves, since windows begin/end on event
// points -- gets its old edge re-capped and one new edge added.
template <typename Cap>
void OracleNet<Cap>::split_leaf(std::size_t k, const Cap& x) {
  obs::Registry& registry = obs::Registry::global();
  registry.counter("dyn.leaf_splits").add();
  std::vector<DynIn> survivors;
  survivors.reserve(dyn.leaf_in[k].size());
  for (const DynIn& in : dyn.leaf_in[k]) {
    if (dyn.gen[in.slot] != in.gen) continue;  // retired slot: purge
    const Cap f = graph.flow_on(in.handle);
    if (Cap(0) < f) {
      graph.cancel_flow(dyn.src_handle[in.slot], f);
      graph.cancel_flow(in.handle, f);
      graph.cancel_flow(sink_handle[k], f);
      routed -= f;
      registry.counter("dyn.drained_paths").add();
    }
    survivors.push_back(in);
  }
  const Cap len_a = x - points[k];
  const Cap len_b = points[k + 1] - x;
  seg_length[k] = len_a;
  graph.set_capacity(sink_handle[k], Cap(flow_m) * len_a);
  const std::size_t node_b = new_node();
  const std::size_t hb = graph.add_edge(node_b, sink, Cap(flow_m) * len_b);
  points.insert(points.begin() + static_cast<std::ptrdiff_t>(k) + 1, x);
  seg_length.insert(seg_length.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                    len_b);
  sink_handle.insert(sink_handle.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                     hb);
  // NB: emplace, not insert(it, {}) -- see ensure_point.
  dyn.leaf_in.emplace(dyn.leaf_in.begin() + static_cast<std::ptrdiff_t>(k) + 1);
  dyn.pos_of_node[node_b] = k + 1;
  refresh_positions(k + 2);
  std::uint64_t patched = 1;  // the new sink edge
  for (const DynIn& in : survivors) {
    const Cap& p = processing[in.slot];
    graph.set_capacity(in.handle, p < len_a ? p : len_a);
    const Cap cap_b = p < len_b ? p : len_b;
    const std::size_t h2 = graph.add_edge(dyn.job_node[in.slot], node_b, cap_b);
    dyn.out[in.slot].push_back(h2);
    dyn.leaf_in[k + 1].push_back({in.slot, in.gen, h2});
    ++dyn.live_edges;
    patched += 2;
  }
  dyn.leaf_in[k] = std::move(survivors);
  registry.counter("dyn.edges_patched").add(patched);
}

// Splices a freshly stored slot into the live layout: at most two leaf
// splits for the new window endpoints, then one source edge (recycled via
// set_capacity when the slot is reused) and one direct edge per covered
// leaf. The routed flow is untouched -- it is still feasible, merely no
// longer maximal -- so the next probe re-augments warm from the deficit.
template <typename Cap>
void OracleNet<Cap>::splice_insert(std::size_t slot) {
  obs::Registry& registry = obs::Registry::global();
  ensure_point(release[slot]);
  ensure_point(deadline[slot]);
  const Cap& p = processing[slot];
  if (slot >= dyn.job_node.size()) {
    dyn.job_node.resize(slot + 1, static_cast<std::size_t>(-1));
    dyn.src_handle.resize(slot + 1, static_cast<std::size_t>(-1));
    dyn.gen.resize(slot + 1, 0);
    dyn.out.resize(slot + 1);
  }
  if (dyn.job_node[slot] == static_cast<std::size_t>(-1)) {
    dyn.job_node[slot] = new_node();
    dyn.src_handle[slot] = graph.add_edge(source, dyn.job_node[slot], p);
  } else {
    // Recycled slot: its old flow was drained at retirement.
    graph.set_capacity(dyn.src_handle[slot], p);
  }
  const std::size_t lo = static_cast<std::size_t>(
      std::lower_bound(points.begin(), points.end(), release[slot]) -
      points.begin());
  const std::size_t hi = static_cast<std::size_t>(
      std::lower_bound(points.begin(), points.end(), deadline[slot]) -
      points.begin());
  std::uint64_t patched = 1;  // the source edge
  for (std::size_t k = lo; k < hi; ++k) {
    const Cap cap = p < seg_length[k] ? p : seg_length[k];
    const std::size_t h = graph.add_edge(dyn.job_node[slot], leaf_node_at(k),
                                         cap);
    dyn.out[slot].push_back(h);
    dyn.leaf_in[k].push_back(
        {static_cast<std::uint32_t>(slot), dyn.gen[slot], h});
    ++dyn.live_edges;
    ++patched;
  }
  total_work += p;
  registry.counter("dyn.edges_patched").add(patched);
}

// Retires a slot: drain its flow triple-by-triple (the out-edge handles
// pin each triple's leaf via pos_of_node), zero its capacities, and bump
// the generation so stale leaf_in entries purge lazily. The remaining flow
// is again feasible for the remaining jobs, so the next probe at the same
// machine count only has to CHECK maximality (one BFS), not re-solve.
template <typename Cap>
void OracleNet<Cap>::splice_remove(std::size_t slot) {
  obs::Registry& registry = obs::Registry::global();
  std::uint64_t patched = 1;  // the source edge
  for (const std::size_t h : dyn.out[slot]) {
    const Cap f = graph.flow_on(h);
    if (Cap(0) < f) {
      const std::size_t pos = dyn.pos_of_node[graph.edge_target(h)];
      graph.cancel_flow(dyn.src_handle[slot], f);
      graph.cancel_flow(h, f);
      graph.cancel_flow(sink_handle[pos], f);
      routed -= f;
      registry.counter("dyn.drained_paths").add();
    }
    graph.set_capacity(h, Cap(0));
    ++dyn.dead_edges;
    --dyn.live_edges;
    ++patched;
  }
  dyn.out[slot].clear();
  graph.set_capacity(dyn.src_handle[slot], Cap(0));
  ++dyn.gen[slot];
  total_work -= processing[slot];
  registry.counter("dyn.edges_patched").add(patched);
}

template <typename Cap>
bool OracleNet<Cap>::probe(std::int64_t machines, bool allow_warm,
                           bool& warm) {
  warm = allow_warm && machines >= flow_m;
  if (warm) {
    // Sink capacities only grow, so the routed flow stays feasible and
    // max_flow() resumes from the residual graph.
    if (machines > flow_m) {
      const Cap delta(machines - flow_m);
      for (std::size_t k = 0; k < sink_handle.size(); ++k)
        graph.increase_capacity(sink_handle[k], delta * seg_length[k]);
    }
  } else {
    const Cap m_cap(machines);
    for (std::size_t k = 0; k < sink_handle.size(); ++k)
      graph.set_capacity(sink_handle[k], m_cap * seg_length[k]);
    graph.reset_flow();
    routed = Cap(0);
  }
  routed += graph.max_flow(source, sink);
  flow_m = machines;
  return routed == total_work;
}

// Array-level body of OracleNet::sweep_bound, shared with the dynamic
// oracle's live views (compacted copies that mask retired slots): the
// bound must see EXACTLY the live job set -- a dead slot's work would
// inflate it above OPT, which is unsound -- and running the same kernel on
// the same values keeps dynamic and batch lower bounds bit-identical.
template <typename Cap>
std::int64_t sweep_bound_arrays(const std::vector<Cap>& release,
                                const std::vector<Cap>& deadline,
                                const std::vector<Cap>& processing,
                                const std::vector<Cap>& points, bool accel) {
  // Left-endpoint budget: caps the sweep at O(budget * (n + S)). The bound
  // stays certified (subset of intervals); any slack vs the exact value is
  // absorbed by a few extra warm ascending probes, which cost one residual
  // augmentation each -- cheaper than the full O(S * (n + S)) sweep on
  // instances with many event points.
  constexpr std::size_t kLeftBudget = 256;
  const std::size_t stride =
      points.size() <= 1 ? 1
                         : std::max<std::size_t>(
                               1, (points.size() - 1) / kLeftBudget);
  if constexpr (std::is_same_v<Cap, __int128>) {
    // Integer grid + SIMD dispatch: run the vectorized int64 kernel. Grid
    // values fit int64 by the try_integer_grid guard; the kernel spills
    // back to this generic path internally if its tighter overflow guard
    // rejects the instance. Bit-identical results either way.
    if (accel && util::simd::active()) {
      auto narrow = [](const std::vector<__int128>& v) {
        std::vector<std::int64_t> out(v.size());
        for (std::size_t i = 0; i < v.size(); ++i)
          out[i] = static_cast<std::int64_t>(v[i]);
        return out;
      };
      return sweep_load_bound_i64(narrow(release), narrow(deadline),
                                  narrow(processing), narrow(points), stride,
                                  /*use_avx2=*/true)
          .machines;
    }
  }
  return sweep_load_bound(release, deadline, processing, points,
                          [](const Cap& c, const Cap& len) {
                            if constexpr (std::is_same_v<Cap, Rat>) {
                              return (c / len).ceil().to_int64();
                            } else {
                              return static_cast<std::int64_t>(
                                  (c + len - 1) / len);
                            }
                          },
                          stride)
      .machines;
}

template <typename Cap>
std::int64_t OracleNet<Cap>::sweep_bound() const {
  return sweep_bound_arrays(release, deadline, processing, points, accel);
}

// Live view of a (possibly edited) net: the live slots' values plus their
// OWN event points. Both matter -- the net's member arrays may still hold
// retired slots' values, and its member `points` may hold their (or gap
// boundary) event points, either of which would skew the sweep. The copy
// is O(n log n) once per post-edit bound, then cached via lb_cache.
template <typename Cap>
struct LiveArrays {
  std::vector<Cap> release, deadline, processing, points;
};

template <typename Cap>
LiveArrays<Cap> live_view(const OracleNet<Cap>& net,
                          const std::vector<char>& live) {
  LiveArrays<Cap> v;
  for (std::size_t s = 0; s < live.size(); ++s) {
    if (!live[s]) continue;
    v.release.push_back(net.release[s]);
    v.deadline.push_back(net.deadline[s]);
    v.processing.push_back(net.processing[s]);
  }
  v.points.insert(v.points.end(), v.release.begin(), v.release.end());
  v.points.insert(v.points.end(), v.deadline.begin(), v.deadline.end());
  std::sort(v.points.begin(), v.points.end());
  v.points.erase(std::unique(v.points.begin(), v.points.end()),
                 v.points.end());
  return v;
}

}  // namespace

// ---- incremental oracle ------------------------------------------------

struct FeasibilityOracle::Impl {
  OracleOptions options;
  bool empty = false;
  bool well_formed = true;
  bool integer_mode = false;
  std::int64_t job_count = 0;
  std::int64_t density_lb = 1;
  std::optional<std::int64_t> lb_cache;  // density + optional sweep, lazy

  // Monotone verdict memo: feasible for all m >= min_feasible, infeasible
  // for all m <= max_infeasible.
  std::int64_t min_feasible = 0;
  std::int64_t max_infeasible = 0;

  // Affine-canonical fingerprint for the global OPT cache; computed at
  // construction only when the cache is enabled (has_fp gates every cache
  // touch, so a disabled cache costs nothing).
  bool has_fp = false;
  util::Digest128 fp;
  std::uint64_t probes_executed = 0;

  // Probe network (exactly one is built, per integer_mode). The constructor
  // only normalizes the instance into the net's arrays; the Horn network
  // itself is built lazily on the first real probe (ensure_network), so an
  // OPT answered by the bound sandwich or the OPT cache never pays for it
  // -- the build is the single largest oracle cost (EXPERIMENTS.md P1).
  bool network_built = false;
  OracleNet<__int128> inet;
  OracleNet<Rat> rnet;

  // Bound-tier sandwich (DESIGN.md §14), computed once on first use.
  bool sandwich_done = false;
  BoundSandwich sandwich_cache;

  // flow.* counters already published, so each probe adds only its delta.
  DinicStats published;

  // ---- dynamic-edit state (DESIGN.md §15), engaged on the first edit ----
  //
  // Jobs live in SLOTS (positions in the active net's arrays); callers hold
  // stable JobIds that indirect through slot_of_id so compaction can
  // renumber slots without invalidating ids. job_count counts LIVE slots.
  bool dyn_mode = false;
  std::vector<char> slot_live;            // per slot
  std::vector<std::uint32_t> free_slots;  // retired slots, reusable
  std::vector<std::int64_t> slot_of_id;   // per id; -1 = retired
  std::vector<JobId> id_of_slot;          // per slot (live slots only valid)
  // Multiplier taking original Rat values onto the integer grid; inserts
  // that do not land on it (non-integral or overflowing after scaling)
  // demote the oracle to the exact rational network once, permanently.
  Rat grid_scale{1};
  bool lb_dirty = false;       // density_lb stale after an edit
  bool pending_repair = false; // a splice awaits its warm re-augmentation

  // Pool bookkeeping (see acquire_impl): owner_busy points at the leasing
  // thread's busy flag and is only ever compared / written on that thread.
  bool pooled = false;
  bool* owner_busy = nullptr;

  bool probe(std::int64_t machines);
  std::int64_t lower_bound();
  void publish_flow_stats();
  void ensure_network();
  // The public Instance constructor's normalization body (grid conversion,
  // density bound, fingerprint), shared with the JobColumns constructor's
  // fallback path. Assumes a freshly reset Impl.
  void init_from_instance(const Instance& instance,
                          const OracleOptions& options);
  JobId insert(const Job& job);
  void remove(JobId id);
  void enter_dyn_mode();
  void fall_back_to_rational();
  void compact_slots();
  void refresh_dyn_bounds();
  // Every edit invalidates the derived caches; the monotone memo is NOT
  // among them -- insert/remove shift it by the sound +-1 rules instead.
  void invalidate_after_edit() {
    lb_cache.reset();
    lb_dirty = true;
    sandwich_done = false;
    sandwich_cache = BoundSandwich{};
    has_fp = false;  // the fingerprint named the pre-edit instance
  }
  [[nodiscard]] bool bounds_active() const {
    return options.bounds && bounds_tier_enabled();
  }
  const BoundSandwich& sandwich();
  [[nodiscard]] Instance materialize() const;

  // Restores the default-constructed logical state (everything the public
  // constructor assumes) while keeping container storage.
  void reset() {
    options = OracleOptions{};
    empty = false;
    well_formed = true;
    integer_mode = false;
    job_count = 0;
    density_lb = 1;
    lb_cache.reset();
    min_feasible = 0;
    max_infeasible = 0;
    has_fp = false;
    fp = util::Digest128{};
    probes_executed = 0;
    network_built = false;
    sandwich_done = false;
    sandwich_cache = BoundSandwich{};
    inet.reset_net();
    rnet.reset_net();
    published = DinicStats{};
    dyn_mode = false;
    slot_live.clear();
    free_slots.clear();
    slot_of_id.clear();
    id_of_slot.clear();
    grid_scale = Rat(1);
    lb_dirty = false;
    pending_repair = false;
  }
};

namespace {
// One pooled oracle Impl per thread, leased by at most one live oracle at a
// time; nested oracles and the legacy baseline fall back to fresh Impls.
thread_local bool g_oracle_pool_busy = false;
}  // namespace

auto FeasibilityOracle::acquire_impl() -> std::unique_ptr<Impl, ImplDeleter> {
  if (!g_oracle_pool_busy && !util::substrate_legacy()) {
    thread_local std::unique_ptr<Impl> slot;
    if (!slot) slot = std::make_unique<Impl>();
    g_oracle_pool_busy = true;
    slot->pooled = true;
    slot->owner_busy = &g_oracle_pool_busy;
    slot->reset();
    return std::unique_ptr<Impl, ImplDeleter>(slot.get(), ImplDeleter{});
  }
  return std::unique_ptr<Impl, ImplDeleter>(new Impl(), ImplDeleter{});
}

void FeasibilityOracle::ImplDeleter::operator()(Impl* impl) const noexcept {
  if (impl == nullptr) return;
  if (!impl->pooled) {
    delete impl;
    return;
  }
  // Release the lease only on the owning thread (pointer compare against
  // this thread's flag; no dereference of a foreign thread_local). A
  // pooled Impl released on another thread leaves its owner's slot marked
  // busy -- pooling stops there, but the memory stays owned by the owner's
  // thread_local unique_ptr, so nothing dangles or double-frees.
  if (impl->owner_busy == &g_oracle_pool_busy) g_oracle_pool_busy = false;
}

FeasibilityOracle::FeasibilityOracle(const Instance& instance,
                                     const OracleOptions& options)
    : impl_(acquire_impl()) {
  // Normalization only (grid conversion, density bound, fingerprint); the
  // network build has its own span inside ensure_network().
  obs::ProfileSpan span("oracle_norm");
  impl_->init_from_instance(instance, options);
}

void FeasibilityOracle::Impl::init_from_instance(const Instance& instance,
                                                 const OracleOptions& options) {
  Impl& im = *this;
  im.options = options;
  im.empty = instance.empty();
  if (im.empty) return;
  im.well_formed = instance.well_formed();
  if (!im.well_formed) return;
  im.job_count = static_cast<std::int64_t>(instance.size());
  // Each job alone on a machine is feasible (p_j <= d_j - r_j), so n
  // machines always suffice.
  im.min_feasible = im.job_count;

  if (util::OptCache::global().enabled()) {
    obs::Registry& reg = obs::Registry::global();
    obs::ScopedTimer timer(reg.timing("cache.fingerprint_ns"));
    im.fp = canonical_fingerprint(instance);
    im.has_fp = true;
    reg.counter("cache.fingerprints").add();
  }

  const bool accel = options.simd && util::simd::active();
  const std::size_t n = instance.size();

  // SIMD fast path: when every field is a small integer the grid is the
  // values themselves, so the Rat event-point sort, the exact density
  // division, and try_integer_grid's lcm/rescale are all replaced by int64
  // scans. Falls through to the seed arithmetic on any non-small input;
  // either way integer_mode, density_lb, and the built network match the
  // seed path value for value.
  IntegerGrid grid;
  std::int64_t small_total = 0;
  if (accel) {
    SmallGrid small = try_small_integer_grid(instance);
    grid = std::move(small.grid);
    small_total = small.total_work;
  }
  std::vector<Rat> points;
  if (!grid.usable) {
    points = instance.event_points();
    const Rat span = points.back() - points.front();
    if (span.is_positive()) {
      const Rat density = instance.total_work() / span;
      im.density_lb = std::max<std::int64_t>(1, density.ceil().to_int64());
    }
    grid = try_integer_grid(instance);
  }

  if (grid.usable) {
    im.integer_mode = true;
    im.grid_scale = grid.scale;  // later insert_job() scales onto this grid
    OracleNet<__int128>& net = im.inet;
    net.accel = accel;
    net.release.assign(grid.release.begin(), grid.release.end());
    net.deadline.assign(grid.deadline.begin(), grid.deadline.end());
    net.processing.assign(grid.processing.begin(), grid.processing.end());
    std::vector<std::int64_t> ipoints;
    ipoints.reserve(2 * n);
    ipoints.insert(ipoints.end(), grid.release.begin(), grid.release.end());
    ipoints.insert(ipoints.end(), grid.deadline.begin(), grid.deadline.end());
    std::sort(ipoints.begin(), ipoints.end());
    ipoints.erase(std::unique(ipoints.begin(), ipoints.end()), ipoints.end());
    if (points.empty()) {
      // Fast-path entry: the density bound from int64 values. ipoints is
      // the same set the Rat event points would form, so span and
      // ceil(total/span) equal the seed's exact-rational results.
      const std::int64_t span = ipoints.back() - ipoints.front();
      if (span > 0) {
        const __int128 total = small_total;
        im.density_lb = std::max<std::int64_t>(
            1, static_cast<std::int64_t>((total + span - 1) / span));
      }
    }
    net.points.assign(ipoints.begin(), ipoints.end());
  } else {
    OracleNet<Rat>& net = im.rnet;
    net.accel = accel;
    net.release.reserve(n);
    net.deadline.reserve(n);
    net.processing.reserve(n);
    for (const Job& job : instance.jobs()) {
      net.release.push_back(job.release);
      net.deadline.push_back(job.deadline);
      net.processing.push_back(job.processing);
    }
    net.points = std::move(points);
  }
  // The Horn network itself is NOT built here: ensure_network() builds it
  // on the first probe, so an answer served by the bound sandwich or the
  // OPT cache skips the build entirely.
}

FeasibilityOracle::FeasibilityOracle(const JobColumns& columns,
                                     const OracleOptions& options)
    : impl_(acquire_impl()) {
  obs::ProfileSpan span("oracle_norm");
  Impl& im = *impl_;
  im.options = options;
  im.empty = columns.count == 0;
  if (im.empty) return;
  const std::size_t n = columns.count;

  // Zero-copy fast path: int64 columns (typically straight out of an
  // mmap'd corpus, store/corpus.hpp) ARE the integer grid -- no Instance,
  // no Rats, no lcm. The columns may be an affine image of the original
  // rational instance; verdicts and OPT are invariant under that map, so
  // grid_scale stays 1 and later insert_job() calls must supply jobs in the
  // SAME (scaled) coordinates. Values outside the 62-bit guard or a total
  // work overflowing int64 fall back to the materialized-Instance path,
  // which reproduces the Instance constructor exactly.
  constexpr std::int64_t kMaxAbs = (std::int64_t{1} << 62) - 1;
  bool small = true;
  bool well = true;
  __int128 total = 0;
  for (std::size_t j = 0; j < n && small; ++j) {
    const std::int64_t r = columns.release[j];
    const std::int64_t d = columns.deadline[j];
    const std::int64_t p = columns.processing[j];
    small = r >= -kMaxAbs && r <= kMaxAbs && d >= -kMaxAbs && d <= kMaxAbs &&
            p >= -kMaxAbs && p <= kMaxAbs;
    if (!small) break;
    well = well && p > 0 && p <= d - r;
    total += p;
  }
  if (!small || total > INT64_MAX) {
    Instance fallback;
    for (std::size_t j = 0; j < n; ++j)
      fallback.add_job({Rat(columns.release[j]), Rat(columns.deadline[j]),
                        Rat(columns.processing[j])});
    im.init_from_instance(fallback, options);
    return;
  }

  im.well_formed = well;
  if (!im.well_formed) return;
  im.job_count = static_cast<std::int64_t>(n);
  im.min_feasible = im.job_count;

  if (util::OptCache::global().enabled()) {
    obs::Registry& reg = obs::Registry::global();
    obs::ScopedTimer timer(reg.timing("cache.fingerprint_ns"));
    im.fp = canonical_fingerprint(columns);
    im.has_fp = true;
    reg.counter("cache.fingerprints").add();
  }

  im.integer_mode = true;
  OracleNet<__int128>& net = im.inet;
  net.accel = options.simd && util::simd::active();
  net.release.assign(columns.release, columns.release + n);
  net.deadline.assign(columns.deadline, columns.deadline + n);
  net.processing.assign(columns.processing, columns.processing + n);
  std::vector<std::int64_t> ipoints;
  ipoints.reserve(2 * n);
  ipoints.insert(ipoints.end(), columns.release, columns.release + n);
  ipoints.insert(ipoints.end(), columns.deadline, columns.deadline + n);
  std::sort(ipoints.begin(), ipoints.end());
  ipoints.erase(std::unique(ipoints.begin(), ipoints.end()), ipoints.end());
  const std::int64_t ispan = ipoints.back() - ipoints.front();
  if (ispan > 0) {
    im.density_lb = std::max<std::int64_t>(
        1, static_cast<std::int64_t>((total + ispan - 1) / ispan));
  }
  net.points.assign(ipoints.begin(), ipoints.end());
  obs::Registry::global().counter("store.corpus_zero_copy").add();
}

void FeasibilityOracle::Impl::ensure_network() {
  if (network_built || empty || !well_formed) return;
  network_built = true;
  obs::ProfileSpan span("oracle_build");
  BuildCounters counters;
  // An edited oracle compacts retired slots away before any (re)build --
  // both layouts want dense all-live arrays -- and with options.dynamic
  // adopts the flat splice-able layout so later edits patch in place.
  // The stale-mark fallback (options.dynamic off) lands here too and
  // rebuilds the ordinary batch network over the live set.
  if (dyn_mode) compact_slots();
  const bool dynamic_layout = dyn_mode && options.dynamic;
  if (integer_mode) {
    if (dynamic_layout)
      inet.build_dynamic(counters);
    else
      inet.build(options.compress, counters);
    inet.graph.set_level_kernel(inet.accel ? -1 : 0);
  } else {
    if (dynamic_layout)
      rnet.build_dynamic(counters);
    else
      rnet.build(options.compress, counters);
    rnet.graph.set_level_kernel(rnet.accel ? -1 : 0);
  }

  obs::Registry& registry = obs::Registry::global();
  registry.counter("oracle.builds").add();
  if (dynamic_layout) {
    registry.counter("dyn.rebuilds").add();
    registry.counter("oracle.direct_edges").add(counters.direct_edges);
  } else if (options.compress) {
    registry.counter("oracle.tree_edges").add(counters.tree_edges);
    registry.counter("oracle.direct_edges").add(counters.direct_edges);
  } else {
    registry.counter("oracle.dense_edges").add(counters.dense_edges);
  }
  if (obs::trace_enabled()) {
    obs::trace_event("oracle", "build",
                     {{"jobs", job_count},
                      {"segments", static_cast<std::int64_t>(counters.segments)},
                      {"integer_mode", integer_mode},
                      {"compressed", options.compress},
                      {"tree_edges",
                       static_cast<std::int64_t>(counters.tree_edges)},
                      {"direct_edges",
                       static_cast<std::int64_t>(counters.direct_edges)},
                      {"dense_edges",
                       static_cast<std::int64_t>(counters.dense_edges)},
                      {"load_lb", density_lb}});
  }
}

FeasibilityOracle::~FeasibilityOracle() = default;
FeasibilityOracle::FeasibilityOracle(FeasibilityOracle&&) noexcept = default;
FeasibilityOracle& FeasibilityOracle::operator=(FeasibilityOracle&&) noexcept =
    default;

void FeasibilityOracle::Impl::publish_flow_stats() {
  const DinicStats& now = integer_mode ? inet.graph.stats() : rnet.graph.stats();
  obs::Registry& registry = obs::Registry::global();
  registry.counter("flow.bfs_passes").add(now.bfs_passes - published.bfs_passes);
  registry.counter("flow.augmenting_paths")
      .add(now.augmenting_paths - published.augmenting_paths);
  registry.counter("flow.edge_visits")
      .add(now.edge_visits - published.edge_visits);
  published = now;
}

// Rebuilds an Instance from the normalized per-job arrays for the packing
// upper bound. The integer grid is the original instance under an affine
// time rescale (denominator-lcm stretch), which preserves OPT and maps a
// feasible witness schedule back and forth, so packing the materialized
// instance certifies the original.
Instance FeasibilityOracle::Impl::materialize() const {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(job_count));
  // Edited oracles may still hold retired slots' values; only live slots
  // belong to the instance being certified.
  const auto dead = [this](std::size_t j) {
    return dyn_mode && !slot_live[j];
  };
  if (integer_mode) {
    for (std::size_t j = 0; j < inet.release.size(); ++j) {
      if (dead(j)) continue;
      // Grid values fit int64 by the try_integer_grid 62-bit guard.
      jobs.push_back(Job{Rat(static_cast<std::int64_t>(inet.release[j])),
                         Rat(static_cast<std::int64_t>(inet.deadline[j])),
                         Rat(static_cast<std::int64_t>(inet.processing[j]))});
    }
  } else {
    for (std::size_t j = 0; j < rnet.release.size(); ++j) {
      if (dead(j)) continue;
      jobs.push_back(Job{rnet.release[j], rnet.deadline[j], rnet.processing[j]});
    }
  }
  return Instance(std::move(jobs));
}

// Computes the certified sandwich lo <= OPT <= hi once and folds it into
// the monotone verdict memo (everything below lo is infeasible by the load
// argument, hi carries a validated schedule witness), so both the oracle's
// own search and the query engine's bracket start pre-narrowed.
const BoundSandwich& FeasibilityOracle::Impl::sandwich() {
  if (sandwich_done) return sandwich_cache;
  sandwich_done = true;
  BoundSandwich& s = sandwich_cache;
  if (empty || !well_formed) return s;  // degenerate {0, 0}
  obs::ScopedLatency latency("hist.bound_ns");
  obs::Registry& registry = obs::Registry::global();

  // Lower side: pigeonhole density + sweep load bound over the already
  // normalized arrays. Integer grids run the budgeted SIMD kernel (same as
  // lower_bound()); rational grids take the double-prefiltered exact sweep
  // (core/bounds.hpp) -- the all-pairs Rat sweep compounds denominators in
  // its accumulators, which made rational lower bounds dominate sandwich
  // wall time on the adversary families.
  refresh_dyn_bounds();
  std::int64_t lo = density_lb;
  {
    obs::ProfileSpan span("bound_lo");
    if (dyn_mode) {
      // Edited oracle: sweep the live view (same kernels, same values a
      // fresh batch oracle of the live set would see).
      if (integer_mode) {
        const LiveArrays<__int128> v = live_view(inet, slot_live);
        lo = std::max(lo, sweep_bound_arrays(v.release, v.deadline,
                                             v.processing, v.points,
                                             inet.accel));
      } else {
        const LiveArrays<Rat> v = live_view(rnet, slot_live);
        lo = std::max(lo, prefiltered_sweep_bound(v.release, v.deadline,
                                                  v.processing, v.points));
      }
    } else {
      lo = std::max(lo,
                    integer_mode
                        ? inet.sweep_bound()
                        : prefiltered_sweep_bound(rnet.release, rnet.deadline,
                                                  rnet.processing,
                                                  rnet.points));
    }
  }
  s.certificate.density_lb = density_lb;
  s.certificate.load_lb = lo;
  if (options.sweep_bound && !lb_cache) lb_cache = lo;
  lo = std::max(lo, max_infeasible + 1);
  std::int64_t hi = min_feasible;

  // A prior sandwich of the same canonical instance narrows the bracket
  // before any packing work; every cached bracket is certified, so the
  // intersection still contains OPT.
  if (has_fp) {
    if (auto cached = util::OptCache::global().lookup_bounds(fp)) {
      if (cached->first > lo || cached->second < hi)
        s.certificate.cache_seeded = true;
      lo = std::max(lo, cached->first);
      hi = std::min(hi, cached->second);
    }
  }

  // Upper side: constructive packing witness, opened at lo so a success
  // there pinches the sandwich outright.
  if (lo < hi) {
    PackUbOptions pack_options;
    pack_options.start = lo;
    // Integer-mode instances take the packer's direct McNaughton audit:
    // same certificate strength as realize+validate, without building a
    // Rat schedule on every sandwich (see PackUbOptions::audit_schedule).
    pack_options.audit_schedule = false;
    const PackUbResult pack = pack_upper_bound(materialize(), pack_options);
    s.certificate.pack_machines = pack.machines;
    s.certificate.pack = pack.witness;
    hi = std::min(hi, pack.machines);
  }

  s.lo = lo;
  s.hi = hi;
  max_infeasible = std::max(max_infeasible, lo - 1);
  min_feasible = std::min(min_feasible, hi);
  registry.counter("bounds.computed").add();
  if (s.pinched()) registry.counter("bounds.pinched").add();
  registry.histogram("bounds.bracket_width").observe(hi - lo);
  if (has_fp) util::OptCache::global().insert_bounds(fp, lo, hi);
  if (obs::trace_enabled()) {
    obs::trace_event("oracle", "sandwich",
                     {{"lo", lo},
                      {"hi", hi},
                      {"load_lb", s.certificate.load_lb},
                      {"pack_machines", s.certificate.pack_machines},
                      {"cache_seeded", s.certificate.cache_seeded}});
  }
  return s;
}

bool FeasibilityOracle::Impl::probe(std::int64_t machines) {
  ensure_network();
  obs::ProfileSpan span("probe");
  obs::Registry& registry = obs::Registry::global();
  registry.counter("oracle.probes").add();
  ++probes_executed;
  bool result;
  bool warm = false;
  {
    obs::ScopedTimer timer(registry.timing("oracle.probe_ns"));
    obs::ScopedLatency latency("hist.probe_ns");
    if (pending_repair) {
      // First probe after a splice: this max-flow IS the warm repair (it
      // re-augments only the deficit the edit opened).
      obs::ProfileSpan repair("flow_repair");
      pending_repair = false;
      result = integer_mode
                   ? inet.probe(machines, options.warm_start, warm)
                   : rnet.probe(machines, options.warm_start, warm);
    } else {
      result = integer_mode
                   ? inet.probe(machines, options.warm_start, warm)
                   : rnet.probe(machines, options.warm_start, warm);
    }
  }
  registry.counter(warm ? "oracle.warm_probes" : "oracle.cold_probes").add();
  const DinicStats& now = integer_mode ? inet.graph.stats() : rnet.graph.stats();
  if (obs::trace_enabled()) {
    obs::trace_event("oracle", "probe",
                     {{"m", machines},
                      {"feasible", result},
                      {"warm", warm},
                      {"augmenting_paths",
                       now.augmenting_paths - published.augmenting_paths},
                      {"integer_mode", integer_mode}});
  }
  publish_flow_stats();
  return result;
}

std::int64_t FeasibilityOracle::Impl::lower_bound() {
  if (lb_cache) return *lb_cache;
  refresh_dyn_bounds();
  std::int64_t lb = empty ? 0 : density_lb;
  if (options.sweep_bound && !empty && well_formed) {
    obs::ProfileSpan span("sweep_bound");
    obs::Registry& registry = obs::Registry::global();
    obs::ScopedTimer timer(registry.timing("oracle.sweep_ns"));
    registry.counter("oracle.sweep_bounds").add();
    if (dyn_mode) {
      // Edited oracle: the net's member arrays/points may include retired
      // slots or boundary gaps; sweep the live view instead (identical
      // values to a fresh batch oracle of the live set).
      if (integer_mode) {
        const LiveArrays<__int128> v = live_view(inet, slot_live);
        lb = std::max(lb, sweep_bound_arrays(v.release, v.deadline,
                                             v.processing, v.points,
                                             inet.accel));
      } else {
        const LiveArrays<Rat> v = live_view(rnet, slot_live);
        lb = std::max(lb, sweep_bound_arrays(v.release, v.deadline,
                                             v.processing, v.points,
                                             rnet.accel));
      }
    } else {
      lb = std::max(lb, integer_mode ? inet.sweep_bound() : rnet.sweep_bound());
    }
    // The sweep bound is certified (Theorem 1's easy direction), so every
    // machine count below it is infeasible without probing. The legacy
    // path skips this to stay probe-for-probe faithful to the pre-PR
    // search.
    max_infeasible = std::max(max_infeasible, lb - 1);
  }
  lb_cache = lb;
  return lb;
}

// ---- dynamic edits (DESIGN.md §15) -------------------------------------

// Engaged on the first edit: from then on jobs live in slots with id
// indirection. Constructor jobs keep their instance indices as ids.
void FeasibilityOracle::Impl::enter_dyn_mode() {
  if (dyn_mode) return;
  dyn_mode = true;
  const std::size_t n =
      integer_mode ? inet.release.size() : rnet.release.size();
  slot_live.assign(n, 1);
  id_of_slot.resize(n);
  slot_of_id.resize(n);
  free_slots.clear();
  for (std::size_t s = 0; s < n; ++s) {
    id_of_slot[s] = static_cast<JobId>(s);
    slot_of_id[s] = static_cast<std::int64_t>(s);
  }
}

// A job that does not land on the integer grid demotes the oracle to the
// exact rational network, once and permanently. Every stored slot converts
// exactly (grid / scale reproduces the original value by construction);
// retired slots convert too -- harmlessly, just to keep slot alignment --
// and are compacted away at the next build.
void FeasibilityOracle::Impl::fall_back_to_rational() {
  obs::Registry::global().counter("dyn.grid_fallbacks").add();
  const bool accel = inet.accel;
  const std::size_t n = inet.release.size();
  rnet.reset_net();
  rnet.accel = accel;
  rnet.release.reserve(n);
  rnet.deadline.reserve(n);
  rnet.processing.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    rnet.release.push_back(
        Rat(static_cast<std::int64_t>(inet.release[j])) / grid_scale);
    rnet.deadline.push_back(
        Rat(static_cast<std::int64_t>(inet.deadline[j])) / grid_scale);
    rnet.processing.push_back(
        Rat(static_cast<std::int64_t>(inet.processing[j])) / grid_scale);
  }
  inet.reset_net();
  integer_mode = false;
  grid_scale = Rat(1);
  network_built = false;
  pending_repair = false;
}

// Physically erases retired slots from the active net's arrays, renumbering
// live slots (ids stay stable through slot_of_id). Only legal with no live
// spliced layout -- edge handles name the OLD slots -- so both layouts are
// reset first; callers rebuild right after.
void FeasibilityOracle::Impl::compact_slots() {
  inet.dyn.reset();
  rnet.dyn.reset();
  if (!dyn_mode) return;
  std::size_t w = 0;
  const std::size_t n = slot_live.size();
  for (std::size_t s = 0; s < n; ++s) {
    if (!slot_live[s]) continue;
    if (w != s) {
      if (integer_mode) {
        inet.release[w] = inet.release[s];
        inet.deadline[w] = inet.deadline[s];
        inet.processing[w] = inet.processing[s];
      } else {
        rnet.release[w] = std::move(rnet.release[s]);
        rnet.deadline[w] = std::move(rnet.deadline[s]);
        rnet.processing[w] = std::move(rnet.processing[s]);
      }
      id_of_slot[w] = id_of_slot[s];
    }
    slot_of_id[id_of_slot[w]] = static_cast<std::int64_t>(w);
    ++w;
  }
  if (integer_mode) {
    inet.release.resize(w);
    inet.deadline.resize(w);
    inet.processing.resize(w);
    inet.recompute_points();
  } else {
    rnet.release.resize(w);
    rnet.deadline.resize(w);
    rnet.processing.resize(w);
    rnet.recompute_points();
  }
  id_of_slot.resize(w);
  slot_live.assign(w, 1);
  free_slots.clear();
}

// Recomputes the pigeonhole density bound over the LIVE slots after an
// edit (a retired slot's work inflating the bound would be unsound; a
// missing insert would merely loosen it, but the differential suite pins
// exact agreement with the batch oracle).
void FeasibilityOracle::Impl::refresh_dyn_bounds() {
  if (!lb_dirty) return;
  lb_dirty = false;
  density_lb = 1;
  if (empty || !well_formed || job_count <= 0) return;
  if (integer_mode) {
    __int128 total = 0;
    __int128 lo = 0, hi = 0;
    bool first = true;
    for (std::size_t s = 0; s < slot_live.size(); ++s) {
      if (!slot_live[s]) continue;
      total += inet.processing[s];
      if (first || inet.release[s] < lo) lo = inet.release[s];
      if (first || hi < inet.deadline[s]) hi = inet.deadline[s];
      first = false;
    }
    const __int128 span = hi - lo;
    if (span > 0)
      density_lb = std::max<std::int64_t>(
          1, static_cast<std::int64_t>((total + span - 1) / span));
  } else {
    Rat total(0);
    Rat lo(0), hi(0);
    bool first = true;
    for (std::size_t s = 0; s < slot_live.size(); ++s) {
      if (!slot_live[s]) continue;
      total += rnet.processing[s];
      if (first || rnet.release[s] < lo) lo = rnet.release[s];
      if (first || hi < rnet.deadline[s]) hi = rnet.deadline[s];
      first = false;
    }
    const Rat span = hi - lo;
    if (span.is_positive()) {
      const Rat density = total / span;
      density_lb = std::max<std::int64_t>(1, density.ceil().to_int64());
    }
  }
}

JobId FeasibilityOracle::Impl::insert(const Job& job) {
  if (!well_formed)
    throw std::invalid_argument(
        "insert_job: oracle holds a malformed instance");
  if (!job.well_formed())
    throw std::invalid_argument("insert_job: malformed job");
  obs::ProfileSpan span("dyn_insert");
  obs::Registry& registry = obs::Registry::global();
  registry.counter("dyn.inserts").add();

  // First job ever (oracle constructed empty): decide the grid mode here,
  // from this job, the way the batch constructor would.
  if (!dyn_mode && job_count == 0 && inet.release.empty() &&
      rnet.release.empty()) {
    auto small = [](const Rat& v) {
      constexpr std::int64_t kMaxAbs = (std::int64_t{1} << 62) - 1;
      if (!v.is_integer() || !v.num().is_small()) return false;
      const std::int64_t x = v.num().small_value();
      return x >= -kMaxAbs && x <= kMaxAbs;
    };
    integer_mode =
        small(job.release) && small(job.deadline) && small(job.processing);
    grid_scale = Rat(1);
    const bool accel = options.simd && util::simd::active();
    if (integer_mode)
      inet.accel = accel;
    else
      rnet.accel = accel;
  }
  enter_dyn_mode();

  // Land the job on the active grid, or demote to rationals once.
  std::int64_t gr = 0, gd = 0, gp = 0;
  if (integer_mode) {
    auto fit = [this](const Rat& v, std::int64_t& out) {
      const Rat scaled = v * grid_scale;
      if (!scaled.is_integer()) return false;
      BigInt num = scaled.num();
      if (num.bit_length() > 62) return false;
      out = num.to_int64();
      return true;
    };
    if (!fit(job.release, gr) || !fit(job.deadline, gd) ||
        !fit(job.processing, gp))
      fall_back_to_rational();
  }

  // Slot allocation: retired slots are recycled before the arrays grow.
  std::size_t slot;
  if (!free_slots.empty()) {
    slot = free_slots.back();
    free_slots.pop_back();
    if (integer_mode) {
      inet.release[slot] = gr;
      inet.deadline[slot] = gd;
      inet.processing[slot] = gp;
    } else {
      rnet.release[slot] = job.release;
      rnet.deadline[slot] = job.deadline;
      rnet.processing[slot] = job.processing;
    }
  } else {
    slot = slot_live.size();
    slot_live.push_back(0);
    id_of_slot.push_back(kInvalidJob);
    if (integer_mode) {
      inet.release.push_back(gr);
      inet.deadline.push_back(gd);
      inet.processing.push_back(gp);
    } else {
      rnet.release.push_back(job.release);
      rnet.deadline.push_back(job.deadline);
      rnet.processing.push_back(job.processing);
    }
  }
  slot_live[slot] = 1;
  const JobId id = static_cast<JobId>(slot_of_id.size());
  slot_of_id.push_back(static_cast<std::int64_t>(slot));
  id_of_slot[slot] = id;
  ++job_count;
  empty = false;
  // Memo shift: the new job alone fits one extra machine, so OPT grows by
  // at most 1; infeasibility survives adding a job, so the floor stands.
  min_feasible = std::min(job_count, min_feasible + 1);
  invalidate_after_edit();

  if (network_built) {
    auto after_splice = [&](const auto& net) {
      if (net.dyn.dead_edges > net.dyn.live_edges + 64) {
        // Dead-edge debt exceeds the live set: fold the zero-capacity
        // edges away with a fresh compacted build on the next probe.
        network_built = false;
        pending_repair = false;
      } else {
        registry.counter("dyn.rebuilds_avoided").add();
        pending_repair = true;
      }
    };
    if (!options.dynamic) {
      network_built = false;  // stale-mark: next probe rebuilds (live set)
    } else if (integer_mode && inet.dyn.active) {
      inet.splice_insert(slot);
      after_splice(inet);
    } else if (!integer_mode && rnet.dyn.active) {
      rnet.splice_insert(slot);
      after_splice(rnet);
    } else {
      // Batch layout in place: convert to the spliceable layout lazily on
      // the next probe (coalesces any further edits before it for free).
      network_built = false;
    }
  }
  return id;
}

void FeasibilityOracle::Impl::remove(JobId id) {
  if (!well_formed)
    throw std::invalid_argument(
        "remove_job: oracle holds a malformed instance");
  obs::ProfileSpan span("dyn_remove");
  obs::Registry& registry = obs::Registry::global();
  registry.counter("dyn.removes").add();
  enter_dyn_mode();
  if (id >= slot_of_id.size() || slot_of_id[id] < 0)
    throw std::invalid_argument("remove_job: unknown or retired job id");
  const std::size_t slot = static_cast<std::size_t>(slot_of_id[id]);
  slot_of_id[id] = -1;
  slot_live[slot] = 0;
  free_slots.push_back(static_cast<std::uint32_t>(slot));
  --job_count;
  // Memo shift: feasibility survives removing a job, so the ceiling stands
  // (clamped -- job_count machines always suffice); re-adding the job to a
  // schedule costs at most one machine, so the floor drops by exactly 1.
  min_feasible = std::min(min_feasible, job_count);
  max_infeasible = std::max<std::int64_t>(0, max_infeasible - 1);
  invalidate_after_edit();
  if (job_count == 0) {
    // Drained: behave exactly like a constructed-empty oracle (feasible on
    // any machine count, OPT 0) until the next insert.
    empty = true;
    min_feasible = 0;
    max_infeasible = 0;
    network_built = false;
    inet.dyn.reset();
    rnet.dyn.reset();
    pending_repair = false;
    return;
  }
  if (network_built) {
    auto after_splice = [&](const auto& net) {
      if (net.dyn.dead_edges > net.dyn.live_edges + 64) {
        network_built = false;
        pending_repair = false;
      } else {
        registry.counter("dyn.rebuilds_avoided").add();
        pending_repair = true;
      }
    };
    if (!options.dynamic) {
      network_built = false;
    } else if (integer_mode && inet.dyn.active) {
      inet.splice_remove(slot);
      after_splice(inet);
    } else if (!integer_mode && rnet.dyn.active) {
      rnet.splice_remove(slot);
      after_splice(rnet);
    } else {
      network_built = false;
    }
  }
}

bool FeasibilityOracle::feasible(std::int64_t machines) {
  Impl& im = *impl_;
  if (im.empty) return true;
  if (machines <= 0 || !im.well_formed) return false;
  if (machines >= im.min_feasible || machines <= im.max_infeasible) {
    obs::Registry::global().counter("oracle.memo_hits").add();
    return machines >= im.min_feasible;
  }
  if (im.bounds_active()) {
    // First sandwich use folds [lo, hi) into the memo, so only the
    // triggering call lands here; later out-of-bracket probes are memo
    // hits. Either way the answer is certified without touching Dinic.
    const BoundSandwich& s = im.sandwich();
    if (machines < s.lo || machines >= s.hi) {
      obs::Registry::global().counter("bounds.probes_skipped").add();
      if (machines >= s.hi) {
        im.min_feasible = std::min(im.min_feasible, machines);
        return true;
      }
      im.max_infeasible = std::max(im.max_infeasible, machines);
      return false;
    }
  }
  if (im.has_fp) {
    if (std::optional<bool> hit =
            util::OptCache::global().lookup_feasible(im.fp, machines)) {
      if (*hit)
        im.min_feasible = std::min(im.min_feasible, machines);
      else
        im.max_infeasible = std::max(im.max_infeasible, machines);
      return *hit;
    }
  }
  const bool verdict = im.probe(machines);
  if (verdict)
    im.min_feasible = machines;
  else
    im.max_infeasible = machines;
  if (im.has_fp)
    util::OptCache::global().insert_feasible(im.fp, machines, verdict);
  return verdict;
}

std::int64_t FeasibilityOracle::load_lower_bound() const {
  return impl_->lower_bound();
}

BoundSandwich FeasibilityOracle::bound_sandwich() {
  Impl& im = *impl_;
  if (im.empty || !im.well_formed) return {};
  if (im.bounds_active()) return im.sandwich();
  // Tier off: the degenerate bracket the pre-tier search used -- certified
  // infeasible strictly below the load bound / memo floor, certified
  // feasible at min_feasible (initially n, one job per machine).
  BoundSandwich out;
  out.certificate.load_lb = im.lower_bound();  // refreshes density_lb too
  out.certificate.density_lb = im.density_lb;
  out.lo = std::max(out.certificate.load_lb, im.max_infeasible + 1);
  out.hi = im.min_feasible;
  return out;
}

std::uint64_t FeasibilityOracle::probes_executed() const {
  return impl_->probes_executed;
}

JobId FeasibilityOracle::insert_job(const Job& job) {
  return impl_->insert(job);
}

void FeasibilityOracle::remove_job(JobId id) { impl_->remove(id); }

std::int64_t FeasibilityOracle::live_jobs() const { return impl_->job_count; }

std::int64_t FeasibilityOracle::optimal_machines() {
  Impl& im = *impl_;
  if (im.empty) return 0;
  if (!im.well_formed)
    throw std::invalid_argument("FeasibilityOracle: malformed instance");
  obs::ProfileSpan opt_span("opt_search");
  if (im.has_fp) {
    if (std::optional<std::int64_t> hit =
            util::OptCache::global().lookup_opt(im.fp)) {
      im.min_feasible = std::min(im.min_feasible, *hit);
      im.max_infeasible = std::max(im.max_infeasible, *hit - 1);
      if (obs::trace_enabled())
        obs::trace_event("oracle", "verdict", {{"opt", *hit}, {"cached", true}});
      return *hit;
    }
  }
  // After an edit the memo shifts leave a bracket of at most two candidate
  // values (insert: +1 on the ceiling only; remove: -1 on the floor only),
  // so neither the sweep bound nor the sandwich can rule out a probe the
  // memo hasn't already -- and recomputing them per event is exactly the
  // per-query rebuild cost the splice path exists to avoid. Skip both when
  // the dynamic bracket is already that tight; never-edited oracles are
  // unaffected (dyn_mode only turns on at the first edit).
  const bool memo_tight =
      im.dyn_mode && im.min_feasible - im.max_infeasible <= 2;
  // Bound tier: the sandwich folds into the memo, so a pinched sandwich
  // makes both loops below vacuous (OPT returned with zero probes and no
  // network build) and an open one pre-narrows the bracket to [lo, hi).
  if (im.bounds_active() && !memo_tight) (void)im.sandwich();
  obs::Registry& registry = obs::Registry::global();
  const std::int64_t lb =
      memo_tight ? im.max_infeasible + 1 : im.lower_bound();

  if (!im.options.warm_start) {
    // Pre-warm-start search: gallop by doubling from the load lower bound
    // until feasible (n always is), then binary-search the bracket;
    // feasible() keeps the bracket in its memo.
    std::int64_t m = std::max<std::int64_t>(im.max_infeasible + 1, lb);
    while (m < im.job_count && !feasible(m)) {
      registry.counter("oracle.gallop_steps").add();
      m = std::min<std::int64_t>(im.job_count, 2 * m);
    }
    if (m >= im.job_count) (void)feasible(m);  // records the memo endpoint
  } else {
    // Warm ascent: probe lb, lb+1, lb+3, lb+7, ... -- every probe is at a
    // higher m than the last, so each one extends the routed flow instead
    // of re-solving. With the sweep bound the first probe usually
    // succeeds and certifies OPT outright (everything below lb is
    // infeasible by the load argument).
    std::int64_t m = std::max<std::int64_t>(im.max_infeasible + 1, lb);
    std::int64_t step = 1;
    while (m < im.min_feasible && !feasible(m)) {
      registry.counter("oracle.gallop_steps").add();
      m = std::min<std::int64_t>(im.min_feasible, m + step);
      step *= 2;
    }
  }
  // Close any remaining bracket (overshot gallop): descending probes reset
  // the flow (capacities shrink), so these are the cold ones.
  while (im.max_infeasible + 1 < im.min_feasible) {
    std::int64_t mid =
        im.max_infeasible + (im.min_feasible - im.max_infeasible) / 2;
    (void)feasible(mid);
  }
  if (im.has_fp) util::OptCache::global().insert_opt(im.fp, im.min_feasible);
  if (obs::trace_enabled()) {
    obs::trace_event("oracle", "verdict", {{"opt", im.min_feasible}});
  }
  return im.min_feasible;
}

bool feasible_migratory(const Instance& instance, std::int64_t machines) {
  if (instance.empty()) return true;
  if (machines <= 0) return false;
  if (!instance.well_formed()) return false;
  FeasibilityOracle oracle(instance);
  return oracle.feasible(machines);
}

std::optional<FlowAllocation> solve_migratory(const Instance& instance,
                                              std::int64_t machines) {
  if (instance.empty())
    return FlowAllocation{instance.event_points(), {}};
  if (machines <= 0 || !instance.well_formed()) return std::nullopt;
  obs::ProfileSpan span("solve_allocation");
  Network net = build_network(instance, machines);
  bool routed = net.graph.max_flow(net.source, net.sink) == net.total_work;
  {
    const DinicStats& stats = net.graph.stats();
    obs::Registry& registry = obs::Registry::global();
    registry.counter("flow.bfs_passes").add(stats.bfs_passes);
    registry.counter("flow.augmenting_paths").add(stats.augmenting_paths);
    registry.counter("flow.edge_visits").add(stats.edge_visits);
  }
  if (!routed) return std::nullopt;

  FlowAllocation out;
  out.segment_starts = net.points;
  out.per_job.assign(instance.size(),
                     std::vector<Rat>(net.points.size() - 1, Rat(0)));
  for (std::size_t j = 0; j < instance.size(); ++j) {
    for (const auto& [segment, handle] : net.job_segment_edges[j]) {
      out.per_job[j][segment] = net.graph.flow_on(handle);
    }
  }
  return out;
}

std::int64_t optimal_migratory_machines(const Instance& instance) {
  if (instance.empty()) return 0;
  if (!instance.well_formed())
    throw std::invalid_argument(
        "optimal_migratory_machines: malformed instance");
  FeasibilityOracle oracle(instance);
  return oracle.optimal_machines();
}

Schedule optimal_migratory_schedule(const Instance& instance,
                                    std::int64_t machines) {
  auto allocation = solve_migratory(instance, machines);
  if (!allocation)
    throw std::invalid_argument(
        "optimal_migratory_schedule: instance infeasible on given machines");
  Schedule schedule(static_cast<std::size_t>(machines));
  if (instance.empty()) return schedule;

  const std::size_t segments = allocation->segment_starts.size() - 1;
  for (std::size_t k = 0; k < segments; ++k) {
    // McNaughton wrap-around rule inside segment k: lay the jobs' pieces
    // end-to-end across machines; a piece split at a machine boundary
    // cannot overlap itself because each piece is at most the segment
    // length.
    const Rat seg_start = allocation->segment_starts[k];
    const Rat seg_end = allocation->segment_starts[k + 1];
    std::size_t machine = 0;
    Rat cursor = seg_start;
    for (std::size_t j = 0; j < instance.size(); ++j) {
      Rat remaining = allocation->per_job[j][k];
      if (!remaining.is_positive()) continue;
      while (remaining.is_positive()) {
        Rat available = seg_end - cursor;
        if (!available.is_positive()) {
          ++machine;
          cursor = seg_start;
          available = seg_end - seg_start;
        }
        Rat chunk = Rat::min(remaining, available);
        if (machine >= static_cast<std::size_t>(machines))
          throw std::logic_error(
              "optimal_migratory_schedule: McNaughton overflow");
        schedule.add_slot(machine, cursor, cursor + chunk,
                          static_cast<JobId>(j));
        cursor += chunk;
        remaining -= chunk;
      }
    }
  }
  schedule.canonicalize();
  return schedule;
}

}  // namespace minmach
