#include "minmach/flow/feasibility.hpp"

#include <algorithm>
#include <stdexcept>

#include "minmach/flow/dinic.hpp"

namespace minmach {

namespace {

// ---- integer fast path -------------------------------------------------
//
// When every time parameter fits a common small grid (LCM of denominators
// times values fits in int64 with headroom for m * length sums), the Horn
// network runs over __int128 capacities instead of BigInt rationals --
// typically 50-100x faster. Adversarial instances with unbounded
// denominators fall back to the exact rational network.

struct IntegerGrid {
  bool usable = false;
  std::vector<std::int64_t> release;
  std::vector<std::int64_t> deadline;
  std::vector<std::int64_t> processing;
};

IntegerGrid try_integer_grid(const Instance& instance) {
  IntegerGrid grid;
  BigInt lcm = instance.denominator_lcm();
  // Guard: scaled values must fit comfortably (sums of m * length stay
  // within __int128 as long as individual values fit int64 / n).
  if (lcm.bit_length() > 40) return grid;
  const Rat scale(lcm, BigInt(1));
  grid.release.reserve(instance.size());
  grid.deadline.reserve(instance.size());
  grid.processing.reserve(instance.size());
  for (const Job& j : instance.jobs()) {
    for (const Rat* value : {&j.release, &j.deadline, &j.processing}) {
      BigInt scaled = (*value * scale).num();  // integral by construction
      if (scaled.bit_length() > 62) return grid;
    }
    grid.release.push_back((j.release * scale).num().to_int64());
    grid.deadline.push_back((j.deadline * scale).num().to_int64());
    grid.processing.push_back((j.processing * scale).num().to_int64());
  }
  grid.usable = true;
  return grid;
}

bool feasible_integer(const IntegerGrid& grid, std::int64_t machines) {
  const std::size_t n = grid.release.size();
  std::vector<std::int64_t> points;
  points.reserve(2 * n);
  points.insert(points.end(), grid.release.begin(), grid.release.end());
  points.insert(points.end(), grid.deadline.begin(), grid.deadline.end());
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t segments = points.empty() ? 0 : points.size() - 1;

  Dinic<__int128> graph(n + segments + 2);
  const std::size_t source = 0;
  const std::size_t sink = n + segments + 1;
  __int128 total_work = 0;
  for (std::size_t k = 0; k < segments; ++k) {
    __int128 length = points[k + 1] - points[k];
    graph.add_edge(n + 1 + k, sink, static_cast<__int128>(machines) * length);
  }
  for (std::size_t j = 0; j < n; ++j) {
    total_work += grid.processing[j];
    graph.add_edge(source, 1 + j, grid.processing[j]);
    for (std::size_t k = 0; k < segments; ++k) {
      if (grid.release[j] <= points[k] &&
          points[k + 1] <= grid.deadline[j]) {
        graph.add_edge(1 + j, n + 1 + k, points[k + 1] - points[k]);
      }
    }
  }
  return graph.max_flow(source, sink) == total_work;
}

struct Network {
  Dinic<Rat> graph;
  std::vector<Rat> points;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
      job_segment_edges;  // per job: (segment index, edge handle)
  Rat total_work;
  std::size_t source;
  std::size_t sink;
};

Network build_network(const Instance& instance, std::int64_t machines) {
  std::vector<Rat> points = instance.event_points();
  const std::size_t n = instance.size();
  const std::size_t segments = points.empty() ? 0 : points.size() - 1;
  // Node layout: 0 = source, 1..n = jobs, n+1..n+segments = segments, last =
  // sink.
  Network net{Dinic<Rat>(n + segments + 2),
              points,
              std::vector<std::vector<std::pair<std::size_t, std::size_t>>>(n),
              Rat(0),
              0,
              n + segments + 1};

  const Rat m_rat(machines);
  for (std::size_t k = 0; k < segments; ++k) {
    Rat length = net.points[k + 1] - net.points[k];
    net.graph.add_edge(n + 1 + k, net.sink, m_rat * length);
  }
  for (std::size_t j = 0; j < n; ++j) {
    const Job& job = instance.job(j);
    net.total_work += job.processing;
    net.graph.add_edge(net.source, 1 + j, job.processing);
    for (std::size_t k = 0; k < segments; ++k) {
      if (job.release <= net.points[k] && net.points[k + 1] <= job.deadline) {
        Rat length = net.points[k + 1] - net.points[k];
        std::size_t handle = net.graph.add_edge(1 + j, n + 1 + k, length);
        net.job_segment_edges[j].emplace_back(k, handle);
      }
    }
  }
  return net;
}

}  // namespace

bool feasible_migratory(const Instance& instance, std::int64_t machines) {
  if (instance.empty()) return true;
  if (machines <= 0) return false;
  if (!instance.well_formed()) return false;
  if (IntegerGrid grid = try_integer_grid(instance); grid.usable)
    return feasible_integer(grid, machines);
  Network net = build_network(instance, machines);
  return net.graph.max_flow(net.source, net.sink) == net.total_work;
}

std::optional<FlowAllocation> solve_migratory(const Instance& instance,
                                              std::int64_t machines) {
  if (instance.empty())
    return FlowAllocation{instance.event_points(), {}};
  if (machines <= 0 || !instance.well_formed()) return std::nullopt;
  Network net = build_network(instance, machines);
  if (net.graph.max_flow(net.source, net.sink) != net.total_work)
    return std::nullopt;

  FlowAllocation out;
  out.segment_starts = net.points;
  out.per_job.assign(instance.size(),
                     std::vector<Rat>(net.points.size() - 1, Rat(0)));
  for (std::size_t j = 0; j < instance.size(); ++j) {
    for (const auto& [segment, handle] : net.job_segment_edges[j]) {
      out.per_job[j][segment] = net.graph.flow_on(handle);
    }
  }
  return out;
}

std::int64_t optimal_migratory_machines(const Instance& instance) {
  if (instance.empty()) return 0;
  if (!instance.well_formed())
    throw std::invalid_argument(
        "optimal_migratory_machines: malformed instance");
  std::int64_t lo = 1;
  std::int64_t hi = static_cast<std::int64_t>(instance.size());
  // feasible_migratory is monotone in m and always true at m = n (each job
  // alone on a machine, p_j <= d_j - r_j).
  while (lo < hi) {
    std::int64_t mid = lo + (hi - lo) / 2;
    if (feasible_migratory(instance, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Schedule optimal_migratory_schedule(const Instance& instance,
                                    std::int64_t machines) {
  auto allocation = solve_migratory(instance, machines);
  if (!allocation)
    throw std::invalid_argument(
        "optimal_migratory_schedule: instance infeasible on given machines");
  Schedule schedule(static_cast<std::size_t>(machines));
  if (instance.empty()) return schedule;

  const std::size_t segments = allocation->segment_starts.size() - 1;
  for (std::size_t k = 0; k < segments; ++k) {
    // McNaughton wrap-around rule inside segment k: lay the jobs' pieces
    // end-to-end across machines; a piece split at a machine boundary
    // cannot overlap itself because each piece is at most the segment
    // length.
    const Rat seg_start = allocation->segment_starts[k];
    const Rat seg_end = allocation->segment_starts[k + 1];
    std::size_t machine = 0;
    Rat cursor = seg_start;
    for (std::size_t j = 0; j < instance.size(); ++j) {
      Rat remaining = allocation->per_job[j][k];
      if (!remaining.is_positive()) continue;
      while (remaining.is_positive()) {
        Rat available = seg_end - cursor;
        if (!available.is_positive()) {
          ++machine;
          cursor = seg_start;
          available = seg_end - seg_start;
        }
        Rat chunk = Rat::min(remaining, available);
        if (machine >= static_cast<std::size_t>(machines))
          throw std::logic_error(
              "optimal_migratory_schedule: McNaughton overflow");
        schedule.add_slot(machine, cursor, cursor + chunk,
                          static_cast<JobId>(j));
        cursor += chunk;
        remaining -= chunk;
      }
    }
  }
  schedule.canonicalize();
  return schedule;
}

}  // namespace minmach
