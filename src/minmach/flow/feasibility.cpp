#include "minmach/flow/feasibility.hpp"

#include <algorithm>
#include <stdexcept>

#include "minmach/flow/dinic.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/obs/trace.hpp"

namespace minmach {

namespace {

// ---- integer fast path -------------------------------------------------
//
// When every time parameter fits a common small grid (LCM of denominators
// times values fits in int64 with headroom for m * length sums), the Horn
// network runs over __int128 capacities instead of BigInt rationals --
// typically 50-100x faster. Adversarial instances with unbounded
// denominators fall back to the exact rational network.

struct IntegerGrid {
  bool usable = false;
  std::vector<std::int64_t> release;
  std::vector<std::int64_t> deadline;
  std::vector<std::int64_t> processing;
};

IntegerGrid try_integer_grid(const Instance& instance) {
  IntegerGrid grid;
  BigInt lcm = instance.denominator_lcm();
  // Guard: scaled values must fit comfortably (sums of m * length stay
  // within __int128 as long as individual values fit int64 / n).
  if (lcm.bit_length() > 40) return grid;
  const Rat scale(lcm, BigInt(1));
  grid.release.reserve(instance.size());
  grid.deadline.reserve(instance.size());
  grid.processing.reserve(instance.size());
  for (const Job& j : instance.jobs()) {
    for (const Rat* value : {&j.release, &j.deadline, &j.processing}) {
      BigInt scaled = (*value * scale).num();  // integral by construction
      if (scaled.bit_length() > 62) return grid;
    }
    grid.release.push_back((j.release * scale).num().to_int64());
    grid.deadline.push_back((j.deadline * scale).num().to_int64());
    grid.processing.push_back((j.processing * scale).num().to_int64());
  }
  grid.usable = true;
  return grid;
}

struct Network {
  Dinic<Rat> graph;
  std::vector<Rat> points;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
      job_segment_edges;  // per job: (segment index, edge handle)
  Rat total_work;
  std::size_t source;
  std::size_t sink;
};

Network build_network(const Instance& instance, std::int64_t machines) {
  std::vector<Rat> points = instance.event_points();
  const std::size_t n = instance.size();
  const std::size_t segments = points.empty() ? 0 : points.size() - 1;
  // Node layout: 0 = source, 1..n = jobs, n+1..n+segments = segments, last =
  // sink.
  Network net{Dinic<Rat>(n + segments + 2),
              points,
              std::vector<std::vector<std::pair<std::size_t, std::size_t>>>(n),
              Rat(0),
              0,
              n + segments + 1};

  const Rat m_rat(machines);
  for (std::size_t k = 0; k < segments; ++k) {
    Rat length = net.points[k + 1] - net.points[k];
    net.graph.add_edge(n + 1 + k, net.sink, m_rat * length);
  }
  for (std::size_t j = 0; j < n; ++j) {
    const Job& job = instance.job(j);
    net.total_work += job.processing;
    net.graph.add_edge(net.source, 1 + j, job.processing);
    for (std::size_t k = 0; k < segments; ++k) {
      if (job.release <= net.points[k] && net.points[k + 1] <= job.deadline) {
        Rat length = net.points[k + 1] - net.points[k];
        std::size_t handle = net.graph.add_edge(1 + j, n + 1 + k, length);
        net.job_segment_edges[j].emplace_back(k, handle);
      }
    }
  }
  return net;
}

}  // namespace

// ---- incremental oracle ------------------------------------------------

struct FeasibilityOracle::Impl {
  bool empty = false;
  bool well_formed = true;
  bool integer_mode = false;
  std::int64_t job_count = 0;
  std::int64_t load_lb = 1;

  // Monotone verdict memo: feasible for all m >= min_feasible, infeasible
  // for all m <= max_infeasible.
  std::int64_t min_feasible = 0;
  std::int64_t max_infeasible = 0;

  std::size_t source = 0;
  std::size_t sink = 0;

  // Integer-grid network (fast path).
  Dinic<__int128> igraph{2};
  std::vector<std::int64_t> iseg_length;
  std::vector<std::size_t> isink_handle;
  __int128 itotal_work = 0;

  // Exact rational network (adversarial denominators).
  Dinic<Rat> rgraph{2};
  std::vector<Rat> rseg_length;
  std::vector<std::size_t> rsink_handle;
  Rat rtotal_work;

  // flow.* counters already published, so each probe adds only its delta.
  DinicStats published;

  bool probe(std::int64_t machines);
  void publish_flow_stats();
};

FeasibilityOracle::FeasibilityOracle(const Instance& instance)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.empty = instance.empty();
  if (im.empty) return;
  im.well_formed = instance.well_formed();
  if (!im.well_formed) return;
  im.job_count = static_cast<std::int64_t>(instance.size());
  // Each job alone on a machine is feasible (p_j <= d_j - r_j), so n
  // machines always suffice.
  im.min_feasible = im.job_count;

  std::vector<Rat> points = instance.event_points();
  const Rat span = points.back() - points.front();
  if (span.is_positive()) {
    const Rat density = instance.total_work() / span;
    im.load_lb = std::max<std::int64_t>(1, density.ceil().to_int64());
  }

  const std::size_t n = instance.size();
  const std::size_t segments = points.empty() ? 0 : points.size() - 1;
  im.source = 0;
  im.sink = n + segments + 1;

  if (IntegerGrid grid = try_integer_grid(instance); grid.usable) {
    im.integer_mode = true;
    std::vector<std::int64_t> ipoints;
    ipoints.reserve(2 * n);
    ipoints.insert(ipoints.end(), grid.release.begin(), grid.release.end());
    ipoints.insert(ipoints.end(), grid.deadline.begin(), grid.deadline.end());
    std::sort(ipoints.begin(), ipoints.end());
    ipoints.erase(std::unique(ipoints.begin(), ipoints.end()), ipoints.end());
    const std::size_t isegments = ipoints.empty() ? 0 : ipoints.size() - 1;
    obs::Registry::global().counter("oracle.builds").add();
    if (obs::trace_enabled()) {
      obs::trace_event("oracle", "build",
                       {{"jobs", im.job_count},
                        {"segments", isegments},
                        {"integer_mode", true},
                        {"load_lb", im.load_lb}});
    }
    im.sink = n + isegments + 1;
    im.igraph = Dinic<__int128>(n + isegments + 2);
    // Sink capacities start at 0; feasible() retunes them to m * |segment|.
    for (std::size_t k = 0; k < isegments; ++k) {
      im.iseg_length.push_back(ipoints[k + 1] - ipoints[k]);
      im.isink_handle.push_back(
          im.igraph.add_edge(n + 1 + k, im.sink, __int128{0}));
    }
    for (std::size_t j = 0; j < n; ++j) {
      im.itotal_work += grid.processing[j];
      im.igraph.add_edge(im.source, 1 + j, grid.processing[j]);
      for (std::size_t k = 0; k < isegments; ++k) {
        if (grid.release[j] <= ipoints[k] &&
            ipoints[k + 1] <= grid.deadline[j]) {
          im.igraph.add_edge(1 + j, n + 1 + k, ipoints[k + 1] - ipoints[k]);
        }
      }
    }
    return;
  }

  obs::Registry::global().counter("oracle.builds").add();
  if (obs::trace_enabled()) {
    obs::trace_event("oracle", "build",
                     {{"jobs", im.job_count},
                      {"segments", segments},
                      {"integer_mode", false},
                      {"load_lb", im.load_lb}});
  }
  im.rgraph = Dinic<Rat>(n + segments + 2);
  for (std::size_t k = 0; k < segments; ++k) {
    im.rseg_length.push_back(points[k + 1] - points[k]);
    im.rsink_handle.push_back(im.rgraph.add_edge(n + 1 + k, im.sink, Rat(0)));
  }
  for (std::size_t j = 0; j < n; ++j) {
    const Job& job = instance.job(j);
    im.rtotal_work += job.processing;
    im.rgraph.add_edge(im.source, 1 + j, job.processing);
    for (std::size_t k = 0; k < segments; ++k) {
      if (job.release <= points[k] && points[k + 1] <= job.deadline) {
        im.rgraph.add_edge(1 + j, n + 1 + k, im.rseg_length[k]);
      }
    }
  }
}

FeasibilityOracle::~FeasibilityOracle() = default;
FeasibilityOracle::FeasibilityOracle(FeasibilityOracle&&) noexcept = default;
FeasibilityOracle& FeasibilityOracle::operator=(FeasibilityOracle&&) noexcept =
    default;

void FeasibilityOracle::Impl::publish_flow_stats() {
  const DinicStats& now = integer_mode ? igraph.stats() : rgraph.stats();
  obs::Registry& registry = obs::Registry::global();
  registry.counter("flow.bfs_passes").add(now.bfs_passes - published.bfs_passes);
  registry.counter("flow.augmenting_paths")
      .add(now.augmenting_paths - published.augmenting_paths);
  registry.counter("flow.edge_visits")
      .add(now.edge_visits - published.edge_visits);
  published = now;
}

bool FeasibilityOracle::Impl::probe(std::int64_t machines) {
  obs::Registry::global().counter("oracle.probes").add();
  bool result;
  {
    obs::ScopedTimer timer(obs::Registry::global().timing("oracle.probe_ns"));
    if (integer_mode) {
      for (std::size_t k = 0; k < isink_handle.size(); ++k) {
        igraph.set_capacity(isink_handle[k],
                            static_cast<__int128>(machines) * iseg_length[k]);
      }
      igraph.reset_flow();
      result = igraph.max_flow(source, sink) == itotal_work;
    } else {
      const Rat m_rat(machines);
      for (std::size_t k = 0; k < rsink_handle.size(); ++k) {
        rgraph.set_capacity(rsink_handle[k], m_rat * rseg_length[k]);
      }
      rgraph.reset_flow();
      result = rgraph.max_flow(source, sink) == rtotal_work;
    }
  }
  const DinicStats& now = integer_mode ? igraph.stats() : rgraph.stats();
  if (obs::trace_enabled()) {
    obs::trace_event("oracle", "probe",
                     {{"m", machines},
                      {"feasible", result},
                      {"augmenting_paths",
                       now.augmenting_paths - published.augmenting_paths},
                      {"integer_mode", integer_mode}});
  }
  publish_flow_stats();
  return result;
}

bool FeasibilityOracle::feasible(std::int64_t machines) {
  Impl& im = *impl_;
  if (im.empty) return true;
  if (machines <= 0 || !im.well_formed) return false;
  if (machines >= im.min_feasible || machines <= im.max_infeasible) {
    obs::Registry::global().counter("oracle.memo_hits").add();
    return machines >= im.min_feasible;
  }
  if (im.probe(machines)) {
    im.min_feasible = machines;
    return true;
  }
  im.max_infeasible = machines;
  return false;
}

std::int64_t FeasibilityOracle::load_lower_bound() const {
  return impl_->empty ? 0 : impl_->load_lb;
}

std::int64_t FeasibilityOracle::optimal_machines() {
  Impl& im = *impl_;
  if (im.empty) return 0;
  if (!im.well_formed)
    throw std::invalid_argument("FeasibilityOracle: malformed instance");
  // Gallop from the load lower bound until feasible (n always is), then
  // binary-search the bracket; feasible() keeps the bracket in its memo.
  std::int64_t m = std::max<std::int64_t>(im.max_infeasible + 1, im.load_lb);
  while (m < im.job_count && !feasible(m)) {
    obs::Registry::global().counter("oracle.gallop_steps").add();
    m = std::min<std::int64_t>(im.job_count, 2 * m);
  }
  if (m >= im.job_count) (void)feasible(m);  // records the memo endpoint
  while (im.max_infeasible + 1 < im.min_feasible) {
    std::int64_t mid =
        im.max_infeasible + (im.min_feasible - im.max_infeasible) / 2;
    (void)feasible(mid);
  }
  if (obs::trace_enabled()) {
    obs::trace_event("oracle", "verdict", {{"opt", im.min_feasible}});
  }
  return im.min_feasible;
}

bool feasible_migratory(const Instance& instance, std::int64_t machines) {
  if (instance.empty()) return true;
  if (machines <= 0) return false;
  if (!instance.well_formed()) return false;
  FeasibilityOracle oracle(instance);
  return oracle.feasible(machines);
}

std::optional<FlowAllocation> solve_migratory(const Instance& instance,
                                              std::int64_t machines) {
  if (instance.empty())
    return FlowAllocation{instance.event_points(), {}};
  if (machines <= 0 || !instance.well_formed()) return std::nullopt;
  Network net = build_network(instance, machines);
  bool routed = net.graph.max_flow(net.source, net.sink) == net.total_work;
  {
    const DinicStats& stats = net.graph.stats();
    obs::Registry& registry = obs::Registry::global();
    registry.counter("flow.bfs_passes").add(stats.bfs_passes);
    registry.counter("flow.augmenting_paths").add(stats.augmenting_paths);
    registry.counter("flow.edge_visits").add(stats.edge_visits);
  }
  if (!routed) return std::nullopt;

  FlowAllocation out;
  out.segment_starts = net.points;
  out.per_job.assign(instance.size(),
                     std::vector<Rat>(net.points.size() - 1, Rat(0)));
  for (std::size_t j = 0; j < instance.size(); ++j) {
    for (const auto& [segment, handle] : net.job_segment_edges[j]) {
      out.per_job[j][segment] = net.graph.flow_on(handle);
    }
  }
  return out;
}

std::int64_t optimal_migratory_machines(const Instance& instance) {
  if (instance.empty()) return 0;
  if (!instance.well_formed())
    throw std::invalid_argument(
        "optimal_migratory_machines: malformed instance");
  FeasibilityOracle oracle(instance);
  return oracle.optimal_machines();
}

Schedule optimal_migratory_schedule(const Instance& instance,
                                    std::int64_t machines) {
  auto allocation = solve_migratory(instance, machines);
  if (!allocation)
    throw std::invalid_argument(
        "optimal_migratory_schedule: instance infeasible on given machines");
  Schedule schedule(static_cast<std::size_t>(machines));
  if (instance.empty()) return schedule;

  const std::size_t segments = allocation->segment_starts.size() - 1;
  for (std::size_t k = 0; k < segments; ++k) {
    // McNaughton wrap-around rule inside segment k: lay the jobs' pieces
    // end-to-end across machines; a piece split at a machine boundary
    // cannot overlap itself because each piece is at most the segment
    // length.
    const Rat seg_start = allocation->segment_starts[k];
    const Rat seg_end = allocation->segment_starts[k + 1];
    std::size_t machine = 0;
    Rat cursor = seg_start;
    for (std::size_t j = 0; j < instance.size(); ++j) {
      Rat remaining = allocation->per_job[j][k];
      if (!remaining.is_positive()) continue;
      while (remaining.is_positive()) {
        Rat available = seg_end - cursor;
        if (!available.is_positive()) {
          ++machine;
          cursor = seg_start;
          available = seg_end - seg_start;
        }
        Rat chunk = Rat::min(remaining, available);
        if (machine >= static_cast<std::size_t>(machines))
          throw std::logic_error(
              "optimal_migratory_schedule: McNaughton overflow");
        schedule.add_slot(machine, cursor, cursor + chunk,
                          static_cast<JobId>(j));
        cursor += chunk;
        remaining -= chunk;
      }
    }
  }
  schedule.canonicalize();
  return schedule;
}

}  // namespace minmach
