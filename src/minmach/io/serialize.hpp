// Plain-text round-trip for instances and schedules (exact: rationals are
// written as "num/den"). Format:
//
//   minmach-instance v1
//   <n>
//   <release> <deadline> <processing>     (n lines)
//
//   minmach-schedule v1
//   <machine_count> <slot_count>
//   <machine> <start> <end> <job>         (slot_count lines)
#pragma once

#include <string>
#include <string_view>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"

namespace minmach {

[[nodiscard]] std::string to_text(const Instance& instance);
[[nodiscard]] Instance instance_from_text(std::string_view text);

[[nodiscard]] std::string to_text(const Schedule& schedule);
[[nodiscard]] Schedule schedule_from_text(std::string_view text);

void save_file(const std::string& path, const std::string& contents);
[[nodiscard]] std::string load_file(const std::string& path);

}  // namespace minmach
