// ASCII Gantt rendering of schedules (one row per machine, one glyph per
// job, '.' for idle). Used by the Figure 1 driver to display the certified
// 3-machine migratory schedule of the lower-bound instance, and by the
// examples.
#pragma once

#include <cstddef>
#include <string>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"

namespace minmach {

struct GanttOptions {
  std::size_t width = 96;  // columns for the full time span
  bool show_legend = true;
};

// Renders [t_min, t_max) of the schedule scaled to `width` columns. A cell
// shows the job occupying the cell's start time ('.' when idle). Glyphs
// cycle through [A-Za-z0-9].
[[nodiscard]] std::string render_gantt(const Instance& instance,
                                       const Schedule& schedule,
                                       const GanttOptions& options = {});

}  // namespace minmach
