#include "minmach/io/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace minmach {

namespace {

std::string next_token(std::istringstream& in, const char* what) {
  std::string token;
  if (!(in >> token))
    throw std::invalid_argument(std::string("parse error: expected ") + what);
  return token;
}

}  // namespace

std::string to_text(const Instance& instance) {
  std::ostringstream out;
  out << "minmach-instance v1\n" << instance.size() << "\n";
  for (const auto& j : instance.jobs()) {
    out << j.release.to_string() << " " << j.deadline.to_string() << " "
        << j.processing.to_string() << "\n";
  }
  return out.str();
}

Instance instance_from_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != "minmach-instance" || version != "v1")
    throw std::invalid_argument("parse error: bad instance header");
  std::size_t n = 0;
  if (!(in >> n)) throw std::invalid_argument("parse error: missing count");
  Instance out;
  for (std::size_t i = 0; i < n; ++i) {
    Job j;
    j.release = Rat::from_string(next_token(in, "release"));
    j.deadline = Rat::from_string(next_token(in, "deadline"));
    j.processing = Rat::from_string(next_token(in, "processing"));
    out.add_job(j);
  }
  return out;
}

std::string to_text(const Schedule& schedule) {
  std::ostringstream out;
  std::size_t slots = schedule.total_slots();
  out << "minmach-schedule v1\n"
      << schedule.machine_count() << " " << slots << "\n";
  for (std::size_t m = 0; m < schedule.machine_count(); ++m) {
    for (const auto& slot : schedule.slots(m)) {
      out << m << " " << slot.start.to_string() << " "
          << slot.end.to_string() << " " << slot.job << "\n";
    }
  }
  return out.str();
}

Schedule schedule_from_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != "minmach-schedule" || version != "v1")
    throw std::invalid_argument("parse error: bad schedule header");
  std::size_t machines = 0;
  std::size_t slots = 0;
  if (!(in >> machines >> slots))
    throw std::invalid_argument("parse error: missing counts");
  Schedule out(machines);
  for (std::size_t i = 0; i < slots; ++i) {
    std::size_t machine = 0;
    if (!(in >> machine))
      throw std::invalid_argument("parse error: expected machine index");
    Rat start = Rat::from_string(next_token(in, "start"));
    Rat end = Rat::from_string(next_token(in, "end"));
    std::string job = next_token(in, "job id");
    out.add_slot(machine, start, end,
                 static_cast<JobId>(std::stoul(job)));
  }
  out.canonicalize();
  return out;
}

void save_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << contents;
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace minmach
