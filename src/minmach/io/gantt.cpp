#include "minmach/io/gantt.hpp"

#include <sstream>

namespace minmach {

namespace {

char glyph_for(JobId job) {
  static const char glyphs[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  return glyphs[job % (sizeof(glyphs) - 1)];
}

}  // namespace

std::string render_gantt(const Instance& instance, const Schedule& schedule,
                         const GanttOptions& options) {
  std::ostringstream out;
  if (schedule.machine_count() == 0 || options.width == 0) {
    out << "(empty schedule)\n";
    return out.str();
  }

  // Time span across all slots.
  bool any = false;
  Rat t_min(0);
  Rat t_max(1);
  for (std::size_t m = 0; m < schedule.machine_count(); ++m) {
    for (const auto& slot : schedule.slots(m)) {
      if (!any || slot.start < t_min) t_min = slot.start;
      if (!any || t_max < slot.end) t_max = slot.end;
      any = true;
    }
  }
  if (!any) {
    out << "(empty schedule)\n";
    return out.str();
  }
  const Rat span = t_max - t_min;
  const Rat cell = span / Rat(static_cast<std::int64_t>(options.width));

  out << "time [" << t_min.to_string() << ", " << t_max.to_string() << "), "
      << options.width << " columns, " << cell.to_string() << " per column\n";
  for (std::size_t m = 0; m < schedule.machine_count(); ++m) {
    out << "M" << m << " |";
    const auto& slots = schedule.slots(m);
    std::size_t cursor = 0;
    for (std::size_t col = 0; col < options.width; ++col) {
      // Column [lo, hi): show the job with the largest overlap, so slots
      // narrower than one column still render (adversarial instances nest
      // jobs at wildly different time scales).
      Rat lo = t_min + cell * Rat(static_cast<std::int64_t>(col));
      Rat hi = lo + cell;
      while (cursor < slots.size() && slots[cursor].end <= lo) ++cursor;
      JobId best = kInvalidJob;
      Rat best_overlap(0);
      for (std::size_t s = cursor; s < slots.size() && slots[s].start < hi;
           ++s) {
        Rat overlap =
            Rat::min(slots[s].end, hi) - Rat::max(slots[s].start, lo);
        if (overlap > best_overlap) {
          best_overlap = overlap;
          best = slots[s].job;
        }
      }
      out << (best == kInvalidJob ? '.' : glyph_for(best));
    }
    out << "|\n";
  }

  if (options.show_legend) {
    out << "legend:";
    std::size_t shown = 0;
    for (JobId id = 0; id < instance.size() && shown < 26; ++id, ++shown) {
      const Job& j = instance.job(id);
      out << " " << glyph_for(id) << "=j" << id << "[" << j.release.to_string()
          << "," << j.deadline.to_string() << ")p" << j.processing.to_string();
    }
    if (instance.size() > 26) out << " ... (" << instance.size() << " jobs)";
    out << "\n";
  }
  return out.str();
}

}  // namespace minmach
