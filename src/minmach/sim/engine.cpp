#include "minmach/sim/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "minmach/obs/metrics.hpp"
#include "minmach/obs/profile.hpp"
#include "minmach/obs/trace.hpp"
#include "minmach/util/arena.hpp"

namespace minmach {

void OnlinePolicy::on_complete(Simulator&, JobId) {}
void OnlinePolicy::on_miss(Simulator&, JobId) {}
std::optional<Rat> OnlinePolicy::next_wakeup(const Simulator&) {
  return std::nullopt;
}

Simulator::Simulator(OnlinePolicy& policy, Rat speed) {
  reset(policy, std::move(speed));
}

void Simulator::reset(OnlinePolicy& policy, Rat speed) {
  if (!speed.is_positive())
    throw std::invalid_argument("Simulator: speed must be positive");
  policy_ = &policy;
  speed_ = std::move(speed);
  now_ = Rat(0);
  instance_.clear();
  deadline_.clear();
  remaining_.clear();
  state_.clear();
  last_machine_.clear();
  missed_list_.clear();
  pending_.clear();
  deadline_heap_.clear();
  due_scratch_.clear();
  open_jobs_ = 0;
  max_deadline_ = Rat(0);
  running_.clear();
  trace_.clear();
  machine_touched_.clear();
  machines_used_ = 0;
  stats_ = SimStats{};
  prev_slice_jobs_.clear();
}

void Simulator::heap_push(std::vector<EventNode>& heap, Rat time, JobId job) {
  heap.push_back({std::move(time), job});
  std::push_heap(heap.begin(), heap.end(), EventAfter{});
}

void Simulator::heap_pop(std::vector<EventNode>& heap) {
  std::pop_heap(heap.begin(), heap.end(), EventAfter{});
  heap.pop_back();
}

JobId Simulator::submit(const Job& job) {
  // Well-formedness relative to the machine speed: the job must fit its
  // window when processed continuously at rate `speed_`.
  if (!job.processing.is_positive() ||
      job.processing / speed_ > job.window_length())
    throw std::invalid_argument("Simulator: malformed job");
  if (job.release < now_)
    throw std::invalid_argument("Simulator: release date in the past");
  JobId id = instance_.add_job(job);
  deadline_.push_back(job.deadline);
  remaining_.push_back(job.processing);
  state_.push_back(JobState::kPending);
  last_machine_.push_back(kNeverRan);
  heap_push(pending_, job.release, id);
  ++open_jobs_;
  max_deadline_ = Rat::max(max_deadline_, job.deadline);
  return id;
}

void Simulator::submit_all(const Instance& instance) {
  for (const auto& job : instance.jobs()) submit(job);
}

std::vector<JobId> Simulator::active_jobs() const {
  std::vector<JobId> out;
  for (JobId id = 0; id < state_.size(); ++id) {
    if (state_[id] == JobState::kActive) out.push_back(id);
  }
  return out;
}

bool Simulator::all_done() const {
  return pending_.empty() && open_jobs_ == 0;
}

void Simulator::prune_deadline_heap() {
  while (!deadline_heap_.empty()) {
    JobId id = deadline_heap_.front().job;
    if (state_[id] == JobState::kActive) break;
    heap_pop(deadline_heap_);
  }
}

void Simulator::set_running(std::size_t machine, JobId job) {
  if (machine >= running_.size()) {
    running_.resize(machine + 1, kInvalidJob);
    machine_touched_.resize(machine + 1, false);
  }
  if (job != kInvalidJob) {
    if (job >= state_.size() || state_[job] != JobState::kActive)
      throw std::logic_error("Simulator: dispatching inactive job");
    // A job must not run on two machines at once.
    for (std::size_t m = 0; m < running_.size(); ++m) {
      if (m != machine && running_[m] == job)
        throw std::logic_error("Simulator: job dispatched on two machines");
    }
  }
  running_[machine] = job;
}

JobId Simulator::running_on(std::size_t machine) const {
  return machine < running_.size() ? running_[machine] : kInvalidJob;
}

void Simulator::deliver_events_at_now() {
  obs::ProfileSpan span("sim_dispatch");
  const bool tracing = obs::trace_enabled();
  // 1. Completions among running jobs.
  for (std::size_t m = 0; m < running_.size(); ++m) {
    JobId job = running_[m];
    if (job != kInvalidJob && remaining_[job].is_zero()) {
      state_[job] = JobState::kFinished;
      --open_jobs_;
      running_[m] = kInvalidJob;
      ++stats_.completions;
      if (tracing)
        obs::trace_event("sim", "complete",
                         {{"t", now_}, {"job", job}, {"machine", m}});
      policy_->on_complete(*this, job);
    }
  }
  // 2. Deadline misses (running or waiting). Due jobs are popped off the
  // deadline heap and handled in job-id order (the order the old full scan
  // used), so traces and policy callbacks are unchanged.
  prune_deadline_heap();
  if (!deadline_heap_.empty() && deadline_heap_.front().time <= now_) {
    due_scratch_.clear();
    while (!deadline_heap_.empty() && deadline_heap_.front().time <= now_) {
      JobId id = deadline_heap_.front().job;
      heap_pop(deadline_heap_);
      if (state_[id] == JobState::kActive) due_scratch_.push_back(id);
    }
    std::sort(due_scratch_.begin(), due_scratch_.end());
    for (JobId id : due_scratch_) {
      state_[id] = JobState::kMissed;
      --open_jobs_;
      missed_list_.push_back(id);
      for (auto& slot : running_)
        if (slot == id) slot = kInvalidJob;
      ++stats_.misses;
      if (tracing)
        obs::trace_event("sim", "miss",
                         {{"t", now_}, {"job", id},
                          {"remaining", remaining_[id]}});
      policy_->on_miss(*this, id);
    }
  }
  // 3. Releases due now.
  while (!pending_.empty() && pending_.front().time <= now_) {
    JobId id = pending_.front().job;
    heap_pop(pending_);
    state_[id] = JobState::kActive;
    heap_push(deadline_heap_, deadline_[id], id);
    ++stats_.releases;
    if (tracing) {
      const Job& job = instance_.job(id);
      obs::trace_event("sim", "release",
                       {{"t", now_}, {"job", id},
                        {"deadline", job.deadline},
                        {"processing", job.processing}});
    }
    policy_->on_release(*this, id);
  }
  // 4. Let the policy (re)decide what runs.
  ++stats_.dispatches;
  if (tracing) {
    std::vector<JobId> before = running_;
    policy_->dispatch(*this);
    for (std::size_t m = 0; m < running_.size(); ++m) {
      JobId job = running_[m];
      if ((m < before.size() ? before[m] : kInvalidJob) == job) continue;
      obs::trace_event(
          "sim", "dispatch",
          {{"t", now_}, {"machine", m},
           {"job", job == kInvalidJob ? std::int64_t{-1}
                                      : static_cast<std::int64_t>(job)}});
    }
  } else {
    policy_->dispatch(*this);
  }
}

Rat Simulator::next_event_time(const Rat& horizon) {
  Rat next = horizon;
  if (!pending_.empty()) next = Rat::min(next, pending_.front().time);
  for (std::size_t m = 0; m < running_.size(); ++m) {
    JobId job = running_[m];
    if (job != kInvalidJob)
      next = Rat::min(next, now_ + remaining_[job] / speed_);
  }
  prune_deadline_heap();
  if (!deadline_heap_.empty())
    next = Rat::min(next, deadline_heap_.front().time);
  if (auto wakeup = policy_->next_wakeup(*this); wakeup && now_ < *wakeup) {
    if (*wakeup <= next && obs::trace_enabled())
      obs::trace_event("sim", "wakeup", {{"t", *wakeup}});
    next = Rat::min(next, *wakeup);
  }
  return Rat::max(next, now_);
}

void Simulator::advance_to(const Rat& t) {
  obs::ProfileSpan profile_span("sim_advance");
  const bool tracing = obs::trace_enabled();
  // A job that was processed in the previous slice, still has work left, but
  // does not run in this slice was preempted; one that resumes on a machine
  // other than the one it last ran on migrated.
  for (JobId job : prev_slice_jobs_) {
    if (state_[job] != JobState::kActive) continue;
    if (std::find(running_.begin(), running_.end(), job) == running_.end()) {
      ++stats_.preemptions;
      if (tracing)
        obs::trace_event("sim", "preempt",
                         {{"t", now_}, {"job", job},
                          {"remaining", remaining_[job]}});
    }
  }
  prev_slice_jobs_.clear();
  const Rat span = t - now_;
  for (std::size_t m = 0; m < running_.size(); ++m) {
    JobId job = running_[m];
    if (job == kInvalidJob) continue;
    if (last_machine_[job] != kNeverRan && last_machine_[job] != m) {
      ++stats_.migrations;
      if (tracing)
        obs::trace_event("sim", "migrate",
                         {{"t", now_}, {"job", job},
                          {"from", last_machine_[job]}, {"to", m}});
    }
    last_machine_[job] = m;
    prev_slice_jobs_.push_back(job);
    trace_.add_slot(m, now_, t, job);
    if (!machine_touched_[m]) {
      machine_touched_[m] = true;
      ++machines_used_;
    }
    remaining_[job] -= span * speed_;
    if (remaining_[job].is_negative())
      throw std::logic_error("Simulator: job overshot its completion");
  }
  now_ = t;
}

void Simulator::run_until(const Rat& t) {
  if (t < now_)
    throw std::invalid_argument("Simulator: cannot run backwards");
  while (true) {
    deliver_events_at_now();
    Rat next = next_event_time(t);
    if (next == now_) {
      if (now_ == t) break;
      throw std::logic_error("Simulator: no progress");
    }
    advance_to(next);
  }
}

void Simulator::run_to_completion() {
  while (!all_done()) {
    // Horizon: far enough to hit the next event; the max deadline (cached
    // at submit time) bounds all remaining activity.
    run_until(Rat::max(now_ + Rat(1), max_deadline_));
  }
}

void Simulator::publish_metrics(const std::string& label) const {
  obs::Registry& registry = obs::Registry::global();
  const std::string prefix = "sim." + label + ".";
  registry.counter(prefix + "releases").add(stats_.releases);
  registry.counter(prefix + "completions").add(stats_.completions);
  registry.counter(prefix + "misses").add(stats_.misses);
  registry.counter(prefix + "dispatches").add(stats_.dispatches);
  registry.counter(prefix + "preemptions").add(stats_.preemptions);
  registry.counter(prefix + "migrations").add(stats_.migrations);
  registry.histogram(prefix + "machines_used")
      .observe(static_cast<std::int64_t>(machines_used_));
}

namespace {

SimRun finish_run(Simulator& sim, OnlinePolicy& policy,
                  const Instance& instance, bool require_no_miss) {
  sim.submit_all(instance);
  sim.run_to_completion();
  sim.publish_metrics(policy.name());
  SimRun run;
  run.schedule = sim.schedule();
  run.machines_used = sim.machines_used();
  run.missed = sim.any_missed();
  if (run.missed && require_no_miss)
    throw std::runtime_error("simulate: policy " + policy.name() +
                             " missed a deadline");
  return run;
}

}  // namespace

SimRun simulate_pooled_or_fresh(OnlinePolicy& policy, const Instance& instance,
                                Rat speed, bool require_no_miss) {
  // One pooled Simulator per thread: reset() keeps every container's
  // storage, so steady-state sweeps reuse the SoA arrays, event heaps, and
  // trace machine lists run after run. The busy flag guards against a
  // policy that re-enters simulate() from a callback (none do today);
  // legacy mode opts out entirely so the memory bench can measure the
  // seed's construct-per-run behaviour.
  thread_local Simulator pooled;
  thread_local bool busy = false;
  if (busy || util::substrate_legacy()) {
    Simulator fresh(policy, std::move(speed));
    return finish_run(fresh, policy, instance, require_no_miss);
  }
  busy = true;
  struct BusyGuard {
    bool& flag;
    ~BusyGuard() { flag = false; }
  } guard{busy};
  pooled.reset(policy, std::move(speed));
  return finish_run(pooled, policy, instance, require_no_miss);
}

SimRun simulate(OnlinePolicy& policy, const Instance& instance, Rat speed,
                bool require_no_miss) {
  return simulate_pooled_or_fresh(policy, instance, std::move(speed),
                                  require_no_miss);
}

Schedule Simulator::schedule() const {
  Schedule copy = trace_;
  copy.canonicalize();
  return copy;
}

}  // namespace minmach
