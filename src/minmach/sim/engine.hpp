// Event-driven online scheduling simulator.
//
// Time advances only at events: job releases, completions, deadline
// expiries, and policy-requested wake-ups (e.g. LLF laxity crossings,
// MediumFit start times). All times are exact rationals, so adversary
// constructions that rescale by tiny amounts stay exact.
//
// The policy is called back on releases/completions/misses and then asked to
// dispatch: to state, for each machine it uses, which active job runs until
// the next event. Machines are opened implicitly by using a new index; the
// cost measure machines_used() counts machines that ever processed work.
//
// Adversaries (minmach/adversary) drive the simulator interactively: submit
// a job, run_until(t), inspect remaining processing and the trace, decide
// the next release. This realizes the paper's game between the adversary
// and "any online algorithm".
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"

namespace minmach {

class Simulator;

// Live event counts for one simulation. Preemptions and migrations are
// counted as they happen (a job set aside with work left; a job resuming on
// a different machine than it last ran on), which matches
// Schedule::preemption_count / migration_count on the canonicalized trace
// for non-degenerate schedules but is defined operationally, not post-hoc.
struct SimStats {
  std::uint64_t releases = 0;
  std::uint64_t completions = 0;
  std::uint64_t misses = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t migrations = 0;
};

class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  // A job just became available (its release date is now).
  virtual void on_release(Simulator& sim, JobId job) = 0;
  // A job just received its full processing time.
  virtual void on_complete(Simulator& sim, JobId job);
  // A job's deadline passed with work left; it leaves the system. Policies
  // are expected to avoid this by opening machines -- experiments treat a
  // miss as a hard failure.
  virtual void on_miss(Simulator& sim, JobId job);
  // Set the running job of every machine in use via Simulator::set_running.
  // Called after every batch of events at one time point.
  virtual void dispatch(Simulator& sim) = 0;
  // Earliest future time (> now) at which the policy wants a dispatch even
  // without a job event. Return std::nullopt if none.
  virtual std::optional<Rat> next_wakeup(const Simulator& sim);

  [[nodiscard]] virtual std::string name() const = 0;
};

class Simulator {
 public:
  // speed: every machine processes `speed` units of work per unit of time
  // (Theorem 7's speed augmentation). The policy object must outlive the
  // simulator.
  explicit Simulator(OnlinePolicy& policy, Rat speed = Rat(1));

  // Queues a job; it is revealed to the policy at job.release, which must
  // be >= now().
  JobId submit(const Job& job);
  void submit_all(const Instance& instance);

  // Advances simulated time to t (>= now), delivering all events.
  void run_until(const Rat& t);
  // Advances until every submitted job is finished or missed.
  void run_to_completion();

  [[nodiscard]] const Rat& now() const { return now_; }
  [[nodiscard]] const Rat& speed() const { return speed_; }
  [[nodiscard]] const Instance& instance() const { return instance_; }
  [[nodiscard]] const Job& job(JobId id) const { return instance_.job(id); }
  [[nodiscard]] std::size_t job_count() const { return instance_.size(); }

  // Work still owed to the job (in processing units, not wall time).
  [[nodiscard]] const Rat& remaining(JobId id) const { return remaining_[id]; }
  [[nodiscard]] bool released(JobId id) const { return released_[id]; }
  [[nodiscard]] bool finished(JobId id) const { return finished_[id]; }
  [[nodiscard]] bool missed(JobId id) const { return missed_[id]; }
  [[nodiscard]] const std::vector<JobId>& missed_jobs() const {
    return missed_list_;
  }
  [[nodiscard]] bool any_missed() const { return !missed_list_.empty(); }

  // Released, unfinished, not missed.
  [[nodiscard]] std::vector<JobId> active_jobs() const;
  [[nodiscard]] bool all_done() const;

  // --- dispatch-time interface for policies ---
  // job == kInvalidJob idles the machine. The job must be active.
  void set_running(std::size_t machine, JobId job);
  [[nodiscard]] JobId running_on(std::size_t machine) const;
  [[nodiscard]] std::size_t machine_slots() const { return running_.size(); }

  // Canonicalized copy of the processing trace so far.
  [[nodiscard]] Schedule schedule() const;
  [[nodiscard]] std::size_t machines_used() const { return machines_used_; }

  [[nodiscard]] const SimStats& stats() const { return stats_; }
  // Folds the run's event counts into the metrics registry under
  // "sim.<label>.*" (label is usually the policy name). Counters add and
  // machine counts go to a histogram, so sweep aggregation is commutative.
  void publish_metrics(const std::string& label) const;

  [[nodiscard]] OnlinePolicy& policy() { return policy_; }

 private:
  void deliver_events_at_now();
  [[nodiscard]] Rat next_event_time(const Rat& horizon);
  void advance_to(const Rat& t);

  OnlinePolicy& policy_;
  Rat speed_;
  Rat now_ = Rat(0);

  Instance instance_;
  std::vector<Rat> remaining_;
  std::vector<bool> released_;
  std::vector<bool> finished_;
  std::vector<bool> missed_;
  std::vector<JobId> missed_list_;

  struct PendingRelease {
    Rat time;
    JobId job;
    bool operator>(const PendingRelease& other) const {
      return time > other.time || (time == other.time && job > other.job);
    }
  };
  std::priority_queue<PendingRelease, std::vector<PendingRelease>,
                      std::greater<>>
      pending_;

  // Deadlines of released jobs, lazily pruned: entries for finished/missed
  // jobs are skipped at peek time. Lets next_event_time() and the miss scan
  // touch only due jobs instead of rescanning the whole instance.
  struct ActiveDeadline {
    Rat time;
    JobId job;
    bool operator>(const ActiveDeadline& other) const {
      return time > other.time || (time == other.time && job > other.job);
    }
  };
  std::priority_queue<ActiveDeadline, std::vector<ActiveDeadline>,
                      std::greater<>>
      deadline_heap_;
  void prune_deadline_heap();

  // Submitted jobs not yet finished or missed; all_done() is O(1).
  std::size_t open_jobs_ = 0;
  // Max deadline over all submitted jobs; run_to_completion()'s horizon.
  Rat max_deadline_ = Rat(0);

  std::vector<JobId> running_;
  Schedule trace_;
  std::vector<bool> machine_touched_;
  std::size_t machines_used_ = 0;

  SimStats stats_;
  std::vector<JobId> prev_slice_jobs_;      // jobs processed in the last slice
  std::vector<std::size_t> last_machine_;   // per job; kNeverRan until first run
  static constexpr std::size_t kNeverRan = static_cast<std::size_t>(-1);
};

// Convenience driver: simulate the full instance against the policy and
// return the resulting schedule (canonicalized). Throws std::runtime_error
// if the policy misses a deadline and require_no_miss is true.
struct SimRun {
  Schedule schedule;
  std::size_t machines_used = 0;
  bool missed = false;
};
[[nodiscard]] SimRun simulate(OnlinePolicy& policy, const Instance& instance,
                              Rat speed = Rat(1), bool require_no_miss = true);

}  // namespace minmach
