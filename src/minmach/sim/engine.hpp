// Event-driven online scheduling simulator.
//
// Time advances only at events: job releases, completions, deadline
// expiries, and policy-requested wake-ups (e.g. LLF laxity crossings,
// MediumFit start times). All times are exact rationals, so adversary
// constructions that rescale by tiny amounts stay exact.
//
// The policy is called back on releases/completions/misses and then asked to
// dispatch: to state, for each machine it uses, which active job runs until
// the next event. Machines are opened implicitly by using a new index; the
// cost measure machines_used() counts machines that ever processed work.
//
// Adversaries (minmach/adversary) drive the simulator interactively: submit
// a job, run_until(t), inspect remaining processing and the trace, decide
// the next release. This realizes the paper's game between the adversary
// and "any online algorithm".
//
// Memory layout (DESIGN.md §10): per-job state is a structure of arrays
// keyed by the dense JobId -- deadline, remaining work, and a one-byte
// lifecycle state in parallel vectors -- so the hot event loop walks flat
// arrays instead of chasing Job records. The release and deadline queues
// are binary heaps over pooled vectors (std::push_heap/pop_heap), and
// reset() clears every container without releasing storage, which lets
// simulate() keep one pooled Simulator per thread: steady-state sweeps
// run with zero container construction per simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"

namespace minmach {

class Simulator;
struct SimRun;

// Live event counts for one simulation. Preemptions and migrations are
// counted as they happen (a job set aside with work left; a job resuming on
// a different machine than it last ran on), which matches
// Schedule::preemption_count / migration_count on the canonicalized trace
// for non-degenerate schedules but is defined operationally, not post-hoc.
struct SimStats {
  std::uint64_t releases = 0;
  std::uint64_t completions = 0;
  std::uint64_t misses = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t migrations = 0;
};

class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  // A job just became available (its release date is now).
  virtual void on_release(Simulator& sim, JobId job) = 0;
  // A job just received its full processing time.
  virtual void on_complete(Simulator& sim, JobId job);
  // A job's deadline passed with work left; it leaves the system. Policies
  // are expected to avoid this by opening machines -- experiments treat a
  // miss as a hard failure.
  virtual void on_miss(Simulator& sim, JobId job);
  // Set the running job of every machine in use via Simulator::set_running.
  // Called after every batch of events at one time point.
  virtual void dispatch(Simulator& sim) = 0;
  // Earliest future time (> now) at which the policy wants a dispatch even
  // without a job event. Return std::nullopt if none.
  virtual std::optional<Rat> next_wakeup(const Simulator& sim);

  [[nodiscard]] virtual std::string name() const = 0;
};

class Simulator {
 public:
  // speed: every machine processes `speed` units of work per unit of time
  // (Theorem 7's speed augmentation). The policy object must outlive the
  // simulator.
  explicit Simulator(OnlinePolicy& policy, Rat speed = Rat(1));

  // Rewinds to the empty t=0 state for a new run against `policy`. All
  // container storage (SoA arrays, event heaps, trace machines) is kept,
  // so a reset-reuse cycle allocates nothing once warmed up.
  void reset(OnlinePolicy& policy, Rat speed = Rat(1));

  // Queues a job; it is revealed to the policy at job.release, which must
  // be >= now().
  JobId submit(const Job& job);
  void submit_all(const Instance& instance);

  // Advances simulated time to t (>= now), delivering all events.
  void run_until(const Rat& t);
  // Advances until every submitted job is finished or missed.
  void run_to_completion();

  [[nodiscard]] const Rat& now() const { return now_; }
  [[nodiscard]] const Rat& speed() const { return speed_; }
  [[nodiscard]] const Instance& instance() const { return instance_; }
  [[nodiscard]] const Job& job(JobId id) const { return instance_.job(id); }
  [[nodiscard]] std::size_t job_count() const { return instance_.size(); }

  // Work still owed to the job (in processing units, not wall time).
  [[nodiscard]] const Rat& remaining(JobId id) const { return remaining_[id]; }
  [[nodiscard]] bool released(JobId id) const {
    return state_[id] != JobState::kPending;
  }
  [[nodiscard]] bool finished(JobId id) const {
    return state_[id] == JobState::kFinished;
  }
  [[nodiscard]] bool missed(JobId id) const {
    return state_[id] == JobState::kMissed;
  }
  [[nodiscard]] const std::vector<JobId>& missed_jobs() const {
    return missed_list_;
  }
  [[nodiscard]] bool any_missed() const { return !missed_list_.empty(); }

  // Released, unfinished, not missed.
  [[nodiscard]] std::vector<JobId> active_jobs() const;
  [[nodiscard]] bool all_done() const;

  // --- dispatch-time interface for policies ---
  // job == kInvalidJob idles the machine. The job must be active.
  void set_running(std::size_t machine, JobId job);
  [[nodiscard]] JobId running_on(std::size_t machine) const;
  [[nodiscard]] std::size_t machine_slots() const { return running_.size(); }

  // Canonicalized copy of the processing trace so far.
  [[nodiscard]] Schedule schedule() const;
  [[nodiscard]] std::size_t machines_used() const { return machines_used_; }

  [[nodiscard]] const SimStats& stats() const { return stats_; }
  // Folds the run's event counts into the metrics registry under
  // "sim.<label>.*" (label is usually the policy name). Counters add and
  // machine counts go to a histogram, so sweep aggregation is commutative.
  void publish_metrics(const std::string& label) const;

  [[nodiscard]] OnlinePolicy& policy() { return *policy_; }

 private:
  // Lifecycle of a submitted job. kActive covers released-and-open;
  // kFinished/kMissed imply released, so released() is a != kPending test.
  enum class JobState : std::uint8_t {
    kPending,   // submitted, release event not yet delivered
    kActive,    // released, neither finished nor missed
    kFinished,  // full processing delivered
    kMissed,    // deadline passed with work left
  };

  // Only the pooled-simulator path in simulate() may build an empty
  // Simulator; everyone else must supply a policy up front.
  Simulator() = default;
  friend SimRun simulate_pooled_or_fresh(OnlinePolicy& policy,
                                         const Instance& instance, Rat speed,
                                         bool require_no_miss);

  void deliver_events_at_now();
  [[nodiscard]] Rat next_event_time(const Rat& horizon);
  void advance_to(const Rat& t);

  OnlinePolicy* policy_ = nullptr;
  Rat speed_ = Rat(1);
  Rat now_ = Rat(0);

  Instance instance_;
  // Structure-of-arrays job store, indexed by JobId. deadline_ duplicates
  // instance_'s deadlines so the miss/advance loops stay on flat arrays.
  std::vector<Rat> deadline_;
  std::vector<Rat> remaining_;
  std::vector<JobState> state_;
  std::vector<std::size_t> last_machine_;  // kNeverRan until first run
  std::vector<JobId> missed_list_;

  // Min-heaps by (time, job) over pooled vectors; node storage survives
  // reset(). pending_ holds future releases; deadline_heap_ the deadlines
  // of released jobs, lazily pruned (entries for finished/missed jobs are
  // skipped at peek time) so next_event_time() and the miss scan touch
  // only due jobs instead of rescanning the whole instance.
  struct EventNode {
    Rat time;
    JobId job;
  };
  struct EventAfter {
    bool operator()(const EventNode& a, const EventNode& b) const {
      return b.time < a.time || (b.time == a.time && b.job < a.job);
    }
  };
  std::vector<EventNode> pending_;
  std::vector<EventNode> deadline_heap_;
  std::vector<JobId> due_scratch_;  // miss batch, reused every delivery
  void heap_push(std::vector<EventNode>& heap, Rat time, JobId job);
  void heap_pop(std::vector<EventNode>& heap);
  void prune_deadline_heap();

  // Submitted jobs not yet finished or missed; all_done() is O(1).
  std::size_t open_jobs_ = 0;
  // Max deadline over all submitted jobs; run_to_completion()'s horizon.
  Rat max_deadline_ = Rat(0);

  std::vector<JobId> running_;
  Schedule trace_;
  std::vector<bool> machine_touched_;
  std::size_t machines_used_ = 0;

  SimStats stats_;
  std::vector<JobId> prev_slice_jobs_;  // jobs processed in the last slice
  static constexpr std::size_t kNeverRan = static_cast<std::size_t>(-1);
};

// Convenience driver: simulate the full instance against the policy and
// return the resulting schedule (canonicalized). Throws std::runtime_error
// if the policy misses a deadline and require_no_miss is true. Runs on a
// per-thread pooled Simulator (see reset()) unless substrate_legacy() is
// on or the call re-enters simulate() from a policy callback.
struct SimRun {
  Schedule schedule;
  std::size_t machines_used = 0;
  bool missed = false;
};
[[nodiscard]] SimRun simulate(OnlinePolicy& policy, const Instance& instance,
                              Rat speed = Rat(1), bool require_no_miss = true);

}  // namespace minmach
