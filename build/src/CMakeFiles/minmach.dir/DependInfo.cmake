
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minmach/adversary/agreeable_lb.cpp" "src/CMakeFiles/minmach.dir/minmach/adversary/agreeable_lb.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/adversary/agreeable_lb.cpp.o.d"
  "/root/repo/src/minmach/adversary/edf_lb.cpp" "src/CMakeFiles/minmach.dir/minmach/adversary/edf_lb.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/adversary/edf_lb.cpp.o.d"
  "/root/repo/src/minmach/adversary/strong_lb.cpp" "src/CMakeFiles/minmach.dir/minmach/adversary/strong_lb.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/adversary/strong_lb.cpp.o.d"
  "/root/repo/src/minmach/algos/agreeable.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/agreeable.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/agreeable.cpp.o.d"
  "/root/repo/src/minmach/algos/edf.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/edf.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/edf.cpp.o.d"
  "/root/repo/src/minmach/algos/laminar.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/laminar.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/laminar.cpp.o.d"
  "/root/repo/src/minmach/algos/llf.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/llf.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/llf.cpp.o.d"
  "/root/repo/src/minmach/algos/loose.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/loose.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/loose.cpp.o.d"
  "/root/repo/src/minmach/algos/mediumfit.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/mediumfit.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/mediumfit.cpp.o.d"
  "/root/repo/src/minmach/algos/nonmig.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/nonmig.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/nonmig.cpp.o.d"
  "/root/repo/src/minmach/algos/nonpreemptive.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/nonpreemptive.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/nonpreemptive.cpp.o.d"
  "/root/repo/src/minmach/algos/reservation.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/reservation.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/reservation.cpp.o.d"
  "/root/repo/src/minmach/algos/scale_class.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/scale_class.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/scale_class.cpp.o.d"
  "/root/repo/src/minmach/algos/single_machine.cpp" "src/CMakeFiles/minmach.dir/minmach/algos/single_machine.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/algos/single_machine.cpp.o.d"
  "/root/repo/src/minmach/core/contribution.cpp" "src/CMakeFiles/minmach.dir/minmach/core/contribution.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/core/contribution.cpp.o.d"
  "/root/repo/src/minmach/core/instance.cpp" "src/CMakeFiles/minmach.dir/minmach/core/instance.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/core/instance.cpp.o.d"
  "/root/repo/src/minmach/core/schedule.cpp" "src/CMakeFiles/minmach.dir/minmach/core/schedule.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/core/schedule.cpp.o.d"
  "/root/repo/src/minmach/core/transforms.cpp" "src/CMakeFiles/minmach.dir/minmach/core/transforms.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/core/transforms.cpp.o.d"
  "/root/repo/src/minmach/core/validate.cpp" "src/CMakeFiles/minmach.dir/minmach/core/validate.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/core/validate.cpp.o.d"
  "/root/repo/src/minmach/flow/feasibility.cpp" "src/CMakeFiles/minmach.dir/minmach/flow/feasibility.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/flow/feasibility.cpp.o.d"
  "/root/repo/src/minmach/gen/generators.cpp" "src/CMakeFiles/minmach.dir/minmach/gen/generators.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/gen/generators.cpp.o.d"
  "/root/repo/src/minmach/io/gantt.cpp" "src/CMakeFiles/minmach.dir/minmach/io/gantt.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/io/gantt.cpp.o.d"
  "/root/repo/src/minmach/io/serialize.cpp" "src/CMakeFiles/minmach.dir/minmach/io/serialize.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/io/serialize.cpp.o.d"
  "/root/repo/src/minmach/offline/kp_transform.cpp" "src/CMakeFiles/minmach.dir/minmach/offline/kp_transform.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/offline/kp_transform.cpp.o.d"
  "/root/repo/src/minmach/sim/engine.cpp" "src/CMakeFiles/minmach.dir/minmach/sim/engine.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/sim/engine.cpp.o.d"
  "/root/repo/src/minmach/util/bigint.cpp" "src/CMakeFiles/minmach.dir/minmach/util/bigint.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/util/bigint.cpp.o.d"
  "/root/repo/src/minmach/util/cli.cpp" "src/CMakeFiles/minmach.dir/minmach/util/cli.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/util/cli.cpp.o.d"
  "/root/repo/src/minmach/util/interval_set.cpp" "src/CMakeFiles/minmach.dir/minmach/util/interval_set.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/util/interval_set.cpp.o.d"
  "/root/repo/src/minmach/util/rational.cpp" "src/CMakeFiles/minmach.dir/minmach/util/rational.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/util/rational.cpp.o.d"
  "/root/repo/src/minmach/util/rng.cpp" "src/CMakeFiles/minmach.dir/minmach/util/rng.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/util/rng.cpp.o.d"
  "/root/repo/src/minmach/util/table.cpp" "src/CMakeFiles/minmach.dir/minmach/util/table.cpp.o" "gcc" "src/CMakeFiles/minmach.dir/minmach/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
