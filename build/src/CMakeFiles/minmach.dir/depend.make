# Empty dependencies file for minmach.
# This may be replaced when dependencies are built.
