file(REMOVE_RECURSE
  "libminmach.a"
)
