# Empty compiler generated dependencies file for e07_laminar.
# This may be replaced when dependencies are built.
