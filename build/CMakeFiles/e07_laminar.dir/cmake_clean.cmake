file(REMOVE_RECURSE
  "CMakeFiles/e07_laminar.dir/bench/e07_laminar.cpp.o"
  "CMakeFiles/e07_laminar.dir/bench/e07_laminar.cpp.o.d"
  "bench/e07_laminar"
  "bench/e07_laminar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e07_laminar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
