file(REMOVE_RECURSE
  "CMakeFiles/e12_edf_vs_llf.dir/bench/e12_edf_vs_llf.cpp.o"
  "CMakeFiles/e12_edf_vs_llf.dir/bench/e12_edf_vs_llf.cpp.o.d"
  "bench/e12_edf_vs_llf"
  "bench/e12_edf_vs_llf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_edf_vs_llf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
