# Empty dependencies file for e12_edf_vs_llf.
# This may be replaced when dependencies are built.
