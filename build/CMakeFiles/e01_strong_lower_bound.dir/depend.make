# Empty dependencies file for e01_strong_lower_bound.
# This may be replaced when dependencies are built.
