file(REMOVE_RECURSE
  "CMakeFiles/e02_opt_characterization.dir/bench/e02_opt_characterization.cpp.o"
  "CMakeFiles/e02_opt_characterization.dir/bench/e02_opt_characterization.cpp.o.d"
  "bench/e02_opt_characterization"
  "bench/e02_opt_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e02_opt_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
