# Empty dependencies file for e02_opt_characterization.
# This may be replaced when dependencies are built.
