file(REMOVE_RECURSE
  "CMakeFiles/e08_agreeable.dir/bench/e08_agreeable.cpp.o"
  "CMakeFiles/e08_agreeable.dir/bench/e08_agreeable.cpp.o.d"
  "bench/e08_agreeable"
  "bench/e08_agreeable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e08_agreeable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
