# Empty dependencies file for e08_agreeable.
# This may be replaced when dependencies are built.
