file(REMOVE_RECURSE
  "CMakeFiles/a01_laminar_ablation.dir/bench/a01_laminar_ablation.cpp.o"
  "CMakeFiles/a01_laminar_ablation.dir/bench/a01_laminar_ablation.cpp.o.d"
  "bench/a01_laminar_ablation"
  "bench/a01_laminar_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a01_laminar_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
