# Empty compiler generated dependencies file for a01_laminar_ablation.
# This may be replaced when dependencies are built.
