# Empty dependencies file for e11_edf_loose.
# This may be replaced when dependencies are built.
