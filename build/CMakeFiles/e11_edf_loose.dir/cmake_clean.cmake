file(REMOVE_RECURSE
  "CMakeFiles/e11_edf_loose.dir/bench/e11_edf_loose.cpp.o"
  "CMakeFiles/e11_edf_loose.dir/bench/e11_edf_loose.cpp.o.d"
  "bench/e11_edf_loose"
  "bench/e11_edf_loose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_edf_loose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
