# Empty compiler generated dependencies file for f01_figure1_schedule.
# This may be replaced when dependencies are built.
