# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for f01_figure1_schedule.
