file(REMOVE_RECURSE
  "CMakeFiles/f01_figure1_schedule.dir/bench/f01_figure1_schedule.cpp.o"
  "CMakeFiles/f01_figure1_schedule.dir/bench/f01_figure1_schedule.cpp.o.d"
  "bench/f01_figure1_schedule"
  "bench/f01_figure1_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f01_figure1_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
