file(REMOVE_RECURSE
  "CMakeFiles/e03_kp_transform.dir/bench/e03_kp_transform.cpp.o"
  "CMakeFiles/e03_kp_transform.dir/bench/e03_kp_transform.cpp.o.d"
  "bench/e03_kp_transform"
  "bench/e03_kp_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e03_kp_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
