# Empty dependencies file for e03_kp_transform.
# This may be replaced when dependencies are built.
