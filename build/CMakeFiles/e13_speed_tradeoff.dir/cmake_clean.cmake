file(REMOVE_RECURSE
  "CMakeFiles/e13_speed_tradeoff.dir/bench/e13_speed_tradeoff.cpp.o"
  "CMakeFiles/e13_speed_tradeoff.dir/bench/e13_speed_tradeoff.cpp.o.d"
  "bench/e13_speed_tradeoff"
  "bench/e13_speed_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_speed_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
