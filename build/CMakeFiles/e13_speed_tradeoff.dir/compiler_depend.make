# Empty compiler generated dependencies file for e13_speed_tradeoff.
# This may be replaced when dependencies are built.
