file(REMOVE_RECURSE
  "CMakeFiles/e04_loose_pipeline.dir/bench/e04_loose_pipeline.cpp.o"
  "CMakeFiles/e04_loose_pipeline.dir/bench/e04_loose_pipeline.cpp.o.d"
  "bench/e04_loose_pipeline"
  "bench/e04_loose_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e04_loose_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
