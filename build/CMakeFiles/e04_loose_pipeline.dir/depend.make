# Empty dependencies file for e04_loose_pipeline.
# This may be replaced when dependencies are built.
