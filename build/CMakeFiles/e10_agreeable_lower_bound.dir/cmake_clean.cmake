file(REMOVE_RECURSE
  "CMakeFiles/e10_agreeable_lower_bound.dir/bench/e10_agreeable_lower_bound.cpp.o"
  "CMakeFiles/e10_agreeable_lower_bound.dir/bench/e10_agreeable_lower_bound.cpp.o.d"
  "bench/e10_agreeable_lower_bound"
  "bench/e10_agreeable_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_agreeable_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
