# Empty dependencies file for e10_agreeable_lower_bound.
# This may be replaced when dependencies are built.
