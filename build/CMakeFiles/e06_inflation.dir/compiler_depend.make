# Empty compiler generated dependencies file for e06_inflation.
# This may be replaced when dependencies are built.
