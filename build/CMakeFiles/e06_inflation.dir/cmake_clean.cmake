file(REMOVE_RECURSE
  "CMakeFiles/e06_inflation.dir/bench/e06_inflation.cpp.o"
  "CMakeFiles/e06_inflation.dir/bench/e06_inflation.cpp.o.d"
  "bench/e06_inflation"
  "bench/e06_inflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e06_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
