# Empty dependencies file for e09_mediumfit.
# This may be replaced when dependencies are built.
