file(REMOVE_RECURSE
  "CMakeFiles/e09_mediumfit.dir/bench/e09_mediumfit.cpp.o"
  "CMakeFiles/e09_mediumfit.dir/bench/e09_mediumfit.cpp.o.d"
  "bench/e09_mediumfit"
  "bench/e09_mediumfit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e09_mediumfit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
