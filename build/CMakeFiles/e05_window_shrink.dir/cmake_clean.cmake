file(REMOVE_RECURSE
  "CMakeFiles/e05_window_shrink.dir/bench/e05_window_shrink.cpp.o"
  "CMakeFiles/e05_window_shrink.dir/bench/e05_window_shrink.cpp.o.d"
  "bench/e05_window_shrink"
  "bench/e05_window_shrink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e05_window_shrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
