# Empty compiler generated dependencies file for e05_window_shrink.
# This may be replaced when dependencies are built.
