file(REMOVE_RECURSE
  "CMakeFiles/realtime_admission.dir/realtime_admission.cpp.o"
  "CMakeFiles/realtime_admission.dir/realtime_admission.cpp.o.d"
  "realtime_admission"
  "realtime_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
