# Empty compiler generated dependencies file for realtime_admission.
# This may be replaced when dependencies are built.
