file(REMOVE_RECURSE
  "CMakeFiles/agreeable_batch.dir/agreeable_batch.cpp.o"
  "CMakeFiles/agreeable_batch.dir/agreeable_batch.cpp.o.d"
  "agreeable_batch"
  "agreeable_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agreeable_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
