# Empty dependencies file for agreeable_batch.
# This may be replaced when dependencies are built.
