file(REMOVE_RECURSE
  "CMakeFiles/laminar_workflow.dir/laminar_workflow.cpp.o"
  "CMakeFiles/laminar_workflow.dir/laminar_workflow.cpp.o.d"
  "laminar_workflow"
  "laminar_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laminar_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
