# Empty dependencies file for laminar_workflow.
# This may be replaced when dependencies are built.
