# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bigint[1]_include.cmake")
include("/root/repo/build/tests/test_rational[1]_include.cmake")
include("/root/repo/build/tests/test_interval_set[1]_include.cmake")
include("/root/repo/build/tests/test_instance[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_contribution[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_single_machine[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_edf_llf[1]_include.cmake")
include("/root/repo/build/tests/test_nonmig[1]_include.cmake")
include("/root/repo/build/tests/test_reservation[1]_include.cmake")
include("/root/repo/build/tests/test_loose[1]_include.cmake")
include("/root/repo/build/tests/test_laminar[1]_include.cmake")
include("/root/repo/build/tests/test_agreeable[1]_include.cmake")
include("/root/repo/build/tests/test_kp[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_strong_lb[1]_include.cmake")
include("/root/repo/build/tests/test_agreeable_lb[1]_include.cmake")
include("/root/repo/build/tests/test_edf_lb[1]_include.cmake")
include("/root/repo/build/tests/test_witness[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_scale_class[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
