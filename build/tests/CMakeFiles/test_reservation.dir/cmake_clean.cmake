file(REMOVE_RECURSE
  "CMakeFiles/test_reservation.dir/test_reservation.cpp.o"
  "CMakeFiles/test_reservation.dir/test_reservation.cpp.o.d"
  "test_reservation"
  "test_reservation.pdb"
  "test_reservation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
