file(REMOVE_RECURSE
  "CMakeFiles/test_edf_llf.dir/test_edf_llf.cpp.o"
  "CMakeFiles/test_edf_llf.dir/test_edf_llf.cpp.o.d"
  "test_edf_llf"
  "test_edf_llf.pdb"
  "test_edf_llf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edf_llf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
