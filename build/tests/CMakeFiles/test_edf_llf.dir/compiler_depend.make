# Empty compiler generated dependencies file for test_edf_llf.
# This may be replaced when dependencies are built.
