file(REMOVE_RECURSE
  "CMakeFiles/test_nonmig.dir/test_nonmig.cpp.o"
  "CMakeFiles/test_nonmig.dir/test_nonmig.cpp.o.d"
  "test_nonmig"
  "test_nonmig.pdb"
  "test_nonmig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonmig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
