# Empty dependencies file for test_nonmig.
# This may be replaced when dependencies are built.
