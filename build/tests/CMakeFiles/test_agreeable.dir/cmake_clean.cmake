file(REMOVE_RECURSE
  "CMakeFiles/test_agreeable.dir/test_agreeable.cpp.o"
  "CMakeFiles/test_agreeable.dir/test_agreeable.cpp.o.d"
  "test_agreeable"
  "test_agreeable.pdb"
  "test_agreeable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agreeable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
