# Empty compiler generated dependencies file for test_agreeable.
# This may be replaced when dependencies are built.
