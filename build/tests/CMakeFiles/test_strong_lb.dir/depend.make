# Empty dependencies file for test_strong_lb.
# This may be replaced when dependencies are built.
