file(REMOVE_RECURSE
  "CMakeFiles/test_strong_lb.dir/test_strong_lb.cpp.o"
  "CMakeFiles/test_strong_lb.dir/test_strong_lb.cpp.o.d"
  "test_strong_lb"
  "test_strong_lb.pdb"
  "test_strong_lb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strong_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
