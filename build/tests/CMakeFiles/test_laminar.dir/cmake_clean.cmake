file(REMOVE_RECURSE
  "CMakeFiles/test_laminar.dir/test_laminar.cpp.o"
  "CMakeFiles/test_laminar.dir/test_laminar.cpp.o.d"
  "test_laminar"
  "test_laminar.pdb"
  "test_laminar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_laminar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
