# Empty dependencies file for test_laminar.
# This may be replaced when dependencies are built.
