# Empty compiler generated dependencies file for test_loose.
# This may be replaced when dependencies are built.
