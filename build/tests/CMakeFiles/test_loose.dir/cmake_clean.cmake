file(REMOVE_RECURSE
  "CMakeFiles/test_loose.dir/test_loose.cpp.o"
  "CMakeFiles/test_loose.dir/test_loose.cpp.o.d"
  "test_loose"
  "test_loose.pdb"
  "test_loose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
