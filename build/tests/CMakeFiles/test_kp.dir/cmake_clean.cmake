file(REMOVE_RECURSE
  "CMakeFiles/test_kp.dir/test_kp.cpp.o"
  "CMakeFiles/test_kp.dir/test_kp.cpp.o.d"
  "test_kp"
  "test_kp.pdb"
  "test_kp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
