# Empty dependencies file for test_contribution.
# This may be replaced when dependencies are built.
