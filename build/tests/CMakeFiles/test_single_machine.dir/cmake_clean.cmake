file(REMOVE_RECURSE
  "CMakeFiles/test_single_machine.dir/test_single_machine.cpp.o"
  "CMakeFiles/test_single_machine.dir/test_single_machine.cpp.o.d"
  "test_single_machine"
  "test_single_machine.pdb"
  "test_single_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_single_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
