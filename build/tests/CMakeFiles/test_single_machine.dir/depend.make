# Empty dependencies file for test_single_machine.
# This may be replaced when dependencies are built.
