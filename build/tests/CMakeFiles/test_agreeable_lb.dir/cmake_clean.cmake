file(REMOVE_RECURSE
  "CMakeFiles/test_agreeable_lb.dir/test_agreeable_lb.cpp.o"
  "CMakeFiles/test_agreeable_lb.dir/test_agreeable_lb.cpp.o.d"
  "test_agreeable_lb"
  "test_agreeable_lb.pdb"
  "test_agreeable_lb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agreeable_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
