# Empty dependencies file for test_agreeable_lb.
# This may be replaced when dependencies are built.
