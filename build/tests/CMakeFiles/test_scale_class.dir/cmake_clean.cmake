file(REMOVE_RECURSE
  "CMakeFiles/test_scale_class.dir/test_scale_class.cpp.o"
  "CMakeFiles/test_scale_class.dir/test_scale_class.cpp.o.d"
  "test_scale_class"
  "test_scale_class.pdb"
  "test_scale_class[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scale_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
