# Empty compiler generated dependencies file for test_scale_class.
# This may be replaced when dependencies are built.
