# Empty dependencies file for test_edf_lb.
# This may be replaced when dependencies are built.
