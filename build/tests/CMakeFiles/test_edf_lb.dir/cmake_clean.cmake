file(REMOVE_RECURSE
  "CMakeFiles/test_edf_lb.dir/test_edf_lb.cpp.o"
  "CMakeFiles/test_edf_lb.dir/test_edf_lb.cpp.o.d"
  "test_edf_lb"
  "test_edf_lb.pdb"
  "test_edf_lb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edf_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
