// E4 -- Theorems 5/6/8: O(1)-competitive non-migratory scheduling of
// alpha-loose jobs via the speed-augmentation reduction (inflate J -> J^s,
// run the speed-s black box, replay at unit speed). The competitive ratio
// (machines / migratory OPT) must stay flat as n and m grow.
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/algos/loose.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));
  const std::int64_t threads_request = bench::threads_flag(cli);
  bench::Run ctx(cli, "E4: constant-competitive pipeline for alpha-loose jobs",
                 "for fixed alpha < 1, non-migratory online scheduling on "
                 "O(m) machines (Theorem 5); ratio flat in n and m");
  cli.check_unknown();
  ctx.config("seed", static_cast<std::int64_t>(seed));

  struct Setting {
    Rat alpha;
    Rat s;
  };
  const Setting settings[] = {
      {Rat(1, 4), Rat(2)},
      {Rat(1, 3), Rat(2)},
      {Rat(2, 5), Rat(2)},
      {Rat(1, 2), Rat(3, 2)},
  };
  const std::size_t setting_count = std::size(settings);

  // One task per (alpha, s) setting: each seeds its own Rng, so the rows it
  // returns are independent of how tasks are interleaved across threads.
  struct SettingResult {
    std::vector<std::vector<std::string>> rows;
    double worst_ratio = 0;
    std::string failure;
  };
  auto results = bench::parallel_map(
      setting_count, bench::resolve_threads(threads_request, setting_count),
      [&](std::size_t index) {
        const Setting& setting = settings[index];
        SettingResult out;
        Rng rng(seed);
        for (std::size_t n : {30u, 60u, 120u, 240u}) {
          GenConfig config;
          config.n = n;
          config.horizon = static_cast<std::int64_t>(n);  // density grows m with n
          Instance in = gen_loose(rng, config, setting.alpha);
          std::int64_t m = optimal_migratory_machines(in);
          if (m < 1) continue;
          LooseRun run = schedule_loose_jobs(in, setting.alpha, setting.s);
          ValidateOptions options;
          options.require_non_migratory = true;
          auto audit = validate(in, run.schedule, options);
          if (!audit.ok && out.failure.empty())
            out.failure = "pipeline schedule invalid: " + audit.summary();
          double ratio = static_cast<double>(run.machines_used) /
                         static_cast<double>(m);
          out.worst_ratio = std::max(out.worst_ratio, ratio);
          out.rows.push_back({setting.alpha.to_string(), setting.s.to_string(),
                              std::to_string(n), std::to_string(m),
                              std::to_string(run.machines_used),
                              Table::fmt(ratio, 3)});
        }
        return out;
      });

  Table table({"alpha", "s", "n", "m (OPT)", "pipeline machines",
               "machines/m"});
  double worst_ratio = 0;
  for (const SettingResult& result : results) {
    bench::require(result.failure.empty(), result.failure);
    for (const auto& row : result.rows) table.add_row(row);
    worst_ratio = std::max(worst_ratio, result.worst_ratio);
  }
  table.print(std::cout);
  ctx.table("pipeline machines vs OPT", table);
  std::cout << "\nworst observed competitive ratio: "
            << Table::fmt(worst_ratio, 3)
            << "  (paper: O(1), independent of n and m)\n";
  ctx.check("competitive ratio constant-like", Table::fmt(worst_ratio, 3),
            "25.000", worst_ratio <= 25.0);
  return 0;
}
