// A1 (ablation) -- the design choices of Section 5:
//  (a) budget ablation: sweep the laminar machine budget m' downward; at
//      small budgets assignments fail, and every failure yields a §5.2
//      witness set whose measured (mu, beta) meets Lemma 7's (m', 1/m') --
//      via Theorem 10 that certifies m = Omega(m'/log m'), i.e. failures
//      only happen when the budget really is too small;
//  (b) greedy ablation: the paper notes that greedily assigning to the
//      innermost candidate with the "necessary criterion" only (no m'-way
//      sub-budget split) fails; the table compares failure onset of the
//      greedy rule vs the balanced scheme at equal budgets;
//  (c) the guess-and-double wrapper (§2's "optimum may be assumed known"):
//      machines used and final guess without knowing m.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "minmach/algos/laminar.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 21));
  // Duplicating each window `copies` times keeps the instance laminar while
  // multiplying the load -- the knob that pushes m high enough for a rich
  // failure curve.
  const int copies = static_cast<int>(cli.get_int("copies", 4));
  bench::Run ctx(cli, "A1: laminar design ablations (budget split, greedy "
                      "rule, doubling)",
                 "failures at budget m' witness (m',1/m')-critical pairs "
                 "(Lemma 7); failures vanish at the Theorem 9 budget");
  cli.check_unknown();
  ctx.config("seed", static_cast<std::int64_t>(seed));
  ctx.config("copies", static_cast<std::int64_t>(copies));

  Rng rng(seed);
  GenConfig config;
  config.n = 300;
  config.horizon = 400;
  config.denominator = 4;
  Instance base = gen_laminar_tight(rng, config, Rat(1, 2));
  Instance in;
  for (const Job& j : base.jobs())
    for (int k = 0; k < copies; ++k) in.add_job(j);
  in.sort_canonical();
  bench::require(in.is_laminar(), "duplication broke laminarity");
  std::int64_t m = optimal_migratory_machines(in);
  std::cout << "instance: " << in.size() << " tight laminar jobs ("
            << copies << " copies per window), m = " << m << "\n\n";

  Table table({"budget m'", "balanced fails", "witness mu", "mu >= m'",
               "witness beta", "beta >= 1/m'", "greedy fails"});
  for (std::size_t budget : {2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
    LaminarPolicy balanced(budget);
    SimRun run = simulate(balanced, in, Rat(1), /*require_no_miss=*/true);
    (void)run;
    GreedyLaminarPolicy greedy(budget);
    SimRun greedy_run = simulate(greedy, in, Rat(1), true);
    (void)greedy_run;

    std::string mu = "-";
    std::string mu_ok = "-";
    std::string beta = "-";
    std::string beta_ok = "-";
    if (balanced.failure_witness()) {
      CriticalPairStats stats =
          evaluate_critical_pair(*balanced.failure_witness());
      mu = std::to_string(stats.coverage);
      mu_ok = stats.coverage >= budget ? "yes" : "NO";
      beta = Table::fmt(stats.beta.to_double(), 3);
      beta_ok = stats.beta >= Rat(1, static_cast<std::int64_t>(budget))
                    ? "yes"
                    : "NO";
      bench::require(stats.coverage >= budget,
                     "witness coverage below m' (Lemma 7)");
      bench::require(stats.beta >= Rat(1, static_cast<std::int64_t>(budget)),
                     "witness beta below 1/m' (Lemma 7)");
    }
    table.add_row({std::to_string(budget),
                   std::to_string(balanced.assignment_failures()), mu, mu_ok,
                   beta, beta_ok,
                   std::to_string(greedy.assignment_failures())});
  }
  table.print(std::cout);
  ctx.table("budget sweep: balanced vs greedy failures", table);

  // Theorem budget: zero failures.
  auto theorem_budget = static_cast<std::size_t>(
      8.0 * static_cast<double>(m) *
      std::max(1.0, std::log2(static_cast<double>(m)))) + 1;
  LaminarPolicy at_theorem(theorem_budget);
  SimRun run = simulate(at_theorem, in, Rat(1), true);
  (void)run;
  ctx.check("failures at the Theorem 9 budget",
            std::to_string(at_theorem.assignment_failures()), "0",
            at_theorem.assignment_failures() == 0);
  std::cout << "\nTheorem 9 budget m' = " << theorem_budget << ": "
            << at_theorem.assignment_failures() << " failures\n";

  // Guess-and-double wrapper.
  AdaptiveLaminarPolicy adaptive(4.0);
  SimRun adaptive_run = simulate(adaptive, in, Rat(1), true);
  ValidateOptions options;
  options.require_non_migratory = true;
  auto audit = validate(in, adaptive_run.schedule, options);
  bench::require(audit.ok, "adaptive schedule invalid");
  std::cout << "guess-and-double (no knowledge of m): "
            << adaptive_run.machines_used << " machines, final guess "
            << adaptive.current_guess() << " (true m = " << m << "), "
            << adaptive.epochs() << " epochs\n"
            << "\nShape check: failures decay to zero well before the "
               "Theorem 9 budget, and every\nfailure's witness is "
               "(m',1/m')-critical exactly as Lemma 7 states. On this "
               "random\nfamily the greedy rule happens to stop failing "
               "even earlier -- the paper's point\nis that greedy fails on "
               "WORST-CASE instances ([10, Thm 2.13]) where the balanced\n"
               "split provably cannot (Theorem 9 has no greedy analogue).\n";
  return 0;
}
