// E2 -- Theorem 1: the load characterization of the migratory optimum.
//
// On every enumerable instance, the exact flow optimum must EQUAL the
// maximum of ceil(C(S,I)/|I|) over unions of elementary segments; on larger
// instances the single-interval bound must stay a valid lower bound. Both
// directions of the theorem are exercised across instance families.
#include <iostream>

#include "bench/bench_common.hpp"
#include "minmach/core/contribution.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::int64_t trials = cli.get_int("trials", 40);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  bench::Run ctx(cli, "E2: Theorem 1 -- optimum = max interval-union load",
                 "m = max_I ceil(C(S,I)/|I|), attained by some finite union I");
  cli.check_unknown();
  ctx.config("trials", trials);
  ctx.config("seed", static_cast<std::int64_t>(seed));

  struct Family {
    const char* name;
    Instance (*generate)(Rng&, const GenConfig&);
  };
  const Family families[] = {
      {"general", gen_general},
      {"agreeable", gen_agreeable},
      {"laminar", gen_laminar},
      {"unit", gen_unit},
  };

  Table table({"family", "trials", "exact matches", "single-int tight",
               "max opt seen"});
  for (const Family& family : families) {
    Rng rng(seed);
    GenConfig config;
    config.n = 6;  // <= 11 elementary segments: exhaustive search is exact
    config.horizon = 12;
    config.max_window = 8;
    config.denominator = 2;
    std::int64_t matches = 0;
    std::int64_t single_tight = 0;
    std::int64_t max_opt = 0;
    for (std::int64_t i = 0; i < trials; ++i) {
      Instance in = family.generate(rng, config);
      std::int64_t opt = optimal_migratory_machines(in);
      auto exhaustive = load_bound_exhaustive(in, 20);
      bench::require(exhaustive.has_value(), "instance too large for E2");
      bench::require(exhaustive->machines == opt,
                     "Theorem 1 equality failed on " + in.to_string());
      ++matches;
      LoadBound single = load_bound_single_interval(in);
      bench::require(single.machines <= opt,
                     "single-interval bound exceeded the optimum");
      if (single.machines == opt) ++single_tight;
      max_opt = std::max(max_opt, opt);
    }
    table.add_row({family.name, std::to_string(trials),
                   std::to_string(matches), std::to_string(single_tight),
                   std::to_string(max_opt)});
  }
  table.print(std::cout);
  ctx.table("Theorem 1 equality per family", table);

  // Larger instances: single-interval lower bound validity.
  Rng rng(seed + 1);
  GenConfig big;
  big.n = 80;
  std::int64_t valid = 0;
  const std::int64_t big_trials = 10;
  for (std::int64_t i = 0; i < big_trials; ++i) {
    Instance in = gen_general(rng, big);
    std::int64_t opt = optimal_migratory_machines(in);
    LoadBound single = load_bound_single_interval(in);
    bench::require(single.machines <= opt, "lower bound violated at n=80");
    ++valid;
  }
  ctx.check("single-interval load bound valid at n=80", std::to_string(valid),
            std::to_string(big_trials), valid == big_trials);
  std::cout << "\nlarge-instance check (n=80): single-interval load bound <= "
               "flow OPT in " << valid << "/" << big_trials << " trials\n"
            << "Theorem 1 equality held in every enumerable trial above.\n";
  return 0;
}
