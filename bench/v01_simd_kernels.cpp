// V1 -- SIMD/bit-parallel kernel layer (DESIGN.md §12): AVX2 load sweep,
// bitmap+CSR Dinic levels, batched small-Rat kernels vs their scalar
// fallbacks.
//
// Two tiers of A/B rows, both dispatch modes running in ONE binary (the
// kernels are runtime-dispatched, so this bench is the differential tests'
// wall-clock counterpart):
//
//   * microkernels -- the int64 load-sweep kernel (AVX2 lanes vs scalar twin
//     vs the generic __int128 sweep), Dinic max-flow with the bitmap+CSR
//     level kernel vs the seed scalar BFS, and the rat_batch sum/less_than
//     kernels vs sequential Rat arithmetic; every pair is checked for
//     identical results before its timing is reported.
//   * end-to-end -- o01's instance families (unit-wide and general), exact
//     OPT per instance under --simd scalar vs avx2 dispatch, OPT and the
//     certified load lower bound required identical.
//
// Acceptance (enforced in-bench like m01/q01): at the largest unit-wide row
// with n >= 2000, avx2 dispatch must be >= 2x faster by wall clock, and the
// sweep microkernel >= 2x over the generic sweep. Rows land in --out
// (BENCH_simd.json, wall times included so NOT byte-deterministic). On a
// machine without AVX2 (or a MINMACH_SIMD=scalar build) the avx2 columns
// are skipped and no bar is enforced -- the scalar rows still validate.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/core/load_sweep.hpp"
#include "minmach/core/load_sweep_simd.hpp"
#include "minmach/flow/dinic.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/simd.hpp"
#include "minmach/util/table.hpp"

namespace {

using namespace minmach;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::vector<std::int64_t> parse_sizes(const std::string& csv) {
  std::vector<std::int64_t> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) out.push_back(std::stoll(token));
  return out;
}

// Best-of-`reps` wall time of fn() (min absorbs scheduler noise on shared
// boxes; every repetition's result is still checked by the caller).
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point start = Clock::now();
    fn();
    best = std::min(best, ms_since(start));
  }
  return best;
}

// Int64 views of a small-integer instance (the sweep kernel's input form).
struct IntInstance {
  std::vector<std::int64_t> release, deadline, processing, points;
};

IntInstance narrow(const Instance& instance) {
  IntInstance out;
  const std::size_t n = instance.size();
  std::vector<Rat> release(n), deadline(n), processing(n);
  for (std::size_t j = 0; j < n; ++j) {
    release[j] = instance.job(j).release;
    deadline[j] = instance.job(j).deadline;
    processing[j] = instance.job(j).processing;
  }
  const std::vector<Rat> points = instance.event_points();
  out.release.resize(n);
  out.deadline.resize(n);
  out.processing.resize(n);
  out.points.resize(points.size());
  bench::require(
      rat_batch::to_i64(release.data(), n, out.release.data(), INT64_MAX) &&
          rat_batch::to_i64(deadline.data(), n, out.deadline.data(),
                            INT64_MAX) &&
          rat_batch::to_i64(processing.data(), n, out.processing.data(),
                            INT64_MAX) &&
          rat_batch::to_i64(points.data(), points.size(), out.points.data(),
                            INT64_MAX),
      "generated instance is not small-integer");
  return out;
}

bool same_witness(const SweepWitness& a, const SweepWitness& b) {
  return a.machines == b.machines && a.lo == b.lo && a.hi == b.hi;
}

// Layered sparse random network for the Dinic level-kernel microbench:
// layers of `width` nodes, each with `degree` random out-edges into the
// next layer -- wide frontiers and pointer-chasing adjacency, the shape the
// bitmap+CSR level kernel targets (the oracle's compressed network is
// similarly sparse).
Dinic<long long> make_layered(Rng& rng, std::size_t layers, std::size_t width,
                              std::size_t degree) {
  const std::size_t nodes = layers * width + 2;
  Dinic<long long> graph(nodes);
  const std::size_t source = nodes - 2, sink = nodes - 1;
  auto node = [&](std::size_t layer, std::size_t i) {
    return layer * width + i;
  };
  for (std::size_t i = 0; i < width; ++i)
    graph.add_edge(source, node(0, i), rng.uniform_int(1, 64));
  for (std::size_t layer = 0; layer + 1 < layers; ++layer)
    for (std::size_t i = 0; i < width; ++i)
      for (std::size_t k = 0; k < degree; ++k)
        graph.add_edge(
            node(layer, i),
            node(layer + 1, static_cast<std::size_t>(rng.uniform_int(
                                0, static_cast<std::int64_t>(width) - 1))),
            rng.uniform_int(1, 8));
  for (std::size_t i = 0; i < width; ++i)
    graph.add_edge(node(layers - 1, i), sink, rng.uniform_int(1, 64));
  return graph;
}

struct EndToEnd {
  std::int64_t opt = 0;
  std::int64_t lb = 0;
  double wall_ms = 0.0;
};

EndToEnd measure_opt(const Instance& instance, util::simd::Mode mode,
                     int reps) {
  const util::simd::Mode saved = util::simd::mode();
  util::simd::set_mode(mode);
  EndToEnd out;
  out.wall_ms = best_of(reps, [&] {
    FeasibilityOracle oracle(instance);
    out.opt = oracle.optimal_machines();
    out.lb = oracle.load_lower_bound();
  });
  util::simd::set_mode(saved);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string sizes_csv = cli.get_string("sizes", "500,1000,2000,4000");
  const std::int64_t reps = cli.get_int("reps", 3);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string out_path = cli.get_string("out", "BENCH_simd.json");
  bench::Run ctx(cli, "V1: SIMD + bit-parallel kernels vs scalar dispatch",
                 "bit-identical results, >= 2x wall on the oracle hot paths");
  cli.check_unknown();
  const std::vector<std::int64_t> sizes = parse_sizes(sizes_csv);
  const bool avx2 = util::simd::supported();
  ctx.config("sizes", sizes_csv);
  ctx.config("reps", reps);
  ctx.config("seed", static_cast<std::int64_t>(seed));
  ctx.config("avx2_available", avx2 ? "yes" : "no");
  if (!avx2)
    std::cout << "note: AVX2 kernels unavailable (CPU or build); scalar "
                 "rows only, no speedup bars enforced\n";

  struct MicroRow {
    std::string kernel;
    std::int64_t n = 0;
    double scalar_ms = 0.0;
    double simd_ms = 0.0;  // 0 when AVX2 is unavailable
  };
  std::vector<MicroRow> micro;

  // --- microkernel: int64 load sweep (scalar twin vs AVX2 lanes), plus the
  // generic __int128 sweep as the seed reference; all three witnesses must
  // agree exactly.
  for (std::int64_t n : sizes) {
    const std::int64_t horizon = std::max<std::int64_t>(4, n / 8);
    Rng rng(seed + static_cast<std::uint64_t>(n));
    const Instance instance = gen_unit(
        rng, GenConfig{static_cast<std::size_t>(n), horizon, horizon, 1});
    const IntInstance ints = narrow(instance);

    std::vector<__int128> wide_r(ints.release.begin(), ints.release.end());
    std::vector<__int128> wide_d(ints.deadline.begin(), ints.deadline.end());
    std::vector<__int128> wide_p(ints.processing.begin(),
                                 ints.processing.end());
    std::vector<__int128> wide_pts(ints.points.begin(), ints.points.end());
    // The seed kernel -- what --simd scalar dispatch actually runs in the
    // oracle -- is the generic __int128 sweep; the restructured int64
    // scalar twin is reported as its own row (the compaction restructure
    // alone, no lanes).
    SweepWitness generic;
    auto ceil_div = [](const __int128& c, const __int128& len) {
      return static_cast<std::int64_t>((c + len - 1) / len);
    };
    MicroRow row{"load_sweep", n, 0.0, 0.0};
    row.scalar_ms = best_of(static_cast<int>(reps), [&] {
      generic =
          sweep_load_bound<__int128>(wide_r, wide_d, wide_p, wide_pts, ceil_div);
    });
    MicroRow twin{"load_sweep_i64twin", n, 0.0, 0.0};
    SweepWitness scalar_w, simd_w;
    twin.scalar_ms = best_of(static_cast<int>(reps), [&] {
      scalar_w = sweep_load_bound_i64(ints.release, ints.deadline,
                                      ints.processing, ints.points,
                                      /*left_stride=*/1, /*use_avx2=*/false);
    });
    bench::require(same_witness(scalar_w, generic),
                   "scalar i64 sweep disagrees with the generic sweep");
    if (avx2) {
      row.simd_ms = best_of(static_cast<int>(reps), [&] {
        simd_w = sweep_load_bound_i64(ints.release, ints.deadline,
                                      ints.processing, ints.points,
                                      /*left_stride=*/1, /*use_avx2=*/true);
      });
      bench::require(same_witness(simd_w, generic),
                     "avx2 sweep disagrees with the generic sweep");
      twin.simd_ms = row.simd_ms;
    }
    micro.push_back(row);
    micro.push_back(twin);
  }

  // --- microkernel: Dinic level kernel (bitmap+CSR vs scalar BFS) on a
  // layered random network; max-flow values must match.
  {
    Rng rng(seed);
    const std::size_t layers = 16, width = 512, degree = 6;
    Dinic<long long> graph = make_layered(rng, layers, width, degree);
    const std::size_t source = graph.node_count() - 2;
    const std::size_t sink = graph.node_count() - 1;
    long long flow_scalar = 0, flow_bitmap = 0;
    MicroRow row{"dinic_levels",
                 static_cast<std::int64_t>(graph.node_count()), 0.0, 0.0};
    graph.set_level_kernel(0);
    row.scalar_ms = best_of(static_cast<int>(reps), [&] {
      graph.reset_flow();
      flow_scalar = graph.max_flow(source, sink);
    });
    // The bitmap kernel is portable (packed words, no intrinsics), so this
    // side runs -- and is checked -- even without AVX2.
    graph.set_level_kernel(1);
    row.simd_ms = best_of(static_cast<int>(reps), [&] {
      graph.reset_flow();
      flow_bitmap = graph.max_flow(source, sink);
    });
    bench::require(flow_scalar == flow_bitmap,
                   "bitmap level kernel changed the max-flow value");
    micro.push_back(row);
  }

  // --- microkernels: batched small-Rat kernels vs the seed sequential Rat
  // loops they replace.
  {
    const std::size_t count = 1 << 17;
    Rng rng(seed + 7);
    std::vector<Rat> a(count), b(count);
    std::vector<std::int64_t> ints(count), nums(count), dens(count);
    for (std::size_t i = 0; i < count; ++i) {
      a[i] = Rat(rng.uniform_int(-1000000, 1000000),
                 rng.uniform_int(1, 100000));
      b[i] = Rat(rng.uniform_int(-1000000, 1000000),
                 rng.uniform_int(1, 100000));
      ints[i] = rng.uniform_int(-1000000000, 1000000000);
      nums[i] = rng.uniform_int(-1000000, 1000000);
      dens[i] = rng.uniform_int(1, 100000);
    }

    // less_than: batched cross-multiply (scalar int64 vs AVX2 lanes).
    {
      std::vector<unsigned char> lt_scalar(count), lt_simd(count);
      MicroRow row{"rat_less", static_cast<std::int64_t>(count), 0.0, 0.0};
      row.scalar_ms = best_of(static_cast<int>(reps), [&] {
        rat_batch::less_than(a.data(), b.data(), count, lt_scalar.data(),
                             /*avx2=*/false);
      });
      if (avx2) {
        row.simd_ms = best_of(static_cast<int>(reps), [&] {
          rat_batch::less_than(a.data(), b.data(), count, lt_simd.data(),
                               /*avx2=*/true);
        });
        bench::require(lt_scalar == lt_simd,
                       "batched less_than disagrees across dispatch modes");
      }
      micro.push_back(row);
    }

    // sum over integer-valued Rats: seed sequential += vs the batched
    // int64 extraction + lane accumulation.
    {
      std::vector<Rat> values(count);
      for (std::size_t i = 0; i < count; ++i) values[i] = Rat(ints[i]);
      Rat sum_seq, sum_batch;
      MicroRow row{"rat_sum", static_cast<std::int64_t>(count), 0.0, 0.0};
      row.scalar_ms = best_of(static_cast<int>(reps), [&] {
        Rat acc;
        for (std::size_t i = 0; i < count; ++i) acc += values[i];
        sum_seq = acc;
      });
      row.simd_ms = best_of(static_cast<int>(reps), [&] {
        sum_batch = rat_batch::sum(values.data(), count, avx2);
      });
      bench::require(sum_seq == sum_batch,
                     "batched sum disagrees with sequential +=");
      micro.push_back(row);
    }

    // make: per-lane checked Rat construction vs the batched
    // prescan-validate + gcd-normalize path.
    {
      std::vector<Rat> made_seq(count), made_batch(count);
      MicroRow row{"rat_make", static_cast<std::int64_t>(count), 0.0, 0.0};
      row.scalar_ms = best_of(static_cast<int>(reps), [&] {
        for (std::size_t i = 0; i < count; ++i)
          made_seq[i] = Rat(BigInt(nums[i]), BigInt(dens[i]));
      });
      row.simd_ms = best_of(static_cast<int>(reps), [&] {
        rat_batch::make(nums.data(), dens.data(), count, made_batch.data(),
                        avx2);
      });
      bench::require(made_seq == made_batch,
                     "batched make disagrees with checked construction");
      micro.push_back(row);
    }
  }

  Table micro_table({"kernel", "n", "scalar ms", "simd ms", "speedup"});
  for (const MicroRow& row : micro) {
    const double speedup =
        row.simd_ms > 0.0 ? row.scalar_ms / row.simd_ms : 0.0;
    micro_table.add_row({row.kernel, std::to_string(row.n),
                         Table::fmt(row.scalar_ms, 3),
                         row.simd_ms > 0.0 ? Table::fmt(row.simd_ms, 3) : "-",
                         row.simd_ms > 0.0 ? Table::fmt(speedup, 2) : "-"});
  }
  micro_table.print(std::cout);
  ctx.table("microkernels", micro_table);

  // --- end-to-end: o01's families, exact OPT under both dispatch modes.
  struct E2eRow {
    std::string family;
    std::int64_t n = 0;
    EndToEnd scalar;
    EndToEnd simd;
    bool has_simd = false;
  };
  std::vector<E2eRow> rows;
  struct Family {
    const char* name;
    Instance (*generate)(Rng&, const GenConfig&);
    GenConfig (*config)(std::int64_t n);
    bool checked;  // carries the >= 2x bar (o01's checked family)
  };
  const Family families[] = {
      {"unit-wide", gen_unit,
       [](std::int64_t n) {
         const std::int64_t horizon = std::max<std::int64_t>(4, n / 8);
         return GenConfig{static_cast<std::size_t>(n), horizon, horizon, 1};
       },
       true},
      {"general", gen_general,
       [](std::int64_t n) {
         return GenConfig{static_cast<std::size_t>(n), 2 * n,
                          std::max<std::int64_t>(8, n / 8), 2};
       },
       false},
  };

  Table e2e_table(
      {"family", "n", "opt", "scalar ms", "avx2 ms", "speedup"});
  for (const Family& family : families) {
    for (std::int64_t n : sizes) {
      Rng rng(seed + static_cast<std::uint64_t>(n));
      const Instance instance = family.generate(rng, family.config(n));
      E2eRow row;
      row.family = family.name;
      row.n = n;
      row.scalar = measure_opt(instance, util::simd::Mode::kScalar,
                               static_cast<int>(reps));
      if (avx2) {
        row.simd = measure_opt(instance, util::simd::Mode::kAvx2,
                               static_cast<int>(reps));
        row.has_simd = true;
        bench::require(row.simd.opt == row.scalar.opt,
                       "OPT differs across dispatch modes");
        bench::require(row.simd.lb == row.scalar.lb,
                       "load lower bound differs across dispatch modes");
      }
      rows.push_back(row);
      const double speedup = row.has_simd && row.simd.wall_ms > 0.0
                                 ? row.scalar.wall_ms / row.simd.wall_ms
                                 : 0.0;
      e2e_table.add_row(
          {row.family, std::to_string(row.n), std::to_string(row.scalar.opt),
           Table::fmt(row.scalar.wall_ms, 2),
           row.has_simd ? Table::fmt(row.simd.wall_ms, 2) : "-",
           row.has_simd ? Table::fmt(speedup, 2) : "-"});
    }
  }
  e2e_table.print(std::cout);
  ctx.table("end-to-end OPT", e2e_table);

  // Acceptance: >= 2x at the largest checked end-to-end row with n >= 2000
  // (smaller sizes are dominated by fixed costs and are smoke-only), and
  // >= 2x for the sweep microkernel at the same scale.
  if (avx2) {
    const E2eRow* largest = nullptr;
    for (const E2eRow& row : rows) {
      if (row.family == std::string("unit-wide") && row.has_simd &&
          row.n >= 2000 && (!largest || row.n > largest->n))
        largest = &row;
    }
    if (largest) {
      const double speedup =
          largest->scalar.wall_ms / std::max(1e-9, largest->simd.wall_ms);
      ctx.check("unit-wide: avx2 dispatch wall speedup >= 2 at n=" +
                    std::to_string(largest->n),
                Table::fmt(speedup, 2), ">= 2", speedup >= 2.0);
    }
    const MicroRow* sweep_largest = nullptr;
    for (const MicroRow& row : micro) {
      if (row.kernel == "load_sweep" && row.simd_ms > 0.0 && row.n >= 2000 &&
          (!sweep_largest || row.n > sweep_largest->n))
        sweep_largest = &row;
    }
    if (sweep_largest) {
      const double speedup = sweep_largest->scalar_ms /
                             std::max(1e-9, sweep_largest->simd_ms);
      ctx.check("load_sweep kernel: avx2 speedup >= 2 at n=" +
                    std::to_string(sweep_largest->n),
                Table::fmt(speedup, 2), ">= 2", speedup >= 2.0);
    }
  }

  std::ofstream os(out_path);
  bench::require(static_cast<bool>(os), "cannot open " + out_path);
  obs::JsonWriter json(os);
  json.begin_object();
  bench::write_bench_stamp(json);
  json.key("experiment").value("v01_simd_kernels");
  json.key("seed").value(static_cast<std::int64_t>(seed));
  json.key("avx2_available").value(avx2);
  json.key("microkernels").begin_array();
  for (const MicroRow& row : micro) {
    json.begin_object();
    json.key("kernel").value(row.kernel);
    json.key("n").value(row.n);
    json.key("scalar_ms").value(row.scalar_ms);
    if (row.simd_ms > 0.0) {
      json.key("simd_ms").value(row.simd_ms);
      json.key("speedup").value(row.scalar_ms / row.simd_ms);
    }
    json.end_object();
  }
  json.end_array();
  json.key("end_to_end").begin_array();
  for (const E2eRow& row : rows) {
    json.begin_object();
    json.key("family").value(row.family);
    json.key("n").value(row.n);
    json.key("opt").value(row.scalar.opt);
    json.key("load_lb").value(row.scalar.lb);
    json.key("scalar_wall_ms").value(row.scalar.wall_ms);
    if (row.has_simd) {
      json.key("avx2_wall_ms").value(row.simd.wall_ms);
      json.key("wall_speedup")
          .value(row.scalar.wall_ms / std::max(1e-9, row.simd.wall_ms));
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
