// F1 -- Figure 1: the offline 3-machine migratory schedule of the
// lower-bound instance. The adversary is played (k = 4) against FirstFit,
// the resulting instance is certified feasible on 3 machines by exact max
// flow, a concrete 3-machine schedule is materialized via McNaughton
// wrap-around, and both the offline schedule and the opponent's forced
// k-machine schedule are rendered as ASCII Gantt charts.
#include <iostream>

#include "bench/bench_common.hpp"
#include "minmach/adversary/strong_lb.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/io/gantt.hpp"
#include "minmach/obs/trace.hpp"
#include "minmach/sim/engine.hpp"
#include "minmach/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const int levels = static_cast<int>(cli.get_int("levels", 4));
  // Chrome trace_event export of the offline schedule (one track per
  // machine); load the file in chrome://tracing or Perfetto.
  const std::string chrome = cli.get_string("chrome-trace", "");
  bench::Run ctx(cli, "F1: Figure 1 -- the 3-machine offline schedule of "
                      "the adversarial instance",
                 "the instance forcing any non-migratory online algorithm "
                 "to k machines has a migratory schedule on 3 machines with "
                 "idle margins");
  cli.check_unknown();
  ctx.config("levels", static_cast<std::int64_t>(levels));

  FitPolicy opponent(FitRule::kFirstFit);
  StrongLbResult result = run_strong_lower_bound(opponent, levels);
  std::cout << "instance: " << result.jobs << " jobs, critical time "
            << result.critical_time.to_string() << "\n";

  std::int64_t opt = optimal_migratory_machines(result.instance);
  ctx.check("migratory optimum <= 3", std::to_string(opt), "3", opt <= 3);
  std::cout << "certified migratory optimum: " << opt << " machines\n\n";

  Schedule offline = optimal_migratory_schedule(result.instance, 3);
  auto audit = validate(result.instance, offline);
  bench::require(audit.ok, "offline schedule failed validation");
  if (!chrome.empty()) {
    obs::save_chrome_trace(chrome, result.instance, offline,
                           "F1 offline 3-machine schedule");
    std::cout << "chrome trace written to " << chrome << "\n";
  }

  GanttOptions options;
  options.width = 110;
  options.show_legend = false;
  std::cout << "offline migratory schedule on 3 machines (Figure 1):\n"
            << render_gantt(result.instance, offline, options) << "\n";

  FitPolicy replay(FitRule::kFirstFit);
  SimRun online = simulate(replay, result.instance);
  std::cout << "the same instance forces non-migratory FirstFit onto "
            << online.machines_used << " machines:\n"
            << render_gantt(result.instance, online.schedule, options);
  std::cout << "\nmigrations offline: " << offline.migration_count()
            << "; online (non-migratory by construction): "
            << online.schedule.migration_count() << "\n";
  ctx.check("online schedule non-migratory",
            std::to_string(online.schedule.migration_count()), "0",
            online.schedule.migration_count() == 0);
  return 0;
}
