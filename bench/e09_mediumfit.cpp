// E9 -- Lemma 8: MediumFit (run every alpha-tight job exactly in the middle
// of its window) opens at most 16m/alpha machines on agreeable instances.
// Also reproduces the paper's remark that the two naive anchors -- latest
// ([r+l, d)) and earliest ([r, d-l)) -- are NOT O(m): on an end-aligned
// staircase the latest anchor stacks every job while MediumFit spreads
// them.
#include <algorithm>
#include <iostream>

#include "bench/bench_common.hpp"
#include "minmach/algos/mediumfit.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

namespace {

// Staircase: job i has window [i, n+1) and p = 1. One machine suffices
// (chain them), but anchor-at-latest runs every job in [n, n+1).
minmach::Instance staircase(std::int64_t n) {
  minmach::Instance out;
  for (std::int64_t i = 0; i < n; ++i)
    out.add_job({minmach::Rat(i), minmach::Rat(n + 1), minmach::Rat(1)});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));
  const std::int64_t trials = cli.get_int("trials", 5);
  bench::Run ctx(cli, "E9: MediumFit on agreeable alpha-tight instances "
                      "(Lemma 8)",
                 "peak machine use <= 16 m / alpha; the latest/earliest "
                 "anchors are not O(m)");
  cli.check_unknown();
  ctx.config("seed", static_cast<std::int64_t>(seed));
  ctx.config("trials", trials);

  Table table({"alpha", "m avg", "MediumFit machines avg", "16m/alpha avg",
               "usage/bound avg"});
  for (const Rat& alpha : {Rat(1, 4), Rat(1, 2), Rat(5, 8), Rat(3, 4)}) {
    Rng rng(seed);
    GenConfig config;
    config.n = 70;
    double sum_m = 0;
    double sum_used = 0;
    double sum_bound = 0;
    for (std::int64_t trial = 0; trial < trials; ++trial) {
      Instance in = gen_agreeable_tight(rng, config, alpha);
      std::int64_t m = std::max<std::int64_t>(
          1, optimal_migratory_machines(in));
      MediumFitPolicy policy;
      SimRun run = simulate(policy, in);
      ValidateOptions options;
      options.require_non_preemptive = true;
      options.require_non_migratory = true;
      auto audit = validate(in, run.schedule, options);
      bench::require(audit.ok, "MediumFit schedule invalid");
      double bound = 16.0 * static_cast<double>(m) / alpha.to_double();
      bench::require(static_cast<double>(run.machines_used) <= bound,
                     "Lemma 8 bound violated");
      sum_m += static_cast<double>(m);
      sum_used += static_cast<double>(run.machines_used);
      sum_bound += bound;
    }
    double t = static_cast<double>(trials);
    table.add_row({alpha.to_string(), Table::fmt(sum_m / t, 2),
                   Table::fmt(sum_used / t, 2), Table::fmt(sum_bound / t, 1),
                   Table::fmt(sum_used / sum_bound, 3)});
  }
  table.print(std::cout);
  ctx.table("MediumFit peak use vs 16m/alpha", table);

  // Anchor comparison on the staircase family.
  std::cout << "\nanchor comparison (staircase, OPT = 1):\n";
  Table anchors({"n", "MediumFit", "LatestFit", "EarliestFit"});
  for (std::int64_t n : {8, 16, 32, 64}) {
    Instance in = staircase(n);
    bench::require(optimal_migratory_machines(in) == 1, "staircase OPT != 1");
    std::size_t used[3];
    MediumFitAnchor variants[] = {MediumFitAnchor::kCenter,
                                  MediumFitAnchor::kLatest,
                                  MediumFitAnchor::kEarliest};
    for (int v = 0; v < 3; ++v) {
      MediumFitPolicy policy(variants[v]);
      SimRun run = simulate(policy, in);
      used[v] = run.machines_used;
    }
    anchors.add_row({std::to_string(n), std::to_string(used[0]),
                     std::to_string(used[1]), std::to_string(used[2])});
    bench::require(used[1] == static_cast<std::size_t>(n),
                   "latest anchor should stack all staircase jobs");
  }
  anchors.print(std::cout);
  ctx.table("anchor comparison on the staircase (OPT = 1)", anchors);
  std::cout << "\nShape check: LatestFit grows linearly in n at OPT = 1 "
               "(unbounded), the centered\nanchor stays near-constant -- "
               "the paper's justification for running jobs in the middle.\n";
  return 0;
}
