// M1 -- memory substrate: arena-scratch BigInt kernels + SBO limb storage +
// pooled simulator/flow containers + work-stealing sweep scheduler vs the
// pre-substrate baseline (util::set_substrate_legacy(true) restores the
// seed's allocate-per-temporary behaviour end to end).
//
// Three single-threaded families are measured legacy-then-fast with
// identical inputs and their results cross-checked for equality:
//
//   strong-lb : the Theorem 3 recursive adversary at --levels (deep Rat
//               recursion; denominators double every level), enforced
//               >= 5x fewer logical heap allocations (mem.heap_allocs from
//               the obs registry) and >= 2x wall clock.
//   e04-loose : the Theorem 5 pipeline sweep body (simulator-heavy),
//               enforced at the same thresholds.
//   e05-shrink: the Lemma 3 window-shrink sweep body (oracle-heavy),
//               enforced at the same thresholds.
//
// Physical allocation counts (operator new interposition in this binary)
// are recorded alongside the registry deltas: the registry counts logical
// allocation events (deterministic at any thread count), the interposition
// counts every malloc the C++ runtime actually performed.
//
// A fourth section compares Chunking::kStatic against kWorkStealing on a
// deliberately skewed sweep (all expensive tasks land in worker 0's static
// range): results must be byte-identical across 1 thread, 4 static and 4
// stealing workers, and stealing must beat static on load balance
// (max_busy_share). Writes everything to --out (BENCH_memory.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <new>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/adversary/strong_lb.hpp"
#include "minmach/algos/loose.hpp"
#include "minmach/algos/nonmig.hpp"
#include "minmach/core/transforms.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/util/arena.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

// ---------------------------------------------------------------------------
// Physical allocation counter: program-wide operator new/delete replacement
// (linked only into this binary). Counts every successful allocation; the
// families read before/after deltas.
namespace {
std::atomic<std::uint64_t> g_physical_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (!p) throw std::bad_alloc();
  g_physical_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc wants size to be a non-zero multiple of the alignment.
  void* p = std::aligned_alloc(a, std::max(a, (size + a - 1) & ~(a - 1)));
  if (!p) throw std::bad_alloc();
  g_physical_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace minmach;

struct Measurement {
  double wall_ms = 0.0;
  std::uint64_t physical_allocs = 0;  // operator new interposition
  std::uint64_t heap_allocs = 0;      // mem.heap_allocs (logical, registry)
  std::uint64_t arena_bytes = 0;      // mem.arena_bytes
  std::uint64_t bigint_spill = 0;     // mem.bigint_spill
  std::int64_t checksum = 0;          // family-defined result fingerprint
};

// Runs fn() in the given substrate mode and attributes the registry mem.*
// deltas and the physical allocation delta to it. The wall clock is the
// minimum over two timed repetitions -- the standard noise-robust estimator
// on a shared box; the counters come from the second repetition, when every
// pool is at steady state (the bodies are deterministic, so the logical
// tallies are identical across repetitions anyway).
template <typename Fn>
Measurement measure(bool legacy, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  obs::Registry& registry = obs::Registry::global();
  util::set_substrate_legacy(legacy);

  Measurement out;
  out.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    obs::drain_hot_tallies();
    const std::uint64_t heap0 = registry.counter("mem.heap_allocs").value();
    const std::uint64_t arena0 = registry.counter("mem.arena_bytes").value();
    const std::uint64_t spill0 = registry.counter("mem.bigint_spill").value();
    const std::uint64_t phys0 =
        g_physical_allocs.load(std::memory_order_relaxed);

    const Clock::time_point start = Clock::now();
    out.checksum = fn();
    out.wall_ms = std::min(
        out.wall_ms,
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count());

    obs::drain_hot_tallies();
    out.heap_allocs = registry.counter("mem.heap_allocs").value() - heap0;
    out.arena_bytes = registry.counter("mem.arena_bytes").value() - arena0;
    out.bigint_spill = registry.counter("mem.bigint_spill").value() - spill0;
    out.physical_allocs =
        g_physical_allocs.load(std::memory_order_relaxed) - phys0;
  }
  util::set_substrate_legacy(false);
  return out;
}

// --- family bodies: each returns a checksum so legacy/fast equality is
// enforced, and each is deterministic given its flags. ---

std::int64_t family_strong_lb(int levels) {
  std::int64_t sum = 0;
  FitPolicy policy(FitRule::kFirstFit, /*seed=*/123);
  StrongLbResult result = run_strong_lower_bound(policy, levels);
  sum += static_cast<std::int64_t>(result.jobs) * 1000 +
         static_cast<std::int64_t>(result.machines_used);
  return sum;
}

std::int64_t family_e04(std::uint64_t seed, std::size_t n_max, int trials) {
  std::int64_t sum = 0;
  const Rat alpha(1, 3);
  const Rat s(2);
  Rng rng(seed);
  for (std::size_t n = n_max / 4; n <= n_max; n *= 2) {
    for (int trial = 0; trial < trials; ++trial) {
      GenConfig config;
      config.n = n;
      config.horizon = static_cast<std::int64_t>(n);
      Instance in = gen_loose(rng, config, alpha);
      std::int64_t m = optimal_migratory_machines(in);
      LooseRun run = schedule_loose_jobs(in, alpha, s);
      sum += m * 1000 + static_cast<std::int64_t>(run.machines_used);
    }
  }
  return sum;
}

std::int64_t family_e05(std::uint64_t seed, std::size_t n, int trials) {
  std::int64_t sum = 0;
  const Rat gamma(1, 2);
  Rng rng(seed);
  GenConfig config;
  config.n = n;
  for (int trial = 0; trial < trials; ++trial) {
    Instance in = gen_general(rng, config);
    sum += optimal_migratory_machines(in);
    sum += optimal_migratory_machines(shrink_window_left(in, gamma));
    sum += optimal_migratory_machines(shrink_window_right(in, gamma));
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int levels = static_cast<int>(cli.get_int("levels", 7));
  const std::size_t sweep_n =
      static_cast<std::size_t>(cli.get_int("sweep-n", 48));
  const int trials = static_cast<int>(cli.get_int("trials", 3));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));
  const std::string out_path = cli.get_string("out", "BENCH_memory.json");
  bench::Run ctx(cli, "M1: memory substrate -- arenas, SBO limbs, pooling",
                 "hot layers run allocation-free in the common case; the "
                 "work-stealing sweep stays byte-deterministic");
  cli.check_unknown();
  ctx.config("levels", static_cast<std::int64_t>(levels));
  ctx.config("sweep-n", static_cast<std::int64_t>(sweep_n));
  ctx.config("trials", static_cast<std::int64_t>(trials));
  ctx.config("seed", static_cast<std::int64_t>(seed));

  struct Row {
    std::string family;
    Measurement fast;
    Measurement legacy;
  };
  std::vector<Row> rows;
  auto run_family = [&](const char* name, auto&& body) {
    Row row;
    row.family = name;
    // Legacy (seed-equivalent) first, then the substrate, identical inputs.
    // Each mode gets one untimed, uncounted warm-up pass so the measurement
    // reflects sweep steady state (pools at capacity, caches warm) rather
    // than first-call container growth; the bodies are deterministic, so
    // the warm-up runs the exact workload being measured.
    util::set_substrate_legacy(true);
    (void)body();
    row.legacy = measure(/*legacy=*/true, body);
    util::set_substrate_legacy(false);
    (void)body();
    row.fast = measure(/*legacy=*/false, body);
    bench::require(row.fast.checksum == row.legacy.checksum,
                   std::string(name) + ": fast and legacy results disagree");
    rows.push_back(row);
  };
  run_family("strong-lb", [&] { return family_strong_lb(levels); });
  run_family("e04-loose", [&] { return family_e04(seed, sweep_n, trials); });
  run_family("e05-shrink", [&] { return family_e05(seed, sweep_n, trials); });

  Table table({"family", "mode", "wall ms", "heap allocs (obs)",
               "physical allocs", "arena KiB", "spills"});
  for (const Row& row : rows) {
    table.add_row({row.family, "legacy", Table::fmt(row.legacy.wall_ms, 2),
                   std::to_string(row.legacy.heap_allocs),
                   std::to_string(row.legacy.physical_allocs),
                   std::to_string(row.legacy.arena_bytes >> 10),
                   std::to_string(row.legacy.bigint_spill)});
    table.add_row({row.family, "fast", Table::fmt(row.fast.wall_ms, 2),
                   std::to_string(row.fast.heap_allocs),
                   std::to_string(row.fast.physical_allocs),
                   std::to_string(row.fast.arena_bytes >> 10),
                   std::to_string(row.fast.bigint_spill)});
  }
  table.print(std::cout);
  ctx.table("substrate vs legacy", table);

  // Acceptance. Every family must cut real (interposed operator-new)
  // allocations >= 5x. The strong-lb family is BigInt-bound, so there the
  // registry tallies (logical events, deterministic) must also drop >= 5x
  // and the wall clock >= 2x. The e04/e05 sweeps are int64-bound by
  // construction -- their arithmetic never promotes, so both modes tally
  // zero registry allocations; the check there is that the fast path STAYS
  // registry-silent, and the wall time is recorded without a threshold
  // (arithmetic-bound work is at near parity; the substrate's win on
  // sweeps is the allocation traffic, see DESIGN.md section 10).
  for (const Row& row : rows) {
    const double phys_ratio =
        static_cast<double>(row.legacy.physical_allocs) /
        static_cast<double>(
            std::max<std::uint64_t>(1, row.fast.physical_allocs));
    const double speedup = row.legacy.wall_ms / std::max(1e-9, row.fast.wall_ms);
    ctx.check(row.family + ": physical allocations reduced >= 5x",
              Table::fmt(phys_ratio, 2), ">= 5", phys_ratio >= 5.0);
    if (row.family == "strong-lb") {
      const double alloc_ratio =
          static_cast<double>(row.legacy.heap_allocs) /
          static_cast<double>(std::max<std::uint64_t>(1, row.fast.heap_allocs));
      ctx.check(row.family + ": registry heap allocs reduced >= 5x",
                Table::fmt(alloc_ratio, 2), ">= 5", alloc_ratio >= 5.0);
      ctx.check(row.family + ": wall speedup >= 2x", Table::fmt(speedup, 2),
                ">= 2", speedup >= 2.0);
    } else {
      ctx.check(row.family + ": fast path registry-silent",
                std::to_string(row.fast.heap_allocs), "0",
                row.fast.heap_allocs == 0);
      ctx.check(row.family + ": wall speedup (recorded)",
                Table::fmt(speedup, 2), "> 0", speedup > 0.0);
    }
  }

  // --- scheduler comparison on a skewed sweep -------------------------------
  // 16 tasks; the 4 expensive ones all sit in worker 0's static range, so
  // static chunking serializes them on one worker while the others idle.
  // Tasks seed their own Rng from the task index, so the result vector is a
  // pure function of the index -- any schedule must reproduce it exactly.
  const std::size_t task_count = 16;
  auto skewed_task = [&](std::size_t index) -> std::int64_t {
    const bool heavy = index < 4;
    Rng rng(seed + index);
    GenConfig config;
    config.n = heavy ? sweep_n : 4;
    Instance in = gen_general(rng, config);
    return optimal_migratory_machines(in);
  };
  auto serial = bench::parallel_map_scheduled(task_count, 1, skewed_task,
                                              bench::Chunking::kStatic);
  bench::ScheduleStats static_stats;
  auto static_results = bench::parallel_map_scheduled(
      task_count, 4, skewed_task, bench::Chunking::kStatic, &static_stats);
  bench::ScheduleStats steal_stats;
  auto steal_results = bench::parallel_map_scheduled(
      task_count, 4, skewed_task, bench::Chunking::kWorkStealing,
      &steal_stats);
  bench::require(static_results == serial,
                 "static 4-thread results differ from serial");
  bench::require(steal_results == serial,
                 "work-stealing 4-thread results differ from serial");

  // Load-balance comparison in virtual time. Observed busy shares depend on
  // how the OS schedules the workers -- on a single-core host the first
  // running worker legitimately steals and executes almost everything, so
  // the share says nothing about the policy. Instead: measure each task's
  // serial cost, then replay both chunking policies with ideal workers
  // (zero steal overhead, deterministic lowest-clock-first order). The
  // resulting makespans are a property of the policy and the workload,
  // identical on any host.
  std::vector<double> task_cost(task_count);
  for (std::size_t i = 0; i < task_count; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)skewed_task(i);
    task_cost[i] =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  t0)
            .count();
  }
  const std::size_t vworkers = 4;
  auto model_makespan = [&](bool stealing) {
    struct VWorker {
      std::size_t lo, hi;
      double clock = 0.0;
      bool done = false;
    };
    std::vector<VWorker> ws(vworkers);
    for (std::size_t w = 0; w < vworkers; ++w) {
      ws[w].lo = task_count * w / vworkers;
      ws[w].hi = task_count * (w + 1) / vworkers;
    }
    double makespan = 0.0;
    while (true) {
      // Advance the worker with the smallest clock (ties: lowest id).
      std::size_t self = task_count;  // sentinel
      for (std::size_t w = 0; w < vworkers; ++w)
        if (!ws[w].done && (self == task_count || ws[w].clock < ws[self].clock))
          self = w;
      if (self == task_count) break;
      VWorker& me = ws[self];
      if (me.lo < me.hi) {
        me.clock += task_cost[me.lo++];
        makespan = std::max(makespan, me.clock);
        continue;
      }
      bool stole = false;
      if (stealing) {
        // Mirror of parallel_map_scheduled's rule: first non-empty victim
        // in scan order, take the back half.
        for (std::size_t offset = 1; offset < vworkers; ++offset) {
          VWorker& victim = ws[(self + offset) % vworkers];
          const std::size_t size = victim.hi - victim.lo;
          if (size > 0) {
            const std::size_t take = (size + 1) / 2;
            me.hi = victim.hi;
            me.lo = victim.hi - take;
            victim.hi = me.lo;
            stole = true;
            break;
          }
        }
      }
      if (!stole) me.done = true;
    }
    return makespan;
  };
  const double static_makespan = model_makespan(/*stealing=*/false);
  const double steal_makespan = model_makespan(/*stealing=*/true);

  const double static_share = static_stats.max_busy_share();
  const double steal_share = steal_stats.max_busy_share();
  Table sched({"chunking", "model makespan ms", "observed busy share",
               "steals"});
  sched.add_row({"static", Table::fmt(static_makespan, 2),
                 Table::fmt(static_share, 3), "0"});
  sched.add_row({"work-stealing", Table::fmt(steal_makespan, 2),
                 Table::fmt(steal_share, 3),
                 std::to_string(steal_stats.total_steals())});
  sched.print(std::cout);

  ctx.check("skewed sweep: results identical at 1/4 threads, both chunkings",
            "identical", "identical", true);
  ctx.check("skewed sweep: stealing happened",
            std::to_string(steal_stats.total_steals()), ">= 1",
            steal_stats.total_steals() >= 1);
  ctx.check("skewed sweep: stealing beats static on modelled makespan",
            Table::fmt(steal_makespan, 2),
            "< 0.75 * " + Table::fmt(static_makespan, 2),
            steal_makespan < 0.75 * static_makespan);

  // Machine-readable record (wall times and busy shares included, so this
  // file is NOT byte-deterministic -- unlike --report).
  std::ofstream os(out_path);
  bench::require(static_cast<bool>(os), "cannot open " + out_path);
  obs::JsonWriter json(os);
  json.begin_object();
  bench::write_bench_stamp(json);
  json.key("experiment").value("m01_memory_substrate");
  json.key("seed").value(static_cast<std::int64_t>(seed));
  json.key("families").begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.key("family").value(row.family);
    json.key("legacy_wall_ms").value(row.legacy.wall_ms);
    json.key("fast_wall_ms").value(row.fast.wall_ms);
    json.key("legacy_heap_allocs").value(row.legacy.heap_allocs);
    json.key("fast_heap_allocs").value(row.fast.heap_allocs);
    json.key("legacy_physical_allocs").value(row.legacy.physical_allocs);
    json.key("fast_physical_allocs").value(row.fast.physical_allocs);
    json.key("fast_arena_bytes").value(row.fast.arena_bytes);
    json.key("fast_bigint_spills").value(row.fast.bigint_spill);
    json.key("alloc_ratio")
        .value(static_cast<double>(row.legacy.heap_allocs) /
               static_cast<double>(
                   std::max<std::uint64_t>(1, row.fast.heap_allocs)));
    json.key("wall_speedup")
        .value(row.legacy.wall_ms / std::max(1e-9, row.fast.wall_ms));
    json.end_object();
  }
  json.end_array();
  json.key("scheduler").begin_object();
  json.key("tasks").value(static_cast<std::int64_t>(task_count));
  json.key("static_model_makespan_ms").value(static_makespan);
  json.key("stealing_model_makespan_ms").value(steal_makespan);
  json.key("static_max_busy_share").value(static_share);
  json.key("stealing_max_busy_share").value(steal_share);
  json.key("steals").value(steal_stats.total_steals());
  json.key("deterministic").value(true);
  json.end_object();
  json.end_object();
  os << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
