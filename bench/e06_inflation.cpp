// E6 -- Lemma 4: for alpha-loose instances with alpha < 1/s, inflating
// every processing time by s keeps the optimum within a constant factor:
// m(J^s) = O(m(J)). The table sweeps (alpha, s) and reports the measured
// inflation ratio plus the Lemma 4 decomposition's per-piece optima.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/core/transforms.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::int64_t trials = cli.get_int("trials", 5);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 6));
  const std::int64_t threads_request = bench::threads_flag(cli);
  bench::Run ctx(cli, "E6: processing-time inflation (Lemma 4)",
                 "m(J^s) = O(m(J)) for alpha-loose instances, alpha < 1/s");
  cli.check_unknown();
  ctx.config("trials", trials);
  ctx.config("seed", static_cast<std::int64_t>(seed));

  struct Setting {
    Rat alpha;
    Rat s;
  };
  const Setting settings[] = {
      {Rat(1, 4), Rat(2)},   {Rat(1, 3), Rat(2)},   {Rat(1, 4), Rat(3)},
      {Rat(1, 5), Rat(7, 2)}, {Rat(2, 5), Rat(9, 4)},
  };
  const std::size_t setting_count = std::size(settings);

  // One task per (alpha, s) setting; each seeds its own Rng so rows are
  // identical at any thread count.
  struct SettingResult {
    std::vector<std::string> row;
    double max_ratio = 0;
  };
  auto results = bench::parallel_map(
      setting_count, bench::resolve_threads(threads_request, setting_count),
      [&](std::size_t index) {
        const Setting& setting = settings[index];
        Rng rng(seed);
        GenConfig config;
        config.n = 50;
        double sum_m = 0;
        double sum_ms = 0;
        std::int64_t max_piece = 0;
        SettingResult out;
        for (std::int64_t trial = 0; trial < trials; ++trial) {
          Instance in = gen_loose(rng, config, setting.alpha);
          std::int64_t m = std::max<std::int64_t>(
              1, optimal_migratory_machines(in));
          std::int64_t ms = optimal_migratory_machines(
              inflate(in, setting.s));
          // Lemma 4's constructive route: each split piece J_i is itself
          // schedulable on O(m) machines.
          for (const Instance& piece : lemma4_split(in, setting.s,
                                                    setting.alpha)) {
            max_piece = std::max(max_piece, optimal_migratory_machines(piece));
          }
          sum_m += static_cast<double>(m);
          sum_ms += static_cast<double>(ms);
          out.max_ratio = std::max(
              out.max_ratio, static_cast<double>(ms) / static_cast<double>(m));
        }
        double t = static_cast<double>(trials);
        out.row = {setting.alpha.to_string(), setting.s.to_string(),
                   Table::fmt(sum_m / t, 2), Table::fmt(sum_ms / t, 2),
                   Table::fmt(sum_ms / sum_m, 3),
                   std::to_string(max_piece), Table::fmt(out.max_ratio, 3)};
        return out;
      });

  Table table({"alpha", "s", "m(J) avg", "m(J^s) avg", "ratio avg",
               "max piece m", "ratio max"});
  double worst_ratio = 0;
  for (const SettingResult& result : results) {
    table.add_row(result.row);
    worst_ratio = std::max(worst_ratio, result.max_ratio);
  }
  table.print(std::cout);
  ctx.table("inflation ratio per (alpha, s)", table);
  ctx.check("inflation ratio O(1)", Table::fmt(worst_ratio, 3), "12.000",
            worst_ratio <= 12.0);
  std::cout << "\nShape check: m(J^s)/m(J) stays a small constant (roughly "
               "s-ish) at every setting,\nexactly the Lemma 4 behaviour the "
               "Theorem 6 reduction relies on.\n";
  return 0;
}
