// E1 -- Theorem 3 / Lemma 2: the power of migration is unbounded.
//
// The recursive adversary forces every non-migratory online policy to open
// k machines with O(2^k) jobs, while the released instance stays feasible
// on THREE migratory machines (certified by exact max flow). The table
// reports, per opponent and level k: jobs n, machines forced, log2(n), and
// machines/log2(n) -- the paper's Omega(log n) shape means the last column
// is bounded below by a constant.
#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "minmach/adversary/strong_lb.hpp"
#include "minmach/algos/mediumfit.hpp"
#include "minmach/algos/nonpreemptive.hpp"
#include "minmach/algos/scale_class.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const int max_levels = static_cast<int>(cli.get_int("max-levels", 8));
  // Exact rational max-flow certification is expensive on the deepest
  // instances (their denominators grow with every level); by default the
  // first `certify-levels` levels are certified per opponent, which already
  // covers every structurally distinct construction step.
  const int certify_levels =
      static_cast<int>(cli.get_int("certify-levels", 6));
  bench::Run ctx(
      cli, "E1: strong lower bound for non-migratory online scheduling",
      "any non-migratory online algorithm needs Omega(log n) machines on "
      "instances with migratory OPT = 3 (Theorem 3)");
  cli.check_unknown();
  ctx.config("max-levels", static_cast<std::int64_t>(max_levels));
  ctx.config("certify-levels", static_cast<std::int64_t>(certify_levels));

  Table table({"opponent", "k", "jobs n", "machines", "log2(n)",
               "machines/log2(n)", "migratory OPT", "missed"});
  for (FitRule rule : {FitRule::kFirstFit, FitRule::kBestFit,
                       FitRule::kWorstFit, FitRule::kNextFit,
                       FitRule::kRandomFit}) {
    for (int k = 2; k <= max_levels; ++k) {
      FitPolicy policy(rule, /*seed=*/123);
      StrongLbResult result = run_strong_lower_bound(policy, k);
      bench::require(!result.opponent_missed_deadline,
                     "exact-admission policy missed a deadline");
      bench::require(result.machines_used >= static_cast<std::size_t>(k),
                     "adversary failed to force k machines");
      std::string opt = "(skipped)";
      if (k <= certify_levels) {
        bench::require(feasible_migratory(result.instance, 3),
                       "instance not feasible on 3 machines");
        // The exact optimum is cheap to pin down below 3.
        std::int64_t exact = feasible_migratory(result.instance, 2)
                                 ? (feasible_migratory(result.instance, 1)
                                        ? 1
                                        : 2)
                                 : 3;
        opt = std::to_string(exact);
      }
      double log2n = std::log2(static_cast<double>(result.jobs));
      table.add_row({fit_rule_name(rule), std::to_string(k),
                     std::to_string(result.jobs),
                     std::to_string(result.machines_used),
                     Table::fmt(log2n, 2),
                     Table::fmt(static_cast<double>(result.machines_used) /
                                log2n, 3),
                     opt, result.opponent_missed_deadline ? "YES" : "no"});
    }
  }
  // Non-preemptive opponents (the Saha side of Section 1): same forcing.
  auto np_row = [&](const char* label, auto&& policy, int k) {
    StrongLbResult result = run_strong_lower_bound(policy, k);
    bench::require(result.machines_used >= static_cast<std::size_t>(k),
                   "adversary failed against non-preemptive opponent");
    double log2n = std::log2(static_cast<double>(result.jobs));
    std::string opt = "(skipped)";
    if (k <= certify_levels) {
      bench::require(feasible_migratory(result.instance, 3),
                     "instance not feasible on 3 machines");
      opt = "<=3";
    }
    table.add_row({label, std::to_string(k), std::to_string(result.jobs),
                   std::to_string(result.machines_used), Table::fmt(log2n, 2),
                   Table::fmt(static_cast<double>(result.machines_used) /
                              log2n, 3),
                   opt, result.opponent_missed_deadline ? "YES" : "no"});
  };
  for (int k = 2; k <= std::min(max_levels, 6); ++k) {
    MediumFitPolicy medium;
    np_row("MediumFit(NP)", medium, k);
  }
  for (int k = 2; k <= std::min(max_levels, 6); ++k) {
    NonPreemptiveGreedyPolicy greedy;
    np_row("GreedyNP", greedy, k);
  }
  for (int k = 2; k <= std::min(max_levels, 6); ++k) {
    ScaleClassPolicy scale;
    np_row("ScaleClassNP", scale, k);
  }

  table.print(std::cout);
  ctx.table("forcing per opponent and level", table);
  std::cout << "\nShape check: 'machines' grows linearly in k while the\n"
               "certified migratory optimum stays <= 3 -- no function of m\n"
               "bounds the non-migratory online cost (Theorem 3), and the\n"
               "machines/log2(n) column stays bounded away from 0\n"
               "(the Omega(log n) rate).\n";
  return 0;
}
