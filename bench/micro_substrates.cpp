// Substrate micro-benchmarks (google-benchmark): exact arithmetic, the
// max-flow feasibility oracle, the single-machine admission test, and the
// end-to-end online simulator. These are the primitives every experiment
// above is built on; tracking their throughput keeps the experiment
// runtimes predictable.
#include <benchmark/benchmark.h>

#include "minmach/algos/nonmig.hpp"
#include "minmach/algos/single_machine.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/sim/engine.hpp"
#include "minmach/util/bigint.hpp"
#include "minmach/util/rng.hpp"

namespace {

using namespace minmach;

// Small-tier fast paths: operands fit int64, so these stay entirely on the
// inline representation (no allocation). The ISSUE acceptance bar is >= 5x
// over the seed's always-limb implementation.
void BM_BigIntSmallAdd(benchmark::State& state) {
  Rng rng(11);
  std::vector<BigInt> values;
  for (int i = 0; i < 64; ++i)
    values.emplace_back(rng.uniform_int(-1000000, 1000000));
  for (auto _ : state) {
    BigInt sum(0);
    for (const auto& v : values) sum += v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BigIntSmallAdd);

void BM_BigIntSmallMultiply(benchmark::State& state) {
  BigInt a(123456789);
  BigInt b(987654321);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntSmallMultiply);

void BM_RatSmallAdd(benchmark::State& state) {
  Rng rng(12);
  std::vector<Rat> values;
  for (int i = 0; i < 64; ++i)
    values.emplace_back(rng.uniform_int(-1000, 1000),
                        rng.uniform_int(1, 997));
  for (auto _ : state) {
    Rat sum(0);
    for (const auto& v : values) sum += v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_RatSmallAdd);

void BM_RatSmallMultiply(benchmark::State& state) {
  Rng rng(13);
  std::vector<Rat> values;
  for (int i = 0; i < 64; ++i)
    values.emplace_back(rng.uniform_int(1, 1000), rng.uniform_int(1, 997));
  for (auto _ : state) {
    Rat product(1);
    for (const auto& v : values) {
      product *= v;
      if (product > Rat(1000000)) product = Rat(1, 1000000);
    }
    benchmark::DoNotOptimize(product);
  }
}
BENCHMARK(BM_RatSmallMultiply);

void BM_BigIntMultiply(benchmark::State& state) {
  Rng rng(1);
  BigInt a(1);
  BigInt b(1);
  const auto limbs = static_cast<int>(state.range(0));
  for (int i = 0; i < limbs; ++i) {
    a = a * BigInt(0x100000000ll) + BigInt(rng.uniform_int(1, 0xffffffffll));
    b = b * BigInt(0x100000000ll) + BigInt(rng.uniform_int(1, 0xffffffffll));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMultiply)->Arg(4)->Arg(16)->Arg(64);

void BM_BigIntDivMod(benchmark::State& state) {
  Rng rng(2);
  BigInt a(1);
  BigInt b(1);
  const auto limbs = static_cast<int>(state.range(0));
  for (int i = 0; i < 2 * limbs; ++i)
    a = a * BigInt(0x100000000ll) + BigInt(rng.uniform_int(1, 0xffffffffll));
  for (int i = 0; i < limbs; ++i)
    b = b * BigInt(0x100000000ll) + BigInt(rng.uniform_int(1, 0xffffffffll));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::div_mod(a, b));
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(4)->Arg(16)->Arg(64);

void BM_RatArithmetic(benchmark::State& state) {
  Rng rng(3);
  std::vector<Rat> values;
  for (int i = 0; i < 64; ++i)
    values.emplace_back(rng.uniform_int(-1000, 1000),
                        rng.uniform_int(1, 997));
  for (auto _ : state) {
    Rat sum(0);
    for (const auto& v : values) sum += v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_RatArithmetic);

void BM_FlowOptimalMachines(benchmark::State& state) {
  Rng rng(4);
  GenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  Instance in = gen_general(rng, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_migratory_machines(in));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowOptimalMachines)->Arg(20)->Arg(40)->Arg(80)->Complexity();

// The pre-oracle strategy: every probe of the binary search rebuilds the
// Horn network from scratch via the one-shot feasible_migratory entry
// point. Kept as the baseline the incremental FeasibilityOracle (used by
// BM_FlowOptimalMachines above) is measured against; the acceptance bar is
// >= 2x on the full OPT search.
void BM_FlowOptimalMachinesRebuild(benchmark::State& state) {
  Rng rng(4);
  GenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  Instance in = gen_general(rng, config);
  const auto n = static_cast<std::int64_t>(in.jobs().size());
  for (auto _ : state) {
    std::int64_t lo = 1;
    std::int64_t hi = n;
    while (lo < hi) {
      std::int64_t mid = lo + (hi - lo) / 2;
      if (feasible_migratory(in, mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    benchmark::DoNotOptimize(lo);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowOptimalMachinesRebuild)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Complexity();

// The pre-compression oracle (dense per-segment edges, cold probes,
// density-only lower bound), on the same instances as
// BM_FlowOptimalMachines: the wall-clock denominator for the segment-tree
// + warm-start + sweep-bound stack (bench/o01_oracle_scaling.cpp measures
// the same ratio at scale).
void BM_FlowOptimalMachinesDense(benchmark::State& state) {
  Rng rng(4);
  GenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  Instance in = gen_general(rng, config);
  for (auto _ : state) {
    FeasibilityOracle oracle(in, OracleOptions::legacy());
    benchmark::DoNotOptimize(oracle.optimal_machines());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowOptimalMachinesDense)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Complexity();

void BM_SingleMachineAdmission(benchmark::State& state) {
  Rng rng(5);
  GenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  Instance in = gen_general(rng, config);
  std::vector<MachineCommitment> commitments;
  for (const Job& j : in.jobs())
    commitments.push_back({j.release, j.deadline, j.processing});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        edf_feasible_single_machine(commitments, Rat(0)));
  }
}
BENCHMARK(BM_SingleMachineAdmission)->Arg(16)->Arg(64);

// ---- observability substrates ------------------------------------------
//
// The overhead contract of the obs layer (ISSUE acceptance: <= 2% on
// BM_RatSmallAdd when compiled out) is measured by building the obs-off
// preset (MINMACH_OBS=OFF) and comparing BM_RatSmallAdd across the two
// trees; scripts append the comparison as "obs_overhead" to
// BENCH_substrates.json. The benches below isolate the primitives.

// The hot-path tally itself: one thread-local uint64 increment when
// MINMACH_OBS=ON, nothing at all when OFF (the loop then measures pure
// loop overhead -- the two builds quantify the macro's cost exactly).
void BM_ObsTallyIncrement(benchmark::State& state) {
  for (auto _ : state) {
    MINMACH_OBS_TALLY(rat_fast_ops);
    benchmark::DoNotOptimize(&obs::hot_tallies());
  }
  obs::hot_tallies() = {};
}
BENCHMARK(BM_ObsTallyIncrement);

// Event-granularity metrics: a relaxed atomic add through a cached
// reference (how the oracle/simulator instrumentation uses the registry).
void BM_ObsRegistryCounterAdd(benchmark::State& state) {
  obs::Counter& counter =
      obs::Registry::global().counter("bench.obs.counter");
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(counter.value());
  }
  counter.reset();
}
BENCHMARK(BM_ObsRegistryCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Histogram& hist =
      obs::Registry::global().histogram("bench.obs.hist");
  std::int64_t sample = 0;
  for (auto _ : state) {
    hist.observe(sample++ & 0xfff);
  }
  hist.reset();
}
BENCHMARK(BM_ObsHistogramObserve);

// Snapshot cost with a realistically sized registry (drivers snapshot once
// per run, so this only needs to be cheap, not free).
void BM_ObsSnapshot(benchmark::State& state) {
  obs::Registry& registry = obs::Registry::global();
  for (int i = 0; i < 32; ++i) {
    registry.counter("bench.snap.c" + std::to_string(i)).add(i);
    registry.histogram("bench.snap.h" + std::to_string(i)).observe(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.snapshot());
  }
  registry.reset();
}
BENCHMARK(BM_ObsSnapshot);

void BM_SimulatorFirstFit(benchmark::State& state) {
  Rng rng(6);
  GenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  Instance in = gen_general(rng, config);
  for (auto _ : state) {
    FitPolicy policy(FitRule::kFirstFit);
    SimRun run = simulate(policy, in);
    benchmark::DoNotOptimize(run.machines_used);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimulatorFirstFit)->Arg(25)->Arg(50)->Arg(100)->Complexity();

}  // namespace

// Expanded BENCHMARK_MAIN() with the bench-json-v1 stamp: google-benchmark
// puts custom context into the JSON artifact's "context" object, which
// perfdiff reads as context.schema / context.git_rev (same gate as the
// top-level stamp on the driver artifacts).
int main(int argc, char** argv) {
  char arg0_default[] = "benchmark";
  char* args_default = arg0_default;
  if (!argv) {
    argc = 1;
    argv = &args_default;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("schema", "bench-json-v1");
#ifdef MINMACH_GIT_REV
  benchmark::AddCustomContext("git_rev", MINMACH_GIT_REV);
#else
  benchmark::AddCustomContext("git_rev", "unknown");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
