// Substrate micro-benchmarks (google-benchmark): exact arithmetic, the
// max-flow feasibility oracle, the single-machine admission test, and the
// end-to-end online simulator. These are the primitives every experiment
// above is built on; tracking their throughput keeps the experiment
// runtimes predictable.
#include <benchmark/benchmark.h>

#include "minmach/algos/nonmig.hpp"
#include "minmach/algos/single_machine.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/sim/engine.hpp"
#include "minmach/util/bigint.hpp"
#include "minmach/util/rng.hpp"

namespace {

using namespace minmach;

void BM_BigIntMultiply(benchmark::State& state) {
  Rng rng(1);
  BigInt a(1);
  BigInt b(1);
  const auto limbs = static_cast<int>(state.range(0));
  for (int i = 0; i < limbs; ++i) {
    a = a * BigInt(0x100000000ll) + BigInt(rng.uniform_int(1, 0xffffffffll));
    b = b * BigInt(0x100000000ll) + BigInt(rng.uniform_int(1, 0xffffffffll));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMultiply)->Arg(4)->Arg(16)->Arg(64);

void BM_BigIntDivMod(benchmark::State& state) {
  Rng rng(2);
  BigInt a(1);
  BigInt b(1);
  const auto limbs = static_cast<int>(state.range(0));
  for (int i = 0; i < 2 * limbs; ++i)
    a = a * BigInt(0x100000000ll) + BigInt(rng.uniform_int(1, 0xffffffffll));
  for (int i = 0; i < limbs; ++i)
    b = b * BigInt(0x100000000ll) + BigInt(rng.uniform_int(1, 0xffffffffll));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::div_mod(a, b));
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(4)->Arg(16)->Arg(64);

void BM_RatArithmetic(benchmark::State& state) {
  Rng rng(3);
  std::vector<Rat> values;
  for (int i = 0; i < 64; ++i)
    values.emplace_back(rng.uniform_int(-1000, 1000),
                        rng.uniform_int(1, 997));
  for (auto _ : state) {
    Rat sum(0);
    for (const auto& v : values) sum += v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_RatArithmetic);

void BM_FlowOptimalMachines(benchmark::State& state) {
  Rng rng(4);
  GenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  Instance in = gen_general(rng, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_migratory_machines(in));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowOptimalMachines)->Arg(20)->Arg(40)->Arg(80)->Complexity();

void BM_SingleMachineAdmission(benchmark::State& state) {
  Rng rng(5);
  GenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  Instance in = gen_general(rng, config);
  std::vector<MachineCommitment> commitments;
  for (const Job& j : in.jobs())
    commitments.push_back({j.release, j.deadline, j.processing});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        edf_feasible_single_machine(commitments, Rat(0)));
  }
}
BENCHMARK(BM_SingleMachineAdmission)->Arg(16)->Arg(64);

void BM_SimulatorFirstFit(benchmark::State& state) {
  Rng rng(6);
  GenConfig config;
  config.n = static_cast<std::size_t>(state.range(0));
  Instance in = gen_general(rng, config);
  for (auto _ : state) {
    FitPolicy policy(FitRule::kFirstFit);
    SimRun run = simulate(policy, in);
    benchmark::DoNotOptimize(run.machines_used);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimulatorFirstFit)->Arg(25)->Arg(50)->Arg(100)->Complexity();

}  // namespace

BENCHMARK_MAIN();
