// B1 -- bound tier: the certified OPT sandwich (DESIGN.md section 14) in
// front of the exact max-flow oracle, A/B'd via the global bounds gate on
// the workloads the tier was built for.
//
// Three phases, each cross-checked for exact result equality:
//
//   strong-lb family : every recursion level of the Theorem 3 adversary,
//       k = 2..levels, as level-slice sub-instances (the q01 family).
//       Each slice's OPT is queried with the bound tier off and on, cache
//       off in both modes so every probe is a real max-flow. Enforced:
//       >= 70% of executed network probes eliminated with the tier on --
//       the sandwich must pinch (lo == hi) on most slices, answering OPT
//       with zero probes and no network build.
//   shrink sweep     : the Lemma 3 window-shrink body (4 gamma points,
//       base + left-shrunk image per point) over a mixed base set: the
//       complete k-level adversary game per k = 2..levels (rational
//       windows, the paper's own hard instances) plus --trials random
//       general instances of --sweep-n jobs (integer grids), so the sweep
//       crosses both oracle modes end to end. Two back-to-back passes per
//       mode, cache off. Enforced >= 1.5x end-to-end wall with the tier on
//       at full size (recorded, not enforced, at smoke sizes -- wall
//       ratios on tiny inputs measure the scheduler).
//   exactness        : probe-for-probe differential against
//       OracleOptions::legacy() -- for every instance of both families and
//       every m in [1, n], feasible(m) under the tier must equal the
//       legacy verdict, and the OPT values must match. The sandwich is
//       certified on both sides, so any disagreement is a soundness bug,
//       not a tolerance.
//
// The phases drive the tier through set_bounds_tier_enabled themselves
// (the --bounds flag still parses; this driver A/Bs both modes in one
// run). bounds.* tallies are execution-class, so --report bytes stay
// identical whatever the tier does. Writes --out (BENCH_bounds.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/adversary/strong_lb.hpp"
#include "minmach/core/bounds.hpp"
#include "minmach/core/transforms.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/flow/query.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/util/opt_cache.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

namespace {

using namespace minmach;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Adversary-game instances, k = 2..levels: every level slice (same family
// construction as q01, so the two benches stress the same shapes) plus the
// complete game per k (the shrink sweep's rational-mode bases).
struct AdversaryFamilies {
  std::vector<Instance> slices;
  std::vector<Instance> full_games;
};

AdversaryFamilies adversary_families(int levels) {
  AdversaryFamilies out;
  for (int k = 2; k <= levels; ++k) {
    FitPolicy policy(FitRule::kFirstFit, /*seed=*/123);
    StrongLbResult result = run_strong_lower_bound(policy, k);
    for (const StrongLbLevelSlice& slice : result.level_slices)
      out.slices.push_back(slice_instance(result, slice));
    out.full_games.push_back(result.instance);
  }
  return out;
}

struct TierMeasurement {
  std::uint64_t probes = 0;     // network probes actually executed
  std::uint64_t pinched = 0;    // bounds.pinched registry delta
  std::uint64_t computed = 0;   // bounds.computed registry delta
  std::uint64_t checksum = 0;   // order-sensitive fold of the OPT values
  double wall_ms = 0.0;
};

// Queries every instance once, sequentially, with the bound tier gated as
// requested (cache stays off: every avoided probe here is the tier's own
// doing, not a fingerprint hit).
TierMeasurement run_tier(const std::vector<Instance>& family, bool bounds_on) {
  set_bounds_tier_enabled(bounds_on);
  obs::Registry& registry = obs::Registry::global();
  obs::drain_hot_tallies();
  const std::uint64_t pinched0 = registry.counter("bounds.pinched").value();
  const std::uint64_t computed0 = registry.counter("bounds.computed").value();

  TierMeasurement out;
  const Clock::time_point start = Clock::now();
  for (const Instance& instance : family) {
    QueryStats stats = query_optimal_machines_stats(instance);
    out.probes += stats.probes;
    out.checksum = out.checksum * 1099511628211ULL +
                   static_cast<std::uint64_t>(stats.machines);
  }
  out.wall_ms = ms_since(start);
  obs::drain_hot_tallies();
  out.pinched = registry.counter("bounds.pinched").value() - pinched0;
  out.computed = registry.counter("bounds.computed").value() - computed0;
  set_bounds_tier_enabled(false);
  return out;
}

// One pass of the e05-style window-shrink sweep body: per gamma point, OPT
// of the base instance and of its left-shrunk image.
std::uint64_t shrink_sweep_pass(const std::vector<Instance>& bases,
                                const std::vector<Rat>& gammas) {
  std::uint64_t checksum = 0;
  for (const Rat& gamma : gammas) {
    for (const Instance& base : bases) {
      checksum = checksum * 1099511628211ULL +
                 static_cast<std::uint64_t>(query_optimal_machines(base));
      checksum = checksum * 1099511628211ULL +
                 static_cast<std::uint64_t>(query_optimal_machines(
                     shrink_window_left(base, gamma)));
    }
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int levels = static_cast<int>(cli.get_int("levels", 6));
  const std::size_t sweep_n =
      static_cast<std::size_t>(cli.get_int("sweep-n", 48));
  const int trials = static_cast<int>(cli.get_int("trials", 3));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));
  const std::string out_path = cli.get_string("out", "BENCH_bounds.json");
  bench::Run ctx(cli,
                 "B1: bound tier -- certified OPT sandwich vs exact oracle",
                 "a pinched sandwich answers OPT without the max flow; the "
                 "sandwich is certified, so verdicts never change");
  cli.check_unknown();
  bench::require(levels >= 2, "--levels must be >= 2");
  bench::require(trials >= 1, "--trials must be >= 1");
  ctx.config("levels", static_cast<std::int64_t>(levels));
  ctx.config("sweep-n", static_cast<std::int64_t>(sweep_n));
  ctx.config("trials", static_cast<std::int64_t>(trials));
  ctx.config("seed", static_cast<std::int64_t>(seed));

  // Cache off for the whole run: the tier must earn its probe eliminations
  // itself, not through fingerprint hits.
  util::OptCache::global().configure(
      false, static_cast<std::size_t>(bench::kDefaultCacheCapacity));

  // --- phase A: strong-lb family, probes eliminated ----------------------
  AdversaryFamilies adversary = adversary_families(levels);
  const std::vector<Instance>& family = adversary.slices;
  std::size_t family_jobs = 0;
  for (const Instance& instance : family) family_jobs += instance.size();
  const TierMeasurement off = run_tier(family, /*bounds_on=*/false);
  const TierMeasurement on = run_tier(family, /*bounds_on=*/true);
  bench::require(off.checksum == on.checksum,
                 "strong-lb family: bound-tier OPT values disagree with exact");

  Table family_table({"mode", "queries", "probes", "pinched", "wall ms"});
  family_table.add_row({"bounds-off", std::to_string(family.size()),
                        std::to_string(off.probes), "-",
                        Table::fmt(off.wall_ms, 2)});
  family_table.add_row({"bounds-on", std::to_string(family.size()),
                        std::to_string(on.probes), std::to_string(on.pinched),
                        Table::fmt(on.wall_ms, 2)});
  family_table.print(std::cout);
  ctx.table("strong-lb family (" + std::to_string(family.size()) +
                " level slices, " + std::to_string(family_jobs) + " jobs)",
            family_table);

  const double eliminated_share =
      off.probes == 0
          ? 0.0
          : 1.0 - static_cast<double>(on.probes) /
                      static_cast<double>(off.probes);
  ctx.check("strong-lb family: >= 70% of probes eliminated by the sandwich",
            Table::fmt(eliminated_share, 3), ">= 0.70",
            eliminated_share >= 0.70);
  ctx.check("strong-lb family: sandwich computed once per query",
            std::to_string(on.computed), std::to_string(family.size()),
            on.computed == family.size());
  ctx.check("strong-lb family: bounds-off ran the exact tier",
            std::to_string(off.computed), "0", off.computed == 0);

  // --- phase B: window-shrink sweep end-to-end wall ----------------------
  // Mixed bases: the full adversary game per level (rational mode, where
  // exact probes pay BigInt arithmetic) plus random general instances
  // (integer mode, SIMD grid). The sweep's wall time is dominated by
  // whichever probes the tier fails to eliminate.
  Rng rng(seed);
  GenConfig config;
  config.n = sweep_n;
  std::vector<Instance> bases = adversary.full_games;
  bases.reserve(bases.size() + static_cast<std::size_t>(trials));
  for (int trial = 0; trial < trials; ++trial)
    bases.push_back(gen_general(rng, config));
  const std::vector<Rat> gammas = {Rat(1, 4), Rat(1, 2), Rat(2, 3),
                                   Rat(4, 5)};

  const int passes = 2;
  auto run_sweep = [&](bool bounds_on, double& wall_ms) {
    set_bounds_tier_enabled(bounds_on);
    std::uint64_t checksum = 0;
    const Clock::time_point start = Clock::now();
    for (int pass = 0; pass < passes; ++pass) {
      const std::uint64_t pass_sum = shrink_sweep_pass(bases, gammas);
      bench::require(pass == 0 || pass_sum == checksum,
                     "shrink sweep: passes disagree within one mode");
      checksum = pass_sum;
    }
    wall_ms = ms_since(start);
    set_bounds_tier_enabled(false);
    return checksum;
  };
  double sweep_off_ms = 0.0, sweep_on_ms = 0.0;
  const std::uint64_t sweep_off = run_sweep(/*bounds_on=*/false, sweep_off_ms);
  const std::uint64_t sweep_on = run_sweep(/*bounds_on=*/true, sweep_on_ms);
  bench::require(sweep_off == sweep_on,
                 "shrink sweep: bound-tier results disagree with exact");

  const double sweep_speedup = sweep_off_ms / std::max(1e-9, sweep_on_ms);
  Table sweep_table({"mode", "passes", "wall ms"});
  sweep_table.add_row({"bounds-off", std::to_string(passes),
                       Table::fmt(sweep_off_ms, 2)});
  sweep_table.add_row({"bounds-on", std::to_string(passes),
                       Table::fmt(sweep_on_ms, 2)});
  sweep_table.print(std::cout);
  ctx.table("window-shrink sweep (4 gammas x " + std::to_string(bases.size()) +
                " bases: " + std::to_string(adversary.full_games.size()) +
                " adversary games + " + std::to_string(trials) +
                " general n=" + std::to_string(sweep_n) + ")",
            sweep_table);
  // Wall ratios on sub-millisecond smoke inputs measure the scheduler, not
  // the tier; the threshold binds only at full sweep size.
  const bool full_size = sweep_n >= 32 && levels >= 6;
  ctx.check(full_size
                ? "shrink sweep: e2e wall speedup >= 1.5x with bound tier"
                : "shrink sweep: e2e wall speedup (recorded, smoke size)",
            Table::fmt(sweep_speedup, 2), full_size ? ">= 1.5" : "> 0",
            full_size ? sweep_speedup >= 1.5 : sweep_speedup > 0.0);

  // --- phase C: probe-for-probe exactness vs legacy() --------------------
  // Every verdict the tier hands out -- short-circuited, pinched, or
  // probed inside the bracket -- must equal the pre-compression legacy
  // oracle's, m by m. The sandwich makes this an identity, not a bound.
  set_bounds_tier_enabled(true);
  std::vector<Instance> exact_set = bases;
  for (const Instance& instance : family) exact_set.push_back(instance);
  std::uint64_t probes_compared = 0;
  const std::uint64_t skipped0 =
      obs::Registry::global().counter("bounds.probes_skipped").value();
  for (const Instance& instance : exact_set) {
    FeasibilityOracle tier(instance);  // default options: bounds on
    FeasibilityOracle legacy(instance, OracleOptions::legacy());
    const std::int64_t n = static_cast<std::int64_t>(instance.size());
    for (std::int64_t m = 1; m <= n; ++m) {
      bench::require(tier.feasible(m) == legacy.feasible(m),
                     "exactness: feasible(" + std::to_string(m) +
                         ") diverges from legacy()");
      ++probes_compared;
    }
    bench::require(tier.optimal_machines() == legacy.optimal_machines(),
                   "exactness: OPT diverges from legacy()");
  }
  obs::drain_hot_tallies();
  const std::uint64_t probes_skipped =
      obs::Registry::global().counter("bounds.probes_skipped").value() -
      skipped0;
  set_bounds_tier_enabled(false);
  ctx.check("exactness: probe-for-probe verdicts equal legacy()",
            std::to_string(probes_compared) + " probes", "all equal", true);

  // Machine-readable record (wall times included, so this file is NOT
  // byte-deterministic -- unlike --report).
  std::ofstream os(out_path);
  bench::require(static_cast<bool>(os), "cannot open " + out_path);
  obs::JsonWriter json(os);
  json.begin_object();
  bench::write_bench_stamp(json);
  json.key("experiment").value("b01_bound_tier");
  json.key("seed").value(static_cast<std::int64_t>(seed));
  json.key("strong_lb_family").begin_object();
  json.key("levels").value(static_cast<std::int64_t>(levels));
  json.key("slices").value(static_cast<std::int64_t>(family.size()));
  json.key("jobs").value(static_cast<std::int64_t>(family_jobs));
  json.key("probes_off").value(off.probes);
  json.key("probes_on").value(on.probes);
  json.key("eliminated_share").value(eliminated_share);
  json.key("bounds").begin_object();
  json.key("pinched").value(on.pinched);
  json.key("probes_skipped").value(probes_skipped);
  json.end_object();
  json.key("wall_off_ms").value(off.wall_ms);
  json.key("wall_on_ms").value(on.wall_ms);
  json.end_object();
  json.key("shrink_sweep").begin_object();
  json.key("gammas").value(static_cast<std::int64_t>(gammas.size()));
  json.key("adversary_bases")
      .value(static_cast<std::int64_t>(adversary.full_games.size()));
  json.key("trials").value(static_cast<std::int64_t>(trials));
  json.key("n").value(static_cast<std::int64_t>(sweep_n));
  json.key("passes").value(static_cast<std::int64_t>(passes));
  json.key("wall_off_ms").value(sweep_off_ms);
  json.key("wall_on_ms").value(sweep_on_ms);
  json.key("speedup").value(sweep_speedup);
  json.key("threshold_enforced").value(full_size);
  json.end_object();
  json.key("exactness").begin_object();
  json.key("instances").value(static_cast<std::int64_t>(exact_set.size()));
  json.key("probes_compared").value(probes_compared);
  json.end_object();
  json.end_object();
  os << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
