// Shared scaffolding for the experiment drivers: a uniform header block, a
// hard-failure helper (a violated invariant makes the binary exit non-zero
// so CI catches regressions in the reproduced results), a deterministic
// parallel-map used by the embarrassingly-parallel sweep drivers, and the
// Run wrapper that plumbs --report=FILE / --trace=FILE through every driver.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "minmach/obs/metrics.hpp"
#include "minmach/obs/report.hpp"
#include "minmach/obs/trace.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/table.hpp"

namespace minmach::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << experiment << "\n"
            << "paper claim: " << paper_claim << "\n"
            << "================================================================\n";
}

inline void require(bool condition, const std::string& message) {
  if (!condition) {
    // Flush results first so the diagnostic lands after any partial table,
    // and stdout (which the determinism harness captures) stays clean.
    std::cout.flush();
    std::cerr << "EXPERIMENT INVARIANT VIOLATED: " << message << "\n";
    std::exit(1);
  }
}

// Per-driver run context. Reads the common --report / --trace flags (so
// every driver accepts them uniformly), installs the global trace sink for
// the run's lifetime, prints the standard header, and -- on finish() or
// destruction -- writes the machine-readable run report: config, result
// tables, measured-vs-bound checks, and a metrics snapshot. The report
// excludes wall-clock timings and reproducibility-neutral flags (--threads,
// --report, --trace), so its bytes are identical at any thread count.
class Run {
 public:
  Run(Cli& cli, std::string experiment, std::string paper_claim) {
    report_path_ = cli.get_string("report", "");
    std::string trace_path = cli.get_string("trace", "");
    if (!trace_path.empty()) {
      sink_ = std::make_unique<obs::TraceSink>(trace_path);
      obs::TraceSink::set_global(sink_.get());
    }
    obs::Registry::global().reset();
    print_header(experiment, paper_claim);
    report_.experiment = std::move(experiment);
    report_.claim = std::move(paper_claim);
  }

  ~Run() { finish(); }
  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  void config(const std::string& key, const std::string& value) {
    report_.config.emplace_back(key, value);
  }
  void config(const std::string& key, std::int64_t value) {
    config(key, std::to_string(value));
  }
  void config(const std::string& key, double value) {
    config(key, Table::fmt(value, 6));
  }

  void table(const std::string& title, const Table& table) {
    report_.tables.push_back({title, table.header(), table.rows()});
  }

  // Records a measured-vs-bound row in the report AND enforces it like
  // require(): a failed check exits non-zero after the report is written.
  void check(const std::string& name, const std::string& measured,
             const std::string& bound, bool ok) {
    report_.checks.push_back({name, measured, bound, ok});
    if (!ok) {
      finish();
      require(false, name + " (measured " + measured + ", bound " + bound + ")");
    }
  }

  // Idempotent: drains hot tallies, snapshots the registry, writes the
  // report if --report was given, and uninstalls the trace sink.
  void finish() {
    if (finished_) return;
    finished_ = true;
    report_.metrics = obs::Registry::global().snapshot();
    if (!report_path_.empty()) obs::save_report(report_path_, report_);
    if (sink_) {
      obs::TraceSink::set_global(nullptr);
      sink_.reset();
    }
  }

 private:
  obs::RunReport report_;
  std::string report_path_;
  std::unique_ptr<obs::TraceSink> sink_;
  bool finished_ = false;
};

// Resolves a --threads flag value: <= 0 means "use all cores", and there is
// never a point in more workers than tasks.
inline std::size_t resolve_threads(std::int64_t requested,
                                   std::size_t task_count) {
  std::size_t threads = requested > 0
                            ? static_cast<std::size_t>(requested)
                            : std::max(1u, std::thread::hardware_concurrency());
  return std::min(threads, std::max<std::size_t>(1, task_count));
}

// Runs fn(0), ..., fn(task_count - 1) on `threads` workers and returns the
// results ordered by task index. Determinism contract: each task must be
// self-contained (seed its own Rng, no shared mutable state), so the result
// vector -- and therefore any table printed from it in index order -- is
// byte-identical regardless of thread count. Workers pull tasks from a
// shared atomic counter (no partitioning skew); exceptions are captured per
// task and the first one (in task order) is rethrown on the caller's thread.
// Tasks must not call require()/std::exit -- return the verdict and let the
// caller aggregate.
template <typename Fn>
auto parallel_map(std::size_t task_count, std::size_t threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::vector<Result> results(task_count);
  std::vector<std::exception_ptr> errors(task_count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < task_count; ++i) {
      try {
        results[i] = fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      while (true) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= task_count) {
          // Fold this worker's thread-local arithmetic tallies into the
          // registry before the thread dies, so a snapshot taken after
          // parallel_map returns sees every operation exactly once.
          obs::drain_hot_tallies();
          return;
        }
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

}  // namespace minmach::bench
