// Shared scaffolding for the experiment drivers: a uniform header block, a
// hard-failure helper (a violated invariant makes the binary exit non-zero
// so CI catches regressions in the reproduced results), a deterministic
// parallel-map used by the embarrassingly-parallel sweep drivers, and the
// Run wrapper that plumbs --report=FILE / --trace=FILE through every driver.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "minmach/core/bounds.hpp"
#include "minmach/obs/histogram.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/obs/profile.hpp"
#include "minmach/obs/report.hpp"
#include "minmach/obs/trace.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/opt_cache.hpp"
#include "minmach/util/simd.hpp"
#include "minmach/util/table.hpp"

namespace minmach::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << experiment << "\n"
            << "paper claim: " << paper_claim << "\n"
            << "================================================================\n";
}

inline void require(bool condition, const std::string& message) {
  if (!condition) {
    // Flush results first so the diagnostic lands after any partial table,
    // and stdout (which the determinism harness captures) stays clean.
    std::cout.flush();
    std::cerr << "EXPERIMENT INVARIANT VIOLATED: " << message << "\n";
    std::exit(1);
  }
}

// Default entry budget for --cache-capacity (~3 MB of verdicts).
inline constexpr std::int64_t kDefaultCacheCapacity = 1 << 16;

// Shared validation for the {on,off} driver flags (--cache, --profile,
// --bounds): returns true for "on", and exits 2 with the uniform
// diagnostic on anything else -- one implementation instead of a
// copy-pasted check per flag.
inline bool parse_onoff(Cli& cli, const std::string& flag, bool default_on) {
  const std::string value = cli.get_string(flag, default_on ? "on" : "off");
  if (value != "on" && value != "off") {
    std::cerr << "error: --" << flag << " must be 'on' or 'off' (got '"
              << value << "')\n";
    std::exit(2);
  }
  return value == "on";
}

// Version tag for the BENCH_*.json artifacts the drivers emit. perfdiff
// refuses artifacts without it (schema drift would otherwise surface as
// spurious "regressions" when a metric is renamed).
inline constexpr std::string_view kBenchJsonSchema = "bench-json-v1";

// Build-time git revision, injected by CMake (-DMINMACH_GIT_REV=...);
// "unknown" outside a git checkout (e.g. tarball builds).
#ifndef MINMACH_GIT_REV
#define MINMACH_GIT_REV "unknown"
#endif

// Stamps a BENCH_*.json artifact with its schema version and the producing
// revision. Call immediately after the top-level begin_object() so the
// stamp leads the document.
inline void write_bench_stamp(obs::JsonWriter& json) {
  json.key("schema").value(kBenchJsonSchema);
  json.key("git_rev").value(std::string_view(MINMACH_GIT_REV));
}

// Per-driver run context. Reads the common --report / --trace flags (so
// every driver accepts them uniformly), installs the global trace sink for
// the run's lifetime, prints the standard header, and -- on finish() or
// destruction -- writes the machine-readable run report: config, result
// tables, measured-vs-bound checks, and a metrics snapshot. The report
// excludes wall-clock timings and reproducibility-neutral flags (--threads,
// --report, --trace, --cache, --cache-capacity, --simd, --bounds), so its
// bytes are identical at any thread count, with the OPT cache on or off,
// under any SIMD dispatch mode, and with the bound tier on or off
// (cache/SIMD/bounds state only moves execution-class metrics, which
// snapshots segregate).
//
// Also reads --cache {on,off} / --cache-capacity N and configures the
// global affine-canonical OPT cache accordingly, so every driver can A/B
// the query engine. Default off: the o01/m01 substrate benches measure
// legacy-vs-fast ratios that a shared verdict cache would collapse, so
// caching is strictly opt-in per run.
//
// Also reads --simd {auto,avx2,scalar} and sets the global kernel dispatch
// mode (util::simd::set_mode, DESIGN.md §12). Default auto: use the AVX2
// kernels whenever the binary compiled them and the CPU has them. avx2
// insists (clear error when unavailable, so an A/B run never silently
// measures the fallback); scalar forces the portable path for differential
// runs. Results are bit-identical across modes -- the flag only moves wall
// clock and execution-class metrics.
//
// Also reads --bounds {on,off} (default off) and sets the global bound-tier
// gate (set_bounds_tier_enabled, DESIGN.md §14). Off keeps every driver
// measuring the exact oracle alone -- the certified sandwich would answer
// most probes for free and collapse the legacy-vs-fast and cache A/B
// ratios; b01_bound_tier turns it on explicitly. OPT values and verdicts
// are identical either way.
//
// Also reads --profile {on,off} (default off) and arms the span profiler +
// latency histograms (DESIGN.md §13) for the run. Profiling only ADDS the
// report's "profile"/"latency" sections (and the optional
// --profile-chrome=FILE trace); every other report byte is unchanged, so a
// profiled run diffs clean against an un-profiled one outside those
// sections. Like --threads/--cache/--simd, the flag is excluded from the
// report config.
class Run {
 public:
  Run(Cli& cli, std::string experiment, std::string paper_claim) {
    report_path_ = cli.get_string("report", "");
    std::string trace_path = cli.get_string("trace", "");
    if (!trace_path.empty()) {
      sink_ = std::make_unique<obs::TraceSink>(trace_path);
      obs::TraceSink::set_global(sink_.get());
    }
    const bool cache_on = parse_onoff(cli, "cache", false);
    const std::int64_t cache_capacity =
        cli.get_int("cache-capacity", kDefaultCacheCapacity);
    if (cache_capacity <= 0) {
      std::cerr << "error: --cache-capacity must be a positive entry budget "
                   "(omit the flag for the default "
                << kDefaultCacheCapacity << ")\n";
      std::exit(2);
    }
    util::OptCache::global().configure(
        cache_on, static_cast<std::size_t>(cache_capacity));
    const std::string simd_flag = cli.get_string("simd", "auto");
    util::simd::Mode simd_mode;
    if (!util::simd::parse_mode(simd_flag, &simd_mode)) {
      std::cerr << "error: --simd must be 'auto', 'avx2', or 'scalar' (got '"
                << simd_flag << "')\n";
      std::exit(2);
    }
    if (simd_mode == util::simd::Mode::kAvx2 && !util::simd::supported()) {
      std::cerr << "error: --simd avx2 requested but AVX2 kernels are "
                   "unavailable ("
                << (util::simd::compiled_avx2()
                        ? "CPU lacks AVX2"
                        : "binary built without them, MINMACH_SIMD=scalar")
                << "); use 'auto' or 'scalar'\n";
      std::exit(2);
    }
    util::simd::set_mode(simd_mode);
    // Bound tier (--bounds, DESIGN.md §14): default OFF in the drivers --
    // the library default is on, but the committed baselines, the o01/m01
    // legacy-vs-fast ratios, and q01's cache probe-ratio check all measure
    // the exact tier, which a sandwich that answers probes for free would
    // collapse. b01_bound_tier A/Bs the tier explicitly.
    set_bounds_tier_enabled(parse_onoff(cli, "bounds", false));
    profiling_ = parse_onoff(cli, "profile", false);
    profile_chrome_path_ = cli.get_string("profile-chrome", "");
    obs::Registry::global().reset();
    obs::LatencyRegistry::global().reset();
    obs::set_profiling(profiling_);
    print_header(experiment, paper_claim);
    report_.experiment = std::move(experiment);
    report_.claim = std::move(paper_claim);
  }

  ~Run() { finish(); }
  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  void config(const std::string& key, const std::string& value) {
    report_.config.emplace_back(key, value);
  }
  void config(const std::string& key, std::int64_t value) {
    config(key, std::to_string(value));
  }
  void config(const std::string& key, double value) {
    config(key, Table::fmt(value, 6));
  }

  void table(const std::string& title, const Table& table) {
    report_.tables.push_back({title, table.header(), table.rows()});
  }

  // Records a measured-vs-bound row in the report AND enforces it like
  // require(): a failed check exits non-zero after the report is written.
  void check(const std::string& name, const std::string& measured,
             const std::string& bound, bool ok) {
    report_.checks.push_back({name, measured, bound, ok});
    if (!ok) {
      finish();
      require(false, name + " (measured " + measured + ", bound " + bound + ")");
    }
  }

  // Idempotent: drains hot tallies, snapshots the registry, writes the
  // report if --report was given, and uninstalls the trace sink.
  void finish() {
    if (finished_) return;
    finished_ = true;
    report_.metrics = obs::Registry::global().snapshot();
    report_.profiled = profiling_;
    if (profiling_) {
      report_.latencies = obs::LatencyRegistry::global().summaries();
      obs::set_profiling(false);
    }
    if (!report_path_.empty()) obs::save_report(report_path_, report_);
    if (profiling_ && !profile_chrome_path_.empty())
      obs::save_profile_chrome_trace(profile_chrome_path_, report_.metrics);
    if (sink_) {
      obs::TraceSink::set_global(nullptr);
      sink_.reset();
    }
  }

 private:
  obs::RunReport report_;
  std::string report_path_;
  std::string profile_chrome_path_;
  std::unique_ptr<obs::TraceSink> sink_;
  bool profiling_ = false;
  bool finished_ = false;
};

// Reads the common --threads flag. Absent (or any negative value) means
// "use all hardware threads" (resolved by resolve_threads below). An
// explicit --threads 0 is rejected with a clear CLI error: the old
// behaviour silently mapped it to "all cores", which made typos like
// `--threads 0x4` (parsed as 0) indistinguishable from the default.
inline std::int64_t threads_flag(Cli& cli) {
  std::int64_t requested = cli.get_int("threads", -1);
  if (requested == 0 && cli.was_given("threads")) {
    std::cerr << "error: --threads must be a positive worker count "
                 "(omit the flag to use all "
              << std::max(1u, std::thread::hardware_concurrency())
              << " hardware threads)\n";
    std::exit(2);
  }
  return requested;
}

// Resolves a --threads value: <= 0 means "all cores", clamped at
// std::thread::hardware_concurrency() so the default never oversubscribes,
// and there is never a point in more workers than tasks. An explicit
// positive request is honoured as-is (the determinism harness deliberately
// oversubscribes small boxes to shake out ordering bugs).
inline std::size_t resolve_threads(std::int64_t requested,
                                   std::size_t task_count) {
  std::size_t threads = requested > 0
                            ? static_cast<std::size_t>(requested)
                            : std::max(1u, std::thread::hardware_concurrency());
  return std::min(threads, std::max<std::size_t>(1, task_count));
}

// How parallel_map_scheduled distributes tasks over workers.
enum class Chunking {
  // Contiguous per-worker ranges; an idle worker steals the back half of
  // the fullest remaining range. Default.
  kWorkStealing,
  // The same initial ranges with no stealing -- a worker that drains its
  // range exits. Kept as the imbalance baseline for the memory bench.
  kStatic,
};

// Per-worker execution statistics from one parallel_map_scheduled call.
// Diagnostic only: wall-clock and steal counts depend on OS scheduling and
// must never feed the run report (see Run's determinism note).
struct WorkerLoad {
  std::uint64_t tasks = 0;   // tasks this worker executed
  std::uint64_t steals = 0;  // ranges it stole from a victim
  double busy_ms = 0.0;      // wall time spent inside task bodies
};
struct ScheduleStats {
  std::vector<WorkerLoad> workers;

  [[nodiscard]] std::uint64_t total_steals() const {
    std::uint64_t total = 0;
    for (const WorkerLoad& w : workers) total += w.steals;
    return total;
  }
  // Largest fraction of total busy time spent on one worker: 1/threads is
  // perfect balance, 1.0 is total skew (one worker did everything).
  [[nodiscard]] double max_busy_share() const {
    double total = 0.0, worst = 0.0;
    for (const WorkerLoad& w : workers) {
      total += w.busy_ms;
      worst = std::max(worst, w.busy_ms);
    }
    return total > 0.0 ? worst / total : 0.0;
  }
};

namespace detail {
// One worker's slice of the task index space. lo/hi are guarded by mutex;
// the owner pops from the front, thieves take from the back, so the two
// rarely collide on the same cache line's worth of indices.
struct StealRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::mutex mutex;
};
}  // namespace detail

// Runs fn(0), ..., fn(task_count - 1) on `threads` workers and returns the
// results ordered by task index. Determinism contract: each task must be
// self-contained (seed its own Rng, no shared mutable state), so the result
// vector -- and therefore any table printed from it in index order -- is
// byte-identical regardless of thread count or chunking mode. The scheduler
// only decides WHICH worker runs a task, never what the task computes, and
// every result is written to its original index; per-thread obs tallies are
// drained before each worker exits, so merged metric totals are identical
// too (DESIGN.md §10 has the full argument). Exceptions are captured per
// task and the first one (in task order) is rethrown on the caller's
// thread; a throwing task still counts as executed, and the remaining tasks
// still run. Tasks must not call require()/std::exit -- return the verdict
// and let the caller aggregate.
//
// Work stealing: each worker starts with a contiguous near-equal range and
// pops from its front. A worker whose range drains scans the others (under
// their locks, victim lock never held while taking its own) and moves the
// back half of the fullest range into its own; when every range is empty it
// exits. Skewed sweeps -- where one range holds all the expensive tasks --
// therefore spread across workers instead of serializing on one, which
// static chunking cannot do.
template <typename Fn>
auto parallel_map_scheduled(std::size_t task_count, std::size_t threads,
                            Fn&& fn, Chunking chunking,
                            ScheduleStats* stats = nullptr)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  using Clock = std::chrono::steady_clock;
  std::vector<Result> results(task_count);
  std::vector<std::exception_ptr> errors(task_count);
  threads = std::min(std::max<std::size_t>(1, threads),
                     std::max<std::size_t>(1, task_count));
  if (stats) stats->workers.assign(threads, WorkerLoad{});

  auto run_task = [&](std::size_t i, WorkerLoad* load) {
    Clock::time_point start;
    if (load) start = Clock::now();
    try {
      results[i] = fn(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
    if (load) {
      ++load->tasks;
      load->busy_ms +=
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
    }
  };

  if (threads <= 1) {
    WorkerLoad* load = stats ? stats->workers.data() : nullptr;
    for (std::size_t i = 0; i < task_count; ++i) run_task(i, load);
  } else {
    std::vector<detail::StealRange> ranges(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      ranges[w].lo = task_count * w / threads;
      ranges[w].hi = task_count * (w + 1) / threads;
    }
    auto worker = [&](std::size_t self) {
      WorkerLoad* load = stats ? &stats->workers[self] : nullptr;
      detail::StealRange& own = ranges[self];
      while (true) {
        std::size_t task = task_count;  // sentinel: nothing popped
        {
          std::lock_guard<std::mutex> lock(own.mutex);
          if (own.lo < own.hi) task = own.lo++;
        }
        if (task < task_count) {
          run_task(task, load);
          continue;
        }
        if (chunking == Chunking::kStatic) break;
        // Steal the back half of the first non-empty range in scan order.
        // Taking from the back leaves the victim popping undisturbed at the
        // front, and releasing the victim's lock before touching our own
        // range keeps the locking flat (never two locks held at once -> no
        // deadlock).
        std::size_t got_lo = 0, got_hi = 0, best = 0;
        for (std::size_t offset = 1; offset < threads; ++offset) {
          detail::StealRange& victim = ranges[(self + offset) % threads];
          std::lock_guard<std::mutex> lock(victim.mutex);
          if (victim.hi - victim.lo > best) {
            best = victim.hi - victim.lo;
            got_hi = victim.hi;
            got_lo = victim.hi - (best + 1) / 2;
            victim.hi = got_lo;
            break;  // good enough: first non-empty victim in scan order
          }
        }
        if (got_lo == got_hi) break;  // every range empty: drained
        {
          std::lock_guard<std::mutex> lock(own.mutex);
          own.lo = got_lo;
          own.hi = got_hi;
        }
        if (load) ++load->steals;
      }
      // Fold this worker's thread-local arithmetic tallies into the
      // registry before the thread dies, so a snapshot taken after
      // parallel_map_scheduled returns sees every operation exactly once.
      obs::drain_hot_tallies();
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

// Back-compat entry point used by the sweep drivers: work-stealing
// scheduler, no stats.
template <typename Fn>
auto parallel_map(std::size_t task_count, std::size_t threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  return parallel_map_scheduled(task_count, threads, std::forward<Fn>(fn),
                                Chunking::kWorkStealing, nullptr);
}

}  // namespace minmach::bench
