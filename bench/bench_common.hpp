// Shared scaffolding for the experiment drivers: a uniform header block, a
// hard-failure helper (a violated invariant makes the binary exit non-zero
// so CI catches regressions in the reproduced results), a deterministic
// parallel-map used by the embarrassingly-parallel sweep drivers, and the
// Run wrapper that plumbs --report=FILE / --trace=FILE through every driver.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <cstdio>
#include <fstream>

#include "minmach/core/bounds.hpp"
#include "minmach/obs/histogram.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/obs/profile.hpp"
#include "minmach/obs/report.hpp"
#include "minmach/obs/trace.hpp"
#include "minmach/store/pcache.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/opt_cache.hpp"
#include "minmach/util/parallel.hpp"
#include "minmach/util/simd.hpp"
#include "minmach/util/table.hpp"

namespace minmach::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << experiment << "\n"
            << "paper claim: " << paper_claim << "\n"
            << "================================================================\n";
}

inline void require(bool condition, const std::string& message) {
  if (!condition) {
    // Flush results first so the diagnostic lands after any partial table,
    // and stdout (which the determinism harness captures) stays clean.
    std::cout.flush();
    std::cerr << "EXPERIMENT INVARIANT VIOLATED: " << message << "\n";
    std::exit(1);
  }
}

// Default entry budget for --cache-capacity (~3 MB of verdicts).
inline constexpr std::int64_t kDefaultCacheCapacity = 1 << 16;

// Shared validation for the {on,off} driver flags (--cache, --profile,
// --bounds): returns true for "on", and exits 2 with the uniform
// diagnostic on anything else -- one implementation instead of a
// copy-pasted check per flag.
inline bool parse_onoff(Cli& cli, const std::string& flag, bool default_on) {
  const std::string value = cli.get_string(flag, default_on ? "on" : "off");
  if (value != "on" && value != "off") {
    std::cerr << "error: --" << flag << " must be 'on' or 'off' (got '"
              << value << "')\n";
    std::exit(2);
  }
  return value == "on";
}

// Shared validation for path-valued driver flags (--corpus, --cache-file):
// absent returns "" (the feature stays off); given, the path must be
// non-empty and land in a writable location -- probed by opening for
// append, removing the file again if the probe itself created it --
// anything else exits 2 with the uniform diagnostic. Probing up front turns
// "cache written to an unwritable path" from a silent no-op at the end of a
// long run into an immediate CLI error.
inline std::string path_flag(Cli& cli, const std::string& flag) {
  if (!cli.was_given(flag)) return "";
  const std::string path = cli.get_string(flag, "");
  if (path.empty()) {
    std::cerr << "error: --" << flag
              << " requires a non-empty file path (omit the flag to disable)\n";
    std::exit(2);
  }
  const bool existed = std::ifstream(path).good();
  std::FILE* probe = std::fopen(path.c_str(), "ab");
  if (probe == nullptr) {
    std::cerr << "error: --" << flag << " path '" << path
              << "' is not writable\n";
    std::exit(2);
  }
  std::fclose(probe);
  if (!existed) std::remove(path.c_str());
  return path;
}

// Version tag for the BENCH_*.json artifacts the drivers emit. perfdiff
// refuses artifacts without it (schema drift would otherwise surface as
// spurious "regressions" when a metric is renamed).
inline constexpr std::string_view kBenchJsonSchema = "bench-json-v1";

// Build-time git revision, injected by CMake (-DMINMACH_GIT_REV=...);
// "unknown" outside a git checkout (e.g. tarball builds).
#ifndef MINMACH_GIT_REV
#define MINMACH_GIT_REV "unknown"
#endif

// Stamps a BENCH_*.json artifact with its schema version and the producing
// revision. Call immediately after the top-level begin_object() so the
// stamp leads the document.
inline void write_bench_stamp(obs::JsonWriter& json) {
  json.key("schema").value(kBenchJsonSchema);
  json.key("git_rev").value(std::string_view(MINMACH_GIT_REV));
}

// Per-driver run context. Reads the common --report / --trace flags (so
// every driver accepts them uniformly), installs the global trace sink for
// the run's lifetime, prints the standard header, and -- on finish() or
// destruction -- writes the machine-readable run report: config, result
// tables, measured-vs-bound checks, and a metrics snapshot. The report
// excludes wall-clock timings and reproducibility-neutral flags (--threads,
// --report, --trace, --cache, --cache-capacity, --simd, --bounds), so its
// bytes are identical at any thread count, with the OPT cache on or off,
// under any SIMD dispatch mode, and with the bound tier on or off
// (cache/SIMD/bounds state only moves execution-class metrics, which
// snapshots segregate).
//
// Also reads --cache {on,off} / --cache-capacity N and configures the
// global affine-canonical OPT cache accordingly, so every driver can A/B
// the query engine. Default off: the o01/m01 substrate benches measure
// legacy-vs-fast ratios that a shared verdict cache would collapse, so
// caching is strictly opt-in per run.
//
// Also reads --simd {auto,avx2,scalar} and sets the global kernel dispatch
// mode (util::simd::set_mode, DESIGN.md §12). Default auto: use the AVX2
// kernels whenever the binary compiled them and the CPU has them. avx2
// insists (clear error when unavailable, so an A/B run never silently
// measures the fallback); scalar forces the portable path for differential
// runs. Results are bit-identical across modes -- the flag only moves wall
// clock and execution-class metrics.
//
// Also reads --bounds {on,off} (default off) and sets the global bound-tier
// gate (set_bounds_tier_enabled, DESIGN.md §14). Off keeps every driver
// measuring the exact oracle alone -- the certified sandwich would answer
// most probes for free and collapse the legacy-vs-fast and cache A/B
// ratios; b01_bound_tier turns it on explicitly. OPT values and verdicts
// are identical either way.
//
// Also reads --profile {on,off} (default off) and arms the span profiler +
// latency histograms (DESIGN.md §13) for the run. Profiling only ADDS the
// report's "profile"/"latency" sections (and the optional
// --profile-chrome=FILE trace); every other report byte is unchanged, so a
// profiled run diffs clean against an un-profiled one outside those
// sections. Like --threads/--cache/--simd, the flag is excluded from the
// report config.
//
// Also reads the persistence knobs (DESIGN.md §16), both default off and
// both reproducibility-neutral (persistence moves only wall clock and
// store.*/cache.* execution-class metrics, never answers, so reports stay
// byte-identical): --corpus=FILE names an instance-corpus path the driver
// may freeze/reopen (exposed via corpus_path(); drivers without corpus
// support simply ignore it), and --cache-file=FILE attaches a
// store::PersistentCache as the OPT cache's disk tier for the run --
// implying --cache on -- with a compacting flush on finish(). A
// version-mismatched or corrupt cache file is refused at startup (exit 2).
class Run {
 public:
  Run(Cli& cli, std::string experiment, std::string paper_claim) {
    report_path_ = cli.get_string("report", "");
    std::string trace_path = cli.get_string("trace", "");
    if (!trace_path.empty()) {
      sink_ = std::make_unique<obs::TraceSink>(trace_path);
      obs::TraceSink::set_global(sink_.get());
    }
    const bool cache_on = parse_onoff(cli, "cache", false);
    const std::int64_t cache_capacity =
        cli.get_int("cache-capacity", kDefaultCacheCapacity);
    if (cache_capacity <= 0) {
      std::cerr << "error: --cache-capacity must be a positive entry budget "
                   "(omit the flag for the default "
                << kDefaultCacheCapacity << ")\n";
      std::exit(2);
    }
    util::OptCache::global().configure(
        cache_on, static_cast<std::size_t>(cache_capacity));
    const std::string simd_flag = cli.get_string("simd", "auto");
    util::simd::Mode simd_mode;
    if (!util::simd::parse_mode(simd_flag, &simd_mode)) {
      std::cerr << "error: --simd must be 'auto', 'avx2', or 'scalar' (got '"
                << simd_flag << "')\n";
      std::exit(2);
    }
    if (simd_mode == util::simd::Mode::kAvx2 && !util::simd::supported()) {
      std::cerr << "error: --simd avx2 requested but AVX2 kernels are "
                   "unavailable ("
                << (util::simd::compiled_avx2()
                        ? "CPU lacks AVX2"
                        : "binary built without them, MINMACH_SIMD=scalar")
                << "); use 'auto' or 'scalar'\n";
      std::exit(2);
    }
    util::simd::set_mode(simd_mode);
    // Bound tier (--bounds, DESIGN.md §14): default OFF in the drivers --
    // the library default is on, but the committed baselines, the o01/m01
    // legacy-vs-fast ratios, and q01's cache probe-ratio check all measure
    // the exact tier, which a sandwich that answers probes for free would
    // collapse. b01_bound_tier A/Bs the tier explicitly.
    set_bounds_tier_enabled(parse_onoff(cli, "bounds", false));
    corpus_path_ = path_flag(cli, "corpus");
    const std::string cache_file = path_flag(cli, "cache-file");
    if (!cache_file.empty()) {
      try {
        cache_store_ = std::make_unique<store::PersistentCache>(cache_file);
      } catch (const std::exception& error) {
        std::cerr << "error: --cache-file: " << error.what() << "\n";
        std::exit(2);
      }
      // A disk tier with no RAM tier in front would never be consulted:
      // --cache-file implies --cache on.
      if (!cache_on)
        util::OptCache::global().configure(
            true, static_cast<std::size_t>(cache_capacity));
      util::OptCache::global().attach_store(cache_store_.get());
    }
    profiling_ = parse_onoff(cli, "profile", false);
    profile_chrome_path_ = cli.get_string("profile-chrome", "");
    obs::Registry::global().reset();
    obs::LatencyRegistry::global().reset();
    obs::set_profiling(profiling_);
    print_header(experiment, paper_claim);
    report_.experiment = std::move(experiment);
    report_.claim = std::move(paper_claim);
  }

  ~Run() { finish(); }
  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  void config(const std::string& key, const std::string& value) {
    report_.config.emplace_back(key, value);
  }
  void config(const std::string& key, std::int64_t value) {
    config(key, std::to_string(value));
  }
  void config(const std::string& key, double value) {
    config(key, Table::fmt(value, 6));
  }

  void table(const std::string& title, const Table& table) {
    report_.tables.push_back({title, table.header(), table.rows()});
  }

  // Records a measured-vs-bound row in the report AND enforces it like
  // require(): a failed check exits non-zero after the report is written.
  void check(const std::string& name, const std::string& measured,
             const std::string& bound, bool ok) {
    report_.checks.push_back({name, measured, bound, ok});
    if (!ok) {
      finish();
      require(false, name + " (measured " + measured + ", bound " + bound + ")");
    }
  }

  // The --corpus path, or "" when the flag was absent. Drivers with corpus
  // support read/freeze their instance set there.
  [[nodiscard]] const std::string& corpus_path() const { return corpus_path_; }

  // Idempotent: detaches and compacts the persistent cache tier (if any),
  // drains hot tallies, snapshots the registry, writes the report if
  // --report was given, and uninstalls the trace sink.
  void finish() {
    if (finished_) return;
    finished_ = true;
    if (cache_store_) {
      // Detach before flushing so no concurrent lookup can race the
      // compaction, and flush before the snapshot so the cache_flush span
      // and final store.* tallies land in the report's metrics.
      util::OptCache::global().attach_store(nullptr);
      try {
        cache_store_->flush();
      } catch (const std::exception& error) {
        std::cerr << "warning: persistent cache flush failed: "
                  << error.what() << "\n";
      }
      cache_store_.reset();
    }
    report_.metrics = obs::Registry::global().snapshot();
    report_.profiled = profiling_;
    if (profiling_) {
      report_.latencies = obs::LatencyRegistry::global().summaries();
      obs::set_profiling(false);
    }
    if (!report_path_.empty()) obs::save_report(report_path_, report_);
    if (profiling_ && !profile_chrome_path_.empty())
      obs::save_profile_chrome_trace(profile_chrome_path_, report_.metrics);
    if (sink_) {
      obs::TraceSink::set_global(nullptr);
      sink_.reset();
    }
  }

 private:
  obs::RunReport report_;
  std::string report_path_;
  std::string profile_chrome_path_;
  std::string corpus_path_;
  std::unique_ptr<obs::TraceSink> sink_;
  std::unique_ptr<store::PersistentCache> cache_store_;
  bool profiling_ = false;
  bool finished_ = false;
};

// Reads the common --threads flag. Absent (or any negative value) means
// "use all hardware threads" (resolved by resolve_threads below). An
// explicit --threads 0 is rejected with a clear CLI error: the old
// behaviour silently mapped it to "all cores", which made typos like
// `--threads 0x4` (parsed as 0) indistinguishable from the default.
inline std::int64_t threads_flag(Cli& cli) {
  std::int64_t requested = cli.get_int("threads", -1);
  if (requested == 0 && cli.was_given("threads")) {
    std::cerr << "error: --threads must be a positive worker count "
                 "(omit the flag to use all "
              << std::max(1u, std::thread::hardware_concurrency())
              << " hardware threads)\n";
    std::exit(2);
  }
  return requested;
}

// The deterministic work-stealing scheduler lives in the library now
// (util/parallel.hpp) so svc/ can shard sessions across it; these aliases
// keep the drivers' and tests' bench:: spelling working unchanged.
using util::Chunking;
using util::ScheduleStats;
using util::WorkerLoad;
using util::parallel_map;
using util::parallel_map_scheduled;
using util::resolve_threads;

// Shared validation for positive-count driver flags (--sessions, --events):
// absent takes the default; zero, negative, or malformed values exit 2 with
// the uniform diagnostic, mirroring --threads/--cache-capacity.
inline std::int64_t positive_count_flag(Cli& cli, const std::string& flag,
                                        std::int64_t default_value) {
  const std::int64_t value = cli.get_int(flag, default_value);
  if (value <= 0) {
    std::cerr << "error: --" << flag << " must be a positive count (omit the "
              << "flag for the default " << default_value << ")\n";
    std::exit(2);
  }
  return value;
}

}  // namespace minmach::bench
