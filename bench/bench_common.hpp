// Shared scaffolding for the experiment drivers: a uniform header block, a
// hard-failure helper (a violated invariant makes the binary exit non-zero
// so CI catches regressions in the reproduced results), and a deterministic
// parallel-map used by the embarrassingly-parallel sweep drivers.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

namespace minmach::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << experiment << "\n"
            << "paper claim: " << paper_claim << "\n"
            << "================================================================\n";
}

inline void require(bool condition, const std::string& message) {
  if (!condition) {
    std::cerr << "EXPERIMENT INVARIANT VIOLATED: " << message << "\n";
    std::exit(1);
  }
}

// Resolves a --threads flag value: <= 0 means "use all cores", and there is
// never a point in more workers than tasks.
inline std::size_t resolve_threads(std::int64_t requested,
                                   std::size_t task_count) {
  std::size_t threads = requested > 0
                            ? static_cast<std::size_t>(requested)
                            : std::max(1u, std::thread::hardware_concurrency());
  return std::min(threads, std::max<std::size_t>(1, task_count));
}

// Runs fn(0), ..., fn(task_count - 1) on `threads` workers and returns the
// results ordered by task index. Determinism contract: each task must be
// self-contained (seed its own Rng, no shared mutable state), so the result
// vector -- and therefore any table printed from it in index order -- is
// byte-identical regardless of thread count. Workers pull tasks from a
// shared atomic counter (no partitioning skew); exceptions are captured per
// task and the first one (in task order) is rethrown on the caller's thread.
// Tasks must not call require()/std::exit -- return the verdict and let the
// caller aggregate.
template <typename Fn>
auto parallel_map(std::size_t task_count, std::size_t threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::vector<Result> results(task_count);
  std::vector<std::exception_ptr> errors(task_count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < task_count; ++i) {
      try {
        results[i] = fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      while (true) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= task_count) return;
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

}  // namespace minmach::bench
