// Shared scaffolding for the experiment drivers: a uniform header block and
// a hard-failure helper (a violated invariant makes the binary exit
// non-zero so CI catches regressions in the reproduced results).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

namespace minmach::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << experiment << "\n"
            << "paper claim: " << paper_claim << "\n"
            << "================================================================\n";
}

inline void require(bool condition, const std::string& message) {
  if (!condition) {
    std::cerr << "EXPERIMENT INVARIANT VIOLATED: " << message << "\n";
    std::exit(1);
  }
}

}  // namespace minmach::bench
