// Q1 -- query engine: the affine-canonical OPT cache and speculative
// parallel probing (DESIGN.md section 11) against the plain sequential
// oracle, on the workloads they were built for.
//
// Three phases, each cross-checked for exact result equality:
//
//   strong-lb family : every recursion level of the Theorem 3 adversary,
//       for k = 2..levels, harvested as sub-instances via the recorded
//       level slices. Run k's first subtree is an exact replay of run
//       k-1's whole tree (fresh deterministic policy), and the scaled
//       copies are affine images of their siblings -- so the canonical
//       fingerprints collide by construction. Queried --repeats times per
//       mode; enforced >= 5x fewer executed network probes with the cache
//       on, with a nonzero cache.hits tally.
//   shrink sweep     : the Lemma 3 window-shrink experiment body (4 gamma
//       points x --trials general instances, base queried once per gamma
//       point exactly as e05 does), three back-to-back passes per mode
//       without clearing the cache. Enforced >= 1.5x wall clock with the
//       cache on at full size (recorded, not enforced, at smoke sizes --
//       wall ratios on tiny inputs are scheduler noise).
//   speculation      : speculate=3 vs the sequential search, cache off so
//       probe counts are comparable. Enforced: identical machine counts,
//       and total speculative probes <= sequential probes plus the
//       (live - 1) x rounds overhead bound (each round retires at most
//       live - 1 candidates that monotonicity already implied).
//
// The phases configure the global OptCache themselves (the --cache flag
// still parses, but this driver A/Bs both modes in one run). Cache and
// speculation tallies are execution-class, so the --report bytes stay
// identical whatever this driver does to the cache. Writes --out
// (BENCH_query.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/adversary/strong_lb.hpp"
#include "minmach/algos/nonmig.hpp"
#include "minmach/core/transforms.hpp"
#include "minmach/flow/query.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/util/opt_cache.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

namespace {

using namespace minmach;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Every level slice of the k-level adversary games, k = 2..levels. Each run
// plays against a fresh deterministic first-fit opponent, so run k's first
// build(k-1) subtree releases byte-identical jobs to run k-1's whole game.
std::vector<Instance> strong_lb_family(int levels) {
  std::vector<Instance> out;
  for (int k = 2; k <= levels; ++k) {
    FitPolicy policy(FitRule::kFirstFit, /*seed=*/123);
    StrongLbResult result = run_strong_lower_bound(policy, k);
    for (const StrongLbLevelSlice& slice : result.level_slices)
      out.push_back(slice_instance(result, slice));
  }
  return out;
}

struct FamilyMeasurement {
  std::uint64_t probes = 0;      // network probes actually executed
  std::uint64_t cache_hits = 0;  // cache.hits registry delta
  std::uint64_t checksum = 0;    // order-sensitive fold of the OPT values
  double wall_ms = 0.0;
};

// Queries every instance `repeats` times sequentially in the given cache
// mode (reconfiguring -- and thereby clearing -- the global cache first).
FamilyMeasurement run_family(const std::vector<Instance>& family, int repeats,
                             bool cache_on, std::size_t capacity) {
  util::OptCache::global().configure(cache_on, capacity);
  obs::Registry& registry = obs::Registry::global();
  obs::drain_hot_tallies();
  const std::uint64_t hits0 = registry.counter("cache.hits").value();

  FamilyMeasurement out;
  const Clock::time_point start = Clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    for (const Instance& instance : family) {
      QueryStats stats = query_optimal_machines_stats(instance);
      out.probes += stats.probes;
      out.checksum = out.checksum * 1099511628211ULL +
                     static_cast<std::uint64_t>(stats.machines);
    }
  }
  out.wall_ms = ms_since(start);
  obs::drain_hot_tallies();
  out.cache_hits = registry.counter("cache.hits").value() - hits0;
  return out;
}

// One pass of the e05-style window-shrink sweep: per gamma point, OPT of
// the base instance and of its left-shrunk image. The repeated base queries
// are exactly what the sweep drivers do per row -- and exactly what the
// canonical cache collapses.
std::uint64_t shrink_sweep_pass(const std::vector<Instance>& bases,
                                const std::vector<Rat>& gammas) {
  std::uint64_t checksum = 0;
  for (const Rat& gamma : gammas) {
    for (const Instance& base : bases) {
      checksum = checksum * 1099511628211ULL +
                 static_cast<std::uint64_t>(query_optimal_machines(base));
      checksum = checksum * 1099511628211ULL +
                 static_cast<std::uint64_t>(query_optimal_machines(
                     shrink_window_left(base, gamma)));
    }
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int levels = static_cast<int>(cli.get_int("levels", 6));
  const int repeats = static_cast<int>(cli.get_int("repeats", 3));
  const std::size_t sweep_n =
      static_cast<std::size_t>(cli.get_int("sweep-n", 48));
  const int trials = static_cast<int>(cli.get_int("trials", 3));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));
  const std::string out_path = cli.get_string("out", "BENCH_query.json");
  bench::Run ctx(cli,
                 "Q1: query engine -- canonical OPT cache + speculation",
                 "affine-equal subproblems are answered once; speculative "
                 "probing stays within the sequential probe budget");
  cli.check_unknown();
  bench::require(levels >= 2, "--levels must be >= 2");
  bench::require(repeats >= 1, "--repeats must be >= 1");
  bench::require(trials >= 1, "--trials must be >= 1");
  ctx.config("levels", static_cast<std::int64_t>(levels));
  ctx.config("repeats", static_cast<std::int64_t>(repeats));
  ctx.config("sweep-n", static_cast<std::int64_t>(sweep_n));
  ctx.config("trials", static_cast<std::int64_t>(trials));
  ctx.config("seed", static_cast<std::int64_t>(seed));

  const std::size_t capacity =
      static_cast<std::size_t>(bench::kDefaultCacheCapacity);

  // --- phase A: strong-lb family, cache off vs on -------------------------
  const std::vector<Instance> family = strong_lb_family(levels);
  std::size_t family_jobs = 0;
  for (const Instance& instance : family) family_jobs += instance.size();
  FamilyMeasurement off = run_family(family, repeats, /*cache_on=*/false,
                                     capacity);
  FamilyMeasurement on = run_family(family, repeats, /*cache_on=*/true,
                                    capacity);
  bench::require(off.checksum == on.checksum,
                 "strong-lb family: cached OPT values disagree with uncached");

  Table family_table({"mode", "queries", "probes", "cache hits", "wall ms"});
  const std::size_t query_count = family.size() * static_cast<std::size_t>(repeats);
  family_table.add_row({"cache-off", std::to_string(query_count),
                        std::to_string(off.probes),
                        std::to_string(off.cache_hits),
                        Table::fmt(off.wall_ms, 2)});
  family_table.add_row({"cache-on", std::to_string(query_count),
                        std::to_string(on.probes),
                        std::to_string(on.cache_hits),
                        Table::fmt(on.wall_ms, 2)});
  family_table.print(std::cout);
  ctx.table("strong-lb family (" + std::to_string(family.size()) +
                " level slices, " + std::to_string(family_jobs) + " jobs)",
            family_table);

  const double probe_ratio =
      static_cast<double>(off.probes) /
      static_cast<double>(std::max<std::uint64_t>(1, on.probes));
  ctx.check("strong-lb family: executed probes reduced >= 5x with cache",
            Table::fmt(probe_ratio, 2), ">= 5", probe_ratio >= 5.0);
  ctx.check("strong-lb family: canonical fingerprints collided (cache hits)",
            std::to_string(on.cache_hits), ">= 1", on.cache_hits >= 1);
  ctx.check("strong-lb family: cache-off runs uncached",
            std::to_string(off.cache_hits), "0", off.cache_hits == 0);

  // --- phase B: window-shrink sweep wall clock ----------------------------
  Rng rng(seed);
  GenConfig config;
  config.n = sweep_n;
  std::vector<Instance> bases;
  bases.reserve(static_cast<std::size_t>(trials));
  for (int trial = 0; trial < trials; ++trial)
    bases.push_back(gen_general(rng, config));
  const std::vector<Rat> gammas = {Rat(1, 4), Rat(1, 2), Rat(2, 3),
                                   Rat(4, 5)};

  // Three back-to-back passes per mode, cache never cleared between them:
  // pass one collapses the per-gamma repeat queries, the later passes are
  // what re-runs of the same sweep (parameter studies, bisection) cost.
  const int passes = 3;
  auto run_sweep = [&](bool cache_on, double& wall_ms) {
    util::OptCache::global().configure(cache_on, capacity);
    std::uint64_t checksum = 0;
    const Clock::time_point start = Clock::now();
    for (int pass = 0; pass < passes; ++pass) {
      const std::uint64_t pass_sum = shrink_sweep_pass(bases, gammas);
      bench::require(pass == 0 || pass_sum == checksum,
                     "shrink sweep: passes disagree within one mode");
      checksum = pass_sum;
    }
    wall_ms = ms_since(start);
    return checksum;
  };
  double sweep_off_ms = 0.0, sweep_on_ms = 0.0;
  const std::uint64_t sweep_off = run_sweep(/*cache_on=*/false, sweep_off_ms);
  const std::uint64_t sweep_on = run_sweep(/*cache_on=*/true, sweep_on_ms);
  bench::require(sweep_off == sweep_on,
                 "shrink sweep: cached results disagree with uncached");

  const double sweep_speedup = sweep_off_ms / std::max(1e-9, sweep_on_ms);
  Table sweep_table({"mode", "passes", "wall ms"});
  sweep_table.add_row({"cache-off", std::to_string(passes),
                       Table::fmt(sweep_off_ms, 2)});
  sweep_table.add_row({"cache-on", std::to_string(passes),
                       Table::fmt(sweep_on_ms, 2)});
  sweep_table.print(std::cout);
  ctx.table("window-shrink sweep (4 gammas x " + std::to_string(trials) +
                " instances, n=" + std::to_string(sweep_n) + ")",
            sweep_table);
  // Wall ratios on sub-millisecond smoke inputs measure the scheduler, not
  // the cache; the threshold binds only at full sweep size.
  const bool full_size = sweep_n >= 32;
  ctx.check(full_size
                ? "shrink sweep: wall speedup >= 1.5x with cache"
                : "shrink sweep: wall speedup (recorded, smoke size)",
            Table::fmt(sweep_speedup, 2), full_size ? ">= 1.5" : "> 0",
            full_size ? sweep_speedup >= 1.5 : sweep_speedup > 0.0);

  // --- phase C: speculative probing vs sequential search ------------------
  util::OptCache::global().configure(false, capacity);
  const int live = 3;
  std::uint64_t seq_probes = 0, spec_probes = 0, spec_rounds = 0,
                spec_retired = 0;
  QueryOptions sequential;
  sequential.speculate = 0;
  QueryOptions speculative;
  speculative.speculate = live;
  std::vector<Instance> probe_set = bases;
  for (const Instance& instance : family)
    if (instance.size() >= 8) probe_set.push_back(instance);
  for (const Instance& instance : probe_set) {
    QueryStats seq = query_optimal_machines_stats(instance, sequential);
    QueryStats spec = query_optimal_machines_stats(instance, speculative);
    bench::require(seq.machines == spec.machines,
                   "speculation: machine counts diverge from sequential");
    seq_probes += seq.probes;
    spec_probes += spec.probes;
    spec_rounds += spec.rounds;
    spec_retired += spec.retired;
  }
  const std::uint64_t probe_bound =
      seq_probes + static_cast<std::uint64_t>(live - 1) * spec_rounds;

  Table spec_table({"search", "probes", "rounds", "retired"});
  spec_table.add_row({"sequential", std::to_string(seq_probes), "-", "-"});
  spec_table.add_row({"speculate=3", std::to_string(spec_probes),
                      std::to_string(spec_rounds),
                      std::to_string(spec_retired)});
  spec_table.print(std::cout);
  ctx.table("speculative probing (" + std::to_string(probe_set.size()) +
                " instances, cache off)",
            spec_table);
  ctx.check("speculation: probes within sequential + (live-1) x rounds",
            std::to_string(spec_probes), "<= " + std::to_string(probe_bound),
            spec_probes <= probe_bound);
  ctx.check("speculation: rounds launched", std::to_string(spec_rounds),
            ">= 1", spec_rounds >= 1);

  // Leave the process-wide cache the way library users find it.
  util::OptCache::global().configure(false, capacity);

  // Machine-readable record (wall times included, so this file is NOT
  // byte-deterministic -- unlike --report).
  std::ofstream os(out_path);
  bench::require(static_cast<bool>(os), "cannot open " + out_path);
  obs::JsonWriter json(os);
  json.begin_object();
  bench::write_bench_stamp(json);
  json.key("experiment").value("q01_query_engine");
  json.key("seed").value(static_cast<std::int64_t>(seed));
  json.key("strong_lb_family").begin_object();
  json.key("levels").value(static_cast<std::int64_t>(levels));
  json.key("repeats").value(static_cast<std::int64_t>(repeats));
  json.key("slices").value(static_cast<std::int64_t>(family.size()));
  json.key("jobs").value(static_cast<std::int64_t>(family_jobs));
  json.key("probes_off").value(off.probes);
  json.key("probes_on").value(on.probes);
  json.key("probe_ratio").value(probe_ratio);
  json.key("cache_hits").value(on.cache_hits);
  json.key("wall_off_ms").value(off.wall_ms);
  json.key("wall_on_ms").value(on.wall_ms);
  json.end_object();
  json.key("shrink_sweep").begin_object();
  json.key("gammas").value(static_cast<std::int64_t>(gammas.size()));
  json.key("trials").value(static_cast<std::int64_t>(trials));
  json.key("n").value(static_cast<std::int64_t>(sweep_n));
  json.key("passes").value(static_cast<std::int64_t>(passes));
  json.key("wall_off_ms").value(sweep_off_ms);
  json.key("wall_on_ms").value(sweep_on_ms);
  json.key("speedup").value(sweep_speedup);
  json.key("threshold_enforced").value(full_size);
  json.end_object();
  json.key("speculation").begin_object();
  json.key("live").value(static_cast<std::int64_t>(live));
  json.key("instances").value(static_cast<std::int64_t>(probe_set.size()));
  json.key("sequential_probes").value(seq_probes);
  json.key("speculative_probes").value(spec_probes);
  json.key("rounds").value(spec_rounds);
  json.key("retired").value(spec_retired);
  json.key("probe_bound").value(probe_bound);
  json.end_object();
  json.end_object();
  os << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
