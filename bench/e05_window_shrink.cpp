// E5 -- Lemma 3: removing a gamma-fraction of every job's laxity from one
// side of its window raises the optimum by at most a 1/(1-gamma) factor
// (plus one): m(J^gamma) <= m(J)/(1-gamma) + 1. Both the left- and
// right-shrunk variants are measured across gamma.
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/core/transforms.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::int64_t trials = cli.get_int("trials", 6);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  const std::int64_t threads_request = bench::threads_flag(cli);
  bench::Run ctx(cli, "E5: window shrinking (Lemma 3)",
                 "m(J^gamma) <= m(J)/(1-gamma) + 1 for both one-sided shrinks");
  cli.check_unknown();
  ctx.config("trials", trials);
  ctx.config("seed", static_cast<std::int64_t>(seed));

  const Rat gammas[] = {Rat(1, 4), Rat(1, 2), Rat(2, 3), Rat(4, 5)};
  const std::size_t gamma_count = std::size(gammas);

  // One task per gamma; each seeds its own Rng so rows are identical at any
  // thread count.
  struct GammaResult {
    std::vector<std::string> row;
    int violations = 0;
  };
  auto results = bench::parallel_map(
      gamma_count, bench::resolve_threads(threads_request, gamma_count),
      [&](std::size_t index) {
        const Rat& gamma = gammas[index];
        Rng rng(seed);
        GenConfig config;
        config.n = 50;
        double sum_m = 0;
        double sum_left = 0;
        double sum_right = 0;
        double sum_bound = 0;
        GammaResult out;
        for (std::int64_t trial = 0; trial < trials; ++trial) {
          Instance in = gen_general(rng, config);
          std::int64_t m = optimal_migratory_machines(in);
          std::int64_t left = optimal_migratory_machines(
              shrink_window_left(in, gamma));
          std::int64_t right = optimal_migratory_machines(
              shrink_window_right(in, gamma));
          Rat bound = Rat(m) / (Rat(1) - gamma) + Rat(1);
          if (Rat(left) > bound || Rat(right) > bound) ++out.violations;
          sum_m += static_cast<double>(m);
          sum_left += static_cast<double>(left);
          sum_right += static_cast<double>(right);
          sum_bound += bound.to_double();
        }
        double t = static_cast<double>(trials);
        out.row = {gamma.to_string(), Table::fmt(sum_m / t, 2),
                   Table::fmt(sum_left / t, 2), Table::fmt(sum_right / t, 2),
                   Table::fmt(sum_bound / t, 2),
                   std::to_string(out.violations)};
        return out;
      });

  Table table({"gamma", "m(J) avg", "m(left) avg", "m(right) avg",
               "bound avg", "violations"});
  int total_violations = 0;
  for (const GammaResult& result : results) {
    table.add_row(result.row);
    total_violations += result.violations;
  }
  table.print(std::cout);
  ctx.table("shrunk optima vs Lemma 3 bound", table);
  ctx.check("Lemma 3 bound violations", std::to_string(total_violations), "0",
            total_violations == 0);
  std::cout << "\nShape check: the measured shrunk optima sit well below "
               "the m/(1-gamma)+1 bound at\nevery gamma, and grow as gamma "
               "-> 1 (laxity removal genuinely costs machines).\n";
  return 0;
}
