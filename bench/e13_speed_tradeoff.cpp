// E13 -- Theorem 7 (Chan, Lam & To, quoted in Section 4): with speed
// (1+eps)^2, a non-migratory online algorithm needs only ceil((1+1/eps)^2)
// * m machines -- a speed/machine-count trade-off. The sweep runs the
// library's speed-s black box (non-migratory EDF-FirstFit with exact
// admission) at increasing speeds on random instances and reports the
// measured machines/m against the CLT bound: more speed, fewer machines.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/algos/nonmig.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/sim/engine.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 13));
  const std::int64_t trials = cli.get_int("trials", 5);
  const std::int64_t threads_request = bench::threads_flag(cli);
  bench::Run ctx(cli, "E13: speed / machine trade-off (Theorem 7, "
                      "Chan-Lam-To)",
                 "speed (1+eps)^2 machines suffice at ceil((1+1/eps)^2) * m; "
                 "the machines-per-m curve falls as speed rises");
  cli.check_unknown();
  ctx.config("seed", static_cast<std::int64_t>(seed));
  ctx.config("trials", trials);

  const Rat speeds[] = {Rat(1), Rat(5, 4), Rat(3, 2), Rat(2), Rat(3)};
  const std::size_t speed_count = std::size(speeds);

  // One task per speed; each seeds its own Rng so rows are identical at any
  // thread count. The cross-speed monotonicity check runs at aggregation.
  struct SpeedResult {
    std::vector<std::string> row;
    double avg = 0;
    std::string failure;
  };
  auto results = bench::parallel_map(
      speed_count, bench::resolve_threads(threads_request, speed_count),
      [&](std::size_t index) {
        const Rat& s = speeds[index];
        Rng rng(seed);
        GenConfig config;
        config.n = 60;
        double sum_ratio = 0;
        double max_ratio = 0;
        SpeedResult out;
        for (std::int64_t trial = 0; trial < trials; ++trial) {
          Instance in = gen_general(rng, config);
          std::int64_t m = std::max<std::int64_t>(
              1, optimal_migratory_machines(in));
          FitPolicy policy(FitRule::kFirstFit);
          SimRun run = simulate(policy, in, s, /*require_no_miss=*/true);
          ValidateOptions options;
          options.require_non_migratory = true;
          options.speed = s;
          auto audit = validate(in, run.schedule, options);
          if (!audit.ok && out.failure.empty())
            out.failure = "speed-s schedule invalid: " + audit.summary();
          double ratio = static_cast<double>(run.machines_used) /
                         static_cast<double>(m);
          sum_ratio += ratio;
          max_ratio = std::max(max_ratio, ratio);
        }
        double sd = s.to_double();
        double eps = std::sqrt(sd) - 1.0;
        std::string bound =
            eps > 0 ? Table::fmt(std::ceil((1 + 1 / eps) * (1 + 1 / eps)), 0)
                    : "unbounded";
        out.avg = sum_ratio / static_cast<double>(trials);
        out.row = {s.to_string(), Table::fmt(eps, 3), bound,
                   Table::fmt(out.avg, 3), Table::fmt(max_ratio, 3)};
        return out;
      });

  Table table({"speed s", "eps = sqrt(s)-1", "CLT bound/m",
               "measured machines/m avg", "max"});
  double previous_avg = 1e18;
  bool monotone = true;
  for (const SpeedResult& result : results) {
    bench::require(result.failure.empty(), result.failure);
    table.add_row(result.row);
    if (result.avg > previous_avg + 0.25) monotone = false;
    previous_avg = result.avg;
  }
  table.print(std::cout);
  ctx.table("machines/m vs speed", table);
  ctx.check("machines/m non-increasing in speed", monotone ? "yes" : "no",
            "yes", monotone);
  std::cout << "\nShape check: the measured machines-per-m curve is "
               "non-increasing in the speed and\nsits far below the CLT "
               "worst-case bound -- the trade-off Theorem 6 plugs into.\n";
  return 0;
}
