// E10 -- Theorem 15 / Lemma 9: no online algorithm (even migratory) can
// schedule all agreeable unit-processing instances on fewer than
// (6 - 2 sqrt(6)) m ~ 1.101 m machines. The adaptive wave adversary is run
// against EDF and LLF across a budget sweep crossing the threshold: below
// it the opponents are forced to miss (the zero-laxity threat branch fires
// once their backlog makes it unservable); with comfortable budgets they
// survive every round.
#include <iostream>

#include "bench/bench_common.hpp"
#include "minmach/adversary/agreeable_lb.hpp"
#include "minmach/algos/edf.hpp"
#include "minmach/algos/llf.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::int64_t m = cli.get_int("m", 16);
  const int rounds = static_cast<int>(cli.get_int("rounds", 60));
  const bool certify = cli.get_bool("certify", true);
  bench::Run ctx(cli, "E10: lower bound for agreeable instances (Theorem 15)",
                 "no online algorithm on (6 - 2*sqrt(6) - eps) m ~ 1.101 m "
                 "machines; identical processing times, agreeable waves");
  cli.check_unknown();
  ctx.config("m", m);
  ctx.config("rounds", static_cast<std::int64_t>(rounds));
  ctx.config("certify", certify ? "true" : "false");

  Table table({"opponent", "budget", "budget/m", "rounds survived",
               "threat fired", "missed", "OPT <= m"});
  struct BudgetCase {
    std::int64_t budget;
  };
  for (const char* kind : {"EDF", "LLF"}) {
    for (std::int64_t budget :
         {m, m + m / 16, m + m / 8, m + m / 4, m + m / 2, 2 * m}) {
      AgreeableLbParams params;
      params.m = m;
      params.alpha = Rat(1, 4);
      params.max_rounds = rounds;
      params.opponent_budget = budget;

      AgreeableLbResult result;
      if (std::string(kind) == "EDF") {
        EdfPolicy policy(static_cast<std::size_t>(budget));
        result = run_agreeable_lower_bound(policy, params);
      } else {
        LlfPolicy policy(static_cast<std::size_t>(budget), Rat(1, 8));
        result = run_agreeable_lower_bound(policy, params);
      }

      std::string opt_ok = "-";
      if (certify && result.jobs <= 600) {
        std::int64_t opt = optimal_migratory_machines(result.instance);
        bench::require(opt <= m, "adversary instance needs > m machines");
        opt_ok = "yes (" + std::to_string(opt) + ")";
      }
      table.add_row({kind, std::to_string(budget),
                     Table::fmt(static_cast<double>(budget) /
                                static_cast<double>(m), 3),
                     std::to_string(result.rounds_survived),
                     result.threat_released ? "yes" : "no",
                     result.missed ? "YES" : "no", opt_ok});
    }
  }
  table.print(std::cout);
  ctx.table("wave adversary vs EDF/LLF across budgets", table);
  std::cout << "\nShape check: at budget/m ~ 1.0 every opponent is forced "
               "to miss within a few waves;\nthe survival boundary sits "
               "near the paper's 1.101 threshold, and the released\n"
               "instances stay feasible on m machines (agreeable, unit "
               "jobs).\n";
  return 0;
}
