// O1 -- oracle scaling: segment-tree compression + warm-started probes +
// sweep load bound vs the pre-compression oracle (dense edges, cold
// probes, density-only bound).
//
// Sweeps n over --sizes, computing exact migratory OPT per instance with
// both oracle configurations (the legacy baseline is capped at
// --baseline-cap jobs; beyond that only the fast oracle runs) and records
// wall time, flow.edge_visits, probe counts, and the warm/cold split to
// --out (BENCH_oracle.json). Two invariants are enforced at the largest
// size both configurations ran: the compressed/warm oracle must scan at
// least 10x fewer residual edges per OPT computation (deterministic) and
// be at least 5x faster by wall clock.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

namespace {

struct Measurement {
  std::int64_t opt = 0;
  double wall_ms = 0.0;
  std::uint64_t edge_visits = 0;
  std::uint64_t probes = 0;
  std::uint64_t warm_probes = 0;
  std::uint64_t cold_probes = 0;
};

// One full OPT computation (build + search) under the given options, with
// the flow/oracle counter deltas attributed to it.
Measurement measure(const minmach::Instance& instance,
                    const minmach::OracleOptions& options) {
  using Clock = std::chrono::steady_clock;
  minmach::obs::Registry& registry = minmach::obs::Registry::global();
  minmach::obs::drain_hot_tallies();
  const std::uint64_t edges0 = registry.counter("flow.edge_visits").value();
  const std::uint64_t probes0 = registry.counter("oracle.probes").value();
  const std::uint64_t warm0 = registry.counter("oracle.warm_probes").value();
  const std::uint64_t cold0 = registry.counter("oracle.cold_probes").value();

  Measurement out;
  const Clock::time_point start = Clock::now();
  {
    minmach::FeasibilityOracle oracle(instance, options);
    out.opt = oracle.optimal_machines();
  }
  out.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  minmach::obs::drain_hot_tallies();
  out.edge_visits = registry.counter("flow.edge_visits").value() - edges0;
  out.probes = registry.counter("oracle.probes").value() - probes0;
  out.warm_probes = registry.counter("oracle.warm_probes").value() - warm0;
  out.cold_probes = registry.counter("oracle.cold_probes").value() - cold0;
  return out;
}

std::vector<std::int64_t> parse_sizes(const std::string& csv) {
  std::vector<std::int64_t> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) out.push_back(std::stoll(token));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::string sizes_csv =
      cli.get_string("sizes", "250,500,1000,2000,4000");
  const std::int64_t baseline_cap = cli.get_int("baseline-cap", 2000);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string out_path = cli.get_string("out", "BENCH_oracle.json");
  bench::Run ctx(cli,
                 "O1: oracle scaling -- compressed network + warm probes",
                 "OPT oracle in O(n log S) edges and ~one max-flow total");
  cli.check_unknown();
  const std::vector<std::int64_t> sizes = parse_sizes(sizes_csv);
  ctx.config("sizes", sizes_csv);
  ctx.config("baseline-cap", baseline_cap);
  ctx.config("seed", static_cast<std::int64_t>(seed));

  struct Row {
    std::string family;
    std::int64_t n = 0;
    Measurement fast;
    Measurement legacy;
    bool has_legacy = false;
  };
  std::vector<Row> rows;

  struct Family {
    const char* name;
    Instance (*generate)(Rng&, const GenConfig&);
    GenConfig (*config)(std::int64_t n);
    // Families the compression targets (p_j <= segment lengths, wide
    // windows) carry the acceptance checks; tight families are recorded
    // to document the graceful degradation but not enforced.
    bool checked;
  };
  const Family families[] = {
      // Unit jobs on an integer grid with windows as wide as the horizon:
      // every leaf is uncapped, so each job covers its ~S/2 in-window
      // segments with O(log S) tree edges, and the load keeps OPT ~ 8.
      {"unit-wide", gen_unit,
       [](std::int64_t n) {
         const std::int64_t horizon = std::max<std::int64_t>(4, n / 8);
         return GenConfig{static_cast<std::size_t>(n), horizon, horizon, 1};
       },
       true},
      // General jobs with p_j a random fraction of a narrow window: most
      // in-window segments are shorter than p_j, so the compressed network
      // degrades toward dense direct edges (the warm start and sweep bound
      // still apply).
      {"general", gen_general,
       [](std::int64_t n) {
         return GenConfig{static_cast<std::size_t>(n), 2 * n,
                          std::max<std::int64_t>(8, n / 8), 2};
       },
       false},
  };

  Table table({"family", "n", "opt", "fast ms", "fast edges", "warm/cold",
               "legacy ms", "legacy edges", "speedup", "edge ratio"});
  for (const Family& family : families) {
    for (std::int64_t n : sizes) {
      const GenConfig config = family.config(n);
      Rng rng(seed + static_cast<std::uint64_t>(n));
      const Instance instance = family.generate(rng, config);

      Row row;
      row.family = family.name;
      row.n = n;
      row.fast = measure(instance, OracleOptions{});
      row.has_legacy = n <= baseline_cap;
      if (row.has_legacy) {
        row.legacy = measure(instance, OracleOptions::legacy());
        bench::require(row.legacy.opt == row.fast.opt,
                       "fast and legacy oracles disagree on OPT");
      }
      rows.push_back(row);

      const double speedup =
          row.has_legacy && row.fast.wall_ms > 0.0
              ? row.legacy.wall_ms / row.fast.wall_ms
              : 0.0;
      const double edge_ratio =
          row.has_legacy && row.fast.edge_visits > 0
              ? static_cast<double>(row.legacy.edge_visits) /
                    static_cast<double>(row.fast.edge_visits)
              : 0.0;
      table.add_row({row.family, std::to_string(row.n),
                 std::to_string(row.fast.opt), Table::fmt(row.fast.wall_ms, 2),
                 std::to_string(row.fast.edge_visits),
                 std::to_string(row.fast.warm_probes) + "/" +
                     std::to_string(row.fast.cold_probes),
                 row.has_legacy ? Table::fmt(row.legacy.wall_ms, 2) : "-",
                 row.has_legacy ? std::to_string(row.legacy.edge_visits) : "-",
                 row.has_legacy ? Table::fmt(speedup, 1) : "-",
                 row.has_legacy ? Table::fmt(edge_ratio, 1) : "-"});
    }
  }
  table.print(std::cout);
  ctx.table("oracle scaling", table);

  // Acceptance at the largest size both configurations ran (per family):
  // >= 10x fewer residual-edge visits (deterministic) and >= 5x wall
  // speedup for one exact OPT computation.
  for (const Family& family : families) {
    if (!family.checked) continue;
    const Row* largest = nullptr;
    for (const Row& row : rows) {
      if (row.family == family.name && row.has_legacy &&
          (!largest || row.n > largest->n))
        largest = &row;
    }
    if (!largest) continue;
    const double edge_ratio =
        static_cast<double>(largest->legacy.edge_visits) /
        static_cast<double>(std::max<std::uint64_t>(1, largest->fast.edge_visits));
    const double speedup = largest->legacy.wall_ms /
                           std::max(1e-9, largest->fast.wall_ms);
    ctx.check(std::string(family.name) + ": edge visits ratio >= 10 at n=" +
                  std::to_string(largest->n),
              Table::fmt(edge_ratio, 2), ">= 10", edge_ratio >= 10.0);
    ctx.check(std::string(family.name) + ": wall speedup >= 5 at n=" +
                  std::to_string(largest->n),
              Table::fmt(speedup, 2), ">= 5", speedup >= 5.0);
  }

  // Machine-readable record (wall times included, so this file is NOT
  // byte-deterministic -- unlike --report).
  std::ofstream os(out_path);
  bench::require(static_cast<bool>(os), "cannot open " + out_path);
  obs::JsonWriter json(os);
  json.begin_object();
  bench::write_bench_stamp(json);
  json.key("experiment").value("o01_oracle_scaling");
  json.key("seed").value(static_cast<std::int64_t>(seed));
  json.key("rows").begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.key("family").value(row.family);
    json.key("n").value(row.n);
    json.key("opt").value(row.fast.opt);
    json.key("fast_wall_ms").value(row.fast.wall_ms);
    json.key("fast_edge_visits").value(row.fast.edge_visits);
    json.key("fast_probes").value(row.fast.probes);
    json.key("warm_probes").value(row.fast.warm_probes);
    json.key("cold_probes").value(row.fast.cold_probes);
    if (row.has_legacy) {
      json.key("legacy_wall_ms").value(row.legacy.wall_ms);
      json.key("legacy_edge_visits").value(row.legacy.edge_visits);
      json.key("legacy_probes").value(row.legacy.probes);
      json.key("wall_speedup")
          .value(row.legacy.wall_ms / std::max(1e-9, row.fast.wall_ms));
      json.key("edge_visit_ratio")
          .value(static_cast<double>(row.legacy.edge_visits) /
                 static_cast<double>(
                     std::max<std::uint64_t>(1, row.fast.edge_visits)));
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
