// E11 -- Theorem 13 (quoted from [4]): EDF on m/(1-alpha)^2 machines
// schedules every instance of alpha-loose jobs. The sweep measures the
// MINIMAL machine budget EDF actually needs and compares it to the bound.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/adversary/edf_lb.hpp"
#include "minmach/algos/edf.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 11));
  const std::int64_t trials = cli.get_int("trials", 4);
  const std::int64_t threads_request = bench::threads_flag(cli);
  bench::Run ctx(cli, "E11: EDF on alpha-loose instances (Theorem 13)",
                 "EDF is feasible on ceil(m/(1-alpha)^2) machines for "
                 "alpha-loose instances");
  cli.check_unknown();
  ctx.config("seed", static_cast<std::int64_t>(seed));
  ctx.config("trials", trials);

  const Rat alphas[] = {Rat(1, 4), Rat(1, 2), Rat(2, 3), Rat(3, 4)};
  const std::size_t alpha_count = std::size(alphas);

  // One task per alpha; each seeds its own Rng so rows are identical at any
  // thread count.
  struct AlphaResult {
    std::vector<std::string> row;
    int violations = 0;
    bool budget_found = true;
  };
  auto results = bench::parallel_map(
      alpha_count, bench::resolve_threads(threads_request, alpha_count),
      [&](std::size_t index) {
        const Rat& alpha = alphas[index];
        Rng rng(seed);
        GenConfig config;
        config.n = 60;
        double sum_m = 0;
        double sum_bound = 0;
        double sum_min = 0;
        AlphaResult out;
        for (std::int64_t trial = 0; trial < trials; ++trial) {
          Instance in = gen_loose(rng, config, alpha);
          std::int64_t m = std::max<std::int64_t>(
              1, optimal_migratory_machines(in));
          Rat one_minus = Rat(1) - alpha;
          std::int64_t bound =
              (Rat(m) / (one_minus * one_minus)).ceil().to_int64();
          auto factory = [](std::size_t budget) {
            return std::make_unique<EdfPolicy>(budget);
          };
          auto minimal = min_feasible_budget(
              factory, in, 1, static_cast<std::size_t>(bound) + 4);
          if (!minimal.has_value()) {
            out.budget_found = false;
            continue;
          }
          if (*minimal > static_cast<std::size_t>(bound)) ++out.violations;
          sum_m += static_cast<double>(m);
          sum_bound += static_cast<double>(bound);
          sum_min += static_cast<double>(*minimal);
        }
        double t = static_cast<double>(trials);
        out.row = {alpha.to_string(), Table::fmt(sum_m / t, 2),
                   Table::fmt(sum_bound / t, 2), Table::fmt(sum_min / t, 2),
                   Table::fmt(sum_min / sum_bound, 3),
                   std::to_string(out.violations)};
        return out;
      });

  Table table({"alpha", "m avg", "bound ceil(m/(1-a)^2) avg",
               "EDF minimal budget avg", "minimal/bound", "violations"});
  int total_violations = 0;
  for (const AlphaResult& result : results) {
    bench::require(result.budget_found,
                   "EDF infeasible even slightly above the bound");
    table.add_row(result.row);
    total_violations += result.violations;
  }
  table.print(std::cout);
  ctx.table("EDF minimal budget vs Theorem 13 bound", table);
  ctx.check("Theorem 13 budget violations", std::to_string(total_violations),
            "0", total_violations == 0);
  std::cout << "\nShape check: EDF's minimal budget tracks m and stays at "
               "or below the m/(1-alpha)^2\nbound at every alpha; the bound "
               "steepens as alpha -> 1 (tighter jobs).\n";
  return 0;
}
