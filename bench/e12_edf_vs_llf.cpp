// E12 -- the Section 1 baselines (Phillips et al.): LLF is O(log Delta)-
// competitive while EDF has an Omega(Delta) lower bound. On the Dhall
// gadget family (Delta lights with an earlier deadline + one near-zero-
// laxity heavy; migratory OPT = 2 for every Delta), EDF's minimal feasible
// budget grows linearly in Delta while LLF's stays constant.
#include <iostream>

#include "bench/bench_common.hpp"
#include "minmach/adversary/edf_lb.hpp"
#include "minmach/algos/edf.hpp"
#include "minmach/algos/llf.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::int64_t max_delta = cli.get_int("max-delta", 64);
  bench::Run ctx(cli, "E12: EDF vs LLF as Delta grows (Phillips et al. "
                      "baselines)",
                 "EDF requires Omega(Delta) * OPT machines on some "
                 "instances; LLF stays polylog (O(log Delta))");
  cli.check_unknown();
  ctx.config("max-delta", max_delta);

  auto edf_factory = [](std::size_t budget) {
    return std::make_unique<EdfPolicy>(budget);
  };
  auto llf_factory = [](std::size_t budget) {
    return std::make_unique<LlfPolicy>(budget, Rat(1, 64));
  };

  Table table({"Delta", "OPT", "EDF minimal budget", "LLF minimal budget",
               "EDF/OPT", "LLF/OPT"});
  std::size_t previous_edf = 0;
  std::size_t last_llf = 0;
  for (std::int64_t delta = 4; delta <= max_delta; delta *= 2) {
    Instance in = gen_dhall(delta);
    std::int64_t opt = optimal_migratory_machines(in);
    bench::require(opt == 2, "Dhall gadget OPT must be 2");
    auto edf = min_feasible_budget(edf_factory, in, 1,
                                   static_cast<std::size_t>(delta) + 2);
    auto llf = min_feasible_budget(llf_factory, in, 1, 16);
    bench::require(edf.has_value(), "EDF search range too small");
    bench::require(llf.has_value(), "LLF should be feasible with few machines");
    bench::require(*edf >= previous_edf, "EDF budget should not shrink");
    previous_edf = *edf;
    last_llf = *llf;
    table.add_row({std::to_string(delta), std::to_string(opt),
                   std::to_string(*edf), std::to_string(*llf),
                   Table::fmt(static_cast<double>(*edf) / 2.0, 1),
                   Table::fmt(static_cast<double>(*llf) / 2.0, 1)});
  }
  table.print(std::cout);
  ctx.table("minimal feasible budgets on the Dhall gadget", table);
  ctx.check("EDF budget exceeds LLF budget at max Delta",
            std::to_string(previous_edf), "> " + std::to_string(last_llf),
            previous_edf > last_llf);
  std::cout << "\nShape check: EDF's column scales ~linearly with Delta "
               "(the Omega(Delta) failure mode);\nLLF's stays flat -- the "
               "contrast motivating laxity-aware scheduling in Section 1.\n";
  return 0;
}
