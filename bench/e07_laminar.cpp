// E7 -- Theorem 9 / 11: laminar instances admit a non-migratory online
// algorithm on O(m log m) machines. The budget algorithm runs on laminar
// forests of growing size; the table reports machines used against the
// m*log2(m) yardstick and asserts zero budget failures at the theorem's
// budget.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "minmach/algos/laminar.hpp"
#include "minmach/algos/nonmig.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  bench::Run ctx(cli, "E7: laminar instances (Theorems 9 and 11)",
                 "non-migratory online schedule on O(m log m) machines for "
                 "laminar instances");
  cli.check_unknown();
  ctx.config("seed", static_cast<std::int64_t>(seed));

  Table table({"n", "m (OPT)", "budget m'", "machines used", "m*log2(m)",
               "used/(m log m)", "budget fails", "FirstFit baseline"});
  Rng rng(seed);
  std::size_t total_failures = 0;
  for (std::size_t n : {40u, 80u, 160u, 320u}) {
    GenConfig config;
    config.n = n;
    config.horizon = static_cast<std::int64_t>(2 * n);
    Instance in = gen_laminar_tight(rng, config, Rat(1, 2));
    bench::require(in.is_laminar(), "generator produced non-laminar input");
    std::int64_t m = std::max<std::int64_t>(
        1, optimal_migratory_machines(in));
    double mlogm = static_cast<double>(m) *
                   std::max(1.0, std::log2(static_cast<double>(m)));
    auto budget = static_cast<std::size_t>(8.0 * mlogm) + 1;
    LaminarRun run = schedule_laminar(in, budget, Rat(1, 2), Rat(3, 2));
    ValidateOptions options;
    options.require_non_migratory = true;
    auto audit = validate(in, run.schedule, options);
    bench::require(audit.ok, "laminar schedule invalid: " + audit.summary());
    total_failures += run.assignment_failures;

    FitPolicy baseline(FitRule::kFirstFit);
    SimRun ff = simulate(baseline, in);

    table.add_row({std::to_string(n), std::to_string(m),
                   std::to_string(budget),
                   std::to_string(run.machines_total), Table::fmt(mlogm, 1),
                   Table::fmt(static_cast<double>(run.machines_total) / mlogm,
                              3),
                   std::to_string(run.assignment_failures),
                   std::to_string(ff.machines_used)});
  }
  table.print(std::cout);
  ctx.table("laminar budget algorithm vs m*log2(m)", table);
  ctx.check("budget failures at the theorem budget",
            std::to_string(total_failures), "0", total_failures == 0);
  std::cout << "\nShape check: machines used stay bounded by a constant "
               "times m*log2(m) as n grows\n(Theorem 9), with zero "
               "assignment failures at the theorem budget.\n";
  return 0;
}
