// C1 -- out-of-core corpus + persistent OPT cache (DESIGN.md section 16):
// freezing the shrink-sweep + strong-lb instance mix into an mmap'd
// columnar corpus and warming the affine-canonical OPT cache across runs.
//
// Phases:
//
//   freeze / reopen  : generate the mix (the expensive part every bench run
//       pays today), freeze it with CorpusWriter, and reopen it. Enforced:
//       reopen is at least 5x cheaper than regeneration at full size, and
//       opening a 4x-larger corpus costs about the same as the 1x open
//       (zero-copy: open cost is header+directory validation, independent
//       of job count). Round-trip equality against io/serialize is checked
//       per instance, including the rational-grid instances the int64
//       columns cannot hold exactly (they take the side-table path).
//   zero-copy OPT    : a FeasibilityOracle built straight from the mapped
//       int64 columns (no Instance materialized; affine-scaled coordinates)
//       must answer the same OPT as the oracle over the original instance.
//   corpus -> svc    : SessionEngine::seed_from_corpus + one query per
//       session must reproduce the same OPTs through the dynamic-oracle
//       session path.
//   cold / warm cache: two runs of the full query mix against a scratch
//       persistent cache file -- the cold run fills it, the warm run
//       reopens it with an empty RAM cache. Enforced: the warm run executes
//       >= 5x fewer network probes, answers identical, and the disk tier
//       recorded hits.
//
// Wall-clock bars go through bench::require (stderr), never ctx.check: the
// --report must stay byte-identical across invocations -- that is exactly
// what the CI cache-persistence smoke diffs -- so only deterministic
// measurements (answer equality, probe counts against a scratch cache this
// driver resets itself) are recorded there. The run-level store.hits_disk
// tally is printed to stdout for the smoke's warm-run grep. Writes --out
// (BENCH_corpus.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/adversary/strong_lb.hpp"
#include "minmach/core/transforms.hpp"
#include "minmach/flow/query.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/io/serialize.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/store/corpus.hpp"
#include "minmach/store/pcache.hpp"
#include "minmach/svc/engine.hpp"
#include "minmach/util/opt_cache.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

namespace {

using namespace minmach;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// The q01 strong-lb level-slice family: every recursion level of the
// Theorem 3 adversary for k = 2..levels. Affine copies by construction, so
// their fingerprints collide -- the best case for the persistent cache and
// a realistic one (recursion levels recur across runs).
std::vector<Instance> strong_lb_family(int levels) {
  std::vector<Instance> out;
  for (int k = 2; k <= levels; ++k) {
    FitPolicy policy(FitRule::kFirstFit, /*seed=*/123);
    StrongLbResult result = run_strong_lower_bound(policy, k);
    for (const StrongLbLevelSlice& slice : result.level_slices)
      out.push_back(slice_instance(result, slice));
  }
  return out;
}

// Minimum-of-3 zero-copy open wall (payload checksum off: the O(1) reopen
// is the property under test; verification is measured separately).
double time_open_ms(const std::string& path) {
  double best = 1e300;
  for (int i = 0; i < 3; ++i) {
    const Clock::time_point start = Clock::now();
    store::Corpus corpus(path, {.verify_payload = false});
    bench::require(corpus.size() > 0, "corpus unexpectedly empty: " + path);
    best = std::min(best, ms_since(start));
  }
  return best;
}

// Queries every instance once through the query engine; probes and an
// order-sensitive answer checksum.
struct MixMeasurement {
  std::uint64_t probes = 0;
  std::uint64_t checksum = 0;
};

MixMeasurement query_mix(const std::vector<Instance>& mix) {
  MixMeasurement out;
  for (const Instance& instance : mix) {
    QueryStats stats = query_optimal_machines_stats(instance);
    out.probes += stats.probes;
    out.checksum = out.checksum * 1099511628211ULL +
                   static_cast<std::uint64_t>(stats.machines);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int levels = static_cast<int>(cli.get_int("levels", 6));
  const std::size_t sweep_n =
      static_cast<std::size_t>(cli.get_int("sweep-n", 48));
  const int trials = static_cast<int>(cli.get_int("trials", 6));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 11));
  const std::string out_path = cli.get_string("out", "BENCH_corpus.json");
  bench::Run ctx(cli,
                 "C1: out-of-core corpus + persistent OPT cache",
                 "a frozen corpus reopens without regeneration and a warm "
                 "persistent cache answers repeat queries without probes");
  cli.check_unknown();
  bench::require(levels >= 2, "--levels must be >= 2");
  bench::require(trials >= 1, "--trials must be >= 1");
  ctx.config("levels", static_cast<std::int64_t>(levels));
  ctx.config("sweep-n", static_cast<std::int64_t>(sweep_n));
  ctx.config("trials", static_cast<std::int64_t>(trials));
  ctx.config("seed", static_cast<std::int64_t>(seed));

  const std::string corpus_path = ctx.corpus_path().empty()
                                      ? "c01_corpus.mmcorpus"
                                      : ctx.corpus_path();
  const std::string corpus4_path = corpus_path + ".x4.mmcorpus";
  const std::string scratch_cache = corpus_path + ".scratch.mmcache";
  const std::size_t capacity =
      static_cast<std::size_t>(bench::kDefaultCacheCapacity);
  obs::Registry& registry = obs::Registry::global();

  // --- phase A: generate the mix (what a corpus-less run pays) ------------
  const Clock::time_point gen_start = Clock::now();
  std::vector<Instance> mix = strong_lb_family(levels);
  const std::size_t slb_count = mix.size();
  Rng rng(seed);
  GenConfig config;
  config.n = sweep_n;
  const std::vector<Rat> gammas = {Rat(1, 4), Rat(1, 2), Rat(2, 3),
                                   Rat(4, 5)};
  for (int trial = 0; trial < trials; ++trial) {
    Instance base = gen_general(rng, config);
    mix.push_back(base);
    for (const Rat& gamma : gammas)
      mix.push_back(shrink_window_left(base, gamma));
  }
  const double gen_ms = ms_since(gen_start);
  std::size_t mix_jobs = 0;
  for (const Instance& instance : mix) mix_jobs += instance.size();

  // --- phase B: freeze ----------------------------------------------------
  const Clock::time_point freeze_start = Clock::now();
  store::CorpusWriter writer;
  for (const Instance& instance : mix) writer.add(instance);
  writer.write(corpus_path);
  const double freeze_ms = ms_since(freeze_start);

  // --- phase C: zero-copy reopen vs regeneration --------------------------
  const double open_ms = time_open_ms(corpus_path);
  const Clock::time_point verify_start = Clock::now();
  store::Corpus corpus(corpus_path, {.verify_payload = true});
  const double verify_ms = ms_since(verify_start);
  bench::require(corpus.size() == mix.size(), "corpus lost instances");

  std::size_t i64_instances = 0;
  std::size_t roundtrip_mismatches = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const store::InstanceView view = corpus.view(i);
    if (view.int64_grid()) ++i64_instances;
    if (to_text(view.materialize()) != to_text(mix[i]))
      ++roundtrip_mismatches;
  }
  ctx.check("corpus round-trip equals io/serialize on every instance",
            std::to_string(roundtrip_mismatches) + " mismatches", "0",
            roundtrip_mismatches == 0);

  // 4x corpus: open wall must not scale with content (zero-copy open).
  {
    store::CorpusWriter big;
    for (int copy = 0; copy < 4; ++copy)
      for (const Instance& instance : mix) big.add(instance);
    big.write(corpus4_path);
  }
  const double open4_ms = time_open_ms(corpus4_path);
  std::remove(corpus4_path.c_str());

  const bool full_size = sweep_n >= 32;
  Table corpus_table({"stage", "wall ms"});
  corpus_table.add_row({"generate mix", Table::fmt(gen_ms, 3)});
  corpus_table.add_row({"freeze corpus", Table::fmt(freeze_ms, 3)});
  corpus_table.add_row({"reopen (1x)", Table::fmt(open_ms, 3)});
  corpus_table.add_row({"reopen (4x)", Table::fmt(open4_ms, 3)});
  corpus_table.add_row({"verify payload", Table::fmt(verify_ms, 3)});
  corpus_table.print(std::cout);
  // Wall bars through require (stderr): the report must stay
  // byte-deterministic for the persistence smoke's diff.
  if (full_size) {
    bench::require(open_ms * 5.0 <= gen_ms,
                   "corpus reopen not >= 5x cheaper than regeneration "
                   "(open " + Table::fmt(open_ms, 3) + " ms, gen " +
                   Table::fmt(gen_ms, 3) + " ms)");
  }
  bench::require(open4_ms <= 10.0 * open_ms + 5.0,
                 "4x corpus open scales with content (1x " +
                 Table::fmt(open_ms, 3) + " ms, 4x " +
                 Table::fmt(open4_ms, 3) + " ms)");

  // --- phase D: zero-copy OPT off the mapped columns ----------------------
  std::vector<std::int64_t> opts(corpus.size(), 0);
  std::size_t opt_mismatches = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const store::InstanceView view = corpus.view(i);
    std::int64_t from_store;
    if (view.int64_grid()) {
      FeasibilityOracle oracle(view.columns());
      from_store = oracle.optimal_machines();
    } else {
      FeasibilityOracle oracle(view.materialize());
      from_store = oracle.optimal_machines();
    }
    FeasibilityOracle reference(mix[i]);
    opts[i] = reference.optimal_machines();
    if (from_store != opts[i]) ++opt_mismatches;
  }
  ctx.check("zero-copy column OPT equals Instance OPT (affine invariance)",
            std::to_string(opt_mismatches) + " mismatches", "0",
            opt_mismatches == 0);

  // --- phase E: corpus -> session engine ----------------------------------
  svc::SessionEngine engine;
  const std::uint64_t first_session = engine.seed_from_corpus(corpus);
  std::vector<svc::Event> queries;
  queries.reserve(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i)
    queries.push_back({svc::Event::Kind::kQuery, first_session + i, 0, {}});
  engine.ingest(queries);
  std::size_t svc_mismatches = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::vector<std::int64_t>& answers =
        engine.answers(first_session + i);
    if (answers.size() != 1 || answers[0] != opts[i]) ++svc_mismatches;
  }
  ctx.check("corpus-seeded sessions answer the direct OPTs",
            std::to_string(svc_mismatches) + " mismatches", "0",
            svc_mismatches == 0);

  Table content_table({"subset", "instances", "jobs"});
  content_table.add_row({"strong-lb slices", std::to_string(slb_count), "-"});
  content_table.add_row({"shrink sweep",
                         std::to_string(mix.size() - slb_count), "-"});
  content_table.add_row({"total (int64-grid " + std::to_string(i64_instances) +
                             ", rational " +
                             std::to_string(mix.size() - i64_instances) + ")",
                         std::to_string(mix.size()),
                         std::to_string(mix_jobs)});
  content_table.print(std::cout);
  ctx.table("corpus content", content_table);

  // Run-level persistent-store traffic so far (nonzero on a warm --cache-file
  // run; the CI smoke greps this line).
  std::cout << "persistent store hits (run-level): "
            << registry.counter("store.hits_disk").value() << "\n";

  // --- phase F: cold vs warm persistent cache on a scratch file -----------
  // The Run-level --cache-file store (if any) must not serve this phase:
  // its contents depend on previous invocations, and the cold/warm probe
  // counts below are recorded in the byte-diffed report.
  util::OptCache::global().attach_store(nullptr);
  std::remove(scratch_cache.c_str());
  std::remove((scratch_cache + ".wal").c_str());

  const std::uint64_t disk_hits_before =
      registry.counter("store.hits_disk").value();
  util::OptCache::global().configure(true, capacity);
  MixMeasurement cold;
  {
    store::PersistentCache scratch(scratch_cache);
    util::OptCache::global().attach_store(&scratch);
    cold = query_mix(mix);
    util::OptCache::global().attach_store(nullptr);
    scratch.flush();
  }
  util::OptCache::global().configure(true, capacity);  // empty RAM again
  MixMeasurement warm;
  std::uint64_t warm_disk_hits = 0;
  std::uint64_t warm_table_entries = 0;
  {
    store::PersistentCache scratch(scratch_cache);
    warm_table_entries = scratch.table_entries();
    util::OptCache::global().attach_store(&scratch);
    warm = query_mix(mix);
    util::OptCache::global().attach_store(nullptr);
    warm_disk_hits =
        registry.counter("store.hits_disk").value() - disk_hits_before;
  }
  std::remove(scratch_cache.c_str());
  std::remove((scratch_cache + ".wal").c_str());
  util::OptCache::global().configure(false, capacity);

  bench::require(cold.checksum == warm.checksum,
                 "warm-cache answers disagree with cold run");
  Table cache_table({"run", "queries", "executed probes", "disk entries"});
  cache_table.add_row({"cold", std::to_string(mix.size()),
                       std::to_string(cold.probes), "0"});
  cache_table.add_row({"warm", std::to_string(mix.size()),
                       std::to_string(warm.probes),
                       std::to_string(warm_table_entries)});
  cache_table.print(std::cout);
  ctx.table("persistent cache, scratch file", cache_table);

  const double probe_ratio =
      static_cast<double>(cold.probes) /
      static_cast<double>(std::max<std::uint64_t>(1, warm.probes));
  ctx.check("warm persistent cache: executed probes reduced >= 5x",
            Table::fmt(probe_ratio, 2), ">= 5", probe_ratio >= 5.0);
  ctx.check("warm persistent cache: disk tier recorded hits",
            std::to_string(warm_disk_hits), ">= 1", warm_disk_hits >= 1);

  // Machine-readable record (wall times included, so this file is NOT
  // byte-deterministic -- unlike --report).
  std::ofstream os(out_path);
  bench::require(static_cast<bool>(os), "cannot open " + out_path);
  obs::JsonWriter json(os);
  json.begin_object();
  bench::write_bench_stamp(json);
  json.key("experiment").value("c01_corpus_cache");
  json.key("seed").value(static_cast<std::int64_t>(seed));
  json.key("corpus").begin_object();
  json.key("instances").value(static_cast<std::uint64_t>(mix.size()));
  json.key("jobs").value(static_cast<std::uint64_t>(mix_jobs));
  json.key("int64_grid_instances")
      .value(static_cast<std::uint64_t>(i64_instances));
  json.key("mapped_bytes")
      .value(static_cast<std::uint64_t>(corpus.mapped_bytes()));
  json.key("gen_ms").value(gen_ms);
  json.key("freeze_ms").value(freeze_ms);
  json.key("open_ms").value(open_ms);
  json.key("open4_ms").value(open4_ms);
  json.key("verify_ms").value(verify_ms);
  json.key("open_vs_gen_ratio").value(gen_ms / std::max(1e-9, open_ms));
  json.end_object();
  json.key("persistent_cache").begin_object();
  json.key("probes_cold").value(cold.probes);
  json.key("probes_warm").value(warm.probes);
  json.key("probe_ratio").value(probe_ratio);
  json.key("table_entries").value(warm_table_entries);
  json.end_object();
  json.key("store").begin_object();
  json.key("hits_disk").value(warm_disk_hits);
  json.end_object();
  json.end_object();
  os << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
