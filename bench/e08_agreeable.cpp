// E8 -- Theorem 12 / 14: agreeable instances admit a NON-PREEMPTIVE online
// solution on 32.70 m machines (EDF pool for alpha-loose + MediumFit pool
// for alpha-tight). The alpha sweep reproduces the paper's trade-off
// 1/(1-a)^2 + 16/a with its optimum near alpha ~ 0.63.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/algos/agreeable.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 8));
  const std::int64_t trials = cli.get_int("trials", 4);
  const std::int64_t threads_request = bench::threads_flag(cli);
  bench::Run ctx(cli, "E8: agreeable instances (Theorems 12 and 14)",
                 "non-preemptive online schedule on m/(1-a)^2 + 16m/a <= "
                 "32.70 m machines; optimum near alpha ~ 0.63");
  cli.check_unknown();
  ctx.config("seed", static_cast<std::int64_t>(seed));
  ctx.config("trials", trials);

  const Rat alphas[] = {Rat(3, 10), Rat(45, 100), Rat(55, 100),
                        Rat(63, 100), Rat(7, 10), Rat(4, 5)};
  const std::size_t alpha_count = std::size(alphas);

  // One task per alpha; each seeds its own Rng so rows are identical at any
  // thread count.
  struct AlphaResult {
    std::vector<std::string> row;
    bool all_nonpreemptive = true;
    bool within_bound = true;
  };
  auto results = bench::parallel_map(
      alpha_count, bench::resolve_threads(threads_request, alpha_count),
      [&](std::size_t index) {
        const Rat& alpha = alphas[index];
        Rng rng(seed);
        GenConfig config;
        config.n = 80;
        double sum_ratio = 0;
        double sum_loose = 0;
        double sum_tight = 0;
        AlphaResult out;
        for (std::int64_t trial = 0; trial < trials; ++trial) {
          Instance in = gen_agreeable(rng, config);
          std::int64_t m = std::max<std::int64_t>(
              1, optimal_migratory_machines(in));
          AgreeableRun run = schedule_agreeable(in, m, alpha);
          ValidateOptions options;
          options.require_non_migratory = true;
          options.require_non_preemptive = true;
          auto audit = validate(in, run.schedule, options);
          if (!audit.ok) out.all_nonpreemptive = false;
          sum_ratio += static_cast<double>(run.machines_total) /
                       static_cast<double>(m);
          sum_loose += static_cast<double>(run.machines_loose);
          sum_tight += static_cast<double>(run.machines_tight);
          if (run.machines_total > static_cast<std::size_t>(33 * m))
            out.within_bound = false;
        }
        double a = alpha.to_double();
        double bound = 1.0 / ((1 - a) * (1 - a)) + 16.0 / a;
        double t = static_cast<double>(trials);
        out.row = {alpha.to_string(), Table::fmt(bound, 2),
                   Table::fmt(sum_ratio / t, 2), Table::fmt(sum_loose / t, 1),
                   Table::fmt(sum_tight / t, 1),
                   out.all_nonpreemptive ? "yes" : "NO"};
        return out;
      });

  Table table({"alpha", "paper bound/m", "measured/m avg", "loose pool avg",
               "tight pool avg", "non-preemptive"});
  double best_bound = 1e18;
  Rat best_alpha(0);
  bool all_within = true;
  bool all_np = true;
  for (std::size_t index = 0; index < alpha_count; ++index) {
    const AlphaResult& result = results[index];
    all_within = all_within && result.within_bound;
    all_np = all_np && result.all_nonpreemptive;
    double a = alphas[index].to_double();
    double bound = 1.0 / ((1 - a) * (1 - a)) + 16.0 / a;
    if (bound < best_bound) {
      best_bound = bound;
      best_alpha = alphas[index];
    }
    table.add_row(result.row);
  }
  table.print(std::cout);
  ctx.table("alpha sweep vs paper bound", table);
  ctx.check("machine count within 32.70m", all_within ? "yes" : "no", "yes",
            all_within);
  ctx.check("all schedules non-preemptive", all_np ? "yes" : "no", "yes",
            all_np);
  std::cout << "\nanalytic optimum of the sweep: alpha = "
            << best_alpha.to_string() << " with bound "
            << Table::fmt(best_bound, 2)
            << " (paper: ~32.70 at alpha ~ 0.63).\n"
            << "Measured machine counts sit far below the worst-case bound "
               "but follow its U-shape in alpha.\n";
  return 0;
}
