// D1 -- dynamic oracle + session engine: the fully-dynamic
// FeasibilityOracle (DESIGN.md section 15, insert_job/remove_job with warm
// flow repair) behind the svc session engine, versus rebuilding the batch
// oracle from scratch on every event.
//
// Three phases:
//
//   insert-heavy A/B : per session, a deterministic ~85% release / 15%
//       complete stream with an OPT query after EVERY event. The dynamic
//       side answers through one svc::Session (splice + warm repair); the
//       baseline constructs a fresh Instance + batch FeasibilityOracle per
//       query -- the rebuild-per-event comparator. Every answer is compared
//       exactly; >= 5x end-to-end wall speedup is enforced at full size
//       (recorded, not enforced, at smoke sizes -- tiny-input wall ratios
//       measure constants, not the splice path).
//   throughput       : a mixed release/complete/query stream over
//       --sessions sessions (default 1024 -- the "1k+ live sessions"
//       regime) x --events events each, ingested in one batch through the
//       SessionEngine sharded across the work-stealing scheduler.
//       Profiling is armed around the ingest so the hist.event_ns latency
//       histogram yields p50/p99 per-event OPT latency; sustained
//       events/sec comes from the ingest wall.
//   determinism      : the same stream replayed at 1 thread and at 4
//       threads must produce byte-identical report JSON, and the JSONL
//       round-trip (to_jsonl -> parse_jsonl -> replay) must reproduce it.
//
// Writes --out (BENCH_dynamic.json): walls, speedup, events/sec, latency
// percentiles, and the dyn.* splice counter deltas.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/core/instance.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/obs/histogram.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/svc/engine.hpp"
#include "minmach/svc/replay.hpp"
#include "minmach/svc/session.hpp"
#include "minmach/util/rng.hpp"

namespace {

using namespace minmach;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// A random well-formed integer-grid job: the streams stay on the oracle's
// small-integer fast path, like most replayed production traces would.
Job random_job(Rng& rng) {
  const std::int64_t release = rng.uniform_int(0, 96);
  const std::int64_t length = rng.uniform_int(1, 24);
  const std::int64_t processing = rng.uniform_int(1, length);
  return Job{Rat(release), Rat(release + length), Rat(processing)};
}

// Deterministic per-session event stream: ~release_pct% releases, the rest
// completes of a random live job (forced to release when none is live).
// Queries are NOT included -- each phase decides its own query placement.
std::vector<svc::Event> session_stream(std::uint64_t session,
                                       std::int64_t events, int release_pct,
                                       std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + session + 1);
  std::vector<svc::Event> out;
  out.reserve(static_cast<std::size_t>(events));
  std::vector<std::int64_t> live;
  std::int64_t next_job = 0;
  for (std::int64_t i = 0; i < events; ++i) {
    svc::Event event;
    event.session = session;
    if (live.empty() ||
        rng.uniform_int(0, 99) < static_cast<std::int64_t>(release_pct)) {
      event.kind = svc::Event::Kind::kRelease;
      event.job = next_job++;
      event.payload = random_job(rng);
      live.push_back(event.job);
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      event.kind = svc::Event::Kind::kComplete;
      event.job = live[pick];
      live[pick] = live.back();
      live.pop_back();
    }
    out.push_back(std::move(event));
  }
  return out;
}

std::uint64_t counter_delta(const char* name, std::uint64_t before) {
  return obs::Registry::global().counter(name).value() - before;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t sessions = bench::positive_count_flag(cli, "sessions", 1024);
  const std::int64_t events = bench::positive_count_flag(cli, "events", 32);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));
  const std::int64_t threads = bench::threads_flag(cli);
  const std::string out_path = cli.get_string("out", "BENCH_dynamic.json");
  bench::Run ctx(cli,
                 "D1: dynamic oracle -- warm splice repair vs rebuild-per-event",
                 "insert_job/remove_job splice the Horn network and repair "
                 "the routed flow warm; answers equal the batch oracle's on "
                 "every edit");
  cli.check_unknown();
  ctx.config("sessions", sessions);
  ctx.config("events", events);
  ctx.config("seed", static_cast<std::int64_t>(seed));

  // --- phase A: insert-heavy A/B, dynamic vs rebuild-per-event -----------
  // Fewer sessions x more events than the throughput phase: the splice
  // path's advantage grows with live-set size, which rebuild-per-event pays
  // for from scratch on every query.
  const std::int64_t sessions_ab = std::max<std::int64_t>(1, sessions / 64);
  const std::int64_t events_ab = events * 8;
  std::vector<std::vector<svc::Event>> streams;
  streams.reserve(static_cast<std::size_t>(sessions_ab));
  for (std::int64_t s = 0; s < sessions_ab; ++s)
    streams.push_back(session_stream(static_cast<std::uint64_t>(s), events_ab,
                                     /*release_pct=*/85, seed));

  obs::Registry& registry = obs::Registry::global();
  obs::drain_hot_tallies();
  const std::uint64_t inserts0 = registry.counter("dyn.inserts").value();
  const std::uint64_t removes0 = registry.counter("dyn.removes").value();
  const std::uint64_t patched0 = registry.counter("dyn.edges_patched").value();
  const std::uint64_t avoided0 =
      registry.counter("dyn.rebuilds_avoided").value();
  const std::uint64_t rebuilds0 = registry.counter("dyn.rebuilds").value();

  std::vector<std::vector<std::int64_t>> dynamic_answers(
      static_cast<std::size_t>(sessions_ab));
  const Clock::time_point dynamic_start = Clock::now();
  for (std::int64_t s = 0; s < sessions_ab; ++s) {
    svc::Session session;
    for (const svc::Event& event : streams[static_cast<std::size_t>(s)]) {
      if (event.kind == svc::Event::Kind::kRelease)
        session.on_release(event.job, event.payload);
      else
        session.on_complete(event.job);
      dynamic_answers[static_cast<std::size_t>(s)].push_back(
          session.query_opt());
    }
  }
  const double dynamic_ms = ms_since(dynamic_start);
  obs::drain_hot_tallies();
  const std::uint64_t dyn_inserts = counter_delta("dyn.inserts", inserts0);
  const std::uint64_t dyn_removes = counter_delta("dyn.removes", removes0);
  const std::uint64_t dyn_patched = counter_delta("dyn.edges_patched", patched0);
  const std::uint64_t dyn_avoided =
      counter_delta("dyn.rebuilds_avoided", avoided0);
  const std::uint64_t dyn_rebuilds = counter_delta("dyn.rebuilds", rebuilds0);

  bool answers_ok = true;
  std::vector<std::vector<std::int64_t>> rebuild_answers(
      static_cast<std::size_t>(sessions_ab));
  const Clock::time_point rebuild_start = Clock::now();
  for (std::int64_t s = 0; s < sessions_ab; ++s) {
    std::vector<std::pair<std::int64_t, Job>> live;
    for (const svc::Event& event : streams[static_cast<std::size_t>(s)]) {
      if (event.kind == svc::Event::Kind::kRelease) {
        live.emplace_back(event.job, event.payload);
      } else {
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (live[i].first != event.job) continue;
          live[i] = live.back();
          live.pop_back();
          break;
        }
      }
      std::vector<Job> jobs;
      jobs.reserve(live.size());
      for (const auto& [id, job] : live) jobs.push_back(job);
      FeasibilityOracle oracle{Instance(std::move(jobs))};
      rebuild_answers[static_cast<std::size_t>(s)].push_back(
          oracle.optimal_machines());
    }
  }
  const double rebuild_ms = ms_since(rebuild_start);
  answers_ok = dynamic_answers == rebuild_answers;
  bench::require(answers_ok,
                 "insert-heavy A/B: dynamic answers diverge from "
                 "rebuild-per-event");

  const double speedup = rebuild_ms / std::max(1e-9, dynamic_ms);
  Table ab_table({"mode", "sessions", "events/session", "wall ms"});
  ab_table.add_row({"dynamic (splice+repair)", std::to_string(sessions_ab),
                    std::to_string(events_ab), Table::fmt(dynamic_ms, 2)});
  ab_table.add_row({"rebuild-per-event", std::to_string(sessions_ab),
                    std::to_string(events_ab), Table::fmt(rebuild_ms, 2)});
  ab_table.print(std::cout);
  ctx.table("insert-heavy A/B (85% release, query after every event)",
            ab_table);
  // Tiny smoke streams measure constants, not the splice path; the 5x bar
  // binds only at full size.
  const bool full_size = sessions_ab >= 8 && events_ab >= 256;
  ctx.check(full_size
                ? "insert-heavy: dynamic >= 5x over rebuild-per-event"
                : "insert-heavy: dynamic speedup (recorded, smoke size)",
            Table::fmt(speedup, 2), full_size ? ">= 5" : "> 0",
            full_size ? speedup >= 5.0 : speedup > 0.0);

  // --- phase B: engine throughput at --sessions live sessions ------------
  // 60% release / 25% complete keeps live sets growing; every ~7th event
  // per session is a query (cheaper streams would measure splicing alone,
  // not per-event OPT latency).
  std::vector<svc::Event> mixed;
  mixed.reserve(static_cast<std::size_t>(sessions * events));
  for (std::int64_t s = 0; s < sessions; ++s) {
    std::vector<svc::Event> stream = session_stream(
        static_cast<std::uint64_t>(s), events, /*release_pct=*/70, seed ^ 1);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      mixed.push_back(stream[i]);
      if ((i + static_cast<std::size_t>(s)) % 7 == 6) {
        svc::Event query;
        query.kind = svc::Event::Kind::kQuery;
        query.session = static_cast<std::uint64_t>(s);
        mixed.push_back(query);
      }
    }
  }

  const bool was_profiling = obs::profiling_enabled();
  obs::set_profiling(true);
  obs::LatencyRegistry::global().histogram("hist.event_ns").reset();
  svc::EngineOptions engine_options;
  engine_options.threads = threads;
  svc::SessionEngine engine(engine_options);
  const Clock::time_point ingest_start = Clock::now();
  engine.ingest(mixed);
  const double ingest_ms = ms_since(ingest_start);
  obs::set_profiling(was_profiling);
  const obs::LatencySummary latency =
      obs::LatencyRegistry::global().histogram("hist.event_ns").summary();
  const double events_per_sec =
      static_cast<double>(mixed.size()) / std::max(1e-9, ingest_ms / 1e3);

  Table throughput_table(
      {"sessions", "events", "wall ms", "events/s", "p50 ns", "p99 ns"});
  throughput_table.add_row(
      {std::to_string(engine.session_count()), std::to_string(mixed.size()),
       Table::fmt(ingest_ms, 2), Table::fmt(events_per_sec, 0),
       std::to_string(latency.p50), std::to_string(latency.p99)});
  throughput_table.print(std::cout);
  ctx.table("engine throughput (mixed stream, per-event latency histogram)",
            throughput_table);
  ctx.check("throughput: latency histogram saw every event",
            std::to_string(latency.count), std::to_string(mixed.size()),
            latency.count == mixed.size());

  // --- phase C: edit-replay determinism ----------------------------------
  // The same stream, 1 thread vs 4 threads: the engine's bucketing keeps
  // per-session order, so the reports must match byte for byte. The JSONL
  // round-trip must reproduce the stream (and therefore the report).
  std::vector<svc::Event> replay_stream;
  const std::int64_t replay_sessions = std::min<std::int64_t>(sessions, 64);
  for (std::int64_t s = 0; s < replay_sessions; ++s) {
    std::vector<svc::Event> stream = session_stream(
        static_cast<std::uint64_t>(s), events, /*release_pct=*/70, seed ^ 2);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      replay_stream.push_back(stream[i]);
      if (i % 5 == 4) {
        svc::Event query;
        query.kind = svc::Event::Kind::kQuery;
        query.session = static_cast<std::uint64_t>(s);
        replay_stream.push_back(query);
      }
    }
  }
  svc::EngineOptions one_thread;
  one_thread.threads = 1;
  svc::EngineOptions four_threads;
  four_threads.threads = 4;
  const std::string report_1t = svc::replay_events(replay_stream, one_thread);
  const std::string report_4t = svc::replay_events(replay_stream, four_threads);
  const bool replay_ok = report_1t == report_4t;
  bench::require(replay_ok,
                 "edit replay: report JSON differs between 1 and 4 threads");
  const std::string jsonl = svc::to_jsonl(replay_stream);
  const std::vector<svc::Event> reparsed = svc::parse_jsonl(jsonl);
  bench::require(svc::to_jsonl(reparsed) == jsonl,
                 "edit replay: JSONL round-trip not an identity");
  const bool roundtrip_ok =
      svc::replay_events(reparsed, four_threads) == report_1t;
  bench::require(roundtrip_ok,
                 "edit replay: JSONL-round-tripped stream changes the report");
  ctx.check("edit replay: byte-identical report at 1 and 4 threads",
            std::to_string(replay_stream.size()) + " events", "equal", true);

  // Machine-readable record (wall times included, so this file is NOT
  // byte-deterministic -- unlike --report).
  std::ofstream os(out_path);
  bench::require(static_cast<bool>(os), "cannot open " + out_path);
  obs::JsonWriter json(os);
  json.begin_object();
  bench::write_bench_stamp(json);
  json.key("experiment").value("d01_dynamic_oracle");
  json.key("seed").value(static_cast<std::int64_t>(seed));
  json.key("insert_heavy").begin_object();
  json.key("sessions").value(sessions_ab);
  json.key("events_per_session").value(events_ab);
  json.key("wall_dynamic_ms").value(dynamic_ms);
  json.key("wall_rebuild_ms").value(rebuild_ms);
  json.key("speedup").value(speedup);
  json.key("threshold_enforced").value(full_size);
  json.key("answers_ok").value(answers_ok);
  json.key("dyn").begin_object();
  json.key("inserts").value(dyn_inserts);
  json.key("removes").value(dyn_removes);
  json.key("edges_patched").value(dyn_patched);
  json.key("rebuilds_avoided").value(dyn_avoided);
  json.key("rebuilds").value(dyn_rebuilds);
  json.end_object();
  json.end_object();
  json.key("throughput").begin_object();
  json.key("sessions").value(static_cast<std::uint64_t>(engine.session_count()));
  json.key("events").value(static_cast<std::uint64_t>(mixed.size()));
  json.key("wall_ms").value(ingest_ms);
  json.key("events_per_sec").value(events_per_sec);
  json.key("event_ns_p50").value(latency.p50);
  json.key("event_ns_p99").value(latency.p99);
  json.key("event_ns_max").value(latency.max);
  json.end_object();
  json.key("replay").begin_object();
  json.key("sessions").value(replay_sessions);
  json.key("events").value(static_cast<std::uint64_t>(replay_stream.size()));
  json.key("deterministic").value(replay_ok);
  json.key("jsonl_roundtrip").value(roundtrip_ok);
  json.end_object();
  json.end_object();
  os << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
