// E3 -- Theorem 2 (Kalyanasundaram & Pruhs): offline, migration buys only a
// constant factor. Our laxity-class first-fit rewrite (DESIGN.md §5.2)
// turns any instance into a non-migratory schedule; the table tracks its
// machine count against the paper's 6m - 5 and the trivial lower bound m.
#include <iostream>

#include "bench/bench_common.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/offline/kp_transform.hpp"
#include "minmach/util/cli.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main(int argc, char** argv) {
  using namespace minmach;
  Cli cli(argc, argv);
  const std::int64_t trials = cli.get_int("trials", 8);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  bench::Run ctx(cli, "E3: offline migratory -> non-migratory transform",
                 "any migratory schedule on m machines becomes non-migratory "
                 "on at most 6m - 5 machines (Theorem 2)");
  cli.check_unknown();
  ctx.config("trials", trials);
  ctx.config("seed", static_cast<std::int64_t>(seed));

  struct Family {
    const char* name;
    Instance (*generate)(Rng&, const GenConfig&);
  };
  const Family families[] = {
      {"general", gen_general},
      {"agreeable", gen_agreeable},
      {"laminar", gen_laminar},
      {"unit", gen_unit},
  };

  Table table({"family", "n", "m (migratory)", "non-mig machines",
               "6m-5 bound", "machines/m", "within bound"});
  for (const Family& family : families) {
    Rng rng(seed);
    GenConfig config;
    config.n = 60;
    for (std::int64_t trial = 0; trial < trials; ++trial) {
      Instance in = family.generate(rng, config);
      std::int64_t m = optimal_migratory_machines(in);
      if (m < 1) continue;
      KpResult result = migratory_to_nonmigratory(in);
      ValidateOptions options;
      options.require_non_migratory = true;
      auto audit = validate(in, result.schedule, options);
      bench::require(audit.ok, "transform schedule failed validation: " +
                                   audit.summary());
      bool within = result.machines <= static_cast<std::size_t>(6 * m - 5);
      if (trial < 2) {  // two representative rows per family
        table.add_row({family.name, std::to_string(in.size()),
                       std::to_string(m), std::to_string(result.machines),
                       std::to_string(6 * m - 5),
                       Table::fmt(static_cast<double>(result.machines) /
                                  static_cast<double>(m), 2),
                       within ? "yes" : "NO"});
      }
      bench::require(within, "transform exceeded the 6m-5 bound");
    }
  }
  table.print(std::cout);
  ctx.table("transform vs 6m-5 bound", table);
  std::cout << "\nShape check: the non-migratory machine count stays within "
               "a small constant factor\nof the migratory optimum on every "
               "family -- offline, migration's power is bounded\n(this is "
               "what collapses in the ONLINE setting, see E1).\n";
  return 0;
}
