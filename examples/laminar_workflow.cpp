// Scenario: hierarchical workflow scheduling.
//
// A build/ETL system runs jobs whose execution windows nest: a pipeline
// stage's window contains its sub-tasks' windows, which contain their
// sub-sub-tasks', and parallel pipelines are disjoint in time. That is a
// LAMINAR instance -- the special case for which Section 5 of the paper
// gives an O(m log m) non-migratory online algorithm.
//
// The example builds a three-level workflow forest, runs the Theorem 9
// budget algorithm, and contrasts it with plain FirstFit and with the
// migratory optimum.
//
// Build & run:  ./build/examples/laminar_workflow
#include <cmath>
#include <iostream>

#include "minmach/algos/laminar.hpp"
#include "minmach/algos/nonmig.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/io/gantt.hpp"
#include "minmach/util/rng.hpp"

int main() {
  using namespace minmach;

  Rng rng(7);
  GenConfig config;
  config.n = 80;
  config.horizon = 160;
  Instance workflow = gen_laminar(rng, config);
  if (!workflow.is_laminar()) {
    std::cerr << "generator bug: instance is not laminar\n";
    return 1;
  }

  std::int64_t m = optimal_migratory_machines(workflow);
  std::cout << "workflow forest: " << workflow.size()
            << " tasks, migratory OPT = " << m << " machines\n";

  // Theorem 9 budget: m' = c * m * log2(m) for the tight pool.
  auto budget = static_cast<std::size_t>(
      8.0 * static_cast<double>(m) *
      std::max(1.0, std::log2(static_cast<double>(m)))) + 1;
  LaminarRun run = schedule_laminar(workflow, budget, Rat(1, 2), Rat(3, 2));
  ValidateOptions options;
  options.require_non_migratory = true;
  auto audit = validate(workflow, run.schedule, options);
  if (!audit.ok) {
    std::cerr << "audit failed:\n" << audit.summary();
    return 1;
  }

  std::cout << "laminar algorithm: " << run.machines_total
            << " machines total (" << run.machines_tight
            << " for tight tasks via budgets, " << run.machines_loose
            << " for loose tasks via the Section 4 pipeline), "
            << run.assignment_failures << " budget failures\n";

  FitPolicy first_fit(FitRule::kFirstFit);
  SimRun ff = simulate(first_fit, workflow);
  std::cout << "plain FirstFit baseline: " << ff.machines_used
            << " machines\n\n";

  // Show the first 40 tasks of the laminar schedule.
  GanttOptions gantt;
  gantt.width = 100;
  gantt.show_legend = false;
  std::cout << render_gantt(workflow, run.schedule, gantt);
  std::cout << "\n(machines above the " << run.machines_tight
            << "-th host the loose-task pool)\n";
  return 0;
}
