// Scenario: batch queue with FIFO-ish SLAs.
//
// A data-center batch queue promises "roughly first-come, first-served"
// service: a job submitted later never has an earlier SLA deadline. That
// is an AGREEABLE instance (Section 6). The paper gives a simple
// non-preemptive online algorithm on O(m) machines: EDF for jobs with
// slack, MediumFit for urgent ones; this example runs it, sweeps the
// loose/tight split parameter alpha, and reproduces the shape of the
// 1/(1-a)^2 + 16/a trade-off whose optimum the paper reports at ~32.70m.
//
// Build & run:  ./build/examples/agreeable_batch
#include <iostream>

#include "minmach/algos/agreeable.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main() {
  using namespace minmach;

  Rng rng(11);
  GenConfig config;
  config.n = 120;
  config.horizon = 240;
  Instance queue = gen_agreeable(rng, config);
  if (!queue.is_agreeable()) {
    std::cerr << "generator bug: instance is not agreeable\n";
    return 1;
  }

  std::int64_t m = optimal_migratory_machines(queue);
  std::cout << "batch queue: " << queue.size()
            << " jobs, migratory OPT = " << m << " machines\n\n";

  Table table({"alpha", "EDF pool", "MediumFit pool", "total", "total / m",
               "paper bound 1/(1-a)^2 + 16/a"});
  for (const Rat& alpha :
       {Rat(3, 10), Rat(1, 2), Rat(63, 100), Rat(4, 5)}) {
    AgreeableRun run = schedule_agreeable(queue, m, alpha);
    ValidateOptions options;
    options.require_non_migratory = true;
    options.require_non_preemptive = true;
    auto audit = validate(queue, run.schedule, options);
    if (!audit.ok) {
      std::cerr << "audit failed:\n" << audit.summary();
      return 1;
    }
    double a = alpha.to_double();
    double bound = 1.0 / ((1 - a) * (1 - a)) + 16.0 / a;
    table.add_row({alpha.to_string(), std::to_string(run.machines_loose),
                   std::to_string(run.machines_tight),
                   std::to_string(run.machines_total),
                   Table::fmt(static_cast<double>(run.machines_total) /
                              static_cast<double>(m)),
                   Table::fmt(bound, 2)});
  }
  table.print(std::cout);
  std::cout << "\nThe schedule is non-preemptive and non-migratory at every "
               "alpha; the paper's\noptimized constant sits near alpha = "
               "0.63 (32.70m worst case -- real traces sit far below).\n";
  return 0;
}
