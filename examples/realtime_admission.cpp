// Scenario: an admission controller for a real-time execution service.
//
// Requests arrive online, each with an SLA window [release, deadline) and a
// CPU demand. The service runs NON-migratory workers (moving a request
// between workers would thrash caches), wants to provision as few workers
// as possible, and must never miss an SLA. This is exactly the paper's
// online non-migratory machine-minimization problem.
//
// The example replays a bursty arrival trace against the fit-policy suite
// and compares the workers provisioned with the migratory offline optimum
// (what a clairvoyant, migration-tolerant scheduler would have needed) --
// i.e. it measures the empirical "power of migration" on this trace.
//
// Build & run:  ./build/examples/realtime_admission
#include <iostream>

#include "minmach/algos/nonmig.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/sim/engine.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/table.hpp"

int main() {
  using namespace minmach;

  // A bursty trace: three traffic phases with different tightness.
  Rng rng(2024);
  Instance trace;
  auto burst = [&](std::int64_t start, std::size_t count, std::int64_t window,
                   double tightness) {
    for (std::size_t i = 0; i < count; ++i) {
      Job j;
      j.release = Rat(start + rng.uniform_int(0, 20));
      Rat len(rng.uniform_int(window / 2, window));
      j.deadline = j.release + len;
      // demand = tightness fraction of the window, on a 1/4 grid
      auto numerator = static_cast<std::int64_t>(
          static_cast<double>((len * Rat(4)).floor().to_int64()) * tightness);
      j.processing = Rat(std::max<std::int64_t>(1, numerator), 4);
      trace.add_job(j);
    }
  };
  burst(0, 40, 30, 0.3);    // steady background traffic
  burst(60, 25, 10, 0.85);  // tight latency-critical burst
  burst(90, 35, 40, 0.5);   // heavy batch phase
  trace.sort_canonical();

  std::int64_t opt = optimal_migratory_machines(trace);
  std::cout << "trace: " << trace.size() << " requests, migratory OPT = "
            << opt << " workers\n\n";

  Table table({"admission policy", "workers", "workers / OPT", "SLA misses"});
  for (FitRule rule : {FitRule::kFirstFit, FitRule::kBestFit,
                       FitRule::kWorstFit, FitRule::kNextFit,
                       FitRule::kRandomFit}) {
    FitPolicy policy(rule, /*seed=*/7);
    SimRun run = simulate(policy, trace, Rat(1), /*require_no_miss=*/false);
    ValidateOptions options;
    options.require_non_migratory = true;
    options.allow_unfinished = run.missed;
    auto audit = validate(trace, run.schedule, options);
    if (!audit.ok) {
      std::cerr << "schedule audit failed: " << audit.summary();
      return 1;
    }
    table.add_row({policy.name(), std::to_string(run.machines_used),
                   Table::fmt(static_cast<double>(run.machines_used) /
                              static_cast<double>(opt)),
                   run.missed ? "YES" : "0"});
  }
  table.print(std::cout);
  std::cout << "\nEvery policy admits exactly (per-worker EDF feasibility), "
               "so no SLA is ever missed;\nthe price is extra workers over "
               "the migratory clairvoyant bound.\n";
  return 0;
}
