// Quickstart: the 60-second tour of the minmach public API.
//
//   1. build an instance (jobs = release / deadline / processing, exact
//      rationals),
//   2. compute the migratory optimum exactly (max flow) and materialize an
//      optimal schedule,
//   3. run an online non-migratory algorithm on the same instance,
//   4. validate both schedules and render them as ASCII Gantt charts.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "minmach/algos/nonmig.hpp"
#include "minmach/core/validate.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/io/gantt.hpp"
#include "minmach/sim/engine.hpp"

int main() {
  using namespace minmach;

  // Three jobs that force migration in any 2-machine schedule: p = 2 each
  // inside the common window [0, 3).
  Instance instance;
  instance.add_job({Rat(0), Rat(3), Rat(2)});
  instance.add_job({Rat(0), Rat(3), Rat(2)});
  instance.add_job({Rat(0), Rat(3), Rat(2)});

  // Exact migratory optimum via Horn's max-flow network.
  std::int64_t opt = optimal_migratory_machines(instance);
  std::cout << "migratory OPT = " << opt << " machines\n\n";

  Schedule migratory = optimal_migratory_schedule(instance, opt);
  std::cout << "optimal migratory schedule (note job B migrating):\n"
            << render_gantt(instance, migratory) << "\n";

  // An online non-migratory algorithm: first fit with the exact per-machine
  // EDF admission test. It needs 3 machines here -- migration has power.
  FitPolicy first_fit(FitRule::kFirstFit);
  SimRun run = simulate(first_fit, instance);
  std::cout << first_fit.name() << " uses " << run.machines_used
            << " machines:\n"
            << render_gantt(instance, run.schedule) << "\n";

  // Every schedule in minmach is auditable.
  ValidateOptions non_migratory;
  non_migratory.require_non_migratory = true;
  auto audit = validate(instance, run.schedule, non_migratory);
  std::cout << "validator: " << (audit.ok ? "ok" : audit.summary()) << "\n";
  std::cout << "migratory schedule migrations: "
            << migratory.migration_count() << ", online migrations: "
            << run.schedule.migration_count() << "\n";
  return audit.ok ? 0 : 1;
}
