// Differential tests for the scaled OPT oracle: the segment-tree-compressed
// network, warm-started probes, and the sweep load bound must agree exactly
// with their reference implementations (dense network, cold probes, pair
// scan) on every instance family, including non-integer-grid (rational
// mode) and adversarial strong-lower-bound instances.
#include "minmach/flow/feasibility.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "minmach/adversary/strong_lb.hpp"
#include "minmach/algos/nonpreemptive.hpp"
#include "minmach/core/contribution.hpp"
#include "minmach/core/transforms.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/util/rng.hpp"

namespace minmach {
namespace {

Job mk(std::int64_t r, std::int64_t d, std::int64_t p) {
  return {Rat(r), Rat(d), Rat(p)};
}

// Scales all times by 1/(two ~2^21 primes) so the denominator LCM blows
// past the integer-grid guard and the oracle runs in exact-rational mode.
// OPT is invariant under uniform time scaling.
Instance force_rational_mode(const Instance& in) {
  return affine(in, Rat(0), Rat(1, BigInt(2097143) * BigInt(2097169)));
}

std::vector<Instance> test_instances() {
  std::vector<Instance> out;
  GenConfig small{12, 40, 12, 2};
  GenConfig medium{40, 120, 30, 4};
  for (std::uint64_t seed : {7u, 21u, 99u}) {
    Rng rng(seed);
    out.push_back(gen_general(rng, small));
    out.push_back(gen_general(rng, medium));
    out.push_back(gen_agreeable(rng, medium));
    out.push_back(gen_laminar(rng, medium));
    out.push_back(gen_unit(rng, medium));
    out.push_back(gen_loose(rng, medium, Rat(1, 2)));
    out.push_back(gen_tight(rng, small, Rat(3, 4)));
  }
  // Hand-picked edge cases.
  out.push_back(Instance{});                           // empty
  out.push_back(Instance({mk(0, 1, 1)}));              // single job
  out.push_back(Instance({mk(0, 1, 1), mk(0, 1, 1), mk(0, 1, 1)}));
  out.push_back(Instance({mk(0, 10, 10), mk(2, 5, 3), mk(7, 9, 1)}));
  // Rational mode: scaled copies with huge denominators.
  {
    Rng rng(5);
    out.push_back(force_rational_mode(gen_general(rng, small)));
    out.push_back(force_rational_mode(gen_agreeable(rng, small)));
  }
  // Adversarial: the strong lower bound's released instance.
  {
    FitPolicy policy(FitRule::kFirstFit);
    out.push_back(run_strong_lower_bound(policy, 3).instance);
  }
  return out;
}

// All four oracle knob combinations that matter: each feature alone, all
// on (default), all off (the pre-PR reference).
std::vector<OracleOptions> option_grid() {
  return {
      OracleOptions{},                     // default: all on
      OracleOptions::legacy(),             // reference
      OracleOptions{true, false, false},   // compression only
      OracleOptions{false, true, false},   // warm start only
      OracleOptions{false, false, true},   // sweep bound only
  };
}

TEST(SweepLoadBound, MatchesReferenceOnAllFamilies) {
  for (const Instance& instance : test_instances()) {
    LoadBound fast = load_bound_single_interval(instance);
    LoadBound slow = load_bound_single_interval_reference(instance);
    EXPECT_EQ(fast.machines, slow.machines);
    // The sweep uses the same first-witness-in-(a,b)-scan-order rule.
    EXPECT_EQ(fast.witness.to_string(), slow.witness.to_string());
  }
}

TEST(SweepLoadBound, MalformedFallsBackToReference) {
  // Negative laxity: the sweep precondition fails; both entry points must
  // still agree (the fast path falls back to the reference scan).
  Instance malformed({mk(0, 1, 5), mk(0, 3, 1)});
  ASSERT_FALSE(malformed.well_formed());
  LoadBound fast = load_bound_single_interval(malformed);
  LoadBound slow = load_bound_single_interval_reference(malformed);
  EXPECT_EQ(fast.machines, slow.machines);
  EXPECT_EQ(fast.witness.to_string(), slow.witness.to_string());
}

TEST(OracleOptions, OptimalMachinesAgreesAcrossAllKnobCombinations) {
  for (const Instance& instance : test_instances()) {
    std::int64_t reference = -1;
    for (const OracleOptions& options : option_grid()) {
      FeasibilityOracle oracle(instance, options);
      std::int64_t opt = oracle.optimal_machines();
      if (reference < 0) reference = opt;
      EXPECT_EQ(opt, reference);
    }
    // And the one-shot entry point (default options).
    EXPECT_EQ(optimal_migratory_machines(instance), reference);
  }
}

TEST(OracleOptions, FeasibleAgreesProbeByProbe) {
  // Mixed ascending/descending probe sequences exercise warm starts,
  // cold restarts, and the memo; every option combo must give the same
  // verdicts as the one-shot reference.
  Rng rng(1234);
  GenConfig config{30, 90, 25, 3};
  for (int trial = 0; trial < 4; ++trial) {
    Instance instance = gen_general(rng, config);
    std::int64_t opt = optimal_migratory_machines(instance);
    std::vector<std::int64_t> sequence = {opt + 2, 1,       opt,
                                          opt - 1, opt + 1, opt};
    for (const OracleOptions& options : option_grid()) {
      FeasibilityOracle oracle(instance, options);
      for (std::int64_t m : sequence) {
        if (m <= 0) continue;
        EXPECT_EQ(oracle.feasible(m), m >= opt)
            << "m=" << m << " opt=" << opt;
      }
    }
  }
}

TEST(Compression, SharedTreeNodesDoNotLeakSegmentCaps) {
  // Regression for the naive tree compression (job -> canonical nodes with
  // uncapped pass-through): jobs (0,2,2),(0,1,1),(0,1,1) on 2 machines are
  // infeasible (the load of [0,1) is 3), but a network that loses the
  // per-(job,segment) cap admits flow 4 and wrongly reports feasible. The
  // hybrid compression must keep the dense verdict.
  Instance instance({mk(0, 2, 2), mk(0, 1, 1), mk(0, 1, 1)});
  for (const OracleOptions& options : option_grid()) {
    FeasibilityOracle oracle(instance, options);
    EXPECT_FALSE(oracle.feasible(2));
    EXPECT_TRUE(oracle.feasible(3));
    EXPECT_EQ(oracle.optimal_machines(), 3);
  }
}

TEST(Compression, TightJobsDegradeToDirectEdges) {
  // Zero-laxity jobs make every in-window segment shorter than p_j, so the
  // compressed network is all direct capped edges; verdicts must still
  // match the dense network.
  Instance instance({mk(0, 4, 4), mk(1, 3, 2), mk(0, 2, 2), mk(2, 4, 2)});
  FeasibilityOracle fast(instance);
  FeasibilityOracle dense(instance, OracleOptions::legacy());
  EXPECT_EQ(fast.optimal_machines(), dense.optimal_machines());
}

TEST(Oracle, WarmStartSurvivesDescendingProbes) {
  // A descending probe forces a cold restart; later ascending probes must
  // warm-start from the restarted flow and stay correct.
  Rng rng(77);
  Instance instance = gen_general(rng, GenConfig{25, 80, 20, 2});
  std::int64_t opt = optimal_migratory_machines(instance);
  FeasibilityOracle oracle(instance);
  EXPECT_TRUE(oracle.feasible(opt + 3));
  if (opt > 1) EXPECT_FALSE(oracle.feasible(opt - 1));
  EXPECT_TRUE(oracle.feasible(opt));
}

TEST(Oracle, LoadLowerBoundIsCertified) {
  for (const Instance& instance : test_instances()) {
    if (instance.empty() || !instance.well_formed()) continue;
    FeasibilityOracle oracle(instance);
    std::int64_t lb = oracle.load_lower_bound();
    std::int64_t opt = oracle.optimal_machines();
    EXPECT_GE(lb, 1);
    EXPECT_LE(lb, opt);
    // The sweep bound equals the single-interval load bound's value.
    EXPECT_GE(lb, load_bound_single_interval(instance).machines);
  }
}

TEST(Oracle, RationalModeMatchesIntegerMode) {
  // Uniform scaling preserves OPT; the scaled instance runs in rational
  // mode (denominator LCM exceeds the grid guard) and must agree with the
  // integer-grid run of the original.
  Rng rng(31);
  GenConfig config{20, 60, 15, 2};
  for (int trial = 0; trial < 3; ++trial) {
    Instance instance = gen_general(rng, config);
    Instance scaled = force_rational_mode(instance);
    EXPECT_EQ(optimal_migratory_machines(instance),
              optimal_migratory_machines(scaled));
  }
}

}  // namespace
}  // namespace minmach
