#include "minmach/util/rational.hpp"

#include <gtest/gtest.h>

#include "minmach/util/rng.hpp"

namespace minmach {
namespace {

TEST(Rat, ConstructionNormalizes) {
  EXPECT_EQ(Rat(2, 4), Rat(1, 2));
  EXPECT_EQ(Rat(-2, 4), Rat(1, -2));
  EXPECT_EQ(Rat(-2, 4).to_string(), "-1/2");
  EXPECT_EQ(Rat(0, 5), Rat(0));
  EXPECT_EQ(Rat(0, 5).den(), BigInt(1));
  EXPECT_THROW(Rat(1, 0), std::domain_error);
}

TEST(Rat, FromString) {
  EXPECT_EQ(Rat::from_string("3"), Rat(3));
  EXPECT_EQ(Rat::from_string("-3/6"), Rat(-1, 2));
  EXPECT_EQ(Rat::from_string("3.25"), Rat(13, 4));
  EXPECT_EQ(Rat::from_string("-0.5"), Rat(-1, 2));
  EXPECT_EQ(Rat::from_string("0.125"), Rat(1, 8));
}

TEST(Rat, Arithmetic) {
  EXPECT_EQ(Rat(1, 2) + Rat(1, 3), Rat(5, 6));
  EXPECT_EQ(Rat(1, 2) - Rat(1, 3), Rat(1, 6));
  EXPECT_EQ(Rat(2, 3) * Rat(3, 4), Rat(1, 2));
  EXPECT_EQ(Rat(2, 3) / Rat(4, 3), Rat(1, 2));
  EXPECT_EQ(-Rat(1, 2), Rat(-1, 2));
  EXPECT_THROW(Rat(1) /= Rat(0), std::domain_error);
}

TEST(Rat, Ordering) {
  EXPECT_LT(Rat(1, 3), Rat(1, 2));
  EXPECT_LT(Rat(-1, 2), Rat(-1, 3));
  EXPECT_LT(Rat(-1), Rat(0));
  EXPECT_EQ(Rat::min(Rat(1, 3), Rat(1, 2)), Rat(1, 3));
  EXPECT_EQ(Rat::max(Rat(1, 3), Rat(1, 2)), Rat(1, 2));
  EXPECT_GE(Rat(1, 2), Rat(1, 2));
}

TEST(Rat, FloorCeil) {
  EXPECT_EQ(Rat(7, 2).floor(), BigInt(3));
  EXPECT_EQ(Rat(7, 2).ceil(), BigInt(4));
  EXPECT_EQ(Rat(-7, 2).floor(), BigInt(-4));
  EXPECT_EQ(Rat(-7, 2).ceil(), BigInt(-3));
  EXPECT_EQ(Rat(4).floor(), BigInt(4));
  EXPECT_EQ(Rat(4).ceil(), BigInt(4));
  EXPECT_EQ(Rat(0).floor(), BigInt(0));
}

TEST(Rat, Predicates) {
  EXPECT_TRUE(Rat(0).is_zero());
  EXPECT_TRUE(Rat(-1, 7).is_negative());
  EXPECT_TRUE(Rat(1, 7).is_positive());
  EXPECT_TRUE(Rat(5).is_integer());
  EXPECT_FALSE(Rat(5, 2).is_integer());
  EXPECT_EQ(Rat(-3, 2).abs(), Rat(3, 2));
}

TEST(Rat, ToDouble) {
  EXPECT_DOUBLE_EQ(Rat(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Rat(-1, 4).to_double(), -0.25);
}

class RatRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RatRandom, FieldAxioms) {
  Rng rng(GetParam());
  auto random_rat = [&] {
    return Rat(rng.uniform_int(-1000, 1000), rng.uniform_int(1, 60));
  };
  for (int iter = 0; iter < 500; ++iter) {
    Rat a = random_rat();
    Rat b = random_rat();
    Rat c = random_rat();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rat(0));
    if (!b.is_zero()) {
      EXPECT_EQ(a / b * b, a);
    }
    // floor/ceil sandwich
    Rat fl(a.floor(), BigInt(1));
    Rat ce(a.ceil(), BigInt(1));
    EXPECT_LE(fl, a);
    EXPECT_LE(a, ce);
    EXPECT_LE(ce - fl, Rat(1));
    // ordering consistent with doubles (coarse check away from ties)
    if (a != b) {
      EXPECT_EQ(a < b, a.to_double() < b.to_double());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RatRandom, ::testing::Values(11u, 22u, 33u));

TEST(Rat, DeepDenominatorsStayExact) {
  // Mimics the adversary's repeated epsilon/2 rescaling: denominators grow
  // geometrically but arithmetic stays exact.
  Rat eps(1);
  Rat sum(0);
  for (int level = 0; level < 64; ++level) {
    eps = eps / Rat(3) + Rat(1, 7);
    sum += eps;
  }
  Rat back = sum;
  for (int level = 0; level < 64; ++level) back -= Rat(0);
  EXPECT_EQ(back, sum);
  EXPECT_GT(sum, Rat(0));
  // Round-trip through the string form.
  EXPECT_EQ(Rat::from_string(sum.to_string()), sum);
}

}  // namespace
}  // namespace minmach
