#include "minmach/gen/generators.hpp"

#include <gtest/gtest.h>

namespace minmach {
namespace {

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, GeneralIsWellFormedAndDeterministic) {
  GenConfig config;
  config.n = 40;
  Rng a(GetParam());
  Rng b(GetParam());
  Instance x = gen_general(a, config);
  Instance y = gen_general(b, config);
  EXPECT_EQ(x.size(), config.n);
  EXPECT_TRUE(x.well_formed());
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(x.job(static_cast<JobId>(i)), y.job(static_cast<JobId>(i)));
}

TEST_P(GeneratorProperty, AgreeableIsAgreeable) {
  GenConfig config;
  config.n = 40;
  Rng rng(GetParam());
  Instance in = gen_agreeable(rng, config);
  EXPECT_TRUE(in.well_formed());
  EXPECT_TRUE(in.is_agreeable());
}

TEST_P(GeneratorProperty, LaminarIsLaminar) {
  GenConfig config;
  config.n = 50;
  Rng rng(GetParam());
  Instance in = gen_laminar(rng, config);
  EXPECT_TRUE(in.well_formed());
  EXPECT_TRUE(in.is_laminar());
  EXPECT_GE(in.size(), 10u);
}

TEST_P(GeneratorProperty, LoosenessRespected) {
  GenConfig config;
  config.n = 40;
  const Rat alpha(1, 3);
  Rng rng(GetParam());
  Instance loose = gen_loose(rng, config, alpha);
  EXPECT_TRUE(loose.well_formed());
  EXPECT_TRUE(loose.all_loose(alpha));

  Instance tight = gen_tight(rng, config, alpha);
  EXPECT_TRUE(tight.well_formed());
  for (const Job& j : tight.jobs()) EXPECT_FALSE(j.is_loose(alpha));
}

TEST_P(GeneratorProperty, CombinedFamilies) {
  GenConfig config;
  config.n = 40;
  const Rat alpha(1, 2);
  Rng rng(GetParam());
  Instance at = gen_agreeable_tight(rng, config, alpha);
  EXPECT_TRUE(at.is_agreeable());
  EXPECT_TRUE(at.well_formed());
  for (const Job& j : at.jobs()) EXPECT_FALSE(j.is_loose(alpha));

  Instance lt = gen_laminar_tight(rng, config, alpha);
  EXPECT_TRUE(lt.is_laminar());
  EXPECT_TRUE(lt.well_formed());
  for (const Job& j : lt.jobs()) EXPECT_FALSE(j.is_loose(alpha));
}

TEST_P(GeneratorProperty, UnitJobs) {
  GenConfig config;
  config.n = 30;
  Rng rng(GetParam());
  Instance in = gen_unit(rng, config);
  EXPECT_TRUE(in.well_formed());
  for (const Job& j : in.jobs()) EXPECT_EQ(j.processing, Rat(1));
  EXPECT_EQ(in.processing_time_ratio(), Rat(1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(1u, 17u, 99u));

}  // namespace
}  // namespace minmach
