#include "minmach/core/schedule.hpp"

#include <gtest/gtest.h>

namespace minmach {
namespace {

TEST(Schedule, AddAndCanonicalize) {
  Schedule s;
  s.add_slot(0, Rat(2), Rat(3), 7);
  s.add_slot(0, Rat(0), Rat(1), 7);
  s.add_slot(0, Rat(1), Rat(2), 7);  // three touching slots of one job
  s.add_slot(2, Rat(0), Rat(1), 8);  // grows machine list
  s.canonicalize();
  EXPECT_EQ(s.machine_count(), 3u);
  EXPECT_EQ(s.used_machine_count(), 2u);
  ASSERT_EQ(s.slots(0).size(), 1u);  // merged
  EXPECT_EQ(s.slots(0)[0].start, Rat(0));
  EXPECT_EQ(s.slots(0)[0].end, Rat(3));
  EXPECT_TRUE(s.slots(1).empty());
}

TEST(Schedule, EmptySlotsDropped) {
  Schedule s;
  s.add_slot(0, Rat(1), Rat(1), 0);
  s.add_slot(0, Rat(2), Rat(1), 0);
  EXPECT_EQ(s.total_slots(), 0u);
  EXPECT_EQ(s.used_machine_count(), 0u);
}

TEST(Schedule, CanonicalizeRejectsOverlap) {
  Schedule s;
  s.add_slot(0, Rat(0), Rat(2), 0);
  s.add_slot(0, Rat(1), Rat(3), 1);
  EXPECT_THROW(s.canonicalize(), std::logic_error);
}

TEST(Schedule, WorkQueries) {
  Schedule s;
  s.add_slot(0, Rat(0), Rat(2), 5);
  s.add_slot(1, Rat(3), Rat(4), 5);
  s.add_slot(0, Rat(2), Rat(3), 6);
  s.canonicalize();
  EXPECT_EQ(s.work_of(5), Rat(3));
  EXPECT_EQ(s.work_of(6), Rat(1));
  EXPECT_EQ(s.work_of(99), Rat(0));
  EXPECT_EQ(s.work_of_before(5, Rat(1)), Rat(1));
  EXPECT_EQ(s.work_of_before(5, Rat(7, 2)), Rat(5, 2));
  EXPECT_EQ(s.work_of_before(5, Rat(0)), Rat(0));
}

TEST(Schedule, MigrationAndPreemptionCounts) {
  Schedule s;
  // Job 0: machine 0 then machine 1 (1 migration, 1 preemption gap).
  s.add_slot(0, Rat(0), Rat(1), 0);
  s.add_slot(1, Rat(2), Rat(3), 0);
  // Job 1: contiguous on one machine.
  s.add_slot(1, Rat(0), Rat(2), 1);
  s.canonicalize();
  EXPECT_EQ(s.migration_count(), 1u);
  EXPECT_EQ(s.preemption_count(), 1u);
  EXPECT_EQ(s.machines_of(0), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(s.machines_of(1), (std::vector<std::size_t>{1}));
}

TEST(Schedule, PreemptionAcrossMachinesWithoutGapIsNotCounted) {
  Schedule s;
  // Job 0 switches machine back-to-back: a migration, not a preemption gap.
  s.add_slot(0, Rat(0), Rat(1), 0);
  s.add_slot(1, Rat(1), Rat(2), 0);
  s.canonicalize();
  EXPECT_EQ(s.migration_count(), 1u);
  EXPECT_EQ(s.preemption_count(), 0u);
}

TEST(Schedule, RemapAndAppend) {
  Schedule a;
  a.add_slot(0, Rat(0), Rat(1), 0);
  Schedule b;
  b.add_slot(0, Rat(0), Rat(1), 0);
  b.add_slot(1, Rat(1), Rat(2), 1);
  b.remap_jobs({5, 7});
  EXPECT_EQ(b.slots(0)[0].job, 5u);
  EXPECT_EQ(b.slots(1)[0].job, 7u);
  a.append_machines(b);
  EXPECT_EQ(a.machine_count(), 3u);
  EXPECT_EQ(a.slots(1)[0].job, 5u);
  EXPECT_THROW(b.remap_jobs({1}), std::out_of_range);
}

}  // namespace
}  // namespace minmach
