// Tests for the observability layer: metrics registry determinism, hot-tally
// draining, snapshot/diff/serialization, JSONL tracing, the Chrome trace
// exporter, and the deterministic JSON writer/parser underneath them all.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "minmach/core/instance.hpp"
#include "minmach/core/schedule.hpp"
#include "minmach/flow/feasibility.hpp"
#include "minmach/gen/generators.hpp"
#include "minmach/obs/histogram.hpp"
#include "minmach/obs/json.hpp"
#include "minmach/obs/metrics.hpp"
#include "minmach/obs/profile.hpp"
#include "minmach/obs/report.hpp"
#include "minmach/obs/trace.hpp"
#include "minmach/svc/engine.hpp"
#include "minmach/util/bigint.hpp"
#include "minmach/util/hash.hpp"
#include "minmach/util/opt_cache.hpp"
#include "minmach/util/rational.hpp"
#include "minmach/util/rng.hpp"
#include "minmach/util/simd.hpp"

namespace minmach::obs {
namespace {

// ---- json ---------------------------------------------------------------

TEST(Json, EscapeControlAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape(std::string("x\n\t\x01y")), "x\\n\\t\\u0001y");
}

TEST(Json, WriterGolden) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("name").value("e05");
  w.key("ok").value(true);
  w.key("count").value(std::int64_t{42});
  w.key("ratio").value(0.5);
  w.key("rows").begin_array();
  w.value("1/2");
  w.value(std::uint64_t{7});
  w.end_array();
  w.key("empty").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"e05\",\n"
            "  \"ok\": true,\n"
            "  \"count\": 42,\n"
            "  \"ratio\": 0.5,\n"
            "  \"rows\": [\n"
            "    \"1/2\",\n"
            "    7\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}\n");
}

TEST(Json, ParserRoundTripPreservesOrderAndLiterals) {
  JsonValue v = parse_json(
      "{\"b\": 1, \"a\": [true, null, \"x\\ny\"], \"n\": 0.500}");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.members[0].first, "b");  // source order, not sorted
  EXPECT_EQ(v.members[1].first, "a");
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_TRUE(a->items[0].boolean);
  EXPECT_EQ(a->items[1].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(a->items[2].text, "x\ny");
  // Numbers keep their literal text for canonical-format checks.
  EXPECT_EQ(v.find("n")->literal, "0.500");
  EXPECT_DOUBLE_EQ(v.find("n")->number, 0.5);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)parse_json("{"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"a\": }"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("[1, 2,]"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("tru"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{} x"), std::invalid_argument);
}

// ---- metrics ------------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(g.max_value(), 7);
  g.set(9);
  EXPECT_EQ(g.max_value(), 9);
}

TEST(Metrics, HistogramBucketsAndExtremes) {
  Histogram h;
  EXPECT_EQ(h.data().count, 0u);
  EXPECT_EQ(h.data().min, 0);  // empty histogram reports 0, not the sentinel
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(-2);  // clamps to 0
  HistogramData d = h.data();
  EXPECT_EQ(d.count, 4u);
  EXPECT_EQ(d.sum, 6);  // -2 clamped before summing
  EXPECT_EQ(d.min, 0);
  EXPECT_EQ(d.max, 5);
  // bit_width buckets: 0 -> 0 (twice), 1 -> 1, 5 -> 3.
  EXPECT_EQ(d.bins.at(0), 2u);
  EXPECT_EQ(d.bins.at(1), 1u);
  EXPECT_EQ(d.bins.at(3), 1u);
}

TEST(Metrics, RegistryNamedLookupIsStable) {
  Registry& r = Registry::global();
  r.reset();
  Counter& a = r.counter("test.lookup");
  a.add(3);
  EXPECT_EQ(&r.counter("test.lookup"), &a);
  EXPECT_EQ(r.snapshot().counters.at("test.lookup"), 3u);
  r.reset();
  // reset() zeroes but never deletes: the reference stays valid.
  EXPECT_EQ(a.value(), 0u);
}

TEST(Metrics, SnapshotDiffSubtractsCountersAndHistograms) {
  Registry& r = Registry::global();
  r.reset();
  r.counter("test.diff.c").add(10);
  r.histogram("test.diff.h").observe(4);
  Snapshot before = r.snapshot();
  r.counter("test.diff.c").add(5);
  r.histogram("test.diff.h").observe(4);
  Snapshot after = r.snapshot();
  Snapshot delta = after.diff(before);
  EXPECT_EQ(delta.counters.at("test.diff.c"), 5u);
  EXPECT_EQ(delta.histograms.at("test.diff.h").count, 1u);
  EXPECT_EQ(delta.histograms.at("test.diff.h").sum, 4);
  r.reset();
}

TEST(Metrics, SnapshotJsonIsDeterministicAndOmitsTimings) {
  Registry& r = Registry::global();
  r.reset();
  r.counter("test.json.b").add(2);
  r.counter("test.json.a").add(1);
  {
    ScopedTimer t(r.timing("test.json.timer"));
  }
  Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.timings.at("test.json.timer").count, 1u);
  std::string json = snap.to_json();
  // Timings are wall clock, hence excluded from the deterministic form.
  EXPECT_EQ(json.find("test.json.timer"), std::string::npos);
  JsonValue v = parse_json(json);
  const JsonValue* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  // std::map ordering: "test.json.a" serializes before "test.json.b".
  std::size_t pos_a = json.find("test.json.a");
  std::size_t pos_b = json.find("test.json.b");
  EXPECT_LT(pos_a, pos_b);
  // Asked explicitly, the timing section appears.
  EXPECT_NE(snap.to_json(/*include_timings=*/true).find("test.json.timer"),
            std::string::npos);
  r.reset();
}

TEST(Metrics, ParallelMergeIsThreadCountInvariant) {
  auto run = [](std::size_t threads) {
    Registry& r = Registry::global();
    r.reset();
    bench::parallel_map(16, threads, [&](std::size_t i) {
      r.counter("test.par.counter").add(i + 1);
      r.histogram("test.par.hist").observe(static_cast<std::int64_t>(i));
      return i;
    });
    return r.snapshot();
  };
  Snapshot single = run(1);
  Snapshot parallel = run(4);
  EXPECT_EQ(single, parallel);
  EXPECT_EQ(single.counters.at("test.par.counter"), 16u * 17u / 2u);
  EXPECT_EQ(single.histograms.at("test.par.hist").count, 16u);
  EXPECT_EQ(single.to_json(), parallel.to_json());
  Registry::global().reset();
}

// Execution-class metrics (oracle.*, flow.*, cache.*, speculate.*,
// bigint.*, rat.*, mem.*, simd.*) measure HOW an answer was computed -- a
// warm cache skips probes and all the arithmetic inside them, a SIMD
// kernel counts lanes the scalar path never sees -- so snapshots segregate
// them from the semantic counters and to_json() omits them by default
// (that is what keeps --report bytes identical with the cache on or off
// and under any --simd dispatch mode).
TEST(Metrics, ExecClassMetricsAreSegregatedFromSemanticOnes) {
  EXPECT_TRUE(is_exec_metric("oracle.probes"));
  EXPECT_TRUE(is_exec_metric("flow.augmentations"));
  EXPECT_TRUE(is_exec_metric("cache.hits"));
  EXPECT_TRUE(is_exec_metric("speculate.rounds"));
  EXPECT_TRUE(is_exec_metric("bigint.promotions"));
  EXPECT_TRUE(is_exec_metric("rat.fast_ops"));
  EXPECT_TRUE(is_exec_metric("mem.heap_allocs"));
  EXPECT_TRUE(is_exec_metric("simd.lanes_used"));
  EXPECT_TRUE(is_exec_metric("simd.scalar_spills"));
  EXPECT_TRUE(is_exec_metric("profile.opt_search/probe.calls"));
  EXPECT_TRUE(is_exec_metric("hist.probe_ns"));
  EXPECT_TRUE(is_exec_metric("store.hits_disk"));
  EXPECT_TRUE(is_exec_metric("store.wal_appends"));
  EXPECT_TRUE(is_exec_metric("store.mmap_bytes"));
  EXPECT_TRUE(is_exec_metric("store.corpus_zero_copy"));
  EXPECT_FALSE(is_exec_metric("adversary.case1"));
  EXPECT_FALSE(is_exec_metric("sim.jobs"));
  EXPECT_FALSE(is_exec_metric("test.semantic"));
  EXPECT_FALSE(is_exec_metric("oracle"));  // prefix needs the dot

  Registry& r = Registry::global();
  r.reset();
  r.counter("cache.hits").add(3);
  r.counter("test.semantic").add(5);
  r.histogram("speculate.depth").observe(2);
  r.histogram("test.hist").observe(1);
  Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.exec_counters.at("cache.hits"), 3u);
  EXPECT_EQ(snap.counters.at("test.semantic"), 5u);
  EXPECT_EQ(snap.counters.count("cache.hits"), 0u);
  EXPECT_EQ(snap.exec_histograms.at("speculate.depth").count, 1u);
  EXPECT_EQ(snap.histograms.count("speculate.depth"), 0u);

  const std::string semantic_json = snap.to_json();
  EXPECT_EQ(semantic_json.find("cache.hits"), std::string::npos);
  EXPECT_EQ(semantic_json.find("speculate.depth"), std::string::npos);
  EXPECT_NE(semantic_json.find("test.semantic"), std::string::npos);
  const std::string full_json =
      snap.to_json(/*include_timings=*/false, /*include_exec=*/true);
  EXPECT_NE(full_json.find("cache.hits"), std::string::npos);
  EXPECT_NE(full_json.find("speculate.depth"), std::string::npos);
  r.reset();
}

// The SIMD dispatch mode only moves simd.* / flow.* execution-class
// tallies: the same OPT computation under scalar and auto dispatch must
// produce byte-identical semantic report JSON, while (when the AVX2
// kernels are live) the accel run records lane traffic the scalar run
// cannot.
TEST(Metrics, SimdDispatchInvarianceOfSemanticSnapshots) {
  const util::simd::Mode saved = util::simd::mode();
  Rng rng(97);
  const Instance instance = gen_unit(rng, GenConfig{80, 10, 10, 1});
  auto run = [&](util::simd::Mode mode) {
    util::simd::set_mode(mode);
    Registry& r = Registry::global();
    (void)r.snapshot();  // drain residue from earlier tests
    r.reset();
    FeasibilityOracle oracle(instance);
    r.counter("test.opt_value")
        .add(static_cast<std::uint64_t>(oracle.optimal_machines()));
    return r.snapshot();
  };
  Snapshot scalar = run(util::simd::Mode::kScalar);
  Snapshot fast = run(util::simd::Mode::kAuto);
  util::simd::set_mode(saved);
  EXPECT_EQ(scalar.counters.at("test.opt_value"),
            fast.counters.at("test.opt_value"));
  // Semantic view (what --report serializes): byte-identical across modes.
  EXPECT_EQ(scalar.to_json(), fast.to_json());
#if MINMACH_OBS_ENABLED
  // The drain materializes every tally counter (possibly at zero); the
  // VALUE is what the dispatch mode moves.
  auto lanes = [](const Snapshot& snap) -> std::uint64_t {
    auto it = snap.exec_counters.find("simd.lanes_used");
    return it == snap.exec_counters.end() ? 0u : it->second;
  };
  EXPECT_EQ(lanes(scalar), 0u);
  if (util::simd::supported()) EXPECT_GT(lanes(fast), 0u);
#endif
  Registry::global().reset();
}

// The bound tier only moves bounds.* / oracle.* execution-class tallies:
// the same OPT computation with the sandwich on and off must produce
// byte-identical semantic report JSON (bounds.* routes through
// is_exec_metric like cache.* and simd.*), while the tier-on run records
// pinches and skipped probes the tier-off run cannot. The tier's tallies
// are also a pure function of the instance set, so they merge identically
// at any thread count.
TEST(Metrics, BoundTierInvarianceOfSemanticSnapshots) {
  EXPECT_TRUE(is_exec_metric("bounds.computed"));
  EXPECT_TRUE(is_exec_metric("bounds.pinched"));
  EXPECT_TRUE(is_exec_metric("bounds.probes_skipped"));
  EXPECT_TRUE(is_exec_metric("bounds.bracket_width"));
  EXPECT_TRUE(is_exec_metric("hist.bound_ns"));

  const bool saved = bounds_tier_enabled();
  Rng rng(131);
  std::vector<Instance> instances;
  for (int i = 0; i < 8; ++i)
    instances.push_back(gen_general(rng, GenConfig{24, 60, 16, 3}));
  auto run = [&](bool bounds_on, std::size_t threads) {
    set_bounds_tier_enabled(bounds_on);
    Registry& r = Registry::global();
    (void)r.snapshot();  // drain residue from earlier tests
    r.reset();
    std::vector<std::int64_t> opts =
        bench::parallel_map(instances.size(), threads, [&](std::size_t i) {
          FeasibilityOracle oracle(instances[i]);
          return oracle.optimal_machines();
        });
    Registry& reg = Registry::global();
    for (std::size_t i = 0; i < opts.size(); ++i)
      reg.counter("test.opt_sum").add(static_cast<std::uint64_t>(opts[i]));
    return reg.snapshot();
  };
  Snapshot off = run(false, 1);
  Snapshot on = run(true, 1);
  Snapshot on_parallel = run(true, 4);
  set_bounds_tier_enabled(saved);
  // Same answers, byte-identical semantic report either way.
  EXPECT_EQ(off.counters.at("test.opt_sum"), on.counters.at("test.opt_sum"));
  EXPECT_EQ(off.to_json(), on.to_json());
#if MINMACH_OBS_ENABLED
  // The tier really ran: sandwiches were computed only in the on runs.
  auto exec = [](const Snapshot& snap, const char* name) -> std::uint64_t {
    auto it = snap.exec_counters.find(name);
    return it == snap.exec_counters.end() ? 0u : it->second;
  };
  EXPECT_EQ(exec(off, "bounds.computed"), 0u);
  EXPECT_EQ(exec(on, "bounds.computed"), instances.size());
  // Pure function of the instance set: identical tallies at any thread
  // count (exec maps included, like the cache/mem tallies below; gauges
  // excluded -- high-water marks legitimately depend on the worker split).
  EXPECT_EQ(on.counters, on_parallel.counters);
  EXPECT_EQ(on.histograms, on_parallel.histograms);
  EXPECT_EQ(on.exec_counters, on_parallel.exec_counters);
  EXPECT_EQ(on.exec_histograms, on_parallel.exec_histograms);
  EXPECT_EQ(on.to_json(false, /*include_exec=*/true),
            on_parallel.to_json(false, /*include_exec=*/true));
#endif
  Registry::global().reset();
}

// Dynamic-oracle edits split their tallies across the two metric classes:
// dyn.* records HOW a splice ran (edges patched, paths drained, rebuilds
// avoided) and is execution-class, while svc.* records WHAT the session
// layer was asked to do (releases, completes, queries, coalesced edits)
// and is semantic -- it appears in deterministic reports. Both families
// are pure functions of the event set (each session drains its bucket in
// batch order regardless of which worker owns it), so a SessionEngine
// ingest tallies identically at any thread count; and under --profile the
// edit paths expose dyn_insert / dyn_remove / flow_repair spans plus the
// per-event hist.event_ns latency histogram.
TEST(Metrics, DynamicOracleTalliesClassifyAndMergeDeterministically) {
  EXPECT_TRUE(is_exec_metric("dyn.inserts"));
  EXPECT_TRUE(is_exec_metric("dyn.removes"));
  EXPECT_TRUE(is_exec_metric("dyn.edges_patched"));
  EXPECT_TRUE(is_exec_metric("dyn.rebuilds_avoided"));
  EXPECT_TRUE(is_exec_metric("hist.event_ns"));
  EXPECT_FALSE(is_exec_metric("svc.releases"));
  EXPECT_FALSE(is_exec_metric("svc.completes"));
  EXPECT_FALSE(is_exec_metric("svc.queries"));
  EXPECT_FALSE(is_exec_metric("svc.coalesced"));

#if MINMACH_OBS_ENABLED
  auto job = [](int r, int d, int p) { return Job{Rat(r), Rat(d), Rat(p)}; };
  std::vector<svc::Event> stream;
  for (std::uint64_t s = 0; s < 6; ++s) {
    for (int j = 0; j < 5; ++j) {
      stream.push_back({svc::Event::Kind::kRelease, s, j,
                        job(j, j + 4 + static_cast<int>(s % 3), 2)});
      if (j % 2 == 1) {
        stream.push_back({svc::Event::Kind::kQuery, s, 0, {}});
      }
    }
    stream.push_back({svc::Event::Kind::kComplete, s, 1, {}});
    stream.push_back({svc::Event::Kind::kQuery, s, 0, {}});
  }
  // Force probes: with the bound tier pinning every query the network is
  // never built and splices have no routed edges to patch.
  const bool saved_tier = bounds_tier_enabled();
  set_bounds_tier_enabled(false);
  auto run = [&](int threads) {
    Registry& r = Registry::global();
    (void)r.snapshot();  // drain residue from earlier tests
    r.reset();
    svc::EngineOptions options;
    options.threads = threads;
    svc::SessionEngine engine(options);
    engine.ingest(stream);
    return r.snapshot();
  };
  Snapshot single = run(1);
  Snapshot parallel = run(4);
  EXPECT_EQ(single.counters.at("svc.releases"), 30u);
  EXPECT_EQ(single.counters.at("svc.completes"), 6u);
  EXPECT_EQ(single.counters.at("svc.queries"), 18u);
  EXPECT_GT(single.exec_counters.at("dyn.inserts"), 0u);
  EXPECT_GT(single.exec_counters.at("dyn.edges_patched"), 0u);
  // Routing: dyn.* never leaks into the semantic map and vice versa.
  EXPECT_EQ(single.counters.count("dyn.inserts"), 0u);
  EXPECT_EQ(single.exec_counters.count("svc.releases"), 0u);
  EXPECT_EQ(single.counters, parallel.counters);
  EXPECT_EQ(single.exec_counters, parallel.exec_counters);
  EXPECT_EQ(single.to_json(), parallel.to_json());

  Registry::global().reset();
  LatencyRegistry::global().reset();
  set_profiling(true);
  {
    FeasibilityOracle oracle{Instance{}};
    const JobId a = oracle.insert_job(job(0, 4, 2));
    (void)oracle.insert_job(job(1, 5, 2));
    (void)oracle.optimal_machines();
    oracle.remove_job(a);
    (void)oracle.optimal_machines();
  }
  svc::SessionEngine engine(svc::EngineOptions{});
  engine.ingest(stream);
  set_profiling(false);
  set_bounds_tier_enabled(saved_tier);
  Snapshot profiled = Registry::global().snapshot();
  auto span_calls = [&](std::string_view needle) {
    std::uint64_t total = 0;
    for (const auto& [name, value] : profiled.exec_counters) {
      if (name.rfind("profile.", 0) == 0 &&
          name.find(needle) != std::string::npos && name.size() >= 6 &&
          name.compare(name.size() - 6, 6, ".calls") == 0) {
        total += value;
      }
    }
    return total;
  };
  EXPECT_GT(span_calls("dyn_insert"), 0u);
  EXPECT_GT(span_calls("dyn_remove"), 0u);
  EXPECT_GT(span_calls("flow_repair"), 0u);
  const auto latencies = LatencyRegistry::global().summaries();
  ASSERT_EQ(latencies.count("hist.event_ns"), 1u);
  EXPECT_EQ(latencies.at("hist.event_ns").count, stream.size());
  LatencyRegistry::global().reset();
#endif
  Registry::global().reset();
}

// cache.* / speculate.* tallies merge deterministically across thread
// counts when the workload pins them down: a serial warm phase inserts
// every key exactly once, then a parallel phase performs read-only all-hit
// lookups, so hit/miss/insert totals are a pure function of the task set
// no matter which worker runs which task.
TEST(Metrics, CacheAndSpeculateTalliesMergeDeterministically) {
  auto key = [](std::size_t i) {
    return util::Digest128{util::mix64(i * 2 + 1), util::mix64(i * 3 + 7)};
  };
  auto run = [&](std::size_t threads) {
    util::OptCache& cache = util::OptCache::global();
    cache.configure(true, 1 << 10);
    Registry& r = Registry::global();
    (void)r.snapshot();  // drain residue on the calling thread
    r.reset();
    const std::size_t tasks = 16;
    for (std::size_t i = 0; i < tasks; ++i)
      cache.insert_opt(key(i), static_cast<std::int64_t>(i));
    std::vector<std::int64_t> values =
        bench::parallel_map(tasks, threads, [&](std::size_t i) {
          std::optional<std::int64_t> hit = cache.lookup_opt(key(i));
          r.counter("speculate.rounds").add(1);
          r.counter("speculate.probes").add(i % 3);
          return hit.value_or(-1);
        });
    Snapshot snap = r.snapshot();
    cache.configure(false, 64);  // leave the global cache disabled
    for (std::size_t i = 0; i < tasks; ++i)
      EXPECT_EQ(values[i], static_cast<std::int64_t>(i));
    return snap;
  };
  Snapshot single = run(1);
  Snapshot parallel = run(4);
  EXPECT_EQ(single.exec_counters.at("cache.inserts"), 16u);
  EXPECT_EQ(single.exec_counters.at("cache.hits"), 16u);
  EXPECT_EQ(single.exec_counters.at("speculate.rounds"), 16u);
  EXPECT_EQ(single, parallel);  // exec maps included: fully pinned workload
  EXPECT_EQ(single.to_json(), parallel.to_json());
  EXPECT_EQ(single.to_json(false, /*include_exec=*/true),
            parallel.to_json(false, /*include_exec=*/true));
  Registry::global().reset();
}

#if MINMACH_OBS_ENABLED
// The memory-substrate counters (mem.bigint_spill / mem.arena_bytes /
// mem.heap_allocs) tally logical allocation *requests* -- a pure function
// of the workload, independent of which worker thread serves a task or how
// warm that worker's arena is. Merged across parallel_map's per-thread
// drain, the totals must therefore be byte-identical at any thread count,
// exactly like the arithmetic tallies above (DESIGN.md §10).
TEST(Metrics, MemTalliesMergeDeterministicallyAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    Registry& r = Registry::global();
    (void)r.snapshot();  // drain any residue left on the calling thread
    r.reset();
    bench::parallel_map(12, threads, [](std::size_t i) {
      // Per-task BigInt work past the inline limb buffer: deterministic
      // spill, arena-scratch, and heap-alloc tallies that depend only on i.
      BigInt v(1);
      for (std::size_t k = 0; k < 8 + (i % 4) * 4; ++k)
        v *= BigInt((std::int64_t{1} << 61) + static_cast<std::int64_t>(i));
      (void)BigInt::gcd(v, v + BigInt(1));
      return v.bit_length();
    });
    return r.snapshot();
  };
  Snapshot single = run(1);
  Snapshot parallel = run(4);
  // mem.* is execution-class (is_exec_metric), so the tallies live in the
  // snapshot's exec maps -- still thread-count invariant for this workload,
  // because logical allocation requests are a pure function of the tasks.
  EXPECT_EQ(single.exec_counters.at("mem.bigint_spill"),
            parallel.exec_counters.at("mem.bigint_spill"));
  EXPECT_EQ(single.exec_counters.at("mem.arena_bytes"),
            parallel.exec_counters.at("mem.arena_bytes"));
  EXPECT_EQ(single.exec_counters.at("mem.heap_allocs"),
            parallel.exec_counters.at("mem.heap_allocs"));
  EXPECT_EQ(single, parallel);
  EXPECT_EQ(single.to_json(), parallel.to_json());
  // The workload really exercised the substrate.
  EXPECT_GT(single.exec_counters.at("mem.bigint_spill"), 0u);
  EXPECT_GT(single.exec_counters.at("mem.arena_bytes"), 0u);
  Registry::global().reset();
}

TEST(Metrics, HotTalliesDrainIntoRegistry) {
  Registry& r = Registry::global();
  r.reset();
  MINMACH_OBS_TALLY(rat_fast_ops);
  MINMACH_OBS_TALLY(rat_fast_ops);
  MINMACH_OBS_TALLY(bigint_promotions);
  // snapshot() drains the calling thread first. rat.* / bigint.* are
  // execution-class names, so they surface in exec_counters.
  Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.exec_counters.at("rat.fast_ops"), 2u);
  EXPECT_EQ(snap.exec_counters.at("bigint.promotions"), 1u);
  // Drained: a second snapshot sees no double counting.
  EXPECT_EQ(r.snapshot().exec_counters.at("rat.fast_ops"), 2u);

  // Real arithmetic feeds the tallies: a small-tier Rat addition takes the
  // fast path.
  r.reset();
  Rat x(1, 3);
  x += Rat(1, 6);
  EXPECT_EQ(x, Rat(1, 2));
  EXPECT_GE(r.snapshot().exec_counters.at("rat.fast_ops"), 1u);
  r.reset();
}
#endif

// ---- tracing ------------------------------------------------------------

TEST(Trace, JsonlEventsAreOrderedAndTyped) {
  std::ostringstream os;
  {
    TraceSink sink(os);
    TraceSink::set_global(&sink);
    EXPECT_TRUE(trace_enabled());
    trace_event("sim", "release",
                {{"t", Rat(1, 2)}, {"job", 3u}, {"ok", true}});
    trace_event("oracle", "probe", {{"m", std::int64_t{-1}}, {"r", 0.25}});
    EXPECT_EQ(sink.events_written(), 2u);
    TraceSink::set_global(nullptr);
  }
  EXPECT_FALSE(trace_enabled());
  trace_event("sim", "dropped", {});  // no sink installed: no-op

  std::istringstream lines(os.str());
  std::string line;
  std::uint64_t expected_seq = 0;
  while (std::getline(lines, line)) {
    JsonValue v = parse_json(line);
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.members[0].first, "seq");
    EXPECT_EQ(v.members[1].first, "cat");
    EXPECT_EQ(v.members[2].first, "ev");
    EXPECT_EQ(v.find("seq")->literal, std::to_string(expected_seq));
    ++expected_seq;
  }
  EXPECT_EQ(expected_seq, 2u);
  JsonValue first = parse_json(os.str().substr(0, os.str().find('\n')));
  EXPECT_EQ(first.find("t")->text, "1/2");  // exact rational, not a float
  EXPECT_EQ(first.find("job")->literal, "3");
  EXPECT_TRUE(first.find("ok")->boolean);
}

TEST(Trace, ChromeExportHasOneTrackPerMachine) {
  Instance in;
  in.add_job({Rat(0), Rat(2), Rat(1)});
  in.add_job({Rat(0), Rat(2), Rat(2)});
  Schedule s;
  s.add_slot(0, Rat(0), Rat(1), 0);
  s.add_slot(1, Rat(0), Rat(2), 1);
  s.canonicalize();

  std::ostringstream os;
  write_chrome_trace(os, in, s, "unit test", /*microseconds_per_unit=*/1000.0);
  JsonValue v = parse_json(os.str());
  const JsonValue* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<std::string> tids;
  std::size_t complete_events = 0;
  for (const JsonValue& e : events->items) {
    const std::string& phase = e.find("ph")->text;
    if (phase == "X") {
      ++complete_events;
      tids.insert(e.find("tid")->literal);
      // Exact times ride along in args.
      ASSERT_NE(e.find("args"), nullptr);
      EXPECT_NE(e.find("args")->find("start"), nullptr);
    }
  }
  EXPECT_EQ(complete_events, 2u);  // one slot per machine above
  EXPECT_EQ(tids.size(), 2u);      // one track per machine
  // Slot [0,1) at 1000 us/unit: dur == 1000.
  bool found_duration = false;
  for (const JsonValue& e : events->items) {
    if (e.find("ph")->text == "X" && e.find("dur")->literal == "1000")
      found_duration = true;
  }
  EXPECT_TRUE(found_duration);
}

// ---- run reports --------------------------------------------------------

TEST(Report, JsonShapeAndCheckAggregation) {
  RunReport report;
  report.experiment = "unit";
  report.claim = "claim";
  report.config.emplace_back("seed", "7");
  report.tables.push_back({"t", {"a", "b"}, {{"1", "2"}}});
  report.checks.push_back({"bound holds", "3", "4", true});
  EXPECT_TRUE(report.all_checks_ok());
  report.checks.push_back({"bound fails", "5", "4", false});
  EXPECT_FALSE(report.all_checks_ok());

  JsonValue v = parse_json(report.to_json());
  EXPECT_EQ(v.find("schema")->text, kReportSchema);
  EXPECT_EQ(v.members[0].first, "schema");
  EXPECT_EQ(v.find("experiment")->text, "unit");
  EXPECT_EQ(v.find("config")->find("seed")->text, "7");
  EXPECT_EQ(v.find("tables")->items[0].find("title")->text, "t");
  EXPECT_FALSE(v.find("checks_ok")->boolean);
  ASSERT_NE(v.find("metrics"), nullptr);
  EXPECT_NE(v.find("metrics")->find("counters"), nullptr);
}

}  // namespace
}  // namespace minmach::obs
